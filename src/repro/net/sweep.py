"""Swept contact detection over mobility traces.

The communication layer's hot question is "who is within radio range of
vehicle *i* at time *t*?", asked once per vehicle per scan tick.  The
brute-force answer recomputes all ``n`` distances per query — O(n²) per
scan instant fleet-wide, the dominant cost of city-scale fleets.

:func:`sweep_encounters` replaces that with one sort-and-sweep pass
over the whole trace: at each sample instant the positions are sorted
into grid cells sized to the radio radius (the same bucketing
:class:`~repro.sim.spatial.SpatialGrid` uses), candidate pairs are
drawn only from each cell and its forward half-neighborhood, then
filtered with the **same exact distance test** the brute force scan
uses (`sqrt((dx)² + (dy)²) <= radius` on the same float values), and
consecutive in-range instants are merged into maximal *encounter
windows* ``(i, j, start, end)``.  Because per-pair distance values do
not depend on which other pairs are considered, the surviving pairs —
and therefore the windows — are bit-identical to the pairwise
reference (:func:`pairwise_encounters`), boundary ties included.

:class:`ContactIndex` turns the windows into a per-vehicle interval
table so each "neighbors at instant k" query is a vectorized mask over
that vehicle's windows instead of a fleet-wide distance scan.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "EncounterWindows",
    "ContactIndex",
    "sweep_encounters",
    "pairwise_encounters",
]

_EMPTY = np.zeros(0, dtype=np.int64)


@dataclass(eq=False)
class EncounterWindows:
    """Maximal in-range intervals for every vehicle pair.

    Window ``w`` says vehicles ``pair_i[w] < pair_j[w]`` were within
    radius of each other at every sample instant in
    ``[start[w], end[w]]`` (inclusive) and out of range at the adjacent
    instants.  Rows are sorted by ``(pair_i, pair_j, start)``.
    """

    pair_i: np.ndarray  # (w,) int64
    pair_j: np.ndarray  # (w,) int64
    start: np.ndarray  # (w,) int64 sample index
    end: np.ndarray  # (w,) int64 sample index, inclusive
    n_vehicles: int
    n_steps: int
    radius: float

    def __len__(self) -> int:
        return len(self.pair_i)

    def to_tuples(self) -> list[tuple[int, int, int, int]]:
        """Windows as plain ``(i, j, start, end)`` tuples (canonical order)."""
        return [
            (int(a), int(b), int(s), int(e))
            for a, b, s, e in zip(self.pair_i, self.pair_j, self.start, self.end)
        ]


def _windows_from_step_keys(step_keys, n: int, n_steps: int, radius: float) -> EncounterWindows:
    """Merge per-instant sorted pair-key arrays into maximal windows.

    ``step_keys`` yields, for each sample instant, the ascending int64
    keys ``i * n + j`` (``i < j``) of the pairs in range at that
    instant.  Only the churn (pairs opening or closing) costs dict
    work; steady-state contacts ride along in the sorted set-diffs.
    """
    open_start: dict[int, int] = {}
    rows: list[tuple[int, int, int]] = []
    prev = _EMPTY
    k = -1
    for k, cur in enumerate(step_keys):
        opened = np.setdiff1d(cur, prev, assume_unique=True)
        closed = np.setdiff1d(prev, cur, assume_unique=True)
        for key in closed:
            key = int(key)
            rows.append((key, open_start.pop(key), k - 1))
        for key in opened:
            open_start[int(key)] = k
        prev = cur
    last = k
    for key, s in open_start.items():
        rows.append((key, s, last))
    if not rows:
        return EncounterWindows(
            _EMPTY, _EMPTY, _EMPTY, _EMPTY, n, n_steps, float(radius)
        )
    keys = np.array([r[0] for r in rows], dtype=np.int64)
    start = np.array([r[1] for r in rows], dtype=np.int64)
    end = np.array([r[2] for r in rows], dtype=np.int64)
    pair_i, pair_j = keys // n, keys % n
    order = np.lexsort((start, pair_j, pair_i))
    return EncounterWindows(
        pair_i[order], pair_j[order], start[order], end[order],
        n, n_steps, float(radius),
    )


# Packed cell keys: (cx + _CELL_OFF) * _CELL_MUL + (cy + _CELL_OFF).
_CELL_OFF = 1 << 20
_CELL_MUL = 1 << 21
# Forward half of the 8-neighborhood in key space; scanning only these
# from each cell visits every adjacent cell pair exactly once.
_FORWARD = (_CELL_MUL - 1, _CELL_MUL, _CELL_MUL + 1, 1)


def sweep_encounters(
    positions: np.ndarray, radius: float, cell_size: float | None = None
) -> EncounterWindows:
    """Extract encounter windows via a per-instant spatial-grid sweep.

    ``positions`` is the ``(n_steps, n, 2)`` trace array.  Cost per
    instant is O(occupied cells · local density²) instead of O(n²): a
    sort groups vehicles by grid cell, pairs are enumerated within each
    cell and against its four forward neighbors (cells are at least
    ``radius`` wide, so no in-range pair can span further), and the
    exact distance test prunes the superset.  Windows are bit-identical
    to :func:`pairwise_encounters` (same distance expression over the
    same floats).
    """
    positions = np.asarray(positions, dtype=float)
    n_steps, n = positions.shape[0], positions.shape[1]
    # Cells narrower than the radius would let in-range pairs span
    # beyond the forward neighborhood, so the radius is a floor.
    cell = max(float(cell_size or 0.0), float(radius), 1e-9)

    triu_memo: dict[int, tuple[np.ndarray, np.ndarray]] = {}

    def step_keys():
        for k in range(n_steps):
            pos = positions[k]
            cells = np.floor(pos / cell).astype(np.int64)
            ckey = (cells[:, 0] + _CELL_OFF) * _CELL_MUL + (cells[:, 1] + _CELL_OFF)
            order = np.argsort(ckey, kind="stable")
            sk = ckey[order]
            starts = np.flatnonzero(np.r_[True, sk[1:] != sk[:-1]])
            ends = np.r_[starts[1:], sk.size]
            buckets = {
                int(sk[s]): (order[s:e], pos[order[s:e]])
                for s, e in zip(starts, ends)
            }
            chunks = []
            for key, (members, pts) in buckets.items():
                m = members.size
                if m > 1:
                    pair = triu_memo.get(m)
                    if pair is None:
                        pair = triu_memo[m] = np.triu_indices(m, k=1)
                    ai, bi = pair
                    a, b = members[ai], members[bi]
                    lo, hi = np.minimum(a, b), np.maximum(a, b)
                    d = pts[ai] - pts[bi]
                    dist = np.sqrt(np.add.reduce(d * d, axis=1))
                    keep = dist <= radius
                    if keep.any():
                        chunks.append(lo[keep] * n + hi[keep])
                for delta in _FORWARD:
                    other = buckets.get(key + delta)
                    if other is None:
                        continue
                    other_members, other_pts = other
                    d = pts[:, None, :] - other_pts[None, :, :]
                    dist = np.sqrt(np.add.reduce(d * d, axis=2))
                    ai, bi = np.nonzero(dist <= radius)
                    if ai.size:
                        a, b = members[ai], other_members[bi]
                        lo, hi = np.minimum(a, b), np.maximum(a, b)
                        chunks.append(lo * n + hi)
            if chunks:
                yield np.sort(np.concatenate(chunks))
            else:
                yield _EMPTY

    return _windows_from_step_keys(step_keys(), n, n_steps, radius)


def pairwise_encounters(positions: np.ndarray, radius: float) -> EncounterWindows:
    """Reference all-pairs window extraction (O(n² · n_steps)).

    Uses the same per-pair distance arithmetic as
    ``MobilityTraces.neighbors``; kept as the equivalence oracle for
    tests and as the small-fleet fallback in benchmarks.
    """
    positions = np.asarray(positions, dtype=float)
    n_steps, n = positions.shape[0], positions.shape[1]
    iu, ju = np.triu_indices(n, k=1)

    def step_keys():
        for k in range(n_steps):
            pos = positions[k]
            d = pos[iu] - pos[ju]
            dist = np.sqrt(np.add.reduce(d * d, axis=1))
            mask = dist <= radius
            yield (iu[mask] * n + ju[mask]).astype(np.int64)

    return _windows_from_step_keys(step_keys(), n, n_steps, radius)


class ContactIndex:
    """Per-vehicle interval table answering "neighbors at instant k".

    Built once from :class:`EncounterWindows`; each query is a
    vectorized interval-containment mask over one vehicle's windows
    (typically a few hundred) instead of an O(n) distance scan, and
    returns exactly what ``MobilityTraces.neighbors`` would: ascending
    neighbor indices, self excluded.
    """

    def __init__(self, windows: EncounterWindows):
        self.windows = windows
        n = windows.n_vehicles
        self.n_vehicles = n
        self.radius = windows.radius
        # Each window is visible from both endpoints.
        owner = np.concatenate([windows.pair_i, windows.pair_j])
        partner = np.concatenate([windows.pair_j, windows.pair_i])
        start = np.concatenate([windows.start, windows.start])
        end = np.concatenate([windows.end, windows.end])
        order = np.argsort(owner, kind="stable")
        self._partner = partner[order]
        self._start = start[order]
        self._end = end[order]
        counts = np.bincount(owner, minlength=n)
        self._offsets = np.concatenate([[0], np.cumsum(counts)])

    def neighbors_at(self, vehicle: int, k: int) -> list[int]:
        """Ascending indices of vehicles in range of ``vehicle`` at instant ``k``."""
        s, e = self._offsets[vehicle], self._offsets[vehicle + 1]
        if e <= s:
            return []
        mask = (self._start[s:e] <= k) & (k <= self._end[s:e])
        if not mask.any():
            return []
        return [int(p) for p in np.sort(self._partner[s:e][mask])]

    def window_count(self, vehicle: int | None = None) -> int:
        """Number of windows (one vehicle's, or total distinct pairs)."""
        if vehicle is None:
            return len(self.windows)
        return int(self._offsets[vehicle + 1] - self._offsets[vehicle])
