"""Contact estimation and exchange prioritization (§III-A).

When a vehicle meets several peers it must decide whom to chat with
first.  Following the paper (and its predecessor RoadTrain), each pair
exchanges small assistive messages — location, speed, route for the next
few minutes, available bandwidth — from which both sides estimate:

* the remaining **contact duration** ``T_contact`` (how long their
  routes keep them within radio range),
* ``z`` — the *truncated-ratio* communication priority: among peers
  whose contact is long enough to finish an exchange, a **shorter yet
  sufficient** contact scores higher (that opportunity vanishes first);
  an insufficient contact scores zero,
* ``p`` — the probability the exchange completes, from the predicted
  distance profile and the distance-based wireless loss, and
* the Eq. 5 priority ``c = z * p * min(B_i, B_j)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.net.channel import ChannelConfig
from repro.net.wireless import WirelessModel

__all__ = ["ContactEstimate", "estimate_contact", "priority_score"]


@dataclass(frozen=True)
class ContactEstimate:
    """Everything §III-A derives from one pair's assistive exchange."""

    contact_duration: float  # predicted seconds until out of range
    z: float  # truncated-ratio priority in [0, 1]
    p: float  # completion probability in [0, 1]
    mean_goodput_factor: float  # average (1 - loss) over the window


def estimate_contact(
    route_a: np.ndarray,
    route_b: np.ndarray,
    sample_interval: float,
    wireless: WirelessModel,
    config: ChannelConfig,
    exchange_bytes: float,
    bandwidth_bps: float | None = None,
) -> ContactEstimate:
    """Estimate contact properties from two shared future routes.

    Parameters
    ----------
    route_a, route_b:
        ``(k, 2)`` future position samples at ``sample_interval`` spacing
        (the "route in the next few minutes" from navigation).
    exchange_bytes:
        Total bytes the planned exchange must move (both coresets plus
        both models at the anticipated compression).
    bandwidth_bps:
        Pairwise bandwidth ``min(B_i, B_j)``; defaults to the channel's.
    """
    bandwidth_bps = bandwidth_bps or config.bandwidth_bps
    k = min(len(route_a), len(route_b))
    if k == 0:
        return ContactEstimate(0.0, 0.0, 0.0, 0.0)
    distances = np.linalg.norm(route_a[:k] - route_b[:k], axis=1)
    in_range = distances <= wireless.max_range
    if not in_range[0]:
        return ContactEstimate(0.0, 0.0, 0.0, 0.0)
    # Contact lasts until the first predicted sample out of range.
    out = np.where(~in_range)[0]
    end = int(out[0]) if len(out) else k
    contact_duration = end * sample_interval
    window = distances[:end]
    goodput = wireless.expected_goodput_factor(window)

    # Deliverable bytes over the predicted window vs. what's needed.
    bytes_per_second = bandwidth_bps / 8.0 * goodput
    needed_time = exchange_bytes / max(bytes_per_second, 1e-9)
    if needed_time <= 0:
        z = 1.0
    elif contact_duration >= needed_time:
        # Sufficient: shorter contact -> larger z (truncated ratio).
        z = needed_time / contact_duration
    else:
        z = 0.0

    deliverable = bytes_per_second * contact_duration
    p = float(np.clip(deliverable / max(exchange_bytes, 1e-9), 0.0, 1.0))
    return ContactEstimate(contact_duration, float(z), p, float(goodput))


def priority_score(
    estimate: ContactEstimate, bandwidth_i: float, bandwidth_j: float
) -> float:
    """Eq. 5: ``c_{i,j} = z_{i,j} * p_{i,j} * min(B_i, B_j)``."""
    return estimate.z * estimate.p * min(bandwidth_i, bandwidth_j)
