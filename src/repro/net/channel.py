"""Packet-level transfer simulation.

Transfers are simulated in time chunks: each chunk delivers
``bandwidth * goodput_factor(distance)`` bytes, where the goodput factor
folds per-packet loss and MAC retransmissions into throughput (see
:mod:`repro.net.wireless`).  A transfer *fails* by running out of
contact — the vehicles move out of range or the deadline passes — not by
a single unlucky packet, which transport-layer recovery would re-send.

The paper's parameters (§IV-A): 1500-byte packets, 31 Mbps, up to three
retransmissions, 500 m range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.net.wireless import WirelessModel
from repro.telemetry import hooks as telemetry

__all__ = [
    "ChannelConfig",
    "TransferResult",
    "TransferSession",
    "simulate_transfer",
    "transfer_time_lossless",
]


@dataclass(frozen=True)
class ChannelConfig:
    """Link-layer constants from §IV-A."""

    bandwidth_bps: float = 31e6
    packet_bytes: int = 1500
    max_retransmissions: int = 3
    #: Size of the route/bandwidth assistive message (§III-A): 184 bytes.
    assist_info_bytes: int = 184
    #: Simulation chunk for re-evaluating distance-dependent loss.
    chunk_seconds: float = 0.5

    @property
    def bytes_per_second(self) -> float:
        """Raw link throughput in bytes/s (before loss)."""
        return self.bandwidth_bps / 8.0


@dataclass(frozen=True)
class TransferResult:
    """Outcome of one simulated transfer."""

    completed: bool
    elapsed: float  # seconds spent transmitting (until done or cut off)
    bytes_delivered: float


def transfer_time_lossless(n_bytes: float, config: ChannelConfig) -> float:
    """Time to ship ``n_bytes`` on a clean link (packetization included)."""
    if n_bytes <= 0:
        return 0.0
    n_packets = max(int(-(-n_bytes // config.packet_bytes)), 1)
    return n_packets * config.packet_bytes / config.bytes_per_second


class TransferSession:
    """A resumable in-progress transfer, advanced one chunk at a time.

    The per-chunk arithmetic is the exact loop body that
    :func:`simulate_transfer` used to run inline, so driving a session to
    resolution yields bit-identical results.  The session form exists so
    a transfer can be advanced in segments on the virtual clock
    (overlapped chats) and snapshotted mid-flight between segments.
    """

    __slots__ = (
        "n_bytes",
        "config",
        "start_time",
        "remaining",
        "now",
        "delivered",
        "resolved",
        "completed",
        "elapsed",
        "finish_time",
        "abort_cause",
    )

    def __init__(self, n_bytes: float, config: ChannelConfig, start_time: float):
        self.n_bytes = float(n_bytes)
        self.config = config
        self.start_time = start_time
        self.remaining = float(n_bytes)
        self.now = start_time
        self.delivered = 0.0
        self.resolved = n_bytes <= 0
        self.completed = n_bytes <= 0
        self.elapsed = 0.0
        self.finish_time = start_time if n_bytes <= 0 else None
        self.abort_cause: str | None = None

    def step(
        self,
        distance_fn: Callable[[float], float],
        wireless: WirelessModel,
        deadline: float,
    ) -> float | None:
        """Advance by at most one chunk.

        Returns the absolute time at which this step's outcome takes
        effect — the next chunk boundary, or the completion instant —
        or ``None`` when the transfer resolved at the current time
        (deadline/range/rate cut, or already resolved).
        """
        if self.resolved:
            return None
        if not (self.now < deadline):
            self.resolved = True
            self.abort_cause = "deadline"
            self.finish_time = self.now
            return None
        distance = distance_fn(self.now)
        if not wireless.in_range(distance):
            self.resolved = True
            self.abort_cause = "range"
            self.finish_time = self.now
            return None
        rate = self.config.bytes_per_second * wireless.goodput_factor(distance)
        if rate <= 0:
            self.resolved = True
            self.abort_cause = "rate"
            self.finish_time = self.now
            return None
        chunk = min(self.config.chunk_seconds, deadline - self.now)
        can_send = rate * chunk
        if can_send >= self.remaining:
            self.elapsed = self.now - self.start_time + self.remaining / rate
            self.resolved = True
            self.completed = True
            self.finish_time = self.start_time + self.elapsed
            return self.finish_time
        self.remaining -= can_send
        self.delivered += can_send
        self.now += chunk
        return self.now

    def result(self) -> TransferResult:
        """The :class:`TransferResult` for a resolved (or cut) session."""
        if self.completed:
            return TransferResult(True, self.elapsed, self.n_bytes)
        return TransferResult(False, self.now - self.start_time, self.delivered)

    def snapshot(self) -> dict:
        return {
            "n_bytes": self.n_bytes,
            "start_time": self.start_time,
            "remaining": self.remaining,
            "now": self.now,
            "delivered": self.delivered,
            "resolved": self.resolved,
            "completed": self.completed,
            "elapsed": self.elapsed,
            "finish_time": self.finish_time,
            "abort_cause": self.abort_cause,
        }

    @classmethod
    def from_snapshot(cls, state: dict, config: ChannelConfig) -> "TransferSession":
        session = cls(state["n_bytes"], config, state["start_time"])
        session.remaining = state["remaining"]
        session.now = state["now"]
        session.delivered = state["delivered"]
        session.resolved = state["resolved"]
        session.completed = state["completed"]
        session.elapsed = state["elapsed"]
        session.finish_time = state["finish_time"]
        session.abort_cause = state["abort_cause"]
        return session


def simulate_transfer(
    n_bytes: float,
    distance_fn: Callable[[float], float],
    wireless: WirelessModel,
    config: ChannelConfig,
    start_time: float,
    deadline: float,
) -> TransferResult:
    """Simulate transferring ``n_bytes`` between two moving vehicles.

    Parameters
    ----------
    n_bytes:
        Payload size (e.g. the nominal compressed model size).
    distance_fn:
        Maps absolute time to inter-vehicle distance; evaluated once per
        chunk so loss tracks the vehicles' actual motion.
    wireless:
        The loss model (possibly disabled for the "w/o loss" case).
    start_time, deadline:
        Transfer window in absolute simulation time.

    Returns
    -------
    TransferResult with ``completed`` false when range or deadline cut
    the transfer short.
    """
    if n_bytes <= 0:
        return TransferResult(True, 0.0, 0.0)
    session = TransferSession(n_bytes, config, start_time)
    while session.step(distance_fn, wireless, deadline) is not None:
        if session.resolved:
            break
    result = session.result()
    telemetry.on_transfer(n_bytes, result, start_time)
    return result
