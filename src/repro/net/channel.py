"""Packet-level transfer simulation.

Transfers are simulated in time chunks: each chunk delivers
``bandwidth * goodput_factor(distance)`` bytes, where the goodput factor
folds per-packet loss and MAC retransmissions into throughput (see
:mod:`repro.net.wireless`).  A transfer *fails* by running out of
contact — the vehicles move out of range or the deadline passes — not by
a single unlucky packet, which transport-layer recovery would re-send.

The paper's parameters (§IV-A): 1500-byte packets, 31 Mbps, up to three
retransmissions, 500 m range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.net.wireless import WirelessModel
from repro.telemetry import hooks as telemetry

__all__ = ["ChannelConfig", "TransferResult", "simulate_transfer", "transfer_time_lossless"]


@dataclass(frozen=True)
class ChannelConfig:
    """Link-layer constants from §IV-A."""

    bandwidth_bps: float = 31e6
    packet_bytes: int = 1500
    max_retransmissions: int = 3
    #: Size of the route/bandwidth assistive message (§III-A): 184 bytes.
    assist_info_bytes: int = 184
    #: Simulation chunk for re-evaluating distance-dependent loss.
    chunk_seconds: float = 0.5

    @property
    def bytes_per_second(self) -> float:
        """Raw link throughput in bytes/s (before loss)."""
        return self.bandwidth_bps / 8.0


@dataclass(frozen=True)
class TransferResult:
    """Outcome of one simulated transfer."""

    completed: bool
    elapsed: float  # seconds spent transmitting (until done or cut off)
    bytes_delivered: float


def transfer_time_lossless(n_bytes: float, config: ChannelConfig) -> float:
    """Time to ship ``n_bytes`` on a clean link (packetization included)."""
    if n_bytes <= 0:
        return 0.0
    n_packets = max(int(-(-n_bytes // config.packet_bytes)), 1)
    return n_packets * config.packet_bytes / config.bytes_per_second


def simulate_transfer(
    n_bytes: float,
    distance_fn: Callable[[float], float],
    wireless: WirelessModel,
    config: ChannelConfig,
    start_time: float,
    deadline: float,
) -> TransferResult:
    """Simulate transferring ``n_bytes`` between two moving vehicles.

    Parameters
    ----------
    n_bytes:
        Payload size (e.g. the nominal compressed model size).
    distance_fn:
        Maps absolute time to inter-vehicle distance; evaluated once per
        chunk so loss tracks the vehicles' actual motion.
    wireless:
        The loss model (possibly disabled for the "w/o loss" case).
    start_time, deadline:
        Transfer window in absolute simulation time.

    Returns
    -------
    TransferResult with ``completed`` false when range or deadline cut
    the transfer short.
    """
    if n_bytes <= 0:
        return TransferResult(True, 0.0, 0.0)
    remaining = float(n_bytes)
    now = start_time
    delivered = 0.0
    result = None
    while now < deadline:
        distance = distance_fn(now)
        if not wireless.in_range(distance):
            break
        rate = config.bytes_per_second * wireless.goodput_factor(distance)
        if rate <= 0:
            break
        chunk = min(config.chunk_seconds, deadline - now)
        can_send = rate * chunk
        if can_send >= remaining:
            elapsed = now - start_time + remaining / rate
            result = TransferResult(True, elapsed, n_bytes)
            break
        remaining -= can_send
        delivered += can_send
        now += chunk
    if result is None:
        result = TransferResult(False, now - start_time, delivered)
    telemetry.on_transfer(n_bytes, result, start_time)
    return result
