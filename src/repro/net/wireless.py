"""Distance-based wireless loss model.

The paper estimates wireless loss from a distance-loss lookup table
derived from physical-layer V2X evaluations (Anwar et al., VTC 2019),
exactly as its predecessor RoadTrain does.  We ship a table of the same
shape: packet loss grows from ~1% at close range to near-total at the
500 m communication boundary.

The *effective rate* at a distance folds MAC retransmissions into
throughput: every lost transmission costs one packet time, so the
goodput of a link with per-try loss ``p`` is ``bandwidth * (1 - p)``
(transport-layer recovery re-queues the rare packet that exhausts its
three retransmissions, which costs time rather than aborting a model
transfer — a transfer only *fails* by not completing within contact).
"""

from __future__ import annotations

import numpy as np

__all__ = ["DEFAULT_LOSS_TABLE", "WirelessModel"]

#: (max_distance_m, packet_loss_probability) rows, ascending distance.
#: Shape follows the 802.11bd highway measurements in Anwar et al.
DEFAULT_LOSS_TABLE: tuple[tuple[float, float], ...] = (
    (50.0, 0.01),
    (100.0, 0.03),
    (150.0, 0.06),
    (200.0, 0.10),
    (250.0, 0.16),
    (300.0, 0.24),
    (350.0, 0.35),
    (400.0, 0.48),
    (450.0, 0.63),
    (500.0, 0.80),
)


class WirelessModel:
    """Lookup-table wireless loss plus derived link quantities.

    Parameters
    ----------
    table:
        ``(max_distance, loss)`` rows; beyond the last row loss is 1.
    max_range:
        Communication range in meters (paper: 500).
    enabled:
        When false the channel is lossless within range — the paper's
        "w/o wireless loss" idealization.
    """

    def __init__(
        self,
        table: tuple[tuple[float, float], ...] = DEFAULT_LOSS_TABLE,
        max_range: float = 500.0,
        enabled: bool = True,
    ):
        distances = [row[0] for row in table]
        if sorted(distances) != distances:
            raise ValueError("loss table distances must be ascending")
        self.table = table
        self.max_range = float(max_range)
        self.enabled = enabled

    @classmethod
    def fixed(cls, loss: float, max_range: float = 500.0) -> "WirelessModel":
        """A model with one distance-independent loss value.

        Used for infrastructure links where the paper samples the loss
        uniformly from the lookup table instead of using geometry
        (§IV-C: ProxSkip and RSU-L communications).
        """
        if not 0.0 <= loss <= 1.0:
            raise ValueError(f"loss must lie in [0, 1]: {loss}")
        return cls(table=((max_range, loss),), max_range=max_range, enabled=True)

    def loss_at(self, distance: float) -> float:
        """Per-transmission packet loss probability at ``distance``."""
        if distance > self.max_range:
            return 1.0
        if not self.enabled:
            return 0.0
        for max_dist, loss in self.table:
            if distance <= max_dist:
                return loss
        return 1.0

    def in_range(self, distance: float) -> bool:
        """Whether two radios at ``distance`` can communicate at all."""
        return distance <= self.max_range

    def goodput_factor(self, distance: float) -> float:
        """Fraction of raw bandwidth delivered as goodput at ``distance``."""
        return 1.0 - self.loss_at(distance)

    def expected_goodput_factor(self, distances: np.ndarray) -> float:
        """Mean goodput factor over a predicted distance profile.

        Used by the §III-A estimator: given the distance samples two
        vehicles' shared routes imply, this is the average fraction of
        bandwidth the link will deliver.
        """
        distances = np.asarray(distances, dtype=float)
        if distances.size == 0:
            return 0.0
        factors = np.array([self.goodput_factor(d) for d in distances])
        return float(factors.mean())
