"""Medium-access contention: concurrent transfers share the channel.

The default channel model treats every pairwise transfer as enjoying
the full link bandwidth.  In a real CSMA-style V2V band, chats happening
near each other contend for airtime: with ``k`` overlapping transfers
in carrier-sense range, each gets roughly ``1/k`` of the medium.

:class:`ContentionTracker` is an optional layer trainers can consult:
transfers register their (time window, midpoint location), and the
tracker answers "how many transfers overlapped this one?" so transfer
times can be stretched accordingly.  It deliberately stays a
post-processing estimate — packet-level CSMA simulation is far beyond
what the paper models (its benchmarks all assume the same interference-
free pairwise links), so this exists for sensitivity studies rather
than the headline reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ActiveTransfer", "ContentionTracker"]


@dataclass(frozen=True)
class ActiveTransfer:
    """One registered transfer window."""

    transfer_id: int
    start: float
    end: float
    location: np.ndarray  # (2,) midpoint of the communicating pair


@dataclass
class ContentionTracker:
    """Tracks overlapping transfers within carrier-sense range.

    Parameters
    ----------
    sense_range:
        Transfers whose midpoints are within this distance contend.
    """

    sense_range: float = 500.0
    _transfers: list[ActiveTransfer] = field(default_factory=list)
    _next_id: int = 0

    def register(self, start: float, end: float, location: np.ndarray) -> int:
        """Record a transfer window; returns its id."""
        if end < start:
            raise ValueError(f"end {end} before start {start}")
        transfer = ActiveTransfer(
            self._next_id, float(start), float(end), np.asarray(location, dtype=float)
        )
        self._transfers.append(transfer)
        self._next_id += 1
        return transfer.transfer_id

    def overlapping(self, transfer_id: int) -> list[ActiveTransfer]:
        """Other transfers overlapping the given one in time and space."""
        me = self._get(transfer_id)
        out = []
        for other in self._transfers:
            if other.transfer_id == transfer_id:
                continue
            time_overlap = other.start < me.end and me.start < other.end
            if not time_overlap:
                continue
            if np.linalg.norm(other.location - me.location) <= self.sense_range:
                out.append(other)
        return out

    def contention_factor(self, transfer_id: int) -> float:
        """Mean number of stations sharing the medium over the window.

        1.0 means the transfer had the channel to itself; 2.0 means on
        average one other transfer shared it (halving throughput).
        Computed by integrating the overlap counts over the window.
        """
        me = self._get(transfer_id)
        duration = me.end - me.start
        if duration <= 0:
            return 1.0
        events = [me.start, me.end]
        others = self.overlapping(transfer_id)
        for other in others:
            events.extend([max(other.start, me.start), min(other.end, me.end)])
        events = sorted(set(events))
        weighted = 0.0
        for left, right in zip(events, events[1:]):
            mid = 0.5 * (left + right)
            count = 1 + sum(1 for o in others if o.start <= mid < o.end)
            weighted += count * (right - left)
        return weighted / duration

    def stretched_duration(self, transfer_id: int) -> float:
        """The transfer's airtime under fair channel sharing."""
        me = self._get(transfer_id)
        return (me.end - me.start) * self.contention_factor(transfer_id)

    def busiest_moment(self) -> tuple[float, int]:
        """(time, concurrent transfer count) at the peak of contention."""
        if not self._transfers:
            return (0.0, 0)
        events = sorted({t.start for t in self._transfers} | {t.end for t in self._transfers})
        best_time, best_count = events[0], 0
        for left, right in zip(events, events[1:]):
            mid = 0.5 * (left + right)
            count = sum(1 for t in self._transfers if t.start <= mid < t.end)
            if count > best_count:
                best_time, best_count = mid, count
        return (best_time, best_count)

    def clear(self) -> None:
        """Forget every registered transfer."""
        self._transfers.clear()

    def _get(self, transfer_id: int) -> ActiveTransfer:
        for transfer in self._transfers:
            if transfer.transfer_id == transfer_id:
                return transfer
        raise KeyError(f"unknown transfer id {transfer_id}")
