"""V2V wireless communication substrate.

Implements the paper's communication model (§II-A, §IV-A): a
distance-indexed wireless-loss lookup table in the style of Anwar et
al.'s 802.11bd measurements, packet-level transfers (1500-byte packets,
31 Mbps, up to three retransmissions), a 500 m communication range, and
route-based estimation of contact durations and exchange-completion
probabilities (§III-A).
"""

from repro.net.wireless import (
    DEFAULT_LOSS_TABLE,
    WirelessModel,
)
from repro.net.channel import ChannelConfig, TransferResult, simulate_transfer
from repro.net.contact import (
    ContactEstimate,
    estimate_contact,
    priority_score,
)
from repro.net.mac import ContentionTracker
from repro.net.profiles import RADIO_PROFILES, RadioProfile, get_radio_profile
from repro.net.sweep import (
    ContactIndex,
    EncounterWindows,
    pairwise_encounters,
    sweep_encounters,
)

__all__ = [
    "ContentionTracker",
    "RadioProfile",
    "RADIO_PROFILES",
    "get_radio_profile",
    "DEFAULT_LOSS_TABLE",
    "WirelessModel",
    "ChannelConfig",
    "TransferResult",
    "simulate_transfer",
    "ContactEstimate",
    "estimate_contact",
    "priority_score",
    "ContactIndex",
    "EncounterWindows",
    "sweep_encounters",
    "pairwise_encounters",
]
