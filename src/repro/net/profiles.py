"""Radio profiles (§V, "Other radios suitable for vehicles").

The paper evaluates an 802.11bd-style V2V link but notes NR-V2X and
recent data-centric radios (high-rate, low-loss, multicast-capable) as
promising alternatives.  A :class:`RadioProfile` bundles a loss table,
bandwidth, and range so experiments can swap the physical layer with
one argument; the data-centric profile additionally advertises multicast
delivery, which the LbChat trainer can exploit to broadcast a coreset to
several neighbors at once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.channel import ChannelConfig
from repro.net.wireless import DEFAULT_LOSS_TABLE, WirelessModel

__all__ = ["RadioProfile", "RADIO_PROFILES", "get_radio_profile"]


@dataclass(frozen=True)
class RadioProfile:
    """A named physical-layer configuration."""

    name: str
    bandwidth_bps: float
    max_range: float
    loss_table: tuple[tuple[float, float], ...]
    supports_multicast: bool = False

    def wireless(self, enabled: bool = True) -> WirelessModel:
        """Build this profile's loss model (optionally disabled)."""
        return WirelessModel(
            table=self.loss_table, max_range=self.max_range, enabled=enabled
        )

    def channel(self, **overrides) -> ChannelConfig:
        """Build a channel config at this profile's bandwidth."""
        return ChannelConfig(bandwidth_bps=self.bandwidth_bps, **overrides)


#: 802.11bd-style baseline — the paper's evaluation setting (§IV-A).
IEEE_80211BD = RadioProfile(
    name="802.11bd",
    bandwidth_bps=31e6,
    max_range=500.0,
    loss_table=DEFAULT_LOSS_TABLE,
)

#: NR-V2X (3GPP rel-16-ish): more bandwidth, better coding at range.
NR_V2X = RadioProfile(
    name="nr-v2x",
    bandwidth_bps=50e6,
    max_range=600.0,
    loss_table=(
        (50.0, 0.005),
        (100.0, 0.015),
        (200.0, 0.04),
        (300.0, 0.09),
        (400.0, 0.18),
        (500.0, 0.33),
        (600.0, 0.55),
    ),
)

#: Data-centric pub/sub radio (Elbadry et al.): robust multicast.
DATA_CENTRIC = RadioProfile(
    name="data-centric",
    bandwidth_bps=40e6,
    max_range=450.0,
    loss_table=(
        (100.0, 0.01),
        (200.0, 0.03),
        (300.0, 0.07),
        (400.0, 0.15),
        (450.0, 0.25),
    ),
    supports_multicast=True,
)

RADIO_PROFILES = {
    profile.name: profile for profile in (IEEE_80211BD, NR_V2X, DATA_CENTRIC)
}


def get_radio_profile(name: str) -> RadioProfile:
    """Look up a radio profile by name."""
    try:
        return RADIO_PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown radio profile {name!r}; choose from {sorted(RADIO_PROFILES)}"
        ) from None
