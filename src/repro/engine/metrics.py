"""Metric recorders shared by every training method.

Recorders are deliberately dumb containers: methods under test call
``record``/``observe`` with virtual timestamps from the simulator, and
the experiment harness post-processes them into the paper's figures and
tables.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

__all__ = ["TimeSeriesRecorder", "ReceiveRateRecorder", "CounterSet"]


class TimeSeriesRecorder:
    """Per-key time series of scalar observations.

    Used for the training-loss-vs-time curves of Fig. 2 and Fig. 3.
    Each key is typically a vehicle id; :meth:`mean_curve` resamples every
    series onto a common grid and averages across keys, which is how the
    paper reports "the" training loss of a fleet.
    """

    def __init__(self):
        self._times: dict[str, list[float]] = defaultdict(list)
        self._values: dict[str, list[float]] = defaultdict(list)

    def record(self, key: str, time: float, value: float) -> None:
        """Append an observation for ``key`` at monotonically rising time."""
        series_t = self._times[key]
        if series_t and time < series_t[-1]:
            raise ValueError(f"non-monotonic time for {key!r}: {time} < {series_t[-1]}")
        series_t.append(time)
        self._values[key].append(float(value))

    def keys(self) -> list[str]:
        """All recorded series keys, sorted."""
        return sorted(self._times)

    def series(self, key: str) -> tuple[np.ndarray, np.ndarray]:
        """Raw (times, values) arrays for one key."""
        return np.asarray(self._times[key]), np.asarray(self._values[key])

    def value_at(self, key: str, time: float) -> float:
        """Last observation at or before ``time`` (step interpolation)."""
        times = self._times[key]
        idx = bisect_right(times, time) - 1
        if idx < 0:
            raise ValueError(f"no observation for {key!r} at or before t={time}")
        return self._values[key][idx]

    def mean_curve(self, grid: np.ndarray) -> np.ndarray:
        """Average the step-interpolated series of all keys onto ``grid``.

        Grid points earlier than a series' first observation use that
        series' first value, so early grid points are still averages over
        the full fleet.
        """
        if not self._times:
            raise ValueError("no series recorded")
        grid = np.asarray(grid, dtype=float)
        out = np.zeros_like(grid)
        for key in self._times:
            times = np.asarray(self._times[key])
            values = np.asarray(self._values[key])
            # searchsorted(side="right") - 1 is exactly bisect_right - 1:
            # the last observation at or before each grid point; clamping
            # to 0 extends a series' first value to earlier grid points.
            idx = np.searchsorted(times, grid, side="right") - 1
            out += values[np.maximum(idx, 0)]
        return out / len(self._times)

    def final_mean(self) -> float:
        """Mean of each series' last observation."""
        if not self._values:
            raise ValueError("no series recorded")
        return float(np.mean([v[-1] for v in self._values.values()]))

    # -- checkpointing -------------------------------------------------------

    def snapshot(self) -> dict:
        """All series as arrays, keyed by series key (checkpoint state)."""
        return {
            key: {
                "times": np.asarray(self._times[key], dtype=np.float64),
                "values": np.asarray(self._values[key], dtype=np.float64),
            }
            # Insertion order, not sorted: restore must reproduce the
            # original dict order so archived output is byte-identical.
            for key in self._times
        }

    def restore(self, state: dict) -> None:
        """Replace all series with a :meth:`snapshot`'s contents."""
        self._times = defaultdict(list)
        self._values = defaultdict(list)
        for key, series in state.items():
            self._times[key] = [float(t) for t in series["times"]]
            self._values[key] = [float(v) for v in series["values"]]


@dataclass
class ReceiveRateRecorder:
    """Tracks attempted vs completed model receptions (§IV-C).

    The paper reports the *successful model receiving rate*: the fraction
    of model transfers a vehicle starts receiving that complete within
    the contact window despite wireless loss.
    """

    attempted: int = 0
    completed: int = 0
    _per_key: dict[str, list[int]] = field(default_factory=lambda: defaultdict(lambda: [0, 0]))

    def observe(self, key: str, success: bool) -> None:
        """Record one attempted model reception and its outcome."""
        self.attempted += 1
        self._per_key[key][0] += 1
        if success:
            self.completed += 1
            self._per_key[key][1] += 1

    @property
    def rate(self) -> float:
        """Overall completion rate in [0, 1]; 0 when nothing attempted."""
        return self.completed / self.attempted if self.attempted else 0.0

    def rate_for(self, key: str) -> float:
        """Completion rate for one key; 0 when it attempted nothing."""
        attempted, completed = self._per_key[key]
        return completed / attempted if attempted else 0.0

    def snapshot(self) -> dict:
        """Plain-data contents (checkpoint state)."""
        return {
            "attempted": int(self.attempted),
            "completed": int(self.completed),
            "per_key": {k: list(v) for k, v in self._per_key.items()},
        }

    def restore(self, state: dict) -> None:
        """Replace contents with a :meth:`snapshot`'s."""
        self.attempted = int(state["attempted"])
        self.completed = int(state["completed"])
        self._per_key = defaultdict(lambda: [0, 0])
        for key, (attempted, completed) in state["per_key"].items():
            self._per_key[key] = [int(attempted), int(completed)]


class CounterSet:
    """Named monotonically increasing counters (bytes sent, chats, ...)."""

    def __init__(self):
        self._counts: dict[str, float] = defaultdict(float)

    def add(self, name: str, amount: float = 1.0) -> None:
        """Increment a counter by a non-negative amount."""
        if amount < 0:
            raise ValueError(f"counter increments must be non-negative: {amount}")
        self._counts[name] += amount

    def get(self, name: str) -> float:
        """Current value of a counter (0 if never incremented)."""
        return self._counts[name]

    def as_dict(self) -> dict[str, float]:
        """Snapshot of all counters as a plain dict."""
        return dict(self._counts)

    def snapshot(self) -> dict:
        """Plain-data contents (checkpoint state)."""
        return dict(self._counts)

    def restore(self, state: dict) -> None:
        """Replace contents with a :meth:`snapshot`'s."""
        self._counts = defaultdict(float)
        for name, value in state.items():
            self._counts[name] = float(value)
