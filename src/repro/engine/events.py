"""Core discrete-event machinery: simulator, events, timeouts, processes.

The design follows the classic event-wheel pattern:

* :class:`Simulator` keeps a heap of ``(time, sequence, callback)``
  entries and advances virtual time by popping the earliest entry.
* :class:`Event` is a one-shot synchronization point.  Processes waiting
  on an event are resumed when it succeeds (or receive the failure
  exception).
* A *process* is a generator wrapped by :meth:`Simulator.process`.  It
  yields events (or :class:`Timeout`) to suspend; the value sent back on
  resumption is the event's payload.

The engine is intentionally single-threaded and deterministic: ties in
time are broken by insertion order, so a given seed always produces the
same interleaving.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable, Generator
from typing import Any

__all__ = ["Event", "Timeout", "Interrupt", "Process", "Simulator"]


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` attribute carries the value passed to
    :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event starts *pending*; calling :meth:`succeed` (or :meth:`fail`)
    triggers it exactly once and resumes every waiter.  Waiting on an
    already-triggered event resumes the waiter immediately (on the next
    simulator step), which makes "wait for completion" idioms safe
    against races.
    """

    PENDING = "pending"
    SUCCEEDED = "succeeded"
    FAILED = "failed"

    def __init__(self, sim: "Simulator"):
        self._sim = sim
        self._state = Event.PENDING
        self._value: Any = None
        self._callbacks: list[Callable[[Event], None]] = []

    @property
    def triggered(self) -> bool:
        """Whether the event has fired (success or failure)."""
        return self._state != Event.PENDING

    @property
    def ok(self) -> bool:
        """Whether the event fired successfully."""
        return self._state == Event.SUCCEEDED

    @property
    def value(self) -> Any:
        """The payload (or exception) the event fired with."""
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with an optional payload."""
        if self.triggered:
            raise RuntimeError("event already triggered")
        self._state = Event.SUCCEEDED
        self._value = value
        self._sim._schedule_now(self._dispatch)
        return self

    def fail(self, exc: BaseException) -> "Event":
        """Trigger the event as failed; waiters receive ``exc``."""
        if self.triggered:
            raise RuntimeError("event already triggered")
        self._state = Event.FAILED
        self._value = exc
        self._sim._schedule_now(self._dispatch)
        return self

    def add_callback(self, cb: Callable[["Event"], None]) -> None:
        """Run ``cb(event)`` when the event triggers (immediately if it already has)."""
        if self.triggered:
            # Already dispatched (or dispatching): run on next step.
            self._sim._schedule_now(lambda: cb(self))
        else:
            self._callbacks.append(cb)

    def _dispatch(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for cb in callbacks:
            cb(self)


class Timeout(Event):
    """An event that triggers automatically after ``delay`` time units."""

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim)
        self._delay = delay
        sim._schedule_at(sim.now + delay, lambda: self._fire(value))

    def _fire(self, value: Any) -> None:
        if not self.triggered:  # may have been cancelled via interrupt
            self.succeed(value)


class Process(Event):
    """A running generator; itself an event that triggers on return.

    The generator yields :class:`Event` instances.  When a yielded event
    triggers, the process resumes with the event's value (or the failure
    exception is thrown into it).  When the generator returns, the
    process event succeeds with the return value.
    """

    def __init__(self, sim: "Simulator", gen: Generator[Event, Any, Any]):
        super().__init__(sim)
        self._gen = gen
        self._waiting_on: Event | None = None
        sim._schedule_now(lambda: self._resume(None, None))

    @property
    def is_alive(self) -> bool:
        """Whether the process generator is still running."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its next step."""
        if self.triggered:
            return
        self._waiting_on = None  # stop caring about the pending event
        self._sim._schedule_now(lambda: self._resume(None, Interrupt(cause)))

    def _resume(self, value: Any, exc: BaseException | None) -> None:
        if self.triggered:
            return
        try:
            if exc is not None:
                target = self._gen.throw(exc)
            else:
                target = self._gen.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            # Process chose not to handle its own interruption: treat as
            # a clean exit so teardown interrupts are not fatal.
            self.succeed(None)
            return
        if not isinstance(target, Event):
            raise TypeError(f"process yielded non-event: {target!r}")
        self._waiting_on = target
        target.add_callback(self._on_event)

    def _on_event(self, event: Event) -> None:
        if self._waiting_on is not event:
            return  # stale wakeup after an interrupt
        self._waiting_on = None
        if event.ok:
            self._resume(event.value, None)
        else:
            self._resume(None, event.value)


class Simulator:
    """Deterministic discrete-event simulator with a virtual clock.

    Example
    -------
    >>> sim = Simulator()
    >>> log = []
    >>> def proc():
    ...     yield sim.timeout(5.0)
    ...     log.append(sim.now)
    >>> _ = sim.process(proc())
    >>> sim.run()
    >>> log
    [5.0]
    """

    def __init__(self):
        self._now = 0.0
        self._heap: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    # -- scheduling primitives -------------------------------------------

    def _schedule_at(self, when: float, cb: Callable[[], None]) -> None:
        if when < self._now:
            raise ValueError(f"cannot schedule in the past: {when} < {self._now}")
        heapq.heappush(self._heap, (when, next(self._counter), cb))

    def _schedule_now(self, cb: Callable[[], None]) -> None:
        self._schedule_at(self._now, cb)

    # -- public factory methods ------------------------------------------

    def event(self) -> Event:
        """Create a fresh pending event on this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def wait_until(self, when: float, value: Any = None) -> Event:
        """Create an event firing at *absolute* virtual time ``when``.

        Semantically ``timeout(when - now)``, but the fire time is the
        exact float given — no ``now + (when - now)`` round trip — so a
        restored process re-arms its pending timer at the identical
        instant the original run scheduled it.
        """
        event = Event(self)
        self._schedule_at(when, lambda: None if event.triggered else event.succeed(value))
        return event

    def process(self, gen: Generator[Event, Any, Any]) -> Process:
        """Start a generator as a concurrent process."""
        return Process(self, gen)

    def call_at(self, when: float, cb: Callable[[], None]) -> None:
        """Schedule a plain callback at absolute virtual time ``when``."""
        self._schedule_at(when, cb)

    def all_of(self, events: list[Event]) -> Event:
        """An event that succeeds once every event in ``events`` has."""
        done = self.event()
        remaining = len(events)
        if remaining == 0:
            return done.succeed([])
        values: list[Any] = [None] * remaining

        def make_cb(i: int):
            def cb(ev: Event) -> None:
                nonlocal remaining
                if done.triggered:
                    return
                if not ev.ok:
                    done.fail(ev.value)
                    return
                values[i] = ev.value
                remaining -= 1
                if remaining == 0:
                    done.succeed(values)

            return cb

        for i, ev in enumerate(events):
            ev.add_callback(make_cb(i))
        return done

    def any_of(self, events: list[Event]) -> Event:
        """An event that succeeds when the first of ``events`` does."""
        done = self.event()

        def cb(ev: Event) -> None:
            if done.triggered:
                return
            if ev.ok:
                done.succeed(ev.value)
            else:
                done.fail(ev.value)

        for ev in events:
            ev.add_callback(cb)
        if not events:
            done.succeed(None)
        return done

    def advance_to(self, when: float) -> None:
        """Jump the idle clock forward to ``when`` (checkpoint restore).

        Only legal while no events are pending: restoring a snapshot
        sets the clock first, then re-arms processes at absolute times.
        """
        if self._heap:
            raise RuntimeError("cannot advance a simulator with pending events")
        if when < self._now:
            raise ValueError(f"cannot advance backwards: {when} < {self._now}")
        self._now = float(when)

    # -- execution ---------------------------------------------------------

    def step(self) -> None:
        """Execute the earliest scheduled callback, advancing the clock."""
        when, _, cb = heapq.heappop(self._heap)
        self._now = when
        cb()

    def run(self, until: float | None = None) -> None:
        """Run until the queue drains or the clock passes ``until``.

        When ``until`` is given, the clock is left exactly at ``until``
        even if the next event lies beyond it, matching simpy semantics.
        """
        while self._heap:
            when = self._heap[0][0]
            if until is not None and when > until:
                self._now = until
                return
            self.step()
        if until is not None and until > self._now:
            self._now = until
