"""Capacity-limited resources for the event engine.

A :class:`Resource` is the classic DES primitive: ``capacity`` slots,
FIFO queueing, request/release from processes.  The trainers model a
vehicle's radio with simple ``busy_until`` timestamps (cheaper when the
holder is known in advance), but protocol experiments — e.g. modelling
an RSU that serves one vehicle at a time — want real queueing, which
this provides.

Usage inside a process::

    radio = Resource(sim, capacity=1)

    def vehicle():
        grant = yield from radio.request()
        try:
            yield sim.timeout(transfer_time)
        finally:
            radio.release(grant)
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from itertools import count

from repro.engine.events import Event, Simulator

__all__ = ["Resource", "Grant"]


@dataclass(frozen=True)
class Grant:
    """Proof of an acquired slot; pass back to :meth:`Resource.release`."""

    grant_id: int


class Resource:
    """FIFO resource with ``capacity`` concurrent holders."""

    def __init__(self, sim: Simulator, capacity: int = 1):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1: {capacity}")
        self._sim = sim
        self.capacity = capacity
        self._ids = count()
        self._holders: set[int] = set()
        self._waiters: deque[tuple[int, Event]] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently held slots."""
        return len(self._holders)

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    @property
    def available(self) -> int:
        """Free slots right now."""
        return self.capacity - len(self._holders)

    def request(self):
        """Acquire a slot; yields from a process, returns a :class:`Grant`.

        Grants are issued in request order (FIFO).
        """
        grant_id = next(self._ids)
        event = self._sim.event()
        if self.available > 0 and not self._waiters:
            self._holders.add(grant_id)
            event.succeed(Grant(grant_id))
        else:
            self._waiters.append((grant_id, event))
        grant = yield event
        return grant

    def release(self, grant: Grant) -> None:
        """Return a slot; wakes the next FIFO waiter (if any)."""
        if grant.grant_id not in self._holders:
            raise ValueError(f"grant {grant.grant_id} does not hold this resource")
        self._holders.remove(grant.grant_id)
        if self._waiters and self.available > 0:
            next_id, event = self._waiters.popleft()
            self._holders.add(next_id)
            event.succeed(Grant(next_id))
