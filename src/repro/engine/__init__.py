"""Discrete-event simulation engine.

A minimal, dependency-free engine in the style of simpy: a
:class:`~repro.engine.events.Simulator` owns a virtual clock and an event
queue; *processes* are Python generators that yield
:class:`~repro.engine.events.Timeout` or :class:`~repro.engine.events.Event`
objects to suspend themselves.  Every asynchronous component of the
reproduction (vehicle learner loops, pairwise chats, server rounds) runs
as a process on one shared simulator so that wall-clock interleavings are
deterministic and reproducible.
"""

from repro.engine.events import Event, Interrupt, Simulator, Timeout
from repro.engine.metrics import (
    CounterSet,
    ReceiveRateRecorder,
    TimeSeriesRecorder,
)
from repro.engine.random import spawn_rng, spawn_seed
from repro.engine.resources import Grant, Resource

__all__ = [
    "Resource",
    "Grant",
    "Event",
    "Interrupt",
    "Simulator",
    "Timeout",
    "CounterSet",
    "ReceiveRateRecorder",
    "TimeSeriesRecorder",
    "spawn_rng",
    "spawn_seed",
]
