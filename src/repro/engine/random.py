"""Deterministic RNG spawning.

Every stochastic component takes a :class:`numpy.random.Generator`.  To
keep experiments reproducible regardless of how many components exist or
in what order they are built, child generators are derived from a root
seed plus a *name*, never by sharing one generator object.

This is also what makes runs *parallelizable*: a job's entire stream
tree is a pure function of its own root seed, so seeds are spawned
per-job (from the job description) rather than per-loop-iteration, and
fanning jobs out to worker processes cannot change any result.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["spawn_rng", "spawn_seed"]


def spawn_seed(root_seed: int, name: str) -> int:
    """Derive a child integer seed deterministically from seed and name.

    The same ``(root_seed, name)`` pair always yields the same value,
    and distinct names yield statistically independent seeds (the name
    is folded in through SHA-256).  Use this to mint independent
    per-job seeds for fan-out without any sequential RNG state.
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


def spawn_rng(root_seed: int, name: str) -> np.random.Generator:
    """Create a generator deterministically derived from seed and name.

    The same ``(root_seed, name)`` pair always yields an identical
    stream (see :func:`spawn_seed`).
    """
    return np.random.default_rng(spawn_seed(root_seed, name))
