"""Deterministic RNG spawning.

Every stochastic component takes a :class:`numpy.random.Generator`.  To
keep experiments reproducible regardless of how many components exist or
in what order they are built, child generators are derived from a root
seed plus a *name*, never by sharing one generator object.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["spawn_rng"]


def spawn_rng(root_seed: int, name: str) -> np.random.Generator:
    """Create a generator deterministically derived from seed and name.

    The same ``(root_seed, name)`` pair always yields an identical
    stream, and distinct names yield statistically independent streams
    (the name is folded in through SHA-256).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    child_seed = int.from_bytes(digest[:8], "little")
    return np.random.default_rng(child_seed)
