"""Checkpoint format versioning, integrity errors, and spec payloads.

A checkpoint on disk is two files — ``ckpt-NNNNNN.npz`` (the array
table) plus ``ckpt-NNNNNN.json`` (the meta tree, format version, and
the npz's SHA-256 content fingerprint).  The JSON sidecar is written
last and is the commit point: a checkpoint without a readable sidecar,
or whose npz hash does not match, does not exist as far as
:meth:`~repro.checkpoint.store.RunStore.latest_checkpoint` is concerned.

Run directories are keyed by a fingerprint of the :class:`RunSpec`:
everything that influences the run's results, including
``checkpoint_every`` (barrier reseeding makes the cadence part of the
run's identity) but excluding ``checkpoint_dir``/``use_cache`` (where
state lives and how contexts are resolved cannot change results).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path
from typing import Any, Mapping

__all__ = [
    "FORMAT_VERSION",
    "CheckpointError",
    "CheckpointCorruptError",
    "CheckpointVersionError",
    "spec_payload",
    "spec_fingerprint",
    "spec_from_payload",
    "file_sha256",
]

#: Bump when the on-disk checkpoint representation changes shape.
FORMAT_VERSION = 1


class CheckpointError(RuntimeError):
    """Base error for checkpoint store and restore failures."""


class CheckpointCorruptError(CheckpointError):
    """A checkpoint's content fingerprint does not match its data."""


class CheckpointVersionError(CheckpointError):
    """A checkpoint was written by an incompatible format version."""


def file_sha256(path: str | Path) -> str:
    """Hex SHA-256 of a file's bytes (streamed)."""
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def spec_payload(spec) -> dict:
    """A RunSpec as a JSON round-trippable dict.

    Raises :class:`CheckpointError` when the spec carries overrides that
    cannot be JSON-serialized — checkpointed runs must be rebuildable
    from the stored payload alone (``repro resume <run-dir>``).
    """
    payload = {
        "method": spec.method,
        "scale": asdict(spec.scale),
        "wireless": bool(spec.wireless),
        "seed": int(spec.seed),
        "coreset_size": spec.coreset_size,
        "coreset_strategy": spec.coreset_strategy,
        "overrides": dict(spec.overrides),
        "use_cache": bool(spec.use_cache),
        "checkpoint_every": spec.checkpoint_every,
    }
    try:
        return json.loads(json.dumps(payload))
    except (TypeError, ValueError) as exc:
        raise CheckpointError(
            "checkpointed runs need JSON-serializable spec overrides: "
            f"{exc}"
        ) from exc


def spec_fingerprint(spec) -> str:
    """Deterministic hash of everything that influences the run's results."""
    payload = spec_payload(spec)
    del payload["use_cache"]  # context resolution strategy, not identity
    # step_workers is an execution strategy too (results are bit-identical
    # for every worker count), so a checkpoint written at one worker count
    # must resume under any other — it cannot enter the fingerprint.
    overrides = dict(payload.get("overrides") or {})
    overrides.pop("step_workers", None)
    payload["overrides"] = overrides
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def spec_from_payload(payload: Mapping[str, Any], checkpoint_dir: str | None = None):
    """Rebuild a RunSpec from :func:`spec_payload` output."""
    from repro.coreset import PenaltyConfig
    from repro.experiments.configs import ExperimentScale
    from repro.experiments.runner import RunSpec
    from repro.sim.bev import BevSpec
    from repro.sim.world import WorldConfig

    scale_kwargs = dict(payload["scale"])
    scale_kwargs["world"] = WorldConfig(**scale_kwargs["world"])
    scale_kwargs["bev"] = BevSpec(**scale_kwargs["bev"])
    scale_kwargs["penalty"] = PenaltyConfig(**scale_kwargs["penalty"])
    return RunSpec(
        method=payload["method"],
        scale=ExperimentScale(**scale_kwargs),
        wireless=payload["wireless"],
        seed=payload["seed"],
        coreset_size=payload["coreset_size"],
        coreset_strategy=payload["coreset_strategy"],
        overrides=payload["overrides"],
        use_cache=payload.get("use_cache", False),
        checkpoint_every=payload["checkpoint_every"],
        checkpoint_dir=checkpoint_dir,
    )
