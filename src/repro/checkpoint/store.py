"""On-disk run store: atomic, versioned, content-fingerprinted.

Layout, one directory per run under the store root::

    <root>/<method-slug>-seed<seed>-<spec_fingerprint>/
        run.json          # the spec payload (enables `repro resume`)
        ckpt-000003.npz   # array table (one member per state array)
        ckpt-000003.json  # meta tree + format version + npz SHA-256
        events.jsonl      # advisory log: saved / resumed / corrupt
        done.json         # present once the run finished

Every write lands in a temp file first and is moved into place with
``os.replace``, so a crash mid-write never leaves a half-written file
under a checkpoint's name.  The ``.json`` sidecar is written after its
``.npz`` and is the commit point; loading verifies the recorded SHA-256
against the npz bytes and raises :class:`CheckpointCorruptError` on any
mismatch, which :meth:`RunStore.latest_checkpoint` treats as "fall back
to the next older checkpoint".
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import numpy as np

from repro.checkpoint.format import (
    FORMAT_VERSION,
    CheckpointCorruptError,
    CheckpointError,
    CheckpointVersionError,
    file_sha256,
    spec_fingerprint,
    spec_payload,
)
from repro.checkpoint.state import flatten_state, unflatten_state

__all__ = ["DEFAULT_CHECKPOINT_ROOT", "RunStore"]

DEFAULT_CHECKPOINT_ROOT = Path(".repro_cache") / "checkpoints"


def _slug(text: str) -> str:
    return "".join(c if c.isalnum() else "-" for c in text.lower()).strip("-")


def _atomic_write_bytes(path: Path, data: bytes) -> None:
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_bytes(data)
    os.replace(tmp, path)


class RunStore:
    """Checkpoint persistence for runs, keyed by spec fingerprint."""

    def __init__(self, root: str | Path = DEFAULT_CHECKPOINT_ROOT):
        self.root = Path(root)

    # -- paths ---------------------------------------------------------------

    def run_dir(self, spec) -> Path:
        """The directory holding one spec's checkpoints."""
        return self.root / f"{_slug(spec.method)}-seed{spec.seed}-{spec_fingerprint(spec)}"

    def _ckpt_json(self, spec, barrier: int) -> Path:
        return self.run_dir(spec) / f"ckpt-{barrier:06d}.json"

    # -- run lifecycle -------------------------------------------------------

    def ensure_run(self, spec) -> Path:
        """Create the run directory and its ``run.json`` (idempotent)."""
        run_dir = self.run_dir(spec)
        run_dir.mkdir(parents=True, exist_ok=True)
        run_json = run_dir / "run.json"
        if not run_json.exists():
            payload = {
                "format": FORMAT_VERSION,
                "fingerprint": spec_fingerprint(spec),
                "spec": spec_payload(spec),
            }
            _atomic_write_bytes(run_json, json.dumps(payload, indent=2).encode())
        return run_dir

    def mark_done(self, spec, virtual_time: float) -> None:
        """Record that the run completed (resume becomes a no-op rerun)."""
        payload = {"completed": True, "virtual_time": float(virtual_time)}
        _atomic_write_bytes(
            self.run_dir(spec) / "done.json", json.dumps(payload).encode()
        )

    def log_event(self, spec, event: str, **fields) -> None:
        """Append one advisory line to the run's events log.

        The log records store-side history (checkpoints saved, resumes,
        corrupt files skipped) *outside* the run's measurable state, so
        resumed and uninterrupted runs stay bit-identical while tests
        and operators can still see that a resume happened.
        """
        line = json.dumps({"event": event, **fields}, sort_keys=True)
        with open(self.run_dir(spec) / "events.jsonl", "a") as fh:
            fh.write(line + "\n")

    def events(self, spec) -> list[dict]:
        """All logged events for a spec (empty when none)."""
        path = self.run_dir(spec) / "events.jsonl"
        if not path.exists():
            return []
        return [json.loads(line) for line in path.read_text().splitlines() if line]

    # -- checkpoints ---------------------------------------------------------

    def save_checkpoint(self, spec, state: dict, keep: int | None = None) -> Path:
        """Persist one barrier snapshot atomically; returns the sidecar path.

        ``state`` must carry ``barrier`` and ``time`` entries (see
        ``TrainerBase.checkpoint_barrier``).  With ``keep``, older
        checkpoints beyond the ``keep`` most recent are pruned.
        """
        barrier = int(state["barrier"])
        run_dir = self.ensure_run(spec)
        meta, arrays = flatten_state(state)
        npz_path = run_dir / f"ckpt-{barrier:06d}.npz"
        tmp_npz = npz_path.with_name(npz_path.name + ".tmp")
        with open(tmp_npz, "wb") as fh:
            np.savez_compressed(fh, **arrays)
        os.replace(tmp_npz, npz_path)
        payload = {
            "format": FORMAT_VERSION,
            "barrier": barrier,
            "time": float(state["time"]),
            "fingerprint": spec_fingerprint(spec),
            "npz_sha256": file_sha256(npz_path),
            "state": meta,
        }
        json_path = self._ckpt_json(spec, barrier)
        _atomic_write_bytes(json_path, json.dumps(payload).encode())
        self.log_event(spec, "saved", barrier=barrier, time=float(state["time"]))
        if keep is not None:
            self.prune(spec, keep)
        return json_path

    def load_checkpoint(self, spec, barrier: int) -> dict:
        """Load and verify one barrier's snapshot; returns the state tree."""
        json_path = self._ckpt_json(spec, barrier)
        if not json_path.exists():
            raise CheckpointError(f"no checkpoint at barrier {barrier}: {json_path}")
        try:
            payload = json.loads(json_path.read_text())
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise CheckpointCorruptError(f"unreadable sidecar {json_path}") from exc
        version = payload.get("format")
        if version != FORMAT_VERSION:
            raise CheckpointVersionError(
                f"checkpoint format {version} (supported: {FORMAT_VERSION})"
            )
        npz_path = json_path.with_suffix(".npz")
        if not npz_path.exists():
            raise CheckpointCorruptError(f"missing array table {npz_path}")
        digest = file_sha256(npz_path)
        if digest != payload["npz_sha256"]:
            raise CheckpointCorruptError(
                f"content fingerprint mismatch for {npz_path}"
            )
        with np.load(npz_path) as data:
            arrays = {name: data[name] for name in data.files}
        state = unflatten_state(payload["state"], arrays)
        state["barrier"] = payload["barrier"]
        return state

    def barriers(self, spec) -> list[int]:
        """Barrier indices with a committed sidecar, ascending."""
        run_dir = self.run_dir(spec)
        if not run_dir.is_dir():
            return []
        out = []
        for path in run_dir.glob("ckpt-*.json"):
            try:
                out.append(int(path.stem.split("-")[1]))
            except (IndexError, ValueError):
                continue
        return sorted(out)

    def latest_checkpoint(self, spec) -> dict | None:
        """The newest checkpoint that verifies, or ``None``.

        Corrupt or version-incompatible checkpoints are skipped (and
        logged), falling back to the next older one — a torn write of
        the newest checkpoint costs one barrier of progress, never the
        whole run.
        """
        for barrier in reversed(self.barriers(spec)):
            try:
                return self.load_checkpoint(spec, barrier)
            except CheckpointError as exc:
                self.log_event(spec, "corrupt", barrier=barrier, error=str(exc))
        return None

    def prune(self, spec, keep: int) -> None:
        """Delete all but the ``keep`` newest checkpoints."""
        if keep < 1:
            raise ValueError(f"keep must be >= 1: {keep}")
        for barrier in self.barriers(spec)[:-keep]:
            self._ckpt_json(spec, barrier).unlink(missing_ok=True)
            self._ckpt_json(spec, barrier).with_suffix(".npz").unlink(missing_ok=True)

    def drop_after(self, spec, barrier: int) -> None:
        """Delete checkpoints newer than ``barrier`` plus the done marker.

        Rewinds a run directory to how it would look had the process
        died right after saving ``barrier`` — the store-side face of a
        crash, used by tests and the smoke gate.
        """
        for existing in self.barriers(spec):
            if existing > barrier:
                self._ckpt_json(spec, existing).unlink(missing_ok=True)
                self._ckpt_json(spec, existing).with_suffix(".npz").unlink(missing_ok=True)
        (self.run_dir(spec) / "done.json").unlink(missing_ok=True)
