"""Restore-and-continue entry points.

:func:`run_with_checkpoints` is the checkpoint-aware twin of
``run_method``: it builds the trainer, restores the newest verified
checkpoint when one exists, arms the barrier schedule, and runs to
completion.  ``run_method`` delegates here whenever the spec carries a
``checkpoint_every``, which means both the CLI (``repro run
--checkpoint-every``) and the parallel pool's crash-retry path resume
automatically — a retried job picks up from the latest barrier instead
of recomputing from virtual time zero.

:func:`resume_run_dir` is the ``repro resume <run-dir>`` verb: it
rebuilds the spec from the run directory's ``run.json`` and continues.

This module imports the experiment stack, so ``repro.checkpoint``
loads it lazily (see the package ``__getattr__``).
"""

from __future__ import annotations

from dataclasses import replace
from pathlib import Path

from repro.checkpoint.format import CheckpointError, spec_from_payload
from repro.checkpoint.policy import CheckpointPolicy, Checkpointer
from repro.checkpoint.store import DEFAULT_CHECKPOINT_ROOT, RunStore

__all__ = ["run_with_checkpoints", "resume_run_dir", "load_spec"]


def run_with_checkpoints(context, spec, store: RunStore | None = None):
    """Run ``spec`` with barrier checkpointing, resuming when possible.

    Returns the same ``RunResult`` the uninterrupted ``run_method`` call
    would have produced, bit-identically — whether the run started
    fresh, resumed once, or resumed many times.
    """
    from repro.experiments.runner import RunResult, prepare_trainer

    if spec.checkpoint_every is None:
        raise CheckpointError(f"spec {spec.label!r} has no checkpoint_every")
    if store is None:
        store = RunStore(spec.checkpoint_dir or DEFAULT_CHECKPOINT_ROOT)
    store.ensure_run(spec)
    policy = CheckpointPolicy(every=float(spec.checkpoint_every))
    nodes, trainer = prepare_trainer(context, spec)
    state = store.latest_checkpoint(spec)
    if state is not None:
        trainer.restore(state)
        store.log_event(
            spec, "resumed", barrier=int(state["barrier"]), time=trainer.sim.now
        )
    trainer.run(checkpointer=Checkpointer(spec, store, policy))
    store.mark_done(spec, trainer.sim.now)
    return RunResult.from_trainer(spec, trainer, nodes)


def load_spec(run_dir: str | Path):
    """Rebuild the RunSpec recorded in a run directory's ``run.json``."""
    import json

    run_json = Path(run_dir) / "run.json"
    if not run_json.exists():
        raise CheckpointError(f"not a checkpoint run directory: {run_dir}")
    payload = json.loads(run_json.read_text())
    return spec_from_payload(
        payload["spec"], checkpoint_dir=str(Path(run_dir).resolve().parent)
    )


def resume_run_dir(
    run_dir: str | Path,
    step_workers: int | None = None,
    overlap_chat: bool | None = None,
):
    """Continue the run stored in ``run_dir`` (the ``repro resume`` verb).

    ``step_workers`` overrides the recorded worker count for the
    continuation — results are bit-identical for every value (and the
    run-dir fingerprint excludes it), so a run checkpointed serially can
    finish sharded and vice versa.  ``overlap_chat`` likewise overrides
    the recorded overlap setting (None keeps it); note a checkpoint
    holding in-flight transfers refuses to restore into a trainer built
    with overlap off.
    """
    from repro.parallel.worker import resolve_context

    recorded = load_spec(run_dir)
    spec = recorded
    if step_workers is not None:
        overrides = dict(spec.overrides)
        overrides["step_workers"] = int(step_workers)
        spec = replace(spec, overrides=overrides)
    if overlap_chat is not None and bool(overlap_chat) != bool(
        spec.overrides.get("overlap_chat", False)
    ):
        overrides = dict(spec.overrides)
        overrides["overlap_chat"] = bool(overlap_chat)
        spec = replace(spec, overrides=overrides)
        # The overlap flag changes results, so the continuation is a new
        # run lineage (its own fingerprint/run dir) seeded from the
        # recorded lineage's newest checkpoint.
        return _continue_as(recorded, spec, Path(run_dir).resolve().parent)
    context = resolve_context(spec)
    return run_with_checkpoints(
        context, spec, store=RunStore(Path(run_dir).resolve().parent)
    )


def _continue_as(recorded, spec, store_root: Path):
    """Continue ``recorded``'s newest checkpoint under ``spec``'s config.

    Used when a resume override (the overlap flag) changes the run's
    identity: the state restores fine across protocols — unless the
    checkpoint holds in-flight transfers and the new config has overlap
    off, which the trainer rejects with instructions.
    """
    from repro.experiments.runner import RunResult, prepare_trainer
    from repro.parallel.worker import resolve_context

    store = RunStore(store_root)
    state = store.latest_checkpoint(recorded)
    context = resolve_context(spec)
    if spec.checkpoint_every is None:
        nodes, trainer = prepare_trainer(context, spec)
        if state is not None:
            trainer.restore(state)
        trainer.run()
        return RunResult.from_trainer(spec, trainer, nodes)
    store.ensure_run(spec)
    policy = CheckpointPolicy(every=float(spec.checkpoint_every))
    nodes, trainer = prepare_trainer(context, spec)
    own_state = store.latest_checkpoint(spec)
    if own_state is not None:
        state = own_state  # the new lineage already progressed further
    if state is not None:
        trainer.restore(state)
        store.log_event(
            spec, "resumed", barrier=int(state["barrier"]), time=trainer.sim.now
        )
    trainer.run(checkpointer=Checkpointer(spec, store, policy))
    store.mark_done(spec, trainer.sim.now)
    return RunResult.from_trainer(spec, trainer, nodes)
