"""Checkpoint scheduling: every-N-virtual-seconds barriers as engine events.

The :class:`Checkpointer` turns a :class:`CheckpointPolicy` into
``Simulator.call_at`` callbacks, one per barrier.  Scheduling happens
*before* the trainer creates its processes, so at each barrier instant
the snapshot callback holds a lower sequence number than every timer
event and always dispatches first — state is captured before any
same-instant training work (invariant 1 in :mod:`repro.checkpoint`).

For crash-injection testing, two environment knobs mirror the parallel
pool's crash hooks: ``REPRO_CHECKPOINT_KILL_BARRIER`` hard-kills the
process (``os._exit(3)``) right after the named barrier's checkpoint is
committed, and ``REPRO_CHECKPOINT_KILL_FLAG`` optionally names a flag
file consumed atomically so only one process (one pool attempt) dies.
"""

from __future__ import annotations

import functools
import os
from dataclasses import dataclass

from repro.checkpoint.store import RunStore

__all__ = ["CheckpointPolicy", "Checkpointer", "KILL_BARRIER_ENV", "KILL_FLAG_ENV"]

KILL_BARRIER_ENV = "REPRO_CHECKPOINT_KILL_BARRIER"
KILL_FLAG_ENV = "REPRO_CHECKPOINT_KILL_FLAG"


@dataclass(frozen=True)
class CheckpointPolicy:
    """Checkpoint every ``every`` virtual seconds, keeping ``keep`` newest."""

    every: float
    keep: int = 3

    def __post_init__(self) -> None:
        if not self.every > 0:
            raise ValueError(f"checkpoint interval must be positive: {self.every}")
        if self.keep < 1:
            raise ValueError(f"keep must be >= 1: {self.keep}")

    def barriers(self, duration: float) -> list[tuple[int, float]]:
        """``(index, virtual_time)`` barriers strictly inside ``duration``.

        A barrier at exactly ``duration`` would snapshot a finished run,
        so the last barrier is the largest multiple of ``every`` that is
        strictly less than ``duration``.
        """
        out = []
        k = 1
        while k * self.every < duration:
            out.append((k, k * self.every))
            k += 1
        return out


class Checkpointer:
    """Saves a trainer's state at policy barriers during ``trainer.run()``."""

    def __init__(self, spec, store: RunStore, policy: CheckpointPolicy):
        self.spec = spec
        self.store = store
        self.policy = policy
        self.saved: list[int] = []

    def schedule(self, trainer) -> None:
        """Arm one ``call_at`` per remaining barrier.

        Must run before the trainer creates its processes (see module
        docstring).  Barriers at or before the current clock are skipped:
        on resume the restore barrier was already saved by the previous
        incarnation, and re-snapshotting it would double-reseed.
        """
        start = trainer.sim.now
        for index, when in self.policy.barriers(trainer.config.duration):
            if when <= start:
                continue
            trainer.sim.call_at(
                when, functools.partial(self._on_barrier, trainer, index)
            )

    def _on_barrier(self, trainer, index: int) -> None:
        state = trainer.checkpoint_barrier(index)
        self.store.save_checkpoint(self.spec, state, keep=self.policy.keep)
        self.saved.append(index)
        self._maybe_kill(index)

    def _maybe_kill(self, index: int) -> None:
        if os.environ.get(KILL_BARRIER_ENV) != str(index):
            return
        flag = os.environ.get(KILL_FLAG_ENV)
        if flag is not None:
            try:
                os.unlink(flag)  # one-shot: only the first taker dies
            except FileNotFoundError:
                return
        os._exit(3)
