"""Snapshot protocol and state-tree flattening.

A component participates in checkpointing by implementing the
:class:`Snapshottable` protocol: ``snapshot()`` returns a plain nested
dict of JSON scalars, strings, lists, and numpy arrays; ``restore``
takes that tree back and overwrites the component's state.  Snapshots
must be *pure reads* — taking one never changes behaviour.

The store serializes state trees with :func:`flatten_state`, which
splits a tree into (a) a JSON-able meta tree in which every array is
replaced by a ``{"__array__": path}`` marker, and (b) a flat
``path -> ndarray`` mapping destined for one ``.npz`` member per array.
:func:`unflatten_state` is the exact inverse.
"""

from __future__ import annotations

from typing import Any, Mapping, Protocol, runtime_checkable

import numpy as np

from repro.sim.dataset import DrivingDataset

__all__ = [
    "Snapshottable",
    "flatten_state",
    "unflatten_state",
    "dataset_state",
    "dataset_from_state",
]

#: Reserved meta-tree key marking a leaf that lives in the array table.
ARRAY_MARKER = "__array__"


@runtime_checkable
class Snapshottable(Protocol):
    """A component whose full state can round-trip through a checkpoint."""

    def snapshot(self) -> dict:
        """The component's state as a plain tree (dicts/lists/arrays)."""
        ...

    def restore(self, state: Mapping) -> None:
        """Overwrite the component's state with a snapshot's contents."""
        ...


# -- tree flattening ---------------------------------------------------------


def _flatten(value: Any, path: str, arrays: dict[str, np.ndarray]) -> Any:
    if isinstance(value, np.ndarray):
        # Detach views: with fleet-batched training, state trees can
        # contain zero-copy views into live parameter banks (or dataset
        # storage) that keep mutating after the snapshot — serializing
        # later must see the values as of snapshot time.
        arrays[path] = value.copy() if value.base is not None else value
        return {ARRAY_MARKER: path}
    if isinstance(value, Mapping):
        out = {}
        for key, child in value.items():
            if not isinstance(key, str):
                raise TypeError(f"non-string state key at {path!r}: {key!r}")
            if "/" in key or key == ARRAY_MARKER:
                raise TypeError(f"reserved character in state key at {path!r}: {key!r}")
            out[key] = _flatten(child, f"{path}/{key}", arrays)
        return out
    if isinstance(value, (list, tuple)):
        return [_flatten(child, f"{path}/{i}", arrays) for i, child in enumerate(value)]
    if isinstance(value, (np.integer, np.floating, np.bool_)):
        return value.item()
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise TypeError(f"unsupported state value at {path!r}: {type(value).__name__}")


def flatten_state(state: Mapping) -> tuple[dict, dict[str, np.ndarray]]:
    """Split a state tree into a JSON-able meta tree plus an array table.

    Arrays become ``{"__array__": "<path>"}`` markers in the meta tree,
    with the actual data keyed by the slash-joined path into ``arrays``.
    Numpy scalars are converted to Python scalars; anything that is not
    JSON-representable raises :class:`TypeError` with the failing path.
    """
    arrays: dict[str, np.ndarray] = {}
    meta = _flatten(dict(state), "", arrays)
    return meta, arrays


def _unflatten(meta: Any, arrays: Mapping[str, np.ndarray]) -> Any:
    if isinstance(meta, dict):
        if set(meta) == {ARRAY_MARKER}:
            return arrays[meta[ARRAY_MARKER]]
        return {key: _unflatten(child, arrays) for key, child in meta.items()}
    if isinstance(meta, list):
        return [_unflatten(child, arrays) for child in meta]
    return meta


def unflatten_state(meta: dict, arrays: Mapping[str, np.ndarray]) -> dict:
    """Rebuild a state tree from :func:`flatten_state`'s two halves."""
    return _unflatten(meta, arrays)


# -- dataset state -----------------------------------------------------------


def dataset_state(dataset: DrivingDataset) -> dict:
    """A :class:`DrivingDataset`'s contents as a checkpointable tree."""
    if len(dataset) == 0:
        return {"ids": []}
    bev, commands, targets, weights = dataset.arrays()
    return {
        "ids": dataset.ids,
        "bev": bev,
        "commands": commands,
        "targets": targets,
        "weights": weights,
    }


def dataset_from_state(state: Mapping) -> DrivingDataset:
    """Rebuild a dataset saved by :func:`dataset_state` (same row order)."""
    ids = list(state["ids"])
    if not ids:
        return DrivingDataset()
    return DrivingDataset.from_arrays(
        ids, state["bev"], state["commands"], state["targets"], state["weights"]
    )
