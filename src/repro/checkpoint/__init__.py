"""Snapshot/restore subsystem for long-horizon runs.

A *checkpoint* is a full snapshot of a live training run taken at a
virtual-time barrier: every vehicle node (model parameters, optimizer
moments, dataset, coreset, loss cache), every metric recorder, the
trainers' externalized timer state, and the active telemetry registry.
Restoring a checkpoint into a freshly built trainer and continuing
produces results **bit-identical** to the uninterrupted run.

The design rests on three invariants:

1. *Snapshots happen before any same-instant events.*  Barrier
   callbacks are scheduled before any process timer, so ties at the
   barrier instant always dispatch the snapshot first.
2. *No RNG generator state is serialized.*  At every barrier — in every
   checkpointed run, interrupted or not — all named streams are
   re-derived via ``spawn_rng(seed, f"{name}@ckpt{k}")``, so a resumed
   run re-creates the exact same streams from the spec alone.  (This
   makes ``checkpoint_every`` part of a run's identity: a checkpointed
   run differs from a non-checkpointed one.)
3. *Pending timers are re-armed from absolute times.*  Generator
   processes cannot be pickled; instead each trainer externalizes its
   loop state (next train/scan/record/round times) and re-creates its
   generators on resume, re-armed with
   :meth:`~repro.engine.events.Simulator.wait_until` in the original
   heap tie-break order.

Modules: :mod:`~repro.checkpoint.state` (snapshot protocol and state
tree flattening), :mod:`~repro.checkpoint.store` (atomic, versioned,
content-fingerprinted on-disk run store), :mod:`~repro.checkpoint.policy`
(barrier scheduling), :mod:`~repro.checkpoint.format` (format version,
errors, spec payloads), :mod:`~repro.checkpoint.resume`
(restore-and-continue entry points — imported lazily to avoid an import
cycle with the experiment stack).
"""

from repro.checkpoint.format import (
    FORMAT_VERSION,
    CheckpointCorruptError,
    CheckpointError,
    CheckpointVersionError,
    spec_fingerprint,
    spec_from_payload,
    spec_payload,
)
from repro.checkpoint.policy import CheckpointPolicy, Checkpointer
from repro.checkpoint.state import (
    Snapshottable,
    dataset_from_state,
    dataset_state,
    flatten_state,
    unflatten_state,
)
from repro.checkpoint.store import DEFAULT_CHECKPOINT_ROOT, RunStore

__all__ = [
    "FORMAT_VERSION",
    "CheckpointError",
    "CheckpointCorruptError",
    "CheckpointVersionError",
    "CheckpointPolicy",
    "Checkpointer",
    "DEFAULT_CHECKPOINT_ROOT",
    "RunStore",
    "Snapshottable",
    "dataset_state",
    "dataset_from_state",
    "flatten_state",
    "unflatten_state",
    "spec_payload",
    "spec_fingerprint",
    "spec_from_payload",
    "run_with_checkpoints",
    "resume_run_dir",
    "load_spec",
]


def __getattr__(name: str):
    # resume.py imports the experiment stack; loading it lazily keeps
    # ``repro.checkpoint`` importable from inside repro.core modules.
    if name in ("run_with_checkpoints", "resume_run_dir", "load_spec"):
        from repro.checkpoint import resume

        return getattr(resume, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
