"""A small, from-scratch neural-network library on numpy.

This package stands in for PyTorch: it provides exactly what the LbChat
algorithm needs from a learner — per-sample losses, minibatch gradient
training, and a flat parameter vector that can be sparsified, shipped to
a peer, and averaged.

Layers implement explicit ``forward``/``backward`` passes (no autograd
tape); models are :class:`~repro.nn.layers.Sequential` stacks plus the
command-branched :class:`~repro.nn.model.WaypointNet` used for the
BEV-based driving decision task.
"""

from repro.nn.bank import (
    FleetAdam,
    FleetWaypointNet,
    ParamBank,
    RowAdam,
)
from repro.nn.layers import (
    Conv2d,
    Flatten,
    Linear,
    Module,
    ReLU,
    Sequential,
    Tanh,
)
from repro.nn.losses import (
    fleet_waypoint_l1,
    l1_loss,
    mse_loss,
    softmax_cross_entropy,
    waypoint_l1,
)
from repro.nn.model import WaypointNet, make_driving_model
from repro.nn.optim import SGD, Adam
from repro.nn.params import (
    Parameter,
    clone_model,
    get_flat_params,
    num_params,
    set_flat_params,
)

__all__ = [
    "Module",
    "Linear",
    "Conv2d",
    "ReLU",
    "Tanh",
    "Flatten",
    "Sequential",
    "WaypointNet",
    "make_driving_model",
    "l1_loss",
    "mse_loss",
    "waypoint_l1",
    "fleet_waypoint_l1",
    "softmax_cross_entropy",
    "SGD",
    "Adam",
    "ParamBank",
    "FleetWaypointNet",
    "FleetAdam",
    "RowAdam",
    "Parameter",
    "get_flat_params",
    "set_flat_params",
    "clone_model",
    "num_params",
]
