"""The BEV-based driving decision model.

A compact stand-in for the "Learning by Cheating" privileged agent the
paper trains: the input is a bird's-eye-view occupancy tensor plus a
high-level navigation command, and the output is the next few waypoints
the vehicle should follow, expressed as (dx, dy) offsets in the
vehicle's frame.

Like CIL/LBC, the network is *command-branched*: a shared trunk encodes
the BEV and a separate linear head per command produces waypoints, so
"turn left" and "go straight" never compete for the same output weights.
"""

from __future__ import annotations

import numpy as np

from repro.nn.layers import Conv2d, Flatten, Linear, Module, ReLU, Sequential
from repro.nn.params import Parameter

__all__ = ["WaypointNet", "make_driving_model", "N_COMMANDS", "COMMAND_NAMES"]

#: High-level commands from the navigation service, as in CARLA/CIL.
COMMAND_NAMES = ("follow", "left", "right", "straight")
N_COMMANDS = len(COMMAND_NAMES)


class WaypointNet(Module):
    """Command-branched waypoint predictor.

    Parameters
    ----------
    bev_shape:
        ``(channels, height, width)`` of the input BEV tensor.
    n_waypoints:
        Number of future waypoints to predict; output dim is ``2 * n``.
    hidden:
        Trunk width.
    use_conv:
        When true the trunk starts with a 3x3 convolution (closer to the
        paper's CNN encoder); when false the BEV is flattened straight
        into an MLP, which is much faster on CPU and behaves identically
        for the algorithmic questions studied here.
    rng:
        Generator for weight initialization.
    """

    def __init__(
        self,
        bev_shape: tuple[int, int, int],
        n_waypoints: int,
        hidden: int,
        rng: np.random.Generator,
        use_conv: bool = False,
    ):
        channels, height, width = bev_shape
        self.bev_shape = bev_shape
        self.n_waypoints = n_waypoints
        self.use_conv = use_conv
        if use_conv:
            conv_out = 8 * (height - 2) * (width - 2)
            self.trunk = Sequential(
                Conv2d(channels, 8, 3, rng),
                ReLU(),
                Flatten(),
                Linear(conv_out, hidden, rng),
                ReLU(),
            )
        else:
            self.trunk = Sequential(
                Flatten(),
                Linear(channels * height * width, hidden, rng),
                ReLU(),
                Linear(hidden, hidden, rng),
                ReLU(),
            )
        self.heads = [Linear(hidden, 2 * n_waypoints, rng) for _ in range(N_COMMANDS)]
        self._features: np.ndarray | None = None
        self._commands: np.ndarray | None = None

    # Sequential.forward has a single input; WaypointNet takes (bev, cmd),
    # so it overrides __call__-style usage with an explicit signature.
    def forward(self, bev: np.ndarray, commands: np.ndarray) -> np.ndarray:  # type: ignore[override]
        """Predict waypoints.

        Parameters
        ----------
        bev:
            ``(batch, channels, height, width)`` float array.
        commands:
            ``(batch,)`` integer array in ``[0, N_COMMANDS)``.
        """
        commands = np.asarray(commands)
        if commands.ndim != 1 or commands.shape[0] != bev.shape[0]:
            raise ValueError("commands must be a (batch,) vector matching bev")
        # ``copy=False``: the first trunk layer defensively copies any
        # writeable input it must cache (see Linear.forward), so an
        # unconditional astype copy here would just double the work.
        features = self.trunk.forward(bev.astype(np.float32, copy=False))
        out = np.zeros((bev.shape[0], 2 * self.n_waypoints), dtype=np.float32)
        for cmd in range(N_COMMANDS):
            mask = commands == cmd
            if mask.any():
                out[mask] = self.heads[cmd].forward(features[mask])
        self._features = features
        # Backward re-reads the command vector after control returned to
        # the caller; copy writeable inputs so buffer reuse cannot
        # silently reroute head gradients (same contract as Linear).
        self._commands = commands.copy() if commands.flags.writeable else commands
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:  # type: ignore[override]
        """Route head gradients per command, then back through the trunk."""
        if self._features is None or self._commands is None:
            raise RuntimeError("backward before forward")
        grad_features = np.zeros_like(self._features)
        for cmd in range(N_COMMANDS):
            mask = self._commands == cmd
            if mask.any():
                grad_features[mask] = self.heads[cmd].backward(grad_out[mask])
        return self.trunk.backward(grad_features)

    def parameters(self) -> list[Parameter]:
        """Trunk parameters followed by each command head's."""
        params = self.trunk.parameters()
        for head in self.heads:
            params.extend(head.parameters())
        return params


def make_driving_model(
    bev_shape: tuple[int, int, int],
    n_waypoints: int,
    hidden: int,
    seed: int,
    use_conv: bool = False,
) -> WaypointNet:
    """Build a :class:`WaypointNet` with a deterministic initialization.

    All vehicles call this with the *same* seed, matching the paper's
    assumption that models share one initialization.
    """
    rng = np.random.default_rng(seed)
    return WaypointNet(bev_shape, n_waypoints, hidden, rng, use_conv=use_conv)
