"""Per-layer parameter banks for fleet-batched training.

A paper-scale run trains N identical :class:`~repro.nn.model.WaypointNet`
models in lock-step — one per vehicle — and the per-node numpy
forward/backward is the dominant cost.  This module stacks all vehicles'
parameters into per-layer ``(n_nodes, ...)`` banks so one batched tensor
op per layer trains the whole fleet:

* :class:`ParamBank` owns one C-contiguous ``(n_nodes, n_params)``
  float32 matrix (plus a twin for gradients).  Each node's
  :class:`~repro.nn.params.Parameter` objects are *rebound* to views into
  their bank row, so all existing per-node code — ``get_flat_params``,
  ``set_flat_params``, chat aggregation, compression, checkpointing —
  keeps working unchanged and sees bank updates instantly.  That view
  binding is the scatter/gather bridge: attaching and detaching at
  chat/compression/checkpoint boundaries costs nothing because there is
  nothing to copy.
* :class:`FleetWaypointNet` mirrors the per-node network with batched
  layers: stacked GEMMs (``np.matmul`` over a leading node axis) for
  :class:`FleetLinear`, im2col plus one batched GEMM for
  :class:`FleetConv2d`, and command-masked head dispatch.
* :class:`FleetAdam` keeps ``(n_nodes, n_params)`` moment matrices with a
  per-node step counter, so staggered restores (one vehicle resuming
  from an older snapshot) bias-correct each row independently.
  :class:`RowAdam` is the per-node facade that stands in for
  :class:`~repro.nn.optim.Adam` on bank-attached nodes.

Bit-identity notes: stacked ``matmul`` runs the *same-shaped* GEMM per
node as the per-node code, so MLP-trunk forward/backward/Adam match the
detached path bit-for-bit.  Head and conv gradients batch over a
different matrix extent (all rows instead of the command-selected
subset), which changes BLAS accumulation order — those match within
float tolerance only, and goldens covering them are re-recorded.
"""

from __future__ import annotations

import numpy as np

from repro.nn._fused import fused_adam_step
from repro.nn.layers import Conv2d, Flatten, Linear, ReLU
from repro.nn.model import N_COMMANDS, WaypointNet
from repro.nn.params import Parameter

def _zeros(shape: tuple[int, ...], dtype) -> np.ndarray:
    """Default bank allocator: ordinary zeroed process memory."""
    return np.zeros(shape, dtype=dtype)


__all__ = [
    "ParamBank",
    "FleetLinear",
    "FleetConv2d",
    "FleetReLU",
    "FleetFlatten",
    "FleetWaypointNet",
    "FleetAdam",
    "RowAdam",
]


class ParamBank:
    """All nodes' parameters as one ``(n_nodes, n_params)`` float32 bank.

    The layout matches :func:`~repro.nn.params.get_flat_params`: within a
    row, parameters appear in ``model.parameters()`` order, each raveled
    C-style.  ``views[k]``/``grad_views[k]`` expose parameter ``k`` of
    every node as a ``(n_nodes, *shape)`` view into the bank.

    ``allocator`` controls where the backing matrices live: the default
    is ordinary process-private memory; the step-worker pool passes a
    :class:`~repro.parallel.stepshard.ShmArena` allocator so the banks
    live in ``multiprocessing.shared_memory`` and forked workers update
    disjoint row ranges in place (see :meth:`slice_rows`).
    """

    def __init__(self, template, n_nodes: int, *, allocator=None):
        if n_nodes <= 0:
            raise ValueError(f"bank needs at least one node: {n_nodes}")
        alloc = allocator if allocator is not None else _zeros
        params = template.parameters()
        self.n_nodes = n_nodes
        self.specs: list[tuple[str, tuple[int, ...]]] = [
            (p.name, p.data.shape) for p in params
        ]
        sizes = [int(np.prod(shape)) if shape else 1 for _, shape in self.specs]
        self.n_params = int(sum(sizes))
        self.flat = alloc((n_nodes, self.n_params), np.float32)
        self.grad_flat = alloc((n_nodes, self.n_params), np.float32)
        self._build_views()

    def _build_views(self) -> None:
        n_nodes = self.n_nodes
        self.views: list[np.ndarray] = []
        self.grad_views: list[np.ndarray] = []
        offset = 0
        for _, shape in self.specs:
            size = int(np.prod(shape)) if shape else 1
            self.views.append(self.flat[:, offset : offset + size].reshape((n_nodes, *shape)))
            self.grad_views.append(
                self.grad_flat[:, offset : offset + size].reshape((n_nodes, *shape))
            )
            offset += size

    def slice_rows(self, lo: int, hi: int) -> "ParamBank":
        """A zero-copy bank over rows ``[lo, hi)`` of this bank.

        The slice shares storage with the parent — every array is a view
        — so a :class:`FleetWaypointNet` built over it trains those rows
        in place.  Row ranges are the step-sharding unit: every batched
        op in this module is independent per leading (node) index, so
        partitioning rows across workers cannot reorder any float op.
        """
        if not (0 <= lo < hi <= self.n_nodes):
            raise ValueError(f"invalid row range [{lo}, {hi}) for {self.n_nodes} rows")
        bank = ParamBank.__new__(ParamBank)
        bank.n_nodes = hi - lo
        bank.n_params = self.n_params
        bank.specs = self.specs
        bank.flat = self.flat[lo:hi]
        bank.grad_flat = self.grad_flat[lo:hi]
        bank._build_views()
        return bank

    @classmethod
    def from_models(cls, models: list) -> "ParamBank":
        """Build a bank sized for ``models`` and adopt each one as a row."""
        bank = cls(models[0], len(models))
        for row, model in enumerate(models):
            bank.adopt(row, model)
        return bank

    def _check_compatible(self, model) -> list[Parameter]:
        params = model.parameters()
        shapes = [p.data.shape for p in params]
        expected = [shape for _, shape in self.specs]
        if shapes != expected:
            raise ValueError(
                f"model parameter shapes {shapes} do not match bank layout {expected}"
            )
        return params

    def adopt(self, row: int, model) -> None:
        """Copy a model's parameters into row ``row`` and rebind its
        :class:`Parameter` objects to bank views.

        After adoption, ``p.data``/``p.grad`` are contiguous views into
        the bank, so in-place per-node code (``set_flat_params``, chat
        merges, ``zero_grad``) and the batched engine share storage.
        """
        params = self._check_compatible(model)
        for p, view, grad_view in zip(params, self.views, self.grad_views):
            view[row] = p.data
            grad_view[row] = p.grad
            p.data = view[row]
            p.grad = grad_view[row]

    def detach(self, row: int, model) -> None:
        """Give a model back owned copies of its row (the gather side)."""
        params = self._check_compatible(model)
        for p, view, grad_view in zip(params, self.views, self.grad_views):
            p.data = view[row].copy()
            p.grad = grad_view[row].copy()

    def row_view(self, row: int) -> np.ndarray:
        """Read-only flat view of one node's parameters (zero-copy)."""
        view = self.flat[row].view()
        view.flags.writeable = False
        return view


# -- batched layers ----------------------------------------------------------
#
# Each fleet layer mirrors one per-node layer over a leading node axis.
# ``forward(x, shared)`` returns ``(out, shared)``: ``shared`` means the
# input is one batch broadcast to every node (validation evaluation);
# any parameterized layer produces per-node output, flipping it False.
# Backward supports per-node mode only — training always is.


class FleetLinear:
    """Stacked affine layer: ``(n, b, i) @ (n, i, o) + (n, 1, o)``.

    ``backward`` *assigns* the parameter gradients (it does not
    accumulate), writing straight into the bank views — the engine never
    needs a gradient-bank memset between steps.  When
    ``compute_input_grad`` is False (set on the trunk's first
    parameterized layer, where nothing below needs gradients) the input
    gradient GEMM is skipped entirely and ``backward`` returns None.
    """

    def __init__(self, weight: np.ndarray, bias: np.ndarray,
                 grad_w: np.ndarray, grad_b: np.ndarray):
        self.weight = weight  # (n, in, out) bank view
        self.bias = bias  # (n, out) bank view
        self.grad_w = grad_w
        self.grad_b = grad_b
        self.compute_input_grad = True
        self._input: np.ndarray | None = None
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray, shared: bool) -> tuple[np.ndarray, bool]:
        # Owned inputs only ever come from the engine's own buffers, so
        # no defensive copy is needed here (unlike per-node Linear).
        self._input = x
        self._shared = shared
        n, _, o = self.weight.shape
        shape = (n, x.shape[-2], o)
        # Persistent output buffer: multi-MB allocations are returned to
        # the OS by the allocator, so a fresh buffer per step would pay
        # page-fault costs on the training hot path.
        if self._out is None or self._out.shape != shape:
            self._out = np.empty(shape, dtype=np.float32)
        # A shared (b, i) input broadcasts against the (n, i, o) stack;
        # either way each node runs the same-shaped GEMM as the per-node
        # path, keeping the MLP trunk bit-identical to detached nodes.
        out = np.matmul(x, self.weight, out=self._out)
        out += self.bias[:, None, :]
        return out, False

    def backward(self, grad_out: np.ndarray) -> np.ndarray | None:
        if self._input is None:
            raise RuntimeError("backward before forward")
        if self._shared:
            raise RuntimeError("fleet backward requires per-node inputs")
        x = self._input
        np.matmul(x.transpose(0, 2, 1), grad_out, out=self.grad_w)
        np.sum(grad_out, axis=1, out=self.grad_b)
        if not self.compute_input_grad:
            return None
        return np.matmul(grad_out, self.weight.transpose(0, 2, 1))


class FleetConv2d:
    """Stacked 2D convolution (stride 1, 'valid') via batched im2col."""

    def __init__(self, weight: np.ndarray, bias: np.ndarray,
                 grad_w: np.ndarray, grad_b: np.ndarray, kernel_size: int):
        self.weight = weight  # (n, out_c, in_c, k, k) bank view
        self.bias = bias  # (n, out_c)
        self.grad_w = grad_w
        self.grad_b = grad_b
        self.kernel_size = kernel_size
        self.compute_input_grad = True
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None

    @staticmethod
    def _im2col(x: np.ndarray, k: int) -> np.ndarray:
        batch, channels, height, width = x.shape
        out_h, out_w = height - k + 1, width - k + 1
        windows = np.lib.stride_tricks.sliding_window_view(x, (k, k), axis=(2, 3))
        cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(
            batch, out_h * out_w, channels * k * k
        )
        return np.ascontiguousarray(cols)

    def forward(self, x: np.ndarray, shared: bool) -> tuple[np.ndarray, bool]:
        k = self.kernel_size
        n = self.weight.shape[0]
        if shared:
            batch, _, height, width = x.shape
            cols = self._im2col(x, k)  # (b, P, K)
            cols = cols[None]  # broadcast one patch matrix to all nodes
        else:
            n_nodes, batch, _, height, width = x.shape
            cols = self._im2col(x.reshape((-1, *x.shape[2:])), k)
            cols = cols.reshape(n_nodes, batch, *cols.shape[1:])  # (n, b, P, K)
        out_h, out_w = height - k + 1, width - k + 1
        out_c = self.weight.shape[1]
        self._cols = cols
        self._x_shape = x.shape
        self._shared = shared
        w_mat = self.weight.reshape(n, out_c, -1)  # (n, out_c, K), still a view
        # (·, b, P, K) @ (n, 1, K, out_c): one GEMM per (node, sample),
        # the same shape the per-node layer runs.
        out = np.matmul(cols, w_mat.transpose(0, 2, 1)[:, None])
        out += self.bias[:, None, None, :]
        return (
            out.transpose(0, 1, 3, 2).reshape(n, batch, out_c, out_h, out_w),
            False,
        )

    def backward(self, grad_out: np.ndarray) -> np.ndarray | None:
        if self._cols is None or self._x_shape is None:
            raise RuntimeError("backward before forward")
        if self._shared:
            raise RuntimeError("fleet backward requires per-node inputs")
        n, batch, out_c, out_h, out_w = grad_out.shape
        k = self.kernel_size
        n_patches = out_h * out_w
        grad_flat = grad_out.reshape(n, batch, out_c, n_patches).transpose(0, 1, 3, 2)
        cols = self._cols  # (n, b, P, K)
        K = cols.shape[-1]
        # Parameter grads: fold (batch, patches) into one GEMM per node,
        # assigned (not accumulated) straight into the bank views.
        g2 = grad_flat.reshape(n, batch * n_patches, out_c)
        c2 = cols.reshape(n, batch * n_patches, K)
        np.matmul(g2.transpose(0, 2, 1), c2, out=self.grad_w.reshape(n, out_c, K))
        np.sum(g2, axis=1, out=self.grad_b)
        if not self.compute_input_grad:
            return None
        # Input grad: columns back through the weights, then col2im.
        w_mat = self.weight.reshape(n, out_c, -1)
        grad_cols = np.matmul(grad_flat, w_mat[:, None])  # (n, b, P, K)
        _, _, channels, height, width = self._x_shape
        grad_x = np.zeros(self._x_shape, dtype=grad_out.dtype)
        grad_cols = grad_cols.reshape(n, batch, out_h, out_w, channels, k, k)
        for di in range(k):
            for dj in range(k):
                grad_x[:, :, :, di : di + out_h, dj : dj + out_w] += grad_cols[
                    :, :, :, :, :, di, dj
                ].transpose(0, 1, 4, 2, 3)
        return grad_x


class FleetReLU:
    """Elementwise ``max(x, 0)`` — mode-agnostic."""

    def __init__(self):
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, shared: bool) -> tuple[np.ndarray, bool]:
        self._mask = x > 0
        return x * self._mask, shared

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward before forward")
        return grad_out * self._mask


class FleetFlatten:
    """Flattens trailing feature axes, keeping node/batch axes intact."""

    def __init__(self):
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, shared: bool) -> tuple[np.ndarray, bool]:
        self._shape = x.shape
        lead = 1 if shared else 2
        return x.reshape((*x.shape[:lead], -1)), shared

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward before forward")
        return grad_out.reshape(self._shape)


class FleetWaypointNet:
    """Batched mirror of a fleet of identical :class:`WaypointNet`\\ s.

    Built over a :class:`ParamBank` whose rows hold the nodes'
    parameters; forward/backward touch every node with one batched op
    per layer.  Inputs are either per-node stacks (``bev`` of shape
    ``(n, b, C, H, W)``, ``commands`` of ``(n, b)``) or one shared batch
    (``(b, C, H, W)`` / ``(b,)``) broadcast to all nodes — the
    validation-evaluation fast path.
    """

    def __init__(self, bank: ParamBank, template: WaypointNet):
        self.bank = bank
        self.n_waypoints = template.n_waypoints
        views = iter(zip(bank.views, bank.grad_views))

        def take() -> tuple[np.ndarray, np.ndarray]:
            return next(views)

        self.trunk: list = []
        for module in template.trunk.modules:
            if isinstance(module, Linear):
                (w, gw), (b, gb) = take(), take()
                self.trunk.append(FleetLinear(w, b, gw, gb))
            elif isinstance(module, Conv2d):
                (w, gw), (b, gb) = take(), take()
                self.trunk.append(FleetConv2d(w, b, gw, gb, module.kernel_size))
            elif isinstance(module, ReLU):
                self.trunk.append(FleetReLU())
            elif isinstance(module, Flatten):
                self.trunk.append(FleetFlatten())
            else:
                raise ValueError(
                    f"cannot batch trunk module {type(module).__name__}"
                )
        self.heads: list[FleetLinear] = []
        for _ in template.heads:
            (w, gw), (b, gb) = take(), take()
            self.heads.append(FleetLinear(w, b, gw, gb))
        if next(views, None) is not None:
            raise ValueError("bank has more parameters than the template model")
        # Nothing below the first parameterized trunk layer needs
        # gradients, so its (large) input-gradient GEMM is pure waste.
        for module in self.trunk:
            if isinstance(module, (FleetLinear, FleetConv2d)):
                module.compute_input_grad = False
                break
        self._features: np.ndarray | None = None
        self._masks: list[np.ndarray] | None = None

    def forward(self, bev: np.ndarray, commands: np.ndarray) -> np.ndarray:
        """Predict waypoints for every node; output ``(n, b, 2 * w)``."""
        commands = np.asarray(commands)
        shared = bev.ndim == 4
        if shared and commands.ndim != 1:
            raise ValueError("shared bev needs a shared (batch,) command vector")
        if not shared and commands.ndim != 2:
            raise ValueError("per-node bev needs (n_nodes, batch) commands")
        x = bev.astype(np.float32, copy=False)
        for module in self.trunk:
            x, shared = module.forward(x, shared)
        features = x  # (n, b, hidden)
        n, batch = features.shape[:2]
        out = np.zeros((n, batch, 2 * self.n_waypoints), dtype=np.float32)
        masks = []
        for cmd, head in enumerate(self.heads):
            mask = commands == cmd
            if mask.ndim == 1:
                mask = np.broadcast_to(mask, (n, batch))
            masks.append(mask)
            if mask.any():
                vals, _ = head.forward(features, False)
                out = np.where(mask[:, :, None], vals, out)
        self._features = features
        self._masks = masks
        return out

    def backward(self, grad_out: np.ndarray) -> np.ndarray | None:
        """Route head gradients per command, then back through the trunk.

        Parameter gradients are *assigned* into the bank (every layer and
        head writes its full gradient each call), so no ``zero_grad``
        between steps is needed; the return value is the input gradient,
        or None because the first parameterized trunk layer skips it.
        """
        if self._features is None or self._masks is None:
            raise RuntimeError("backward before forward")
        features = self._features
        grad_features: np.ndarray | None = None
        for head, mask in zip(self.heads, self._masks):
            masked = np.where(mask[:, :, None], grad_out, np.float32(0.0))
            np.matmul(features.transpose(0, 2, 1), masked, out=head.grad_w)
            np.sum(masked, axis=1, out=head.grad_b)
            if grad_features is None:
                grad_features = np.matmul(masked, head.weight.transpose(0, 2, 1))
            else:
                grad_features += np.matmul(masked, head.weight.transpose(0, 2, 1))
        grad = grad_features
        for module in reversed(self.trunk):
            grad = module.backward(grad)
            if grad is None:
                break
        return grad

    def zero_grad(self) -> None:
        """Clear the whole gradient bank in one memset.

        Not needed between batched steps (``backward`` assigns), but kept
        for the per-node protocol and for partially-driven tests.
        """
        self.bank.grad_flat.fill(0.0)


# -- batched Adam ------------------------------------------------------------


class FleetAdam:
    """Vectorized Adam over a :class:`ParamBank` with per-node steps.

    The update applies the exact formula sequence of
    :class:`~repro.nn.optim.Adam` row-wise — including the decoupled
    pre-step weight decay — with per-node bias corrections cast to
    float32 columns, so a node trained through the bank is bitwise
    indistinguishable from one trained by its own Adam instance.
    """

    def __init__(
        self,
        bank: ParamBank,
        lr: float = 1e-4,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
        *,
        allocator=None,
    ):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive: {lr}")
        if weight_decay < 0:
            raise ValueError(f"weight decay must be non-negative: {weight_decay}")
        alloc = allocator if allocator is not None else _zeros
        self.bank = bank
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.steps = alloc((bank.n_nodes,), np.int64)
        self.m = alloc((bank.n_nodes, bank.n_params), np.float32)
        self.v = alloc((bank.n_nodes, bank.n_params), np.float32)
        self._scratch: np.ndarray | None = None

    def slice_rows(self, lo: int, hi: int, bank_slice: ParamBank) -> "FleetAdam":
        """A zero-copy optimizer over rows ``[lo, hi)`` of this optimizer.

        ``bank_slice`` must be ``self.bank.slice_rows(lo, hi)``.  The
        slice shares moment matrices and step counters with the parent
        (views), so a step-worker advancing its rows is indistinguishable
        from the parent advancing them itself.
        """
        other = FleetAdam.__new__(FleetAdam)
        other.bank = bank_slice
        other.lr = self.lr
        other.beta1, other.beta2 = self.beta1, self.beta2
        other.eps = self.eps
        other.weight_decay = self.weight_decay
        other.steps = self.steps[lo:hi]
        other.m = self.m[lo:hi]
        other.v = self.v[lo:hi]
        other._scratch = None
        return other

    #: Width of one update block — sized so the live slices of g/m/v/p
    #: plus three scratch rows stay cache-resident, which is what makes
    #: the batched update as fast per element as the per-node one
    #: (full-width passes stream every array through DRAM ~10 times).
    #: ``_CHUNK`` counts flat elements in the lock-step path and
    #: per-node columns in the staggered path.
    _CHUNK = 131072
    _CHUNK_COLS = 4096

    def step(self) -> None:
        """One Adam update for every node from the gradient bank.

        Chunked but elementwise-identical to :meth:`step_row`: each block
        applies the exact per-node formula sequence.  In lock-step (every
        node at the same step count — the steady state) the corrections
        are plain Python scalars over flat contiguous chunks; after a
        staggered restore they become per-node float32 columns, and a
        float32 array divided by a float32 column stays float32 (NEP
        50), matching the per-node scalar arithmetic bit-for-bit.
        """
        self.steps += 1
        kernel = fused_adam_step()
        if kernel is not None:
            if np.all(self.steps == self.steps[0]):
                self._step_kernel(kernel, slice(None), int(self.steps[0]))
            else:
                for row in range(self.bank.n_nodes):
                    self._step_kernel(kernel, row, int(self.steps[row]))
        elif np.all(self.steps == self.steps[0]):
            t = int(self.steps[0])
            self._step_chunked(
                self.bank.grad_flat.reshape(-1),
                self.m.reshape(-1),
                self.v.reshape(-1),
                self.bank.flat.reshape(-1),
                1.0 - self.beta1**t,
                1.0 - self.beta2**t,
            )
        else:
            self._step_chunked(
                self.bank.grad_flat,
                self.m,
                self.v,
                self.bank.flat,
                (1.0 - self.beta1**self.steps).astype(np.float32)[:, None],
                (1.0 - self.beta2**self.steps).astype(np.float32)[:, None],
            )

    def _step_kernel(self, kernel, rows, t: int) -> None:
        """Single-pass fused update of the selected rows at step ``t``."""
        p = self.bank.flat[rows].reshape(-1)
        g = self.bank.grad_flat[rows].reshape(-1)
        m = self.m[rows].reshape(-1)
        v = self.v[rows].reshape(-1)
        kernel(
            p, g, m, v, p.size,
            self.beta1, 1.0 - self.beta1,
            self.beta2, 1.0 - self.beta2,
            1.0 - self.beta1**t, 1.0 - self.beta2**t,
            self.lr, self.eps, self.lr * self.weight_decay,
        )

    def _step_chunked(self, g_all, m_all, v_all, p_all, bc1, bc2) -> None:
        """The update itself, over trailing-axis blocks of the arrays.

        Works on flat ``(n * n_params,)`` views in the lock-step case or
        ``(n, n_params)`` matrices with per-row corrections after a
        staggered restore; either way each block's g/m/v/p slices plus
        the scratch rows stay cache-resident.
        """
        total = g_all.shape[-1]
        lead = g_all.shape[:-1]
        chunk = self._CHUNK if not lead else self._CHUNK_COLS
        if self._scratch is None or self._scratch.shape[1:] != (
            *lead,
            min(chunk, total),
        ):
            self._scratch = np.empty(
                (3, *lead, min(chunk, total)), dtype=np.float32
            )
        one_m_b1 = 1.0 - self.beta1
        one_m_b2 = 1.0 - self.beta2
        decay = self.lr * self.weight_decay
        for a in range(0, total, chunk):
            b = min(a + chunk, total)
            width = b - a
            t0 = self._scratch[0, ..., :width]
            t1 = self._scratch[1, ..., :width]
            t2 = self._scratch[2, ..., :width]
            g = g_all[..., a:b]
            m = m_all[..., a:b]
            v = v_all[..., a:b]
            p = p_all[..., a:b]
            m *= self.beta1
            np.multiply(g, one_m_b1, out=t0)
            m += t0
            v *= self.beta2
            np.multiply(g, g, out=t0)
            t0 *= one_m_b2
            v += t0
            np.divide(m, bc1, out=t1)  # m_hat
            t1 *= self.lr
            np.divide(v, bc2, out=t2)  # v_hat
            np.sqrt(t2, out=t2)
            t2 += self.eps
            if decay:
                np.multiply(p, decay, out=t0)
                p -= t0
            t1 /= t2
            p -= t1

    def step_row(self, row: int) -> None:
        """One Adam update for a single node (detached-pace training)."""
        self.steps[row] += 1
        t = int(self.steps[row])
        bc1 = 1.0 - self.beta1**t
        bc2 = 1.0 - self.beta2**t
        g = self.bank.grad_flat[row]
        m, v = self.m[row], self.v[row]
        m *= self.beta1
        m += (1.0 - self.beta1) * g
        v *= self.beta2
        v += (1.0 - self.beta2) * (g**2)
        m_hat = m / bc1
        v_hat = v / bc2
        p = self.bank.flat[row]
        if self.weight_decay:
            p -= self.lr * self.weight_decay * p
        p -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        """Clear every node's accumulated gradients."""
        self.bank.grad_flat.fill(0.0)

    # -- per-node checkpoint bridge ------------------------------------------

    def node_snapshot(self, row: int) -> dict:
        """One node's optimizer state, in :class:`Adam`'s snapshot format."""
        return {
            "step": int(self.steps[row]),
            "m": self.m[row].copy(),
            "v": self.v[row].copy(),
        }

    def node_restore(self, row: int, state: dict) -> None:
        """Load one node's state; other rows keep their own step counts."""
        m = np.asarray(state["m"], dtype=np.float32).ravel()
        v = np.asarray(state["v"], dtype=np.float32).ravel()
        if m.size != self.bank.n_params or v.size != self.bank.n_params:
            raise ValueError(
                f"optimizer state has {m.size} entries, bank rows hold "
                f"{self.bank.n_params}"
            )
        self.steps[row] = int(state["step"])
        self.m[row] = m
        self.v[row] = v


class RowAdam:
    """Per-node Adam facade over one :class:`FleetAdam` row.

    Swapped in for a bank-attached node's optimizer so all per-node call
    sites (``train_step``, failure-injection tests, snapshot/restore)
    keep their exact API while the state lives in the fleet bank.
    """

    def __init__(self, fleet: FleetAdam, row: int, params: list[Parameter]):
        self.params = params
        self._fleet = fleet
        self._row = row

    @property
    def lr(self) -> float:
        return self._fleet.lr

    @property
    def weight_decay(self) -> float:
        return self._fleet.weight_decay

    def step(self) -> None:
        """Apply one bias-corrected Adam update to this node's row."""
        self._fleet.step_row(self._row)

    def zero_grad(self) -> None:
        """Clear this node's gradients (views into the gradient bank)."""
        for p in self.params:
            p.zero_grad()

    def snapshot(self) -> dict:
        """Internal state as plain arrays (checkpoint state)."""
        return self._fleet.node_snapshot(self._row)

    def restore(self, state: dict) -> None:
        """Replace internal state with a :meth:`snapshot`'s."""
        self._fleet.node_restore(self._row, state)
