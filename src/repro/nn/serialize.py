"""Model checkpointing.

Checkpoints store the flat parameter vector plus the architecture
metadata needed to rebuild the network, as a single ``.npz`` file.
Used by the CLI and examples to hand trained models between the
collaborative-training phase and online evaluation.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.nn.model import WaypointNet, make_driving_model
from repro.nn.params import get_flat_params, set_flat_params

__all__ = ["save_model", "load_model"]

_FORMAT_VERSION = 1


def save_model(model: WaypointNet, path: str | Path) -> None:
    """Write a WaypointNet checkpoint to ``path`` (.npz)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(
        path,
        version=np.int64(_FORMAT_VERSION),
        params=get_flat_params(model),
        bev_shape=np.asarray(model.bev_shape, dtype=np.int64),
        n_waypoints=np.int64(model.n_waypoints),
        hidden=np.int64(_hidden_width(model)),
        use_conv=np.bool_(model.use_conv),
    )


def load_model(path: str | Path) -> WaypointNet:
    """Rebuild a WaypointNet from a checkpoint written by :func:`save_model`."""
    with np.load(Path(path)) as data:
        version = int(data["version"])
        if version != _FORMAT_VERSION:
            raise ValueError(f"unsupported checkpoint version: {version}")
        bev_shape = tuple(int(x) for x in data["bev_shape"])
        model = make_driving_model(
            bev_shape,
            n_waypoints=int(data["n_waypoints"]),
            hidden=int(data["hidden"]),
            seed=0,
            use_conv=bool(data["use_conv"]),
        )
        params = data["params"]
        expected = get_flat_params(model).size
        if params.ndim != 1 or params.size != expected:
            raise ValueError(
                f"corrupt checkpoint {path}: stored {params.size} parameters "
                f"but the {bev_shape} architecture needs {expected}"
            )
        set_flat_params(model, params)
    return model


def _hidden_width(model: WaypointNet) -> int:
    """Recover the trunk width from the head input dimension."""
    return model.heads[0].weight.data.shape[0]
