"""Layers with explicit forward/backward passes.

Each :class:`Module` caches whatever its backward pass needs during
``forward`` and exposes its :class:`~repro.nn.params.Parameter` objects
through :meth:`Module.parameters`.  There is no autograd graph — the
call order of ``backward`` must mirror ``forward`` in reverse, which
:class:`Sequential` handles for the common case.
"""

from __future__ import annotations

import numpy as np

from repro.nn.params import Parameter

__all__ = ["Module", "Linear", "Conv2d", "ReLU", "Tanh", "Flatten", "Sequential"]


class Module:
    """Base class: a differentiable function with parameters."""

    def parameters(self) -> list[Parameter]:
        """All learnable parameters, in a stable order."""
        params: list[Parameter] = []
        for value in self.__dict__.values():
            if isinstance(value, Parameter):
                params.append(value)
            elif isinstance(value, Module):
                params.extend(value.parameters())
            elif isinstance(value, (list, tuple)):
                for item in value:
                    if isinstance(item, Module):
                        params.extend(item.parameters())
        return params

    def zero_grad(self) -> None:
        """Reset every parameter's accumulated gradient to zero."""
        for p in self.parameters():
            p.zero_grad()

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Compute the layer output, caching what backward needs."""
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        """Accumulate parameter grads; return the input gradient."""
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Linear(Module):
    """Affine layer ``y = x @ W + b`` with He-style initialization."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator):
        scale = np.sqrt(2.0 / in_features)
        self.weight = Parameter(
            rng.normal(0.0, scale, size=(in_features, out_features)), name="weight"
        )
        self.bias = Parameter(np.zeros(out_features), name="bias")
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        # Backward runs after control returns to the caller, who may
        # legally refill its batch buffer in between — caching a bare
        # reference would silently corrupt the weight gradient.  Defend
        # with a copy; read-only inputs (dataset views) cannot mutate
        # under us and are aliased for free.
        self._input = x.copy() if x.flags.writeable else x
        return x @ self.weight.data + self.bias.data

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward before forward")
        self.weight.grad += self._input.T @ grad_out
        self.bias.grad += grad_out.sum(axis=0)
        return grad_out @ self.weight.data.T


class Conv2d(Module):
    """2D convolution (stride 1, 'valid' padding) via im2col.

    Input is ``(batch, channels, height, width)``.  Kept deliberately
    small-featured: the BEV encoder only needs a couple of 3x3 layers.
    Unlike :class:`Linear`, no reference to the caller's input survives
    ``forward`` — backward reads only the im2col matrix, which is an
    owned contiguous copy — so callers may reuse their input buffer
    freely between forward and backward.
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
    ):
        fan_in = in_channels * kernel_size * kernel_size
        scale = np.sqrt(2.0 / fan_in)
        self.weight = Parameter(
            rng.normal(0.0, scale, size=(out_channels, in_channels, kernel_size, kernel_size)),
            name="weight",
        )
        self.bias = Parameter(np.zeros(out_channels), name="bias")
        self.kernel_size = kernel_size
        self._cols: np.ndarray | None = None
        self._x_shape: tuple[int, ...] | None = None

    def _im2col(self, x: np.ndarray) -> np.ndarray:
        batch, channels, height, width = x.shape
        k = self.kernel_size
        out_h, out_w = height - k + 1, width - k + 1
        # Gather every kxk patch: shape (batch, out_h*out_w, channels*k*k).
        windows = np.lib.stride_tricks.sliding_window_view(x, (k, k), axis=(2, 3))
        # windows: (batch, channels, out_h, out_w, k, k)
        cols = windows.transpose(0, 2, 3, 1, 4, 5).reshape(batch, out_h * out_w, channels * k * k)
        return np.ascontiguousarray(cols)

    def forward(self, x: np.ndarray) -> np.ndarray:
        batch, _, height, width = x.shape
        k = self.kernel_size
        out_h, out_w = height - k + 1, width - k + 1
        cols = self._im2col(x)
        self._cols = cols
        self._x_shape = x.shape
        w = self.weight.data.reshape(self.weight.data.shape[0], -1)  # (out_c, c*k*k)
        out = cols @ w.T + self.bias.data  # (batch, out_h*out_w, out_c)
        return out.transpose(0, 2, 1).reshape(batch, -1, out_h, out_w)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._cols is None or self._x_shape is None:
            raise RuntimeError("backward before forward")
        batch, out_c, out_h, out_w = grad_out.shape
        k = self.kernel_size
        grad_flat = grad_out.reshape(batch, out_c, out_h * out_w).transpose(0, 2, 1)
        w = self.weight.data.reshape(out_c, -1)
        # Parameter grads.
        grad_w = np.einsum("bpo,bpc->oc", grad_flat, self._cols)
        self.weight.grad += grad_w.reshape(self.weight.data.shape)
        self.bias.grad += grad_flat.sum(axis=(0, 1))
        # Input grad: scatter columns back (col2im).
        grad_cols = grad_flat @ w  # (batch, out_h*out_w, c*k*k)
        _, channels, height, width = self._x_shape
        grad_x = np.zeros(self._x_shape, dtype=grad_out.dtype)
        grad_cols = grad_cols.reshape(batch, out_h, out_w, channels, k, k)
        for di in range(k):
            for dj in range(k):
                grad_x[:, :, di : di + out_h, dj : dj + out_w] += grad_cols[
                    :, :, :, :, di, dj
                ].transpose(0, 3, 1, 2)
        return grad_x


class ReLU(Module):
    """Rectified linear unit, ``max(x, 0)``."""

    def __init__(self):
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return x * self._mask

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward before forward")
        return grad_out * self._mask


class Tanh(Module):
    """Hyperbolic tangent activation."""

    def __init__(self):
        self._out: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._out = np.tanh(x)
        return self._out

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._out is None:
            raise RuntimeError("backward before forward")
        return grad_out * (1.0 - self._out**2)


class Flatten(Module):
    """Flattens ``(batch, ...)`` inputs to ``(batch, features)``."""

    def __init__(self):
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward before forward")
        return grad_out.reshape(self._shape)


class Sequential(Module):
    """Composes modules; backward runs them in reverse automatically."""

    def __init__(self, *modules: Module):
        self.modules = list(modules)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for module in self.modules:
            x = module.forward(x)
        return x

    def backward(self, grad_out: np.ndarray) -> np.ndarray:
        for module in reversed(self.modules):
            grad_out = module.backward(grad_out)
        return grad_out
