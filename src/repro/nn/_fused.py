"""Optional fused C kernel for the fleet Adam update.

The chunked numpy update in :class:`~repro.nn.bank.FleetAdam` makes ~14
elementwise passes over the moment matrices; at paper scale that is the
single largest slice of a batched training step.  This module compiles
a tiny single-pass C kernel with the system C compiler the first time
it is needed and exposes it through ctypes.  Everything is optional:
when no compiler is available (or compilation fails for any reason) the
caller falls back to the numpy path.

Compiled kernels are cached on disk keyed by a hash of the C source
(plus the flags and the platform tag), so the compiler runs **at most
once per host** no matter how many processes need the kernel — the
run-level pool and the step-worker shards all dlopen the same cached
``.so``.  Concurrent first use is serialized by a lockfile: one process
compiles into a private temp file and publishes it with an atomic
rename; the others wait for the artifact to appear.  A stale lock (a
compiler crash) times out and the waiter compiles privately — the
rename makes the last writer win with a byte-identical artifact.

Bit-identity contract: the kernel performs the *exact* float32 op
sequence of ``Adam.step``/``FleetAdam._step_chunked`` — one rounding per
arithmetic op, scalars pre-cast to float32, compiled with
``-ffp-contract=off`` so the compiler cannot fuse a multiply-add into an
FMA with a different rounding.  ``tests/test_nn_bank.py`` asserts the
kernel and the numpy path produce byte-identical parameters.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import platform
import subprocess
import tempfile
import time
from pathlib import Path

import numpy as np

__all__ = ["fused_adam_step", "kernel_cache_dir"]

#: Set to a non-empty value to force the numpy fallback (benchmarks and
#: tests use this to exercise both paths).
_DISABLE_ENV = "REPRO_NO_FUSED_ADAM"

#: Override the on-disk kernel cache directory (tests point this at a
#: temp dir to exercise cold-cache and lock-contention paths).
_CACHE_DIR_ENV = "REPRO_KERNEL_CACHE_DIR"

_CFLAGS = ["-O2", "-ffp-contract=off", "-shared", "-fPIC"]

#: How long a waiter polls for a concurrent compiler to publish the
#: ``.so`` before assuming the lock is stale and compiling privately.
_LOCK_WAIT_SECONDS = 120.0
_LOCK_POLL_SECONDS = 0.05

_SOURCE = r"""
#include <math.h>

/* One Adam update over n contiguous float32 elements, mirroring
 * repro.nn.optim.Adam.step op for op:
 *   m    = m*b1 + (1-b1)*g
 *   v    = v*b2 + (1-b2)*(g*g)
 *   p   -= decay*p                      (decoupled pre-step decay)
 *   p   -= (lr*(m/bc1)) / (sqrt(v/bc2) + eps)
 * Every intermediate is a float; each op rounds once. */
void adam_step(float *p, const float *g, float *m, float *v,
               long long n, float b1, float omb1, float b2, float omb2,
               float bc1, float bc2, float lr, float eps, float decay)
{
    long long i;
    for (i = 0; i < n; ++i) {
        float mi = m[i] * b1;
        mi = mi + omb1 * g[i];
        m[i] = mi;
        float vi = v[i] * b2;
        float gs = g[i] * g[i];
        vi = vi + omb2 * gs;
        v[i] = vi;
        float num = lr * (mi / bc1);
        float den = sqrtf(vi / bc2) + eps;
        float pi = p[i];
        if (decay != 0.0f) {
            pi = pi - decay * pi;
        }
        p[i] = pi - num / den;
    }
}
"""

_kernel = None
_failed = False

_F32P = np.ctypeslib.ndpointer(dtype=np.float32, flags="C_CONTIGUOUS")


def kernel_cache_dir() -> Path:
    """The on-disk kernel cache directory (env-overridable)."""
    override = os.environ.get(_CACHE_DIR_ENV)
    if override:
        return Path(override)
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return Path(base) / "repro" / "kernels"


def _source_key() -> str:
    """Cache key: hash of source + flags + platform ABI tag."""
    tag = "\x00".join([_SOURCE, " ".join(_CFLAGS), platform.machine()])
    return hashlib.sha256(tag.encode()).hexdigest()[:16]


def _run_compiler(src: Path, out: Path) -> None:
    subprocess.run(
        ["cc", *_CFLAGS, str(src), "-o", str(out), "-lm"],
        check=True,
        capture_output=True,
        timeout=120,
    )


def _compile_into(cache: Path, so_path: Path) -> None:
    """Compile into a private temp file and atomically publish it.

    Appends one line to ``compiles.log`` per actual compiler run — the
    at-most-once-per-host property is directly observable there (and
    asserted by the lock-contention regression test).
    """
    fd, tmp_src = tempfile.mkstemp(suffix=".c", dir=cache)
    with os.fdopen(fd, "w") as fh:
        fh.write(_SOURCE)
    tmp_so = tmp_src[:-2] + ".so"
    try:
        _run_compiler(Path(tmp_src), Path(tmp_so))
        with open(cache / "compiles.log", "a") as log:
            log.write(f"{os.getpid()} {so_path.name}\n")
        os.replace(tmp_so, so_path)  # atomic publish; last writer wins
    finally:
        for leftover in (tmp_src, tmp_so):
            try:
                os.unlink(leftover)
            except OSError:
                pass


def _ensure_cached(so_path: Path) -> None:
    """Make ``so_path`` exist, compiling at most once across processes."""
    if so_path.exists():
        return
    cache = so_path.parent
    cache.mkdir(parents=True, exist_ok=True)
    lock = so_path.with_suffix(".lock")
    try:
        lock_fd = os.open(lock, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        # Another process is compiling: wait for it to publish the .so.
        deadline = time.monotonic() + _LOCK_WAIT_SECONDS
        while time.monotonic() < deadline:
            if so_path.exists():
                return
            if not lock.exists():  # holder finished (or died) — re-check
                break
            time.sleep(_LOCK_POLL_SECONDS)
        if so_path.exists():
            return
        # Stale lock: compile privately; the atomic rename keeps the
        # artifact consistent even if the holder resurfaces.
        _compile_into(cache, so_path)
        return
    try:
        if not so_path.exists():
            _compile_into(cache, so_path)
    finally:
        os.close(lock_fd)
        try:
            os.unlink(lock)
        except OSError:
            pass


def _load() -> ctypes._CFuncPtr:
    so_path = kernel_cache_dir() / f"adam-{_source_key()}.so"
    try:
        _ensure_cached(so_path)
        lib = ctypes.CDLL(str(so_path))
    except Exception:
        # Unwritable/broken cache dir: fall back to a throwaway build
        # (the pre-cache behaviour), still guarded by the outer handler.
        build_dir = tempfile.mkdtemp(prefix="repro-fused-adam-")
        src = Path(build_dir) / "adam.c"
        src.write_text(_SOURCE)
        out = Path(build_dir) / "adam.so"
        _run_compiler(src, out)
        lib = ctypes.CDLL(str(out))
    lib.adam_step.argtypes = [
        _F32P,  # p
        _F32P,  # g
        _F32P,  # m
        _F32P,  # v
        ctypes.c_longlong,  # n
        *[ctypes.c_float] * 9,  # b1, 1-b1, b2, 1-b2, bc1, bc2, lr, eps, decay
    ]
    lib.adam_step.restype = None
    return lib.adam_step


def fused_adam_step():
    """The compiled ``adam_step`` entry point, or None if unavailable.

    The first call resolves the kernel — from the on-disk cache when a
    previous process already compiled it, else by compiling once —  and
    failures are cached so broken environments pay the probe exactly
    once per process.
    """
    global _kernel, _failed
    if _kernel is not None:
        return _kernel
    if _failed or os.environ.get(_DISABLE_ENV):
        return None
    try:
        _kernel = _load()
    except Exception:
        _failed = True
        return None
    return _kernel
