"""Optional fused C kernel for the fleet Adam update.

The chunked numpy update in :class:`~repro.nn.bank.FleetAdam` makes ~14
elementwise passes over the moment matrices; at paper scale that is the
single largest slice of a batched training step.  This module compiles
a tiny single-pass C kernel with the system C compiler the first time
it is needed and exposes it through ctypes.  Everything is optional:
when no compiler is available (or compilation fails for any reason) the
caller falls back to the numpy path.

Bit-identity contract: the kernel performs the *exact* float32 op
sequence of ``Adam.step``/``FleetAdam._step_chunked`` — one rounding per
arithmetic op, scalars pre-cast to float32, compiled with
``-ffp-contract=off`` so the compiler cannot fuse a multiply-add into an
FMA with a different rounding.  ``tests/test_nn_bank.py`` asserts the
kernel and the numpy path produce byte-identical parameters.
"""

from __future__ import annotations

import ctypes
import os
import subprocess
import tempfile

import numpy as np

__all__ = ["fused_adam_step"]

#: Set to a non-empty value to force the numpy fallback (benchmarks and
#: tests use this to exercise both paths).
_DISABLE_ENV = "REPRO_NO_FUSED_ADAM"

_SOURCE = r"""
#include <math.h>

/* One Adam update over n contiguous float32 elements, mirroring
 * repro.nn.optim.Adam.step op for op:
 *   m    = m*b1 + (1-b1)*g
 *   v    = v*b2 + (1-b2)*(g*g)
 *   p   -= decay*p                      (decoupled pre-step decay)
 *   p   -= (lr*(m/bc1)) / (sqrt(v/bc2) + eps)
 * Every intermediate is a float; each op rounds once. */
void adam_step(float *p, const float *g, float *m, float *v,
               long long n, float b1, float omb1, float b2, float omb2,
               float bc1, float bc2, float lr, float eps, float decay)
{
    long long i;
    for (i = 0; i < n; ++i) {
        float mi = m[i] * b1;
        mi = mi + omb1 * g[i];
        m[i] = mi;
        float vi = v[i] * b2;
        float gs = g[i] * g[i];
        vi = vi + omb2 * gs;
        v[i] = vi;
        float num = lr * (mi / bc1);
        float den = sqrtf(vi / bc2) + eps;
        float pi = p[i];
        if (decay != 0.0f) {
            pi = pi - decay * pi;
        }
        p[i] = pi - num / den;
    }
}
"""

_kernel = None
_failed = False

_F32P = np.ctypeslib.ndpointer(dtype=np.float32, flags="C_CONTIGUOUS")


def _compile():
    build_dir = tempfile.mkdtemp(prefix="repro-fused-adam-")
    src = os.path.join(build_dir, "adam.c")
    lib_path = os.path.join(build_dir, "adam.so")
    with open(src, "w") as fh:
        fh.write(_SOURCE)
    subprocess.run(
        [
            "cc",
            "-O2",
            "-ffp-contract=off",
            "-shared",
            "-fPIC",
            src,
            "-o",
            lib_path,
            "-lm",
        ],
        check=True,
        capture_output=True,
        timeout=120,
    )
    lib = ctypes.CDLL(lib_path)
    lib.adam_step.argtypes = [
        _F32P,  # p
        _F32P,  # g
        _F32P,  # m
        _F32P,  # v
        ctypes.c_longlong,  # n
        *[ctypes.c_float] * 9,  # b1, 1-b1, b2, 1-b2, bc1, bc2, lr, eps, decay
    ]
    lib.adam_step.restype = None
    return lib.adam_step


def fused_adam_step():
    """The compiled ``adam_step`` entry point, or None if unavailable.

    The first call attempts compilation; failures are cached so broken
    environments pay the probe exactly once.
    """
    global _kernel, _failed
    if _kernel is not None:
        return _kernel
    if _failed or os.environ.get(_DISABLE_ENV):
        return None
    try:
        _kernel = _compile()
    except Exception:
        _failed = True
        return None
    return _kernel
