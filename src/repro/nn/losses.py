"""Loss functions returning per-sample values and gradients.

LbChat repeatedly needs *per-sample* losses (coreset layering, Eq. 6,
Eq. 8), so every loss here returns a ``(batch,)`` vector; reductions are
left to the caller.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "mse_loss",
    "l1_loss",
    "waypoint_l1",
    "fleet_waypoint_l1",
    "softmax_cross_entropy",
]


def mse_loss(pred: np.ndarray, target: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Mean squared error per sample.

    Returns ``(loss_per_sample, grad_wrt_pred)`` where the gradient is of
    the *mean over the batch* so it feeds straight into ``backward``.
    """
    diff = pred - target
    per_sample = (diff**2).reshape(diff.shape[0], -1).mean(axis=1)
    grad = 2.0 * diff / (diff[0].size * diff.shape[0])
    return per_sample, grad


def l1_loss(pred: np.ndarray, target: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Mean absolute error per sample, with batch-mean gradient."""
    diff = pred - target
    per_sample = np.abs(diff).reshape(diff.shape[0], -1).mean(axis=1)
    grad = np.sign(diff) / (diff[0].size * diff.shape[0])
    return per_sample, grad


def waypoint_l1(
    pred: np.ndarray, target: np.ndarray, weights: np.ndarray | None = None
) -> tuple[float, np.ndarray, np.ndarray]:
    """Weighted L1 loss over predicted waypoints.

    Parameters
    ----------
    pred, target:
        ``(batch, n_waypoints * 2)`` flattened waypoint offsets.
    weights:
        Optional per-sample weights (coreset weights ``w_C(d)`` or data
        weights ``w(d)``).  Normalized internally so the scalar loss is a
        weighted mean.

    Returns
    -------
    (scalar_loss, per_sample_loss, grad_wrt_pred)
    """
    diff = pred - target
    per_sample = np.abs(diff).mean(axis=1)
    if weights is None:
        weights = np.ones(pred.shape[0], dtype=pred.dtype)
    # Dtype-stable: weights follow the prediction dtype (float32 for the
    # driving model), so the gradient and the cached per-sample losses
    # never silently upcast to float64.
    weights = np.asarray(weights, dtype=pred.dtype)
    total = weights.sum()
    if total <= 0:
        raise ValueError("weights must have positive sum")
    norm = weights / total
    scalar = float(per_sample @ norm)
    grad = np.sign(diff) * (norm[:, None] / diff.shape[1])
    return scalar, per_sample, grad


def fleet_waypoint_l1(
    pred: np.ndarray, target: np.ndarray, weights: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """:func:`waypoint_l1` over a stacked fleet, one node per leading row.

    Parameters
    ----------
    pred, target:
        ``(n_nodes, batch, n_waypoints * 2)`` stacked waypoint offsets
        (``target`` may broadcast, e.g. a shared ``(batch, dim)`` set).
    weights:
        Optional ``(n_nodes, batch)`` per-sample weights, normalized per
        node.

    Returns
    -------
    (scalar_loss_per_node, per_sample_loss, grad_wrt_pred)
        Shapes ``(n_nodes,)``, ``(n_nodes, batch)`` and ``pred.shape``.
        Elementwise this mirrors :func:`waypoint_l1` exactly — same op
        sequence, same dtype — so batched training matches per-node
        training bit-for-bit on the loss side.
    """
    diff = pred - target
    per_sample = np.abs(diff).mean(axis=2)
    if weights is None:
        weights = np.ones(per_sample.shape, dtype=pred.dtype)
    weights = np.asarray(weights, dtype=pred.dtype)
    totals = weights.sum(axis=1, keepdims=True)
    if np.any(totals <= 0):
        raise ValueError("weights must have positive sum for every node")
    norm = weights / totals
    scalars = (per_sample * norm).sum(axis=1)
    grad = np.sign(diff) * (norm[:, :, None] / diff.shape[2])
    return scalars, per_sample, grad


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Cross-entropy per sample with integer labels, batch-mean gradient."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    probs = exp / exp.sum(axis=1, keepdims=True)
    batch = logits.shape[0]
    per_sample = -np.log(np.clip(probs[np.arange(batch), labels], 1e-12, None))
    grad = probs.copy()
    grad[np.arange(batch), labels] -= 1.0
    return per_sample, grad / batch
