"""Learning-rate schedulers and gradient clipping.

Small utilities layered over the optimizers: step decay and cosine
annealing schedules (wrapping any optimizer with an ``lr`` attribute),
and global-norm gradient clipping, commonly used when merged models
inject sudden parameter shifts into an Adam state.
"""

from __future__ import annotations

import numpy as np

from repro.nn.params import Parameter

__all__ = ["StepLR", "CosineLR", "clip_grad_norm"]


class StepLR:
    """Multiply the learning rate by ``gamma`` every ``step_size`` steps."""

    def __init__(self, optimizer, step_size: int, gamma: float = 0.5):
        if step_size < 1:
            raise ValueError(f"step_size must be >= 1: {step_size}")
        if not 0 < gamma <= 1:
            raise ValueError(f"gamma must lie in (0, 1]: {gamma}")
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self._steps = 0

    def step(self) -> float:
        """Advance one training step; returns the updated lr."""
        self._steps += 1
        decays = self._steps // self.step_size
        self.optimizer.lr = self.base_lr * self.gamma**decays
        return self.optimizer.lr


class CosineLR:
    """Cosine annealing from the base lr to ``min_lr`` over ``total_steps``."""

    def __init__(self, optimizer, total_steps: int, min_lr: float = 0.0):
        if total_steps < 1:
            raise ValueError(f"total_steps must be >= 1: {total_steps}")
        self.optimizer = optimizer
        self.total_steps = total_steps
        self.min_lr = min_lr
        self.base_lr = optimizer.lr
        self._steps = 0

    def step(self) -> float:
        """Advance one training step; returns the updated lr."""
        self._steps = min(self._steps + 1, self.total_steps)
        progress = self._steps / self.total_steps
        self.optimizer.lr = self.min_lr + 0.5 * (self.base_lr - self.min_lr) * (
            1.0 + np.cos(np.pi * progress)
        )
        return self.optimizer.lr


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clipping norm.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive: {max_norm}")
    total = float(np.sqrt(sum(float((p.grad**2).sum()) for p in params)))
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        for p in params:
            p.grad *= scale
    return total
