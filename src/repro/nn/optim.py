"""Optimizers over :class:`~repro.nn.params.Parameter` lists."""

from __future__ import annotations

import numpy as np

from repro.nn.params import Parameter

__all__ = ["SGD", "Adam"]


def _flatten_buffers(buffers: list[np.ndarray]) -> np.ndarray:
    """Concatenate per-parameter state buffers into one flat vector."""
    if not buffers:
        return np.zeros(0)
    return np.concatenate([buf.ravel() for buf in buffers])


def _restore_buffers(buffers: list[np.ndarray], flat: np.ndarray) -> None:
    """Split a flat vector back into per-parameter state buffers."""
    flat = np.asarray(flat)
    total = sum(buf.size for buf in buffers)
    if flat.size != total:
        raise ValueError(
            f"optimizer state has {flat.size} entries, model needs {total}"
        )
    offset = 0
    for buf in buffers:
        chunk = flat[offset : offset + buf.size]
        buf[...] = chunk.reshape(buf.shape).astype(buf.dtype, copy=False)
        offset += buf.size


class SGD:
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, params: list[Parameter], lr: float, momentum: float = 0.0):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive: {lr}")
        self.params = params
        self.lr = lr
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in params]

    def step(self) -> None:
        """Apply one (momentum) SGD update from accumulated grads."""
        for p, vel in zip(self.params, self._velocity):
            if self.momentum:
                vel *= self.momentum
                vel += p.grad
                p.data -= self.lr * vel
            else:
                p.data -= self.lr * p.grad

    def zero_grad(self) -> None:
        """Clear accumulated gradients on all managed parameters."""
        for p in self.params:
            p.zero_grad()

    def snapshot(self) -> dict:
        """Internal state as plain arrays (checkpoint state)."""
        return {"velocity": _flatten_buffers(self._velocity)}

    def restore(self, state: dict) -> None:
        """Replace internal state with a :meth:`snapshot`'s."""
        _restore_buffers(self._velocity, state["velocity"])


class Adam:
    """Adam (Kingma & Ba) with bias correction.

    The paper trains the driving model with lr 1e-4, the default here.
    """

    def __init__(
        self,
        params: list[Parameter],
        lr: float = 1e-4,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive: {lr}")
        if weight_decay < 0:
            raise ValueError(f"weight decay must be non-negative: {weight_decay}")
        self.params = params
        self.lr = lr
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in params]
        self._v = [np.zeros_like(p.data) for p in params]

    def step(self) -> None:
        """Apply one bias-corrected Adam update (plus optional decay)."""
        self._step += 1
        bc1 = 1.0 - self.beta1**self._step
        bc2 = 1.0 - self.beta2**self._step
        for p, m, v in zip(self.params, self._m, self._v):
            m *= self.beta1
            m += (1.0 - self.beta1) * p.grad
            v *= self.beta2
            v += (1.0 - self.beta2) * (p.grad**2)
            m_hat = m / bc1
            v_hat = v / bc2
            if self.weight_decay:
                # Decoupled (AdamW-style) decay — the training-time face
                # of Eq. 6's structural-risk term.  Per Loshchilov &
                # Hutter, the decay shrinks the *pre-step* parameters;
                # decaying after the update would compound the decay
                # with the step just taken.
                p.data -= self.lr * self.weight_decay * p.data
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def zero_grad(self) -> None:
        """Clear accumulated gradients on all managed parameters."""
        for p in self.params:
            p.zero_grad()

    def snapshot(self) -> dict:
        """Internal state as plain arrays (checkpoint state)."""
        return {
            "step": int(self._step),
            "m": _flatten_buffers(self._m),
            "v": _flatten_buffers(self._v),
        }

    def restore(self, state: dict) -> None:
        """Replace internal state with a :meth:`snapshot`'s."""
        self._step = int(state["step"])
        _restore_buffers(self._m, state["m"])
        _restore_buffers(self._v, state["v"])
