"""Parameters and flat-vector utilities.

LbChat treats a model as a point in parameter space: it sparsifies,
transmits, and convexly combines parameter vectors.  These helpers map
between a structured model and the flat ``float32`` vector the rest of
the system manipulates.
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.nn.layers import Module

__all__ = [
    "Parameter",
    "get_flat_params",
    "set_flat_params",
    "get_flat_grads",
    "clone_model",
    "num_params",
]


class Parameter:
    """A learnable array with an accumulated gradient."""

    __slots__ = ("data", "grad", "name")

    def __init__(self, data: np.ndarray, name: str = ""):
        self.data = np.asarray(data, dtype=np.float32)
        self.grad = np.zeros_like(self.data)
        self.name = name

    @property
    def size(self) -> int:
        """Number of scalar entries in this parameter."""
        return int(self.data.size)

    def zero_grad(self) -> None:
        """Reset the accumulated gradient to zero in place."""
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Parameter({self.name!r}, shape={self.data.shape})"


def num_params(model: "Module") -> int:
    """Total number of scalar parameters in ``model``."""
    return sum(p.size for p in model.parameters())


def get_flat_params(model: "Module") -> np.ndarray:
    """Concatenate all parameters into one float32 vector (a copy)."""
    parts = [p.data.ravel() for p in model.parameters()]
    if not parts:
        return np.zeros(0, dtype=np.float32)
    return np.concatenate(parts).astype(np.float32, copy=True)


def set_flat_params(model: "Module", flat: np.ndarray) -> None:
    """Write ``flat`` back into the model's parameter arrays in place."""
    flat = np.asarray(flat, dtype=np.float32)
    expected = num_params(model)
    if flat.size != expected:
        raise ValueError(f"flat vector has {flat.size} entries, model needs {expected}")
    offset = 0
    for p in model.parameters():
        chunk = flat[offset : offset + p.size]
        p.data[...] = chunk.reshape(p.data.shape)
        offset += p.size


def get_flat_grads(model: "Module") -> np.ndarray:
    """Concatenate all parameter gradients into one float32 vector."""
    parts = [p.grad.ravel() for p in model.parameters()]
    if not parts:
        return np.zeros(0, dtype=np.float32)
    return np.concatenate(parts).astype(np.float32, copy=True)


def clone_model(model: "Module") -> "Module":
    """Deep-copy a model (parameters, structure, no shared arrays)."""
    return copy.deepcopy(model)
