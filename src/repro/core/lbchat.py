"""LbChat trainer — Algorithm 2 on the event engine.

Each vehicle trains continuously and, when idle, ranks the idle
neighbors in radio range by the Eq. 5 priority score computed from
shared routes, then runs the full pairwise chat protocol with the best
one.  Both participants are busy for the chat's simulated duration.

Training itself runs through :class:`~repro.core.trainer_base.
TrainerBase`'s fleet engine when enabled: all vehicles' train timers
fire at the same instants (busy state gates chats, never training), so
the fleet takes one batched step per instant, and every chat-side
operation here — compression, Eq. 8 aggregation, coreset absorption —
works on zero-copy views into the shared parameter bank.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.chat import pairwise_chat
from repro.core.trainer_base import (
    TrainerBase,
    TrainerConfig,
    pair_times_from_state,
    pair_times_state,
)

__all__ = ["LbChatConfig", "LbChatTrainer"]


@dataclass
class LbChatConfig(TrainerConfig):
    """LbChat-specific knobs on top of the shared timeline config."""

    #: Anticipated combined relative model size when *estimating* how
    #: many bytes a chat will move (the actual value comes from Eq. 7).
    anticipated_psi_total: float = 0.6
    #: Ablation switches (§IV-F): fixed equal compression instead of
    #: Eq. 7, and plain averaging instead of Eq. 8.
    equal_compression: bool = False
    mean_aggregation: bool = False
    #: §IV-G: share coresets only, never models (the SCO variant).
    coreset_only: bool = False
    #: Disable Eq. 5 route-based prioritization (extra ablation): pick a
    #: random idle neighbor instead of the best-scoring one.
    prioritize_neighbors: bool = True
    #: Partner-selection policy ("priority" = Eq. 5; also "random",
    #: "nearest", "longest_contact" — see repro.core.selection).
    selection_policy: str = "priority"
    #: Dynamic T_B (§III-C suggests it): divide the time budget by the
    #: number of available neighbors so crowded moments leave room to
    #: chat with several peers, subject to a floor.
    dynamic_time_budget: bool = False
    min_time_budget: float = 5.0
    #: §V extension: with a multicast-capable radio (e.g. the
    #: data-centric pub/sub radio) a vehicle broadcasts its coreset to
    #: every idle neighbor in one transmission before pairwise chats.
    multicast_coresets: bool = False
    #: Re-broadcast to the same neighbor at most this often.
    multicast_cooldown: float = 120.0


class LbChatTrainer(TrainerBase):
    """The paper's method; ablation variants via :class:`LbChatConfig`."""

    name = "LbChat"

    def __init__(self, nodes, traces, validation, config: LbChatConfig | None = None):
        super().__init__(nodes, traces, validation, config or LbChatConfig())
        self.config: LbChatConfig
        self._last_multicast: dict[tuple[int, int], float] = {}
        from repro.core.chatlog import ChatLog

        self.chat_log = ChatLog(max_records=self.config.chat_log_budget)
        if self.config.overlap_chat:
            from repro.core.overlap import TransferScheduler

            self.overlap = TransferScheduler(self)

    def on_scan(self, i: int) -> None:
        """Pick the best idle neighbor (Eq. 5) and run a chat."""
        if self.config.multicast_coresets:
            self._multicast_coreset(i)
        j = self._pick_partner(i)
        if j is None:
            return
        self._chat(i, j)

    def _multicast_coreset(self, i: int) -> None:
        """One broadcast delivers the coreset to every idle neighbor.

        Transmission time is a single coreset at the *worst* receiver's
        goodput (multicast runs at the rate the farthest subscriber can
        sustain); receivers absorb passively.
        """
        now = self.sim.now
        node = self.nodes[i]
        targets = [
            j
            for j in self.idle_neighbors(i)
            if now - self._last_multicast.get((i, j), -np.inf)
            >= self.config.multicast_cooldown
        ]
        if not targets:
            return
        worst = max(self.traces.distance(i, j, now) for j in targets)
        goodput = self.wireless.goodput_factor(worst)
        if goodput <= 0:
            return
        rate = self.config.channel.bytes_per_second * goodput
        duration = node.coreset.nominal_bytes / rate
        for j in targets:
            self.nodes[j].absorb_coreset(node.coreset)
            self._last_multicast[(i, j)] = now
        self.occupy(i, duration)
        self.counters.add("multicasts")
        self.counters.add("multicast_receivers", len(targets))

    # -- partner selection (Eq. 5) ------------------------------------------------

    def _pick_partner(self, i: int) -> int | None:
        from repro.core.selection import get_selection_policy

        candidates = self.idle_neighbors(i)
        if not candidates:
            return None
        name = self.config.selection_policy if self.config.prioritize_neighbors else "random"
        return get_selection_policy(name)(self, i, candidates)

    # -- the chat itself ------------------------------------------------------------

    def _chat(self, i: int, j: int) -> None:
        now = self.sim.now
        estimate = self.contact_estimate(i, j, self.estimate_chat_bytes(i, j, 1.0))
        contact_deadline = now + max(estimate.contact_duration, 1.0)
        time_budget = self.config.time_budget
        if self.config.dynamic_time_budget:
            n_available = max(len(self.idle_neighbors(i)), 1)
            time_budget = max(
                self.config.time_budget / n_available, self.config.min_time_budget
            )
        if self.overlap is not None:
            self._chat_overlapped(i, j, estimate, contact_deadline, time_budget)
            return
        outcome = pairwise_chat(
            self.nodes[i],
            self.nodes[j],
            self.pair_distance_fn(i, j),
            start_time=now,
            contact_deadline=contact_deadline,
            wireless=self.wireless,
            channel=self.config.channel,
            time_budget=time_budget,
            lambda_c=self.config.lambda_c,
            equal_compression=self.config.equal_compression,
            mean_aggregation=self.config.mean_aggregation,
            coreset_only=self.config.coreset_only,
            expected_goodput=estimate.mean_goodput_factor,
        )
        self.occupy(i, outcome.duration)
        self.occupy(j, outcome.duration)
        self.note_chat(i, j)
        self.note_transfer_window(i, j, outcome.duration)
        self.counters.add("chats")
        self._account_chat(now, i, j, outcome)

    def _account_chat(self, started_at: float, i: int, j: int, outcome) -> None:
        """Log/counter bookkeeping for a resolved chat outcome.

        The synchronous path calls this right after the chat returns; the
        overlapped path defers it to the commit barrier (or the plan end
        for chats that never launched a transfer).
        """
        from repro.core.chatlog import ChatRecord

        self.chat_log.append(
            ChatRecord.from_outcome(
                started_at, self.nodes[i].node_id, self.nodes[j].node_id, outcome
            )
        )
        self.counters.add("chat_seconds", outcome.duration)
        if outcome.i_attempted:
            self.receive_rate.observe(self.nodes[i].node_id, outcome.i_received_model)
        if outcome.j_attempted:
            self.receive_rate.observe(self.nodes[j].node_id, outcome.j_received_model)
        if outcome.coresets_exchanged:
            self.counters.add("coresets_exchanged", 2)
            self.counters.add(
                "frames_absorbed", outcome.absorbed_by_i + outcome.absorbed_by_j
            )

    # -- overlapped chats (plan now, transfer in the background) -------------------

    def _chat_overlapped(
        self, i: int, j: int, estimate, contact_deadline: float, time_budget: float
    ) -> None:
        """Plan the chat synchronously; ship models as a background flight.

        Radios are occupied only for the plan phase — the transfer window
        is covered by the :class:`~repro.core.ledger.TransferLedger`'s
        in-flight marks, which block chats without blocking training.
        """
        from repro.core.overlap import plan_chat
        from repro.telemetry import hooks as telemetry

        now = self.sim.now
        plan = plan_chat(
            self.nodes[i],
            self.nodes[j],
            i,
            j,
            self.pair_distance_fn(i, j),
            start_time=now,
            contact_deadline=contact_deadline,
            wireless=self.wireless,
            channel=self.config.channel,
            time_budget=time_budget,
            lambda_c=self.config.lambda_c,
            equal_compression=self.config.equal_compression,
            mean_aggregation=self.config.mean_aggregation,
            coreset_only=self.config.coreset_only,
            expected_goodput=estimate.mean_goodput_factor,
            prober=self.overlap.prober_for(self.nodes[i]),
        )
        self.occupy(i, plan.elapsed)
        self.occupy(j, plan.elapsed)
        self.note_chat(i, j)
        self.counters.add("chats")
        if plan.flight is None:
            # The chat resolved in planning (abort, SCO, psi = 0):
            # finalize immediately, as the synchronous path would.
            self.note_transfer_window(i, j, plan.outcome.duration)
            telemetry.on_overlap_outcome(
                now, now + plan.outcome.duration, plan.outcome,
                committed=not plan.outcome.aborted,
            )
            self._account_chat(now, i, j, plan.outcome)
        else:
            self.note_transfer_window(i, j, plan.flight.model_deadline - now)
            self.overlap.launch(plan.flight)

    def on_overlap_commit(self, flight) -> None:
        """Scheduler callback: a flight committed (or aborted) — account it."""
        self._account_chat(flight.plan_start, flight.i, flight.j, flight.outcome)

    # -- checkpointing ------------------------------------------------------------

    def extra_state(self) -> dict:
        from dataclasses import asdict

        return {
            "last_multicast": pair_times_state(self._last_multicast),
            "chat_log": [asdict(record) for record in self.chat_log.records],
            "chat_log_dropped": self.chat_log.dropped,
        }

    def restore_extra(self, state) -> None:
        from repro.core.chatlog import ChatLog, ChatRecord

        self._last_multicast = pair_times_from_state(state["last_multicast"])
        log = ChatLog(max_records=self.config.chat_log_budget)
        for record in state["chat_log"]:
            log.append(ChatRecord(**record))
        log.dropped = int(state.get("chat_log_dropped", 0))
        self.chat_log = log
