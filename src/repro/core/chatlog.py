"""Structured per-chat logging for post-hoc analysis.

The trainer's counters aggregate; the chat log keeps each exchange as a
record — who chatted, when, the Eq. 7 decision, what succeeded — so
analyses like "how often was only one direction worth sending?" or
"what ψ did Eq. 7 pick against contact length?" are one list
comprehension away.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.chat import ChatOutcome

__all__ = ["ChatRecord", "ChatLog"]


@dataclass(frozen=True)
class ChatRecord:
    """One pairwise chat, flattened for analysis."""

    time: float
    initiator: str
    partner: str
    duration: float
    coresets_exchanged: bool
    psi_i: float
    psi_j: float
    i_received: bool
    j_received: bool
    absorbed: int
    aborted: str

    @classmethod
    def from_outcome(
        cls, time: float, initiator: str, partner: str, outcome: ChatOutcome
    ) -> "ChatRecord":
        """Flatten a ChatOutcome into a record."""
        psi_i = outcome.psi.psi_i if outcome.psi else 0.0
        psi_j = outcome.psi.psi_j if outcome.psi else 0.0
        return cls(
            time=time,
            initiator=initiator,
            partner=partner,
            duration=outcome.duration,
            coresets_exchanged=outcome.coresets_exchanged,
            psi_i=psi_i,
            psi_j=psi_j,
            i_received=outcome.i_received_model,
            j_received=outcome.j_received_model,
            absorbed=outcome.absorbed_by_i + outcome.absorbed_by_j,
            aborted=outcome.aborted,
        )


@dataclass
class ChatLog:
    """Chat records with summary queries, optionally budget-bounded.

    ``max_records > 0`` turns the log into a ring: appending past the
    budget evicts the oldest records (``dropped`` counts them), so a
    city-scale run's log stays O(budget) instead of O(total chats).
    The default keeps the paper scales' unbounded append-only log.
    """

    records: list[ChatRecord] = field(default_factory=list)
    max_records: int = 0
    dropped: int = 0

    def append(self, record: ChatRecord) -> None:
        """Add one record, evicting the oldest past ``max_records``."""
        self.records.append(record)
        if self.max_records > 0 and len(self.records) > self.max_records:
            excess = len(self.records) - self.max_records
            del self.records[:excess]
            self.dropped += excess

    def __len__(self) -> int:
        return len(self.records)

    # -- summaries ------------------------------------------------------------

    def mean_psi(self) -> float:
        """Average relative model size sent per direction, over all chats."""
        if not self.records:
            return 0.0
        values = [r.psi_i for r in self.records] + [r.psi_j for r in self.records]
        return float(np.mean(values))

    def one_sided_fraction(self) -> float:
        """Fraction of completed chats where only one side sent a model.

        Direct evidence of Eq. 7's asymmetric allocation: the valuable
        model gets the contact, the worthless one stays home.
        """
        completed = [r for r in self.records if r.coresets_exchanged and not r.aborted]
        if not completed:
            return 0.0
        one_sided = [
            r
            for r in completed
            if (r.psi_i > 0.01) != (r.psi_j > 0.01)
        ]
        return len(one_sided) / len(completed)

    def abort_counts(self) -> dict[str, int]:
        """How many chats died at each protocol stage."""
        out: dict[str, int] = {}
        for record in self.records:
            if record.aborted:
                out[record.aborted] = out.get(record.aborted, 0) + 1
        return out

    def per_vehicle_chats(self) -> dict[str, int]:
        """Chat participation count per vehicle."""
        out: dict[str, int] = {}
        for record in self.records:
            for vehicle in (record.initiator, record.partner):
                out[vehicle] = out.get(vehicle, 0) + 1
        return out
