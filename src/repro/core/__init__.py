"""LbChat — the paper's primary contribution.

A vehicle continuously trains on its local dataset; upon encountering
peers it (1) prioritizes whom to chat with via route sharing (Eq. 5),
(2) exchanges coresets and evaluates models on them to assess peer-model
value (§III-B/C), (3) jointly optimizes both sides' model compression
ratios (Eq. 7), (4) aggregates the received model with loss-derived
weights (Eq. 8), and (5) absorbs the peer's coreset into its local
dataset, keeping its own coreset fresh by merge-and-reduce (§III-D).
"""

from repro.core.value import ModelValue, assess_value
from repro.core.psi import PsiLossMap, build_psi_map, optimize_compression
from repro.core.aggregate import aggregate_models
from repro.core.node import NodeConfig, VehicleNode
from repro.core.chat import ChatOutcome, pairwise_chat
from repro.core.chatlog import ChatLog, ChatRecord
from repro.core.handshake import HandshakeMediator, ProposalOutcome
from repro.core.incentives import IncentiveConfig, IncentiveLedger
from repro.core.lbchat import LbChatConfig, LbChatTrainer
from repro.core.selection import SELECTION_POLICIES, get_selection_policy

__all__ = [
    "ChatLog",
    "ChatRecord",
    "HandshakeMediator",
    "ProposalOutcome",
    "IncentiveConfig",
    "IncentiveLedger",
    "SELECTION_POLICIES",
    "get_selection_policy",
    "ModelValue",
    "assess_value",
    "PsiLossMap",
    "build_psi_map",
    "optimize_compression",
    "aggregate_models",
    "NodeConfig",
    "VehicleNode",
    "ChatOutcome",
    "pairwise_chat",
    "LbChatConfig",
    "LbChatTrainer",
]
