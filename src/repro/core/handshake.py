"""Asynchronous pairwise exchange agreement (§III-A).

Vehicles determine their exchange sequences independently, so proposal
cycles can arise: A proposes to B while B proposes to C and C proposes
to A — a distributed deadlock the paper notes "can be addressed by
setting a maximum waiting time or utilizing other existing approaches".

:class:`HandshakeMediator` models that agreement protocol explicitly on
the discrete-event engine:

* a vehicle *proposes* to one peer and blocks awaiting a response;
* an idle peer accepts immediately; a busy or otherwise-engaged peer
  rejects;
* **mutual proposals** (A<->B simultaneously) are detected and resolved
  as an acceptance (lower id counts as the acceptor);
* a proposal that hears nothing within ``max_wait`` times out, breaking
  any proposal cycle.

The main :class:`~repro.core.lbchat.LbChatTrainer` arranges chats
atomically (equivalent to this mediator with zero signalling latency);
this module exists to demonstrate — and regression-test — that the
protocol is livelock-free under the paper's maximum-waiting-time rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.engine import Event, Simulator

__all__ = ["PeerState", "ProposalOutcome", "HandshakeMediator"]


class PeerState(Enum):
    """Coarse state of a vehicle in the handshake protocol."""
    IDLE = "idle"
    PROPOSING = "proposing"
    CHATTING = "chatting"


class ProposalOutcome(Enum):
    """Terminal result of one chat proposal."""
    ACCEPTED = "accepted"
    REJECTED = "rejected"
    TIMED_OUT = "timed_out"


@dataclass
class _Proposal:
    proposer: int
    target: int
    event: Event
    resolved: bool = False


@dataclass
class HandshakeMediator:
    """Arbitrates chat proposals between vehicles.

    Parameters
    ----------
    sim:
        The shared simulator.
    max_wait:
        Maximum time a proposer waits for an answer before giving up —
        the paper's deadlock-breaking rule.
    signal_delay:
        One-way latency of a proposal/answer message (assistive-info
        sized, so near-zero; kept explicit for realism).
    """

    sim: Simulator
    max_wait: float = 2.0
    signal_delay: float = 0.05
    _states: dict[int, PeerState] = field(default_factory=dict)
    _outgoing: dict[int, _Proposal] = field(default_factory=dict)

    def state(self, vehicle: int) -> PeerState:
        """Current protocol state of a vehicle."""
        return self._states.get(vehicle, PeerState.IDLE)

    # -- chat lifecycle -------------------------------------------------------

    def begin_chat(self, a: int, b: int) -> None:
        """Mark both vehicles as chatting (after an accepted proposal)."""
        self._states[a] = PeerState.CHATTING
        self._states[b] = PeerState.CHATTING

    def end_chat(self, a: int, b: int) -> None:
        """Mark both chat participants idle again."""
        self._states[a] = PeerState.IDLE
        self._states[b] = PeerState.IDLE

    # -- proposals -------------------------------------------------------

    def propose(self, proposer: int, target: int):
        """Propose a chat; yields from a process, returns the outcome.

        Usage inside a process::

            outcome = yield from mediator.propose(i, j)
            if outcome is ProposalOutcome.ACCEPTED:
                ...  # run the chat, then mediator.end_chat(i, j)
        """
        if proposer == target:
            raise ValueError("cannot propose to oneself")
        if self.state(proposer) is not PeerState.IDLE:
            raise RuntimeError(f"vehicle {proposer} is not idle")
        proposal = _Proposal(proposer, target, self.sim.event())
        self._states[proposer] = PeerState.PROPOSING
        self._outgoing[proposer] = proposal
        # The proposal message arrives after the signalling delay.
        self.sim.call_at(self.sim.now + self.signal_delay, lambda: self._deliver(proposal))
        # Give up after max_wait.
        self.sim.call_at(self.sim.now + self.max_wait, lambda: self._expire(proposal))
        outcome = yield proposal.event
        return outcome

    def _deliver(self, proposal: _Proposal) -> None:
        if proposal.resolved:
            return
        target_state = self.state(proposal.target)
        if target_state is PeerState.IDLE:
            self._accept(proposal)
        elif target_state is PeerState.PROPOSING:
            counter = self._outgoing.get(proposal.target)
            if counter is not None and counter.target == proposal.proposer:
                # Mutual proposal: resolve both as one acceptance.
                self._resolve(counter, ProposalOutcome.ACCEPTED, chat=False)
                self._accept(proposal)
            else:
                # Target is courting someone else: reject so the
                # proposer can move on (no waiting chains).
                self._resolve(proposal, ProposalOutcome.REJECTED)
        else:  # CHATTING
            self._resolve(proposal, ProposalOutcome.REJECTED)

    def _accept(self, proposal: _Proposal) -> None:
        self.begin_chat(proposal.proposer, proposal.target)
        self._resolve(proposal, ProposalOutcome.ACCEPTED, chat=True)

    def _expire(self, proposal: _Proposal) -> None:
        if not proposal.resolved:
            self._resolve(proposal, ProposalOutcome.TIMED_OUT)

    def _resolve(
        self, proposal: _Proposal, outcome: ProposalOutcome, chat: bool = False
    ) -> None:
        if proposal.resolved:
            return
        proposal.resolved = True
        self._outgoing.pop(proposal.proposer, None)
        if not chat and self.state(proposal.proposer) is PeerState.PROPOSING:
            self._states[proposal.proposer] = PeerState.IDLE
        proposal.event.succeed(outcome)
