"""Partner-selection policies.

LbChat ranks neighbors with the Eq. 5 priority score; the baselines use
simpler rules (DP picks a random neighbor, DFL-DDS the nearest).  This
module names those policies explicitly so selection can be studied in
isolation — the trainers keep their historical defaults, and the
selection ablation bench swaps policies on otherwise-identical LbChat.

A policy is a callable ``(trainer, i, candidates) -> j | None`` over the
trainer's public helpers (contact estimates, traces, node configs).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.net.contact import priority_score

__all__ = [
    "select_random",
    "select_nearest",
    "select_longest_contact",
    "select_priority",
    "SELECTION_POLICIES",
    "get_selection_policy",
]

SelectionPolicy = Callable[[object, int, list], Optional[int]]


def select_random(trainer, i: int, candidates: list) -> int | None:
    """Uniform choice among idle neighbors (DP's rule)."""
    if not candidates:
        return None
    rng = trainer.nodes[i].rng
    return int(candidates[rng.integers(len(candidates))])


def select_nearest(trainer, i: int, candidates: list) -> int | None:
    """Closest idle neighbor (DFL-DDS's rule)."""
    if not candidates:
        return None
    now = trainer.sim.now
    return int(min(candidates, key=lambda j: trainer.traces.distance(i, j, now)))


def select_longest_contact(trainer, i: int, candidates: list) -> int | None:
    """The neighbor whose predicted contact lasts longest.

    A plausible-but-naive alternative to Eq. 5: it ignores completion
    probability and urgency, so long-but-lossy contacts win.
    """
    if not candidates:
        return None
    best, best_duration = None, -1.0
    for j in candidates:
        estimate = trainer.contact_estimate(i, j, exchange_bytes=1.0)
        if estimate.contact_duration > best_duration:
            best, best_duration = j, estimate.contact_duration
    return best


def select_priority(trainer, i: int, candidates: list) -> int | None:
    """Eq. 5: maximize z * p * min(B) (LbChat's rule).

    Every candidate can score exactly zero even though contact exists —
    ``z`` truncates to 0 whenever no single contact fits the anticipated
    exchange, and ``p`` can underflow.  Idling in that case wastes real
    encounters, so the policy falls back to the longest predicted
    contact among candidates that are reachable at all; only candidates
    with no predicted contact whatsoever are skipped (chatting with them
    would abort at the assist stage).
    """
    if not candidates:
        return None
    best, best_score = None, 0.0
    estimates = {}
    for j in candidates:
        exchange_bytes = trainer.estimate_chat_bytes(
            i, j, getattr(trainer.config, "anticipated_psi_total", 0.6)
        )
        estimate = trainer.contact_estimate(i, j, exchange_bytes)
        estimates[j] = estimate
        score = priority_score(
            estimate,
            trainer.nodes[i].config.bandwidth_bps,
            trainer.nodes[j].config.bandwidth_bps,
        )
        if score > best_score:
            best, best_score = j, score
    if best is None:
        reachable = [j for j in candidates if estimates[j].contact_duration > 0.0]
        if reachable:
            return select_longest_contact(trainer, i, reachable)
    return best


SELECTION_POLICIES: dict[str, SelectionPolicy] = {
    "random": select_random,
    "nearest": select_nearest,
    "longest_contact": select_longest_contact,
    "priority": select_priority,
}


def get_selection_policy(name: str) -> SelectionPolicy:
    """Look up a selection policy by name."""
    try:
        return SELECTION_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown selection policy {name!r}; choose from {sorted(SELECTION_POLICIES)}"
        ) from None
