"""A vehicle learner node: model + dataset + coreset + training state.

The node bundles everything one vehicle owns in Algorithm 2 and exposes
the operations the chat protocol and the baselines need.  It is
transport-agnostic: all communication timing lives in
:mod:`repro.core.chat` and the trainers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compression import CompressedModel, compress_topk, decompress
from repro.core.aggregate import aggregate_models, aggregation_weights
from repro.core.psi import DEFAULT_PSI_GRID, PsiLossMap, build_psi_map
from repro.coreset import (
    Coreset,
    PenaltyConfig,
    merge_coresets,
    penalized_loss,
    reduce_coreset,
)
from repro.nn import Adam, waypoint_l1
from repro.nn.params import get_flat_params, set_flat_params
from repro.sim.dataset import DrivingDataset, Frame
from repro.telemetry import hooks as telemetry

__all__ = ["NodeConfig", "VehicleNode"]


@dataclass(frozen=True)
class NodeConfig:
    """Per-vehicle learning parameters (paper defaults from §IV-A)."""

    coreset_size: int = 150
    batch_size: int = 64
    learning_rate: float = 1e-4
    nominal_model_bytes: int = 52 * 1024 * 1024
    bandwidth_bps: float = 31e6
    penalty: PenaltyConfig = field(default_factory=PenaltyConfig)
    psi_grid: tuple[float, ...] = DEFAULT_PSI_GRID
    #: Rebuild the coreset after this many absorbed coresets/train steps.
    coreset_refresh_steps: int = 25
    #: Merge-and-reduce instead of full rebuilds while the dataset is
    #: growing quickly (§III-D improvement).
    use_merge_reduce: bool = True
    #: Coreset construction strategy: "layered" (Algorithm 1),
    #: "uniform" or "kmeans" (§V alternatives).
    coreset_strategy: str = "layered"
    #: Model compressor: "topk" (§III-C) or "quantize" (the alternative
    #: the paper notes can be dropped in).
    compressor: str = "topk"
    #: Stratify minibatches uniformly over commands — the standard
    #: branched-imitation trick (rare turn branches starve otherwise).
    balance_commands: bool = True
    #: Apply Eq. 6's L2 term during *training* as decoupled weight decay
    #: (evaluations always include it via the penalty config).
    train_with_weight_decay: bool = False


class VehicleNode:
    """One vehicle's learning state and LbChat operations."""

    def __init__(
        self,
        node_id: str,
        model,
        dataset: DrivingDataset,
        config: NodeConfig,
        rng: np.random.Generator,
    ):
        if len(dataset) == 0:
            raise ValueError(f"node {node_id} needs a non-empty local dataset")
        self.node_id = node_id
        self.model = model
        self.dataset = dataset
        self.config = config
        self.rng = rng
        weight_decay = (
            config.penalty.lambda_l2 if config.train_with_weight_decay else 0.0
        )
        self.optimizer = Adam(
            model.parameters(), lr=config.learning_rate, weight_decay=weight_decay
        )
        self.model_version = 0
        self.train_steps = 0
        self._loss_cache: dict[str, tuple[int, float]] = {}
        self._steps_since_refresh = 0
        self.coreset: Coreset = self.refresh_coreset()

    # -- training ------------------------------------------------------------

    def train_step(self) -> float:
        """One weighted minibatch SGD step; returns the batch loss."""
        bev, commands, targets, _ = self.dataset.sample_batch(
            self.config.batch_size,
            self.rng,
            balance_commands=self.config.balance_commands,
        )
        pred = self.model.forward(bev, commands)
        scalar, _, grad = waypoint_l1(pred, targets)
        self.model.zero_grad()
        self.model.backward(grad)
        self.optimizer.step()
        self.model_version += 1
        self.train_steps += 1
        self._steps_since_refresh += 1
        return scalar

    # -- evaluation ------------------------------------------------------------

    def per_sample_losses(self, dataset: DrivingDataset) -> np.ndarray:
        """Per-sample waypoint losses of the current model on ``dataset``.

        Cached by (model version, frame id): Eq. 8 and Algorithm 1 reuse
        losses heavily, and the paper calls out caching them (§III-D).
        """
        missing_idx = []
        losses = np.zeros(len(dataset))
        ids = dataset.ids
        for i, frame_id in enumerate(ids):
            cached = self._loss_cache.get(frame_id)
            if cached is not None and cached[0] == self.model_version:
                losses[i] = cached[1]
            else:
                missing_idx.append(i)
        if missing_idx:
            subset = dataset.subset(missing_idx)
            bev, commands, targets, _ = subset.arrays()
            pred = self.model.forward(bev, commands)
            _, per_sample, _ = waypoint_l1(pred, targets)
            for j, i in enumerate(missing_idx):
                losses[i] = per_sample[j]
                self._loss_cache[ids[i]] = (self.model_version, float(per_sample[j]))
        return losses

    def evaluate(self, dataset: DrivingDataset, with_penalty: bool = True) -> float:
        """Weighted loss of the current model on ``dataset`` (Eq. 6)."""
        losses = self.per_sample_losses(dataset)
        _, commands, _, weights = dataset.arrays()
        if with_penalty and self.config.penalty.enabled:
            return penalized_loss(self.model, losses, commands, weights, self.config.penalty)
        total = weights.sum()
        return float(losses @ (weights / total))

    def evaluate_model_on(self, model, dataset: DrivingDataset) -> float:
        """Weighted loss of an *arbitrary* model (e.g. a peer's) — uncached."""
        bev, commands, targets, weights = dataset.arrays()
        pred = model.forward(bev, commands)
        scalar, per_sample, _ = waypoint_l1(pred, targets, weights=weights)
        if self.config.penalty.enabled:
            return penalized_loss(model, per_sample, commands, weights, self.config.penalty)
        return scalar

    # -- coreset ------------------------------------------------------------

    def refresh_coreset(self) -> Coreset:
        """Rebuild the coreset from the local dataset.

        Uses the configured construction strategy — Algorithm 1 layered
        sampling by default, or the §V alternatives.
        """
        from repro.coreset.strategies import build_coreset_with

        losses = self.per_sample_losses(self.dataset)
        self.coreset = build_coreset_with(
            self.config.coreset_strategy,
            self.dataset,
            losses,
            self.config.coreset_size,
            self.rng,
        )
        self._steps_since_refresh = 0
        telemetry.on_coreset_refresh(self.node_id, len(self.coreset))
        return self.coreset

    def maybe_refresh_coreset(self) -> None:
        """Rebuild the coreset if the refresh interval elapsed."""
        if self._steps_since_refresh >= self.config.coreset_refresh_steps:
            self.refresh_coreset()

    def absorb_coreset(self, received: Coreset) -> int:
        """Expand the local dataset with a received coreset (§III-D).

        Original sample weights are reset to the local convention (all
        equal, per the paper).  Returns the number of new frames.
        Afterwards the own coreset is updated — by merge-and-reduce when
        configured, else it will be rebuilt on the next refresh.
        """
        before = len(self.dataset)
        frames = [
            Frame(f.frame_id, f.bev, f.command, f.waypoints, 1.0)
            for f in received.data.frames()
        ]
        self.dataset.extend(frames)
        added = len(self.dataset) - before
        if added and self.config.use_merge_reduce:
            merged = merge_coresets(self.coreset, received)
            losses = self.per_sample_losses(merged.data)
            self.coreset = reduce_coreset(
                merged, losses, self.config.coreset_size, self.rng
            )
            telemetry.on_coreset_merge(self.node_id, added)
        return added

    # -- model exchange ------------------------------------------------------------

    def build_psi_map(self) -> PsiLossMap:
        """Fit phi: compression level -> loss on the own coreset."""
        return build_psi_map(
            self.model,
            lambda probe: self.evaluate_model_on(probe, self.coreset.data),
            self.config.nominal_model_bytes,
            psi_grid=self.config.psi_grid,
            compress_fn=lambda flat, psi: self.compress_model(psi),
        )

    def compress_model(self, psi: float) -> CompressedModel:
        """Compress the current parameters to relative size ~psi.

        Top-k sparsification by default; "quantize" maps psi to the
        nearest bit width (quantization offers discrete size levels).
        """
        flat = get_flat_params(self.model)
        if self.config.compressor == "quantize":
            from repro.compression import compress_quantize

            bits = int(np.clip(round(psi * 32), 1, 32))
            return compress_quantize(flat, bits, self.config.nominal_model_bytes)
        return compress_topk(flat, psi, self.config.nominal_model_bytes)

    def receive_and_aggregate(
        self,
        compressed: CompressedModel,
        eval_set: DrivingDataset,
        mean_weights: bool = False,
    ) -> tuple[float, float]:
        """Materialize a received model and merge it in with Eq. 8.

        The sparse model is overlaid on the local parameters (unsent
        coordinates keep local values), both models are scored on
        ``eval_set`` (typically C_i ∪ C_j), and the loss-weighted
        combination replaces the local parameters.  ``mean_weights``
        forces a plain 0.5/0.5 average (the §IV-F ablation).

        Returns the (w_local, w_received) weights used.
        """
        local = get_flat_params(self.model)
        received = decompress(compressed, fill=local)
        if mean_weights:
            weights = (0.5, 0.5)
            merged = aggregate_models(local, received, 1.0, 1.0)
        else:
            from repro.nn.params import clone_model

            probe = clone_model(self.model)
            set_flat_params(probe, received)
            loss_local = self.evaluate(eval_set)
            loss_received = self.evaluate_model_on(probe, eval_set)
            merged = aggregate_models(local, received, loss_local, loss_received)
            weights = aggregation_weights(loss_local, loss_received)
        set_flat_params(self.model, merged)
        self.model_version += 1
        return weights

    def replace_model_params(self, flat: np.ndarray) -> None:
        """Overwrite parameters (used by server-based baselines)."""
        set_flat_params(self.model, flat)
        self.model_version += 1

    @property
    def flat_params(self) -> np.ndarray:
        """The model's parameters as one flat vector (a copy)."""
        return get_flat_params(self.model)
