"""A vehicle learner node: model + dataset + coreset + training state.

The node bundles everything one vehicle owns in Algorithm 2 and exposes
the operations the chat protocol and the baselines need.  It is
transport-agnostic: all communication timing lives in
:mod:`repro.core.chat` and the trainers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.compression import CompressedModel, compress_topk, decompress
from repro.core.aggregate import aggregate_models, aggregation_weights
from repro.core.psi import DEFAULT_PSI_GRID, PsiLossMap, build_psi_map
from repro.coreset import (
    Coreset,
    PenaltyConfig,
    merge_coresets,
    penalized_loss,
    reduce_coreset,
)
from repro.nn import Adam, waypoint_l1
from repro.nn.params import get_flat_params, set_flat_params
from repro.sim.dataset import DrivingDataset
from repro.telemetry import hooks as telemetry

__all__ = ["NodeConfig", "VehicleNode"]

#: Cache-miss evaluations run through the model in batches of at most
#: this many frames — a memory guard for very large datasets.  Kept
#: large so realistic miss sets still evaluate in a single forward,
#: exactly like the pre-vectorization code (batch composition affects
#: BLAS accumulation order, and bit-identity with recorded goldens
#: depends on it).
_EVAL_CHUNK = 8192

#: Slot-vector memos kept per node before the memo table is reset
#: (short-lived subset datasets would otherwise accumulate entries).
_MAX_SLOT_MEMOS = 64


@dataclass(frozen=True)
class NodeConfig:
    """Per-vehicle learning parameters (paper defaults from §IV-A)."""

    coreset_size: int = 150
    batch_size: int = 64
    learning_rate: float = 1e-4
    nominal_model_bytes: int = 52 * 1024 * 1024
    bandwidth_bps: float = 31e6
    penalty: PenaltyConfig = field(default_factory=PenaltyConfig)
    psi_grid: tuple[float, ...] = DEFAULT_PSI_GRID
    #: Rebuild the coreset after this many absorbed coresets/train steps.
    coreset_refresh_steps: int = 25
    #: Merge-and-reduce instead of full rebuilds while the dataset is
    #: growing quickly (§III-D improvement).
    use_merge_reduce: bool = True
    #: Coreset construction strategy: "layered" (Algorithm 1),
    #: "uniform" or "kmeans" (§V alternatives).
    coreset_strategy: str = "layered"
    #: Model compressor: "topk" (§III-C) or "quantize" (the alternative
    #: the paper notes can be dropped in).
    compressor: str = "topk"
    #: Stratify minibatches uniformly over commands — the standard
    #: branched-imitation trick (rare turn branches starve otherwise).
    balance_commands: bool = True
    #: Apply Eq. 6's L2 term during *training* as decoupled weight decay
    #: (evaluations always include it via the penalty config).
    train_with_weight_decay: bool = False
    #: Hard cap on live loss-cache entries (0 = unbounded, the paper
    #: scales).  City-scale fleets set this so per-node resident state
    #: stays O(coreset + validation) instead of growing with every
    #: frame that ever churned through a merge.  Enforced after each
    #: cache write; when even the current-version entries exceed the
    #: budget the cache is dropped wholesale (it is a pure recompute
    #: cache, so correctness is unaffected).
    loss_cache_budget: int = 0


class VehicleNode:
    """One vehicle's learning state and LbChat operations."""

    def __init__(
        self,
        node_id: str,
        model,
        dataset: DrivingDataset,
        config: NodeConfig,
        rng: np.random.Generator,
    ):
        if len(dataset) == 0:
            raise ValueError(f"node {node_id} needs a non-empty local dataset")
        self.node_id = node_id
        self.model = model
        self.dataset = dataset
        self.config = config
        self.rng = rng
        weight_decay = (
            config.penalty.lambda_l2 if config.train_with_weight_decay else 0.0
        )
        self.optimizer = Adam(
            model.parameters(), lr=config.learning_rate, weight_decay=weight_decay
        )
        self.model_version = 0
        self.train_steps = 0
        #: Read-only flat view of this node's bank row once a
        #: :class:`~repro.core.fleet.FleetEngine` adopts the node.
        self._bank_flat: np.ndarray | None = None
        # Loss cache, vectorized: frame ids map to slots in flat
        # version/value arrays, so lookups over a whole dataset are two
        # fancy-indexing operations instead of a per-frame dict walk.
        self._cache_slots: dict[str, int] = {}
        self._cache_versions = np.full(64, -1, dtype=np.int64)
        self._cache_values = np.zeros(64, dtype=np.float32)
        self._cache_epoch = 0
        #: dataset uid -> (generation, epoch, id→slot vector) memo.
        self._slot_memo: dict[int, tuple[int, int, np.ndarray]] = {}
        self._steps_since_refresh = 0
        self.coreset: Coreset = self.refresh_coreset()

    # -- fleet attachment ----------------------------------------------------

    def bind_bank(self, flat_row: np.ndarray, optimizer) -> None:
        """Adopt bank-backed storage (called by ``FleetEngine``).

        ``flat_row`` is a read-only flat view of this node's bank row;
        ``optimizer`` is the per-row facade replacing the standalone
        Adam.  The model's ``Parameter`` objects were already rebound to
        bank views by :meth:`~repro.nn.bank.ParamBank.adopt`, so every
        per-node operation keeps working — this just records the
        zero-copy handles.
        """
        self._bank_flat = flat_row
        self.optimizer = optimizer

    # -- training ------------------------------------------------------------

    def train_step(self) -> float:
        """One weighted minibatch SGD step; returns the batch loss."""
        bev, commands, targets, _ = self.dataset.sample_batch(
            self.config.batch_size,
            self.rng,
            balance_commands=self.config.balance_commands,
        )
        pred = self.model.forward(bev, commands)
        scalar, _, grad = waypoint_l1(pred, targets)
        self.model.zero_grad()
        self.model.backward(grad)
        self.optimizer.step()
        self.model_version += 1
        self.train_steps += 1
        self._steps_since_refresh += 1
        return scalar

    # -- evaluation ------------------------------------------------------------

    def _slots_for(self, dataset: DrivingDataset) -> np.ndarray:
        """Cache-slot row per frame of ``dataset`` (memoized per generation).

        New frame ids are assigned slots on first sight; the resulting
        vector is reused until the dataset mutates or the cache is
        compacted, so the per-id dict walk happens once per dataset
        generation instead of once per evaluation.
        """
        memo = self._slot_memo.get(dataset.uid)
        if (
            memo is not None
            and memo[0] == dataset.generation
            and memo[1] == self._cache_epoch
        ):
            return memo[2]
        ids = dataset.ids
        slots = np.empty(len(ids), dtype=np.intp)
        cache_slots = self._cache_slots
        for i, frame_id in enumerate(ids):
            slot = cache_slots.get(frame_id)
            if slot is None:
                slot = len(cache_slots)
                if slot >= self._cache_versions.size:
                    grown = max(2 * self._cache_versions.size, slot + 1)
                    versions = np.full(grown, -1, dtype=np.int64)
                    versions[: self._cache_versions.size] = self._cache_versions
                    values = np.zeros(grown, dtype=np.float32)
                    values[: self._cache_values.size] = self._cache_values
                    self._cache_versions, self._cache_values = versions, values
                cache_slots[frame_id] = slot
            slots[i] = slot
        if len(self._slot_memo) >= _MAX_SLOT_MEMOS:
            self._slot_memo.clear()
        self._slot_memo[dataset.uid] = (dataset.generation, self._cache_epoch, slots)
        return slots

    def _evict_stale_losses(self) -> None:
        """Drop cache entries from superseded model versions.

        Provably behaviour-neutral: ``model_version`` only increases, so
        a stale entry can never produce a cache hit again — it would
        only sit in memory.  Compacting on refresh bounds the cache by
        the number of frames evaluated at the current version, fixing
        the unbounded growth the per-id dict suffered as frames churned
        through merged/reduced coresets and validation evaluations.
        """
        used = len(self._cache_slots)
        live = self._cache_versions[:used] == self.model_version
        if bool(live.all()):
            return
        remap = np.cumsum(live) - 1  # old slot -> new slot (where live)
        self._cache_slots = {
            frame_id: int(remap[slot])
            for frame_id, slot in self._cache_slots.items()
            if live[slot]
        }
        n_live = len(self._cache_slots)
        capacity = max(64, n_live)
        versions = np.full(capacity, -1, dtype=np.int64)
        values = np.zeros(capacity, dtype=np.float32)
        versions[:n_live] = self._cache_versions[:used][live]
        values[:n_live] = self._cache_values[:used][live]
        self._cache_versions, self._cache_values = versions, values
        self._cache_epoch += 1  # invalidate memoized slot vectors
        self._slot_memo.clear()

    @property
    def loss_cache_size(self) -> int:
        """Number of frames with a (possibly stale) cached loss."""
        return len(self._cache_slots)

    def _enforce_cache_budget(self) -> None:
        """Keep the loss cache within ``config.loss_cache_budget``.

        Tries the behaviour-neutral stale compaction first; if the
        current-version entries alone exceed the budget, drops the
        cache entirely — later evaluations recompute, trading time for
        the bounded footprint city-scale fleets need.
        """
        budget = self.config.loss_cache_budget
        if budget <= 0 or len(self._cache_slots) <= budget:
            return
        self._evict_stale_losses()
        if len(self._cache_slots) <= budget:
            return
        self._cache_slots = {}
        self._cache_versions = np.full(64, -1, dtype=np.int64)
        self._cache_values = np.zeros(64, dtype=np.float32)
        self._cache_epoch += 1
        self._slot_memo.clear()

    def per_sample_losses(self, dataset: DrivingDataset) -> np.ndarray:
        """Per-sample waypoint losses of the current model on ``dataset``.

        Cached by (model version, frame id): Eq. 8 and Algorithm 1 reuse
        losses heavily, and the paper calls out caching them (§III-D).
        Lookups are vectorized over slot arrays; misses are evaluated in
        chunked batched forwards and written back in bulk.
        """
        n = len(dataset)
        losses = np.zeros(n, dtype=np.float32)
        if n == 0:
            return losses
        slots = self._slots_for(dataset)
        hit = self._cache_versions[slots] == self.model_version
        if hit.any():
            losses[hit] = self._cache_values[slots[hit]]
        miss = np.flatnonzero(~hit)
        if miss.size:
            bev, commands, targets, _ = dataset.arrays()
            for start in range(0, miss.size, _EVAL_CHUNK):
                chunk = miss[start : start + _EVAL_CHUNK]
                pred = self.model.forward(bev[chunk], commands[chunk])
                _, per_sample, _ = waypoint_l1(pred, targets[chunk])
                losses[chunk] = per_sample
                chunk_slots = slots[chunk]
                self._cache_values[chunk_slots] = losses[chunk]
                self._cache_versions[chunk_slots] = self.model_version
            self._enforce_cache_budget()
        return losses

    def cached_losses(self, dataset: DrivingDataset) -> tuple[np.ndarray, np.ndarray | None]:
        """``(slots, values)`` if the whole dataset hits the loss cache.

        ``values`` is ``None`` on any miss — the fleet engine then
        recomputes the node's losses in one batched forward and writes
        them back via :meth:`store_losses`.
        """
        slots = self._slots_for(dataset)
        hit = self._cache_versions[slots] == self.model_version
        if hit.all():
            return slots, self._cache_values[slots]
        return slots, None

    def store_losses(self, slots: np.ndarray, values: np.ndarray) -> None:
        """Write externally computed per-sample losses into the cache."""
        self._cache_values[slots] = values
        self._cache_versions[slots] = self.model_version
        self._enforce_cache_budget()

    def evaluate(self, dataset: DrivingDataset, with_penalty: bool = True) -> float:
        """Weighted loss of the current model on ``dataset`` (Eq. 6)."""
        losses = self.per_sample_losses(dataset)
        _, commands, _, weights = dataset.arrays()  # cached views, no re-stack
        if with_penalty and self.config.penalty.enabled:
            return penalized_loss(self.model, losses, commands, weights, self.config.penalty)
        total = weights.sum()
        return float(losses @ (weights / total))

    def evaluate_model_on(self, model, dataset: DrivingDataset) -> float:
        """Weighted loss of an *arbitrary* model (e.g. a peer's) — uncached."""
        bev, commands, targets, weights = dataset.arrays()
        pred = model.forward(bev, commands)
        scalar, per_sample, _ = waypoint_l1(pred, targets, weights=weights)
        if self.config.penalty.enabled:
            return penalized_loss(model, per_sample, commands, weights, self.config.penalty)
        return scalar

    # -- coreset ------------------------------------------------------------

    def refresh_coreset(self) -> Coreset:
        """Rebuild the coreset from the local dataset.

        Uses the configured construction strategy — Algorithm 1 layered
        sampling by default, or the §V alternatives.
        """
        from repro.coreset.strategies import build_coreset_with

        losses = self.per_sample_losses(self.dataset)
        self.coreset = build_coreset_with(
            self.config.coreset_strategy,
            self.dataset,
            losses,
            self.config.coreset_size,
            self.rng,
        )
        self._steps_since_refresh = 0
        self._evict_stale_losses()
        telemetry.on_coreset_refresh(self.node_id, len(self.coreset))
        return self.coreset

    def maybe_refresh_coreset(self) -> None:
        """Rebuild the coreset if the refresh interval elapsed."""
        if self._steps_since_refresh >= self.config.coreset_refresh_steps:
            self.refresh_coreset()

    def absorb_coreset(self, received: Coreset) -> int:
        """Expand the local dataset with a received coreset (§III-D).

        Original sample weights are reset to the local convention (all
        equal, per the paper).  Returns the number of new frames.
        Afterwards the own coreset is updated — by merge-and-reduce when
        configured, else it will be rebuilt on the next refresh.
        """
        added = self.dataset.absorb_from(received.data, weight=1.0)
        if added and self.config.use_merge_reduce:
            merged = merge_coresets(self.coreset, received)
            losses = self.per_sample_losses(merged.data)
            self.coreset = reduce_coreset(
                merged, losses, self.config.coreset_size, self.rng
            )
            telemetry.on_coreset_merge(self.node_id, added)
        return added

    # -- model exchange ------------------------------------------------------------

    def build_psi_map(self) -> PsiLossMap:
        """Fit phi: compression level -> loss on the own coreset.

        With the default top-k compressor the psi grid is sampled from
        one shared magnitude ordering (``compress_fn=None`` lets
        :func:`repro.core.psi.build_psi_map` build a
        :class:`~repro.compression.TopkPlan`); quantization has no such
        reusable precomputation and keeps the per-psi path.
        """
        compress_fn = None
        if self.config.compressor != "topk":
            compress_fn = lambda flat, psi: self.compress_model(psi)  # noqa: E731
        return build_psi_map(
            self.model,
            lambda probe: self.evaluate_model_on(probe, self.coreset.data),
            self.config.nominal_model_bytes,
            psi_grid=self.config.psi_grid,
            compress_fn=compress_fn,
        )

    def compress_model(self, psi: float) -> CompressedModel:
        """Compress the current parameters to relative size ~psi.

        Top-k sparsification by default; "quantize" maps psi to the
        nearest bit width (quantization offers discrete size levels).
        """
        flat = self.flat_params
        if self.config.compressor == "quantize":
            from repro.compression import compress_quantize

            bits = int(np.clip(round(psi * 32), 1, 32))
            return compress_quantize(flat, bits, self.config.nominal_model_bytes)
        return compress_topk(flat, psi, self.config.nominal_model_bytes)

    def receive_and_aggregate(
        self,
        compressed: CompressedModel,
        eval_set: DrivingDataset,
        mean_weights: bool = False,
    ) -> tuple[float, float]:
        """Materialize a received model and merge it in with Eq. 8.

        The sparse model is overlaid on the local parameters (unsent
        coordinates keep local values), both models are scored on
        ``eval_set`` (typically C_i ∪ C_j), and the loss-weighted
        combination replaces the local parameters.  ``mean_weights``
        forces a plain 0.5/0.5 average (the §IV-F ablation).

        Returns the (w_local, w_received) weights used.
        """
        local = self.flat_params
        received = decompress(compressed, fill=local)
        if mean_weights:
            weights = (0.5, 0.5)
            merged = aggregate_models(local, received, 1.0, 1.0)
        else:
            from repro.nn.params import clone_model

            probe = clone_model(self.model)
            set_flat_params(probe, received)
            loss_local = self.evaluate(eval_set)
            loss_received = self.evaluate_model_on(probe, eval_set)
            merged = aggregate_models(local, received, loss_local, loss_received)
            weights = aggregation_weights(loss_local, loss_received)
        set_flat_params(self.model, merged)
        self.model_version += 1
        return weights

    def replace_model_params(self, flat: np.ndarray) -> None:
        """Overwrite parameters (used by server-based baselines)."""
        set_flat_params(self.model, flat)
        self.model_version += 1

    @property
    def flat_params(self) -> np.ndarray:
        """The model's parameters as one flat float32 vector.

        Bank-attached nodes return a *read-only view* of their bank row
        — zero-copy, always current, safe to hand to compression and
        aggregation (both read before any write-back).  Detached nodes
        concatenate a fresh copy as before.
        """
        if self._bank_flat is not None:
            return self._bank_flat
        return get_flat_params(self.model)

    # -- checkpointing ------------------------------------------------------------

    def snapshot(self) -> dict:
        """Full node state as a checkpointable tree.

        The RNG is deliberately absent: trainers re-derive every stream
        at checkpoint barriers (``spawn_rng(seed, f"node-{{id}}@ckpt{{k}}")``),
        so no bit-generator state ever needs to round-trip through disk.
        The loss cache *is* captured — which frames miss determines the
        batch composition of the next evaluation, and BLAS accumulation
        order (hence bit-identity) depends on it.
        """
        from repro.checkpoint.state import dataset_state

        used = len(self._cache_slots)
        cache_ids = sorted(self._cache_slots, key=self._cache_slots.__getitem__)
        return {
            "params": get_flat_params(self.model),
            "optimizer": self.optimizer.snapshot(),
            "model_version": self.model_version,
            "train_steps": self.train_steps,
            "steps_since_refresh": self._steps_since_refresh,
            "dataset": dataset_state(self.dataset),
            "coreset_data": dataset_state(self.coreset.data),
            "coreset_source_weights": self.coreset.source_weights.copy(),
            "cache_ids": cache_ids,
            "cache_versions": self._cache_versions[:used].copy(),
            "cache_values": self._cache_values[:used].copy(),
        }

    def restore(self, state) -> None:
        """Overwrite all node state with a snapshot's contents.

        The slot memo is *not* restored: it is a pure recomputation
        cache keyed by dataset generation, and generation counters start
        over in a resumed process — bumping the cache epoch invalidates
        every stale memo instead.
        """
        from repro.checkpoint.state import dataset_from_state

        set_flat_params(self.model, np.asarray(state["params"]))
        self.optimizer.restore(state["optimizer"])
        self.model_version = int(state["model_version"])
        self.train_steps = int(state["train_steps"])
        self._steps_since_refresh = int(state["steps_since_refresh"])
        self.dataset = dataset_from_state(state["dataset"])
        self.coreset = Coreset(
            data=dataset_from_state(state["coreset_data"]),
            source_weights=np.asarray(state["coreset_source_weights"], dtype=float),
        )
        cache_ids = [str(frame_id) for frame_id in state["cache_ids"]]
        self._cache_slots = {frame_id: i for i, frame_id in enumerate(cache_ids)}
        used = len(cache_ids)
        capacity = max(64, used)
        self._cache_versions = np.full(capacity, -1, dtype=np.int64)
        self._cache_values = np.zeros(capacity, dtype=np.float32)
        self._cache_versions[:used] = np.asarray(state["cache_versions"], dtype=np.int64)
        self._cache_values[:used] = np.asarray(state["cache_values"], dtype=np.float32)
        self._cache_epoch += 1
        self._slot_memo.clear()
