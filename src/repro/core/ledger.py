"""Per-vehicle radio occupancy and in-flight transfer bookkeeping.

The trainers historically tracked radio business with a bare
``busy_until`` array on :class:`~repro.core.trainer_base.TrainerBase`.
The :class:`TransferLedger` owns that array now, and adds what
overlapped chats need: a per-node count of *in-flight* background
transfers, so a vehicle stays unavailable for new chats for the whole
life of a transfer whose completion time is not known up front.

Semantics:

* :meth:`occupy` **merges** overlapping occupancy windows — the busy
  horizon is the max of the existing and the new window end.  A second
  ``occupy`` landing inside an active window must never shrink the
  remaining busy time (a shorter chat scheduled while a longer one is
  pending keeps the longer horizon).
* :meth:`is_idle` requires both a clear time window *and* zero in-flight
  transfers.  Without overlapped chats the in-flight count is always
  zero, so the predicate reduces bit-identically to the historical
  ``now >= busy_until[i]``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["TransferLedger"]


class TransferLedger:
    """Occupancy windows + in-flight transfer counts for a fleet."""

    def __init__(self, n_nodes: int):
        self.busy_until = np.zeros(n_nodes)
        self.in_flight = np.zeros(n_nodes, dtype=np.int64)

    def __len__(self) -> int:
        return len(self.busy_until)

    def occupy(self, i: int, now: float, duration: float) -> float:
        """Merge ``[now, now + duration)`` into node ``i``'s busy window.

        Returns the merged busy-until horizon.  Overlapping windows
        merge to the later end; they are never overwritten, so a second
        occupy during an active window cannot shrink it.
        """
        self.busy_until[i] = max(self.busy_until[i], now + duration)
        return float(self.busy_until[i])

    def is_idle(self, i: int, now: float) -> bool:
        """Whether node ``i``'s radio is free at ``now``."""
        return now >= self.busy_until[i] and not self.in_flight[i]

    def begin_flight(self, i: int) -> None:
        """Mark node ``i`` as holding one more in-flight transfer."""
        self.in_flight[i] += 1

    def end_flight(self, i: int) -> None:
        """Release one in-flight transfer held by node ``i``."""
        if self.in_flight[i] <= 0:
            raise ValueError(f"node {i} has no in-flight transfer to end")
        self.in_flight[i] -= 1

    def snapshot(self) -> dict:
        return {
            "busy_until": self.busy_until.copy(),
            "in_flight": self.in_flight.copy(),
        }

    def restore(self, state) -> None:
        self.busy_until = np.asarray(state["busy_until"], dtype=float).copy()
        self.in_flight = np.asarray(state["in_flight"], dtype=np.int64).copy()
