"""A simple contribution ledger for incentive accounting (§V).

The paper assumes "adequate incentive mechanisms exist" for sharing
coresets and models, and points to vehicular crowdsensing markets as
candidates.  This module provides the minimal bookkeeping such a
mechanism needs: a per-vehicle credit ledger where

* *sending* a model that the receiver actually valued earns credit
  proportional to the receiver's Eq. 8 aggregation weight for it (a
  model that dominated the merge was worth more), and a small flat
  amount is earned per shared coreset;
* *receiving* costs the symmetric amounts.

:meth:`IncentiveLedger.allow_exchange` implements a tit-for-tat style
admission rule — a vehicle deep in debt must contribute before it can
keep consuming — which trainers can consult before starting a chat.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["IncentiveConfig", "IncentiveLedger"]


@dataclass(frozen=True)
class IncentiveConfig:
    """Pricing and admission parameters."""

    coreset_credit: float = 1.0
    #: Credit per unit of aggregation weight the receiver gave the model.
    model_credit_scale: float = 10.0
    #: How far below zero a balance may fall before exchanges are gated.
    debt_limit: float = 25.0
    #: Initial stake so new vehicles can bootstrap.
    initial_balance: float = 10.0


class IncentiveLedger:
    """Tracks per-vehicle credit balances across exchanges."""

    def __init__(self, config: IncentiveConfig | None = None):
        self.config = config or IncentiveConfig()
        self._balances: dict[str, float] = {}
        self._earned: dict[str, float] = {}
        self._spent: dict[str, float] = {}

    def balance(self, vehicle: str) -> float:
        """A vehicle's current credit balance."""
        return self._balances.get(vehicle, self.config.initial_balance)

    def _adjust(self, vehicle: str, amount: float) -> None:
        self._balances[vehicle] = self.balance(vehicle) + amount
        if amount >= 0:
            self._earned[vehicle] = self._earned.get(vehicle, 0.0) + amount
        else:
            self._spent[vehicle] = self._spent.get(vehicle, 0.0) - amount

    # -- exchange events ------------------------------------------------------

    def record_coreset_exchange(self, sender: str, receiver: str) -> None:
        """A coreset moved from ``sender`` to ``receiver``."""
        self._adjust(sender, self.config.coreset_credit)
        self._adjust(receiver, -self.config.coreset_credit)

    def record_model_delivery(
        self, sender: str, receiver: str, aggregation_weight: float
    ) -> None:
        """A model was received and merged with the given Eq. 8 weight.

        The weight (in [0, 1]) is the receiver's own measure of how much
        the model was worth — the natural price signal in LbChat.
        """
        if not 0.0 <= aggregation_weight <= 1.0:
            raise ValueError(f"weight must lie in [0, 1]: {aggregation_weight}")
        credit = self.config.model_credit_scale * aggregation_weight
        self._adjust(sender, credit)
        self._adjust(receiver, -credit)

    # -- admission --------------------------------------------------------------

    def allow_exchange(self, vehicle: str) -> bool:
        """Whether ``vehicle`` may start another consuming exchange."""
        return self.balance(vehicle) > -self.config.debt_limit

    # -- reporting --------------------------------------------------------------

    def summary(self) -> dict[str, dict[str, float]]:
        """Per-vehicle balance/earned/spent breakdown."""
        vehicles = set(self._balances) | set(self._earned) | set(self._spent)
        return {
            vehicle: {
                "balance": self.balance(vehicle),
                "earned": self._earned.get(vehicle, 0.0),
                "spent": self._spent.get(vehicle, 0.0),
            }
            for vehicle in sorted(vehicles)
        }

    def total_credit(self) -> float:
        """Conservation check: credit is zero-sum around initial stakes."""
        return sum(
            self.balance(vehicle) - self.config.initial_balance
            for vehicle in self._balances
        )
