"""Fleet-batched training engine over a shared parameter bank.

Every trainer runs all vehicles' local iterations in lock-step — the
discrete-event loop fires each vehicle's train timer at the same
instants, and busy state gates communication only, never training.  The
:class:`FleetEngine` exploits that: when the first vehicle of an instant
fires, it samples every node's minibatch, runs one batched
forward/backward over a :class:`~repro.nn.bank.ParamBank`, and applies a
vectorized Adam step for the whole fleet; the remaining vehicles of the
instant just pick up their precomputed loss.

The engine is strictly an execution strategy.  Nodes keep their own
:class:`~repro.core.node.VehicleNode` API — chats, compression,
psi-probes, checkpoints all operate on per-node views into the bank
(see :mod:`repro.nn.bank`), so attaching the engine changes *where*
tensors live, not what any protocol sees.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.core.node import _EVAL_CHUNK, VehicleNode
from repro.nn._fused import fused_adam_step
from repro.nn.bank import FleetAdam, FleetWaypointNet, ParamBank, RowAdam
from repro.nn.losses import fleet_waypoint_l1, waypoint_l1
from repro.nn.model import WaypointNet
from repro.nn.optim import Adam
from repro.parallel.stepshard import (
    ShmArena,
    StepShard,
    StepWorkerError,
    StepWorkerPool,
    fork_available,
    partition_rows,
)
from repro.sim.dataset import DrivingDataset
from repro.telemetry import hooks

__all__ = ["FleetEngine", "FleetIncompatible"]


class FleetIncompatible(ValueError):
    """The node set cannot share one parameter bank."""


class FleetEngine:
    """Batched forward/backward/update for a homogeneous vehicle fleet.

    Construction adopts every node into a shared :class:`ParamBank`
    (rebinding its ``Parameter`` storage to bank views), imports each
    node's optimizer state into one :class:`FleetAdam`, and swaps the
    node's optimizer for a :class:`RowAdam` facade.  Raises
    :class:`FleetIncompatible` when the nodes differ in model structure
    or optimizer hyperparameters — use :meth:`try_build` to fall back to
    per-node training gracefully.
    """

    def __init__(self, nodes: list[VehicleNode], step_workers: int = 1):
        if len(nodes) < 2:
            raise FleetIncompatible("fleet batching needs at least two nodes")
        first = nodes[0]
        if not isinstance(first.model, WaypointNet):
            raise FleetIncompatible(f"cannot batch {type(first.model).__name__}")
        for node in nodes:
            if not isinstance(node.model, WaypointNet):
                raise FleetIncompatible(f"cannot batch {type(node.model).__name__}")
            if type(node.optimizer) is not Adam:
                raise FleetIncompatible(
                    f"cannot batch optimizer {type(node.optimizer).__name__}"
                )
        opt = first.optimizer
        key = (opt.lr, opt.beta1, opt.beta2, opt.eps, opt.weight_decay)
        for node in nodes:
            o = node.optimizer
            if (o.lr, o.beta1, o.beta2, o.eps, o.weight_decay) != key:
                raise FleetIncompatible("nodes disagree on Adam hyperparameters")
        # When step sharding is requested (and the platform can fork),
        # the parameter/gradient banks and Adam state go into one shared
        # memory arena so forked workers can update their rows in place.
        n = len(nodes)
        requested = max(1, int(step_workers))
        if requested > 1 and not fork_available():
            warnings.warn(
                "step_workers requires the fork start method; "
                "falling back to serial fleet stepping",
                RuntimeWarning,
                stacklevel=2,
            )
            requested = 1
        self.step_workers = requested
        allocator = None
        self._bank_arena: ShmArena | None = None
        if requested > 1:
            n_params = sum(
                int(np.prod(p.data.shape)) if p.data.shape else 1
                for p in first.model.parameters()
            )
            self._bank_arena = ShmArena(
                ShmArena.bytes_for(
                    ((n, n_params), np.float32),  # bank.flat
                    ((n, n_params), np.float32),  # bank.grad_flat
                    ((n, n_params), np.float32),  # optim.m
                    ((n, n_params), np.float32),  # optim.v
                    ((n,), np.int64),  # optim.steps
                )
            )
            allocator = self._bank_arena.alloc
        # Validate everything (structure, batchable layer types) before
        # mutating any node, so a failed build leaves the fleet intact.
        bank = ParamBank(first.model, len(nodes), allocator=allocator)
        try:
            model = FleetWaypointNet(bank, first.model)
            for node in nodes:
                bank._check_compatible(node.model)
        except ValueError as exc:
            raise FleetIncompatible(str(exc)) from exc
        self.nodes = nodes
        self.bank = bank
        self.model = model
        self.optim = FleetAdam(
            bank,
            lr=opt.lr,
            betas=(opt.beta1, opt.beta2),
            eps=opt.eps,
            weight_decay=opt.weight_decay,
            allocator=allocator,
        )
        for row, node in enumerate(nodes):
            self.optim.node_restore(row, node.optimizer.snapshot())
            bank.adopt(row, node.model)
            node.bind_bank(
                bank.row_view(row),
                RowAdam(self.optim, row, node.model.parameters()),
            )
        self._pending: np.ndarray | None = None
        self._consumed = np.ones(len(nodes), dtype=bool)
        # Plain-Python step accounting (cheap enough for the hot loop):
        # how many per-row training events ran, and at what batched
        # width each ran.  ``mean_step_width`` == n_nodes when every
        # step went through the dense bank, 1.0 when everything fell
        # back to detached per-node stepping.
        self.step_events = 0
        self.step_width_sum = 0
        self._batch_bufs: tuple[np.ndarray, ...] | None = None
        # The worker pool spawns lazily at the first full-size batched
        # step (the stacked batch shapes are only known then).
        self._pool: StepWorkerPool | None = None
        self._pool_failed = requested <= 1
        self._batch_arena: ShmArena | None = None
        self._shm_batch: tuple[np.ndarray, ...] | None = None
        self._shm_losses: np.ndarray | None = None

    @property
    def mean_step_width(self) -> float:
        """Mean batched width per training event (0.0 before any step)."""
        if self.step_events == 0:
            return 0.0
        return self.step_width_sum / self.step_events

    @classmethod
    def try_build(
        cls, nodes: list[VehicleNode], step_workers: int = 1
    ) -> "FleetEngine | None":
        """A :class:`FleetEngine`, or ``None`` if the fleet can't batch."""
        try:
            return cls(nodes, step_workers=step_workers)
        except FleetIncompatible:
            return None

    # -- training ------------------------------------------------------------

    def train_tick(self, row: int) -> float:
        """One vehicle's train event inside the lock-step instant.

        The first vehicle of an instant triggers the batched step for
        the whole fleet; later vehicles of the same instant consume
        their precomputed loss.  A vehicle firing twice without the
        others in between (never in the event loop, possible in direct
        calls) simply starts a fresh batch.
        """
        if self._pending is None or self._consumed[row]:
            self._pending = self.train_step_all()
            self._consumed[:] = False
        self._consumed[row] = True
        return float(self._pending[row])

    def train_step_all(self) -> np.ndarray:
        """One batched minibatch step for every node; per-node losses.

        Minibatches are sampled from each node's own RNG in row order —
        the same draws, in the same order, as per-node lock-step
        training.
        """
        nodes = self.nodes
        samples = [
            node.dataset.sample_batch(
                node.config.batch_size,
                node.rng,
                balance_commands=node.config.balance_commands,
            )
            for node in nodes
        ]
        sizes = {sample[0].shape[0] for sample in samples}
        if len(sizes) > 1:
            # Ragged batches (a dataset still smaller than its batch
            # size) cannot stack; train those rows individually.
            self.step_events += len(nodes)
            self.step_width_sum += len(nodes)  # width 1 each
            return np.array(
                [self._train_detached(node, s) for node, s in zip(nodes, samples)]
            )
        self.step_events += len(nodes)
        self.step_width_sum += len(nodes) * len(nodes)
        b = samples[0][0].shape[0]
        if not self._pool_failed and b == nodes[0].config.batch_size:
            losses = self._pool_step(samples, b)
            if losses is not None:
                return losses
        bev, commands, targets = self._stack_batches(samples)
        pred = self.model.forward(bev, commands)
        scalars, _, grad = fleet_waypoint_l1(pred, targets)
        # No zero_grad: the batched backward assigns parameter gradients.
        self.model.backward(grad)
        self.optim.step()
        for node in nodes:
            node.model_version += 1
            node.train_steps += 1
            node._steps_since_refresh += 1
        return np.asarray(scalars, dtype=np.float64)

    def _stack_batches(
        self, samples: list
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Stack per-node minibatches into persistent ``(n, b, ...)`` buffers.

        Reusing the buffers step over step avoids re-faulting tens of
        megabytes of freshly mmap'd pages on every training instant.
        """
        bufs = self._batch_bufs
        shapes = tuple((len(samples), *samples[0][k].shape) for k in range(3))
        if bufs is None or tuple(buf.shape for buf in bufs) != shapes:
            bufs = self._batch_bufs = tuple(
                np.empty(shape, dtype=samples[0][k].dtype)
                for k, shape in enumerate(shapes)
            )
        for row, sample in enumerate(samples):
            bufs[0][row] = sample[0]
            bufs[1][row] = sample[1]
            bufs[2][row] = sample[2]
        return bufs

    @staticmethod
    def _train_detached(node: VehicleNode, sample) -> float:
        """Per-node step on an already-sampled batch (ragged fallback)."""
        bev, commands, targets, _ = sample
        pred = node.model.forward(bev, commands)
        scalar, _, grad = waypoint_l1(pred, targets)
        node.model.zero_grad()
        node.model.backward(grad)
        node.optimizer.step()
        node.model_version += 1
        node.train_steps += 1
        node._steps_since_refresh += 1
        return scalar

    # -- step-worker pool ----------------------------------------------------

    def _spawn_pool(self, samples: list) -> None:
        """Fork the step-worker pool around the first full-size batch.

        Allocates the shared batch/loss buffers (shapes are known now),
        slices the bank and optimizer into contiguous row shards, warms
        the fused Adam kernel so workers inherit the loaded library
        instead of racing to compile, and forks one worker per shard.
        Failure to spawn degrades to serial batched stepping.
        """
        n = len(self.nodes)
        try:
            specs = [((n, *samples[0][k].shape), samples[0][k].dtype) for k in range(3)]
            arena = ShmArena(ShmArena.bytes_for(*specs, ((n,), np.float64)))
            bufs = tuple(arena.alloc(shape, dtype) for shape, dtype in specs)
            losses = arena.alloc((n,), np.float64)
            fused_adam_step()
            template = self.nodes[0].model
            shards = []
            for i, (lo, hi) in enumerate(partition_rows(n, self.step_workers)):
                bank_slice = self.bank.slice_rows(lo, hi)
                shards.append(
                    StepShard(
                        i,
                        lo,
                        hi,
                        FleetWaypointNet(bank_slice, template),
                        self.optim.slice_rows(lo, hi, bank_slice),
                        *bufs,
                        losses,
                    )
                )
            pool = StepWorkerPool(shards)
        except (StepWorkerError, OSError, MemoryError) as exc:
            warnings.warn(
                f"could not spawn step workers ({exc}); "
                "falling back to serial fleet stepping",
                RuntimeWarning,
            )
            self._pool_failed = True
            return
        self._batch_arena = arena
        self._shm_batch = bufs
        self._shm_losses = losses
        self._pool = pool
        hooks.count("stepshard.pools_spawned")
        hooks.set_gauge("stepshard.workers", pool.n_workers)

    def _pool_step(self, samples: list, b: int) -> np.ndarray | None:
        """One sharded batched step; None routes to the serial path.

        The parent has already drawn every node's minibatch (keeping all
        RNG consumption in one process, in row order); here it stages the
        stacked batch into the shared buffers and fans the step command
        out to the workers, which update their disjoint bank rows in
        place.  The per-node losses land in shared memory — returning a
        copy *is* the merge.
        """
        if self._pool is None:
            self._spawn_pool(samples)
            if self._pool is None:
                return None
        bev, commands, targets = self._shm_batch
        if samples[0][0].shape != bev.shape[1:]:
            # Batch geometry changed mid-run (never in the event loop);
            # the pre-sized shared buffers can't take it — step serially.
            return None
        for row, sample in enumerate(samples):
            bev[row] = sample[0]
            commands[row] = sample[1]
            targets[row] = sample[2]
        self._pool.step(b)
        hooks.count("stepshard.steps")
        for node in self.nodes:
            node.model_version += 1
            node.train_steps += 1
            node._steps_since_refresh += 1
        return self._shm_losses.copy()

    def close(self) -> None:
        """Stop the step workers (if any) and merge their telemetry.

        Idempotent; the engine keeps working afterwards on the serial
        batched path (the banks themselves stay valid — they are views
        into an arena this object owns).
        """
        pool, self._pool = self._pool, None
        self._pool_failed = True
        if pool is None:
            return
        for shard, counters in pool.close().items():
            for name, value in counters.items():
                hooks.count(f"stepshard.shard{shard}.{name}", value)

    # -- evaluation ----------------------------------------------------------

    def evaluate_fleet(self, dataset: DrivingDataset) -> np.ndarray:
        """Every node's weighted validation loss, one batched forward.

        Nodes whose loss cache fully covers ``dataset`` at their current
        model version keep their cached values (identical semantics to
        :meth:`VehicleNode.per_sample_losses`); the rest are recomputed
        together by broadcasting the shared validation batch against the
        whole bank, then written back to each node's cache.
        """
        nodes = self.nodes
        n_nodes = len(nodes)
        n = len(dataset)
        if n == 0:
            return np.zeros(n_nodes)
        bev, commands, targets, weights = dataset.arrays()
        slots_list: list[np.ndarray] = []
        values: list[np.ndarray | None] = []
        need = []
        for i, node in enumerate(nodes):
            slots, cached = node.cached_losses(dataset)
            slots_list.append(slots)
            values.append(cached)
            if cached is None:
                need.append(i)
        if need:
            fresh = np.empty((n_nodes, n), dtype=np.float32)
            # Keep total forward work per chunk near the per-node cap.
            chunk = max(1, _EVAL_CHUNK // n_nodes)
            for start in range(0, n, chunk):
                sl = slice(start, start + chunk)
                pred = self.model.forward(bev[sl], commands[sl])
                fresh[:, sl] = np.abs(pred - targets[sl]).mean(axis=2)
            for i in need:
                values[i] = fresh[i]
                nodes[i].store_losses(slots_list[i], fresh[i])
        norm = weights / weights.sum()
        return np.array([float(vals @ norm) for vals in values])
