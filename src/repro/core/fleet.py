"""Fleet-batched training engine over a shared parameter bank.

Every trainer runs all vehicles' local iterations in lock-step — the
discrete-event loop fires each vehicle's train timer at the same
instants, and busy state gates communication only, never training.  The
:class:`FleetEngine` exploits that: when the first vehicle of an instant
fires, it samples every node's minibatch, runs one batched
forward/backward over a :class:`~repro.nn.bank.ParamBank`, and applies a
vectorized Adam step for the whole fleet; the remaining vehicles of the
instant just pick up their precomputed loss.

The engine is strictly an execution strategy.  Nodes keep their own
:class:`~repro.core.node.VehicleNode` API — chats, compression,
psi-probes, checkpoints all operate on per-node views into the bank
(see :mod:`repro.nn.bank`), so attaching the engine changes *where*
tensors live, not what any protocol sees.
"""

from __future__ import annotations

import numpy as np

from repro.core.node import _EVAL_CHUNK, VehicleNode
from repro.nn.bank import FleetAdam, FleetWaypointNet, ParamBank, RowAdam
from repro.nn.losses import fleet_waypoint_l1, waypoint_l1
from repro.nn.model import WaypointNet
from repro.nn.optim import Adam
from repro.sim.dataset import DrivingDataset

__all__ = ["FleetEngine", "FleetIncompatible"]


class FleetIncompatible(ValueError):
    """The node set cannot share one parameter bank."""


class FleetEngine:
    """Batched forward/backward/update for a homogeneous vehicle fleet.

    Construction adopts every node into a shared :class:`ParamBank`
    (rebinding its ``Parameter`` storage to bank views), imports each
    node's optimizer state into one :class:`FleetAdam`, and swaps the
    node's optimizer for a :class:`RowAdam` facade.  Raises
    :class:`FleetIncompatible` when the nodes differ in model structure
    or optimizer hyperparameters — use :meth:`try_build` to fall back to
    per-node training gracefully.
    """

    def __init__(self, nodes: list[VehicleNode]):
        if len(nodes) < 2:
            raise FleetIncompatible("fleet batching needs at least two nodes")
        first = nodes[0]
        if not isinstance(first.model, WaypointNet):
            raise FleetIncompatible(f"cannot batch {type(first.model).__name__}")
        for node in nodes:
            if not isinstance(node.model, WaypointNet):
                raise FleetIncompatible(f"cannot batch {type(node.model).__name__}")
            if type(node.optimizer) is not Adam:
                raise FleetIncompatible(
                    f"cannot batch optimizer {type(node.optimizer).__name__}"
                )
        opt = first.optimizer
        key = (opt.lr, opt.beta1, opt.beta2, opt.eps, opt.weight_decay)
        for node in nodes:
            o = node.optimizer
            if (o.lr, o.beta1, o.beta2, o.eps, o.weight_decay) != key:
                raise FleetIncompatible("nodes disagree on Adam hyperparameters")
        # Validate everything (structure, batchable layer types) before
        # mutating any node, so a failed build leaves the fleet intact.
        bank = ParamBank(first.model, len(nodes))
        try:
            model = FleetWaypointNet(bank, first.model)
            for node in nodes:
                bank._check_compatible(node.model)
        except ValueError as exc:
            raise FleetIncompatible(str(exc)) from exc
        self.nodes = nodes
        self.bank = bank
        self.model = model
        self.optim = FleetAdam(
            bank,
            lr=opt.lr,
            betas=(opt.beta1, opt.beta2),
            eps=opt.eps,
            weight_decay=opt.weight_decay,
        )
        for row, node in enumerate(nodes):
            self.optim.node_restore(row, node.optimizer.snapshot())
            bank.adopt(row, node.model)
            node.bind_bank(
                bank.row_view(row),
                RowAdam(self.optim, row, node.model.parameters()),
            )
        self._pending: np.ndarray | None = None
        self._consumed = np.ones(len(nodes), dtype=bool)
        self._batch_bufs: tuple[np.ndarray, ...] | None = None

    @classmethod
    def try_build(cls, nodes: list[VehicleNode]) -> "FleetEngine | None":
        """A :class:`FleetEngine`, or ``None`` if the fleet can't batch."""
        try:
            return cls(nodes)
        except FleetIncompatible:
            return None

    # -- training ------------------------------------------------------------

    def train_tick(self, row: int) -> float:
        """One vehicle's train event inside the lock-step instant.

        The first vehicle of an instant triggers the batched step for
        the whole fleet; later vehicles of the same instant consume
        their precomputed loss.  A vehicle firing twice without the
        others in between (never in the event loop, possible in direct
        calls) simply starts a fresh batch.
        """
        if self._pending is None or self._consumed[row]:
            self._pending = self.train_step_all()
            self._consumed[:] = False
        self._consumed[row] = True
        return float(self._pending[row])

    def train_step_all(self) -> np.ndarray:
        """One batched minibatch step for every node; per-node losses.

        Minibatches are sampled from each node's own RNG in row order —
        the same draws, in the same order, as per-node lock-step
        training.
        """
        nodes = self.nodes
        samples = [
            node.dataset.sample_batch(
                node.config.batch_size,
                node.rng,
                balance_commands=node.config.balance_commands,
            )
            for node in nodes
        ]
        sizes = {sample[0].shape[0] for sample in samples}
        if len(sizes) > 1:
            # Ragged batches (a dataset still smaller than its batch
            # size) cannot stack; train those rows individually.
            return np.array(
                [self._train_detached(node, s) for node, s in zip(nodes, samples)]
            )
        bev, commands, targets = self._stack_batches(samples)
        pred = self.model.forward(bev, commands)
        scalars, _, grad = fleet_waypoint_l1(pred, targets)
        # No zero_grad: the batched backward assigns parameter gradients.
        self.model.backward(grad)
        self.optim.step()
        for node in nodes:
            node.model_version += 1
            node.train_steps += 1
            node._steps_since_refresh += 1
        return np.asarray(scalars, dtype=np.float64)

    def _stack_batches(
        self, samples: list
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Stack per-node minibatches into persistent ``(n, b, ...)`` buffers.

        Reusing the buffers step over step avoids re-faulting tens of
        megabytes of freshly mmap'd pages on every training instant.
        """
        bufs = self._batch_bufs
        shapes = tuple((len(samples), *samples[0][k].shape) for k in range(3))
        if bufs is None or tuple(buf.shape for buf in bufs) != shapes:
            bufs = self._batch_bufs = tuple(
                np.empty(shape, dtype=samples[0][k].dtype)
                for k, shape in enumerate(shapes)
            )
        for row, sample in enumerate(samples):
            bufs[0][row] = sample[0]
            bufs[1][row] = sample[1]
            bufs[2][row] = sample[2]
        return bufs

    @staticmethod
    def _train_detached(node: VehicleNode, sample) -> float:
        """Per-node step on an already-sampled batch (ragged fallback)."""
        bev, commands, targets, _ = sample
        pred = node.model.forward(bev, commands)
        scalar, _, grad = waypoint_l1(pred, targets)
        node.model.zero_grad()
        node.model.backward(grad)
        node.optimizer.step()
        node.model_version += 1
        node.train_steps += 1
        node._steps_since_refresh += 1
        return scalar

    # -- evaluation ----------------------------------------------------------

    def evaluate_fleet(self, dataset: DrivingDataset) -> np.ndarray:
        """Every node's weighted validation loss, one batched forward.

        Nodes whose loss cache fully covers ``dataset`` at their current
        model version keep their cached values (identical semantics to
        :meth:`VehicleNode.per_sample_losses`); the rest are recomputed
        together by broadcasting the shared validation batch against the
        whole bank, then written back to each node's cache.
        """
        nodes = self.nodes
        n_nodes = len(nodes)
        n = len(dataset)
        if n == 0:
            return np.zeros(n_nodes)
        bev, commands, targets, weights = dataset.arrays()
        slots_list: list[np.ndarray] = []
        values: list[np.ndarray | None] = []
        need = []
        for i, node in enumerate(nodes):
            slots, cached = node.cached_losses(dataset)
            slots_list.append(slots)
            values.append(cached)
            if cached is None:
                need.append(i)
        if need:
            fresh = np.empty((n_nodes, n), dtype=np.float32)
            # Keep total forward work per chunk near the per-node cap.
            chunk = max(1, _EVAL_CHUNK // n_nodes)
            for start in range(0, n, chunk):
                sl = slice(start, start + chunk)
                pred = self.model.forward(bev[sl], commands[sl])
                fresh[:, sl] = np.abs(pred - targets[sl]).mean(axis=2)
            for i in need:
                values[i] = fresh[i]
                nodes[i].store_losses(slots_list[i], fresh[i])
        norm = weights / weights.sum()
        return np.array([float(vals @ norm) for vals in values])
