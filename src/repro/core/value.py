"""Model value assessment via coresets (§III-B).

A vehicle measures its own model's loss on the peer's coreset and
compares it with the peer model's loss on that same coreset.  The
*value* of the peer's model is the truncated gap

    value_i(x_j) = relu( f(x_i; C_j) − f(x_j; C_j) ):

if the peer's model beats mine on the peer's own data by a wide margin,
that model was trained on data I lack and is worth spending contact
time on; if my model already matches it, there is little to gain.

Note on Eq. 7's printed form: the paper's prose (§III-B and the Eq. 7
discussion) consistently describes the gain as "how much *lower* the
peer model's loss is," while the printed equation subtracts in the
opposite order; we implement the prose semantics, with the compressed
loss ``phi(psi)`` standing in for the sender's loss so that less
compression (higher psi) yields more gain.  DESIGN.md records this.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ModelValue", "assess_value", "truncated_gain"]


def truncated_gain(receiver_loss: float, sender_compressed_loss: float) -> float:
    """relu(receiver's loss − sender's compressed-model loss)."""
    return max(receiver_loss - sender_compressed_loss, 0.0)


@dataclass(frozen=True)
class ModelValue:
    """Both directions of value from one coreset exchange.

    ``loss_i_on_cj`` is vehicle i's model evaluated on coreset C_j, etc.
    ``value_to_i`` is what i stands to gain by receiving j's
    *uncompressed* model (the psi optimization discounts it by
    compression).
    """

    loss_i_on_ci: float
    loss_i_on_cj: float
    loss_j_on_cj: float
    loss_j_on_ci: float

    @property
    def value_to_i(self) -> float:
        """Gain vehicle i expects from receiving j's model."""
        return truncated_gain(self.loss_i_on_cj, self.loss_j_on_cj)

    @property
    def value_to_j(self) -> float:
        """Gain vehicle j expects from receiving i's model."""
        return truncated_gain(self.loss_j_on_ci, self.loss_i_on_ci)


def assess_value(
    loss_i_on_ci: float,
    loss_i_on_cj: float,
    loss_j_on_cj: float,
    loss_j_on_ci: float,
) -> ModelValue:
    """Bundle the four cross-evaluations into a :class:`ModelValue`."""
    for name, value in (
        ("loss_i_on_ci", loss_i_on_ci),
        ("loss_i_on_cj", loss_i_on_cj),
        ("loss_j_on_cj", loss_j_on_cj),
        ("loss_j_on_ci", loss_j_on_ci),
    ):
        if value < 0:
            raise ValueError(f"{name} must be non-negative: {value}")
    return ModelValue(loss_i_on_ci, loss_i_on_cj, loss_j_on_cj, loss_j_on_ci)
