"""Overlapped chats: plan synchronously, transfer in the background.

The synchronous protocol (:mod:`repro.core.chat`) resolves a whole chat
— handshake, coreset exchange, psi planning, and both model transfers —
at the scan instant, and occupies both radios for the summed duration.
This module splits that into two phases:

**Plan phase** (synchronous, at contact start): assistive info,
coreset exchange, cross-evaluations, psi-map fitting, and the Eq. 7
compression decision run exactly as in the synchronous protocol, and
both directions' compressed payloads are captured immediately.  The psi
probes are evaluated as one *dense fleet batch* — the ~7 compressed
variants are stacked into a small :class:`~repro.nn.bank.ParamBank` and
scored with a single :class:`~repro.nn.bank.FleetWaypointNet` forward
over the coreset instead of seven sequential per-model forwards
(:class:`DensePsiProber`); payload compression reuses the psi map's
:class:`~repro.compression.TopkPlan` ordering, avoiding fresh
argpartitions.

**Transfer phase** (background): the model byte-transfers become an
:class:`InFlightTransfer` activity on the virtual clock, advanced one
channel chunk at a time by a :class:`~repro.net.channel.TransferSession`
while every vehicle keeps issuing train ticks at full fleet width.  The
exchanged coresets and models are absorbed atomically at a *commit
barrier* when the flight resolves (completion, range cut, or deadline).

Staleness model (delayed averaging): payloads are snapshots of the
sender's parameters *at plan time*; by commit time both vehicles have
trained further, and Eq. 8 aggregation scores the stale payload against
the receiver's trained-ahead parameters on the plan-time joint coreset.
The synchronous protocol additionally lets the second sender compress
*after* absorbing the first model — overlapped chats drop that coupling
(both payloads are plan-time snapshots), mirroring how collaborative
training frameworks apply background-averaged state at a sync point
rather than freezing the learner.

Flights participate in checkpointing: the scheduler snapshots every
in-flight transfer (session arithmetic state, payloads, captured
coresets, the armed wakeup time) and re-arms each one on resume through
:meth:`TransferScheduler.activities`, so barrier resumes stay
bit-identical even with transfers in the air.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression import CompressedModel, topk_plan
from repro.core.chat import (
    _RESULTS_EXCHANGE_SECONDS,
    _absorb_both,
    ChatOutcome,
    equal_compression_decision,
)
from repro.core.psi import PsiDecision, PsiLossMap, optimize_compression
from repro.core.value import assess_value
from repro.coreset.construction import Coreset
from repro.coreset.penalty import command_loss_entropy
from repro.net.channel import TransferSession, simulate_transfer
from repro.telemetry import hooks as telemetry

__all__ = [
    "ChatPlan",
    "DensePsiProber",
    "InFlightTransfer",
    "TransferLeg",
    "TransferScheduler",
    "plan_chat",
]


class DensePsiProber:
    """Psi-grid probes of one model, evaluated as a fleet batch.

    One probe bank row per grid level: row ``k`` holds the model
    compressed to ``psi_grid[k]`` (dense at ``psi >= 1``).  A single
    shared-batch forward over the coreset then scores every level at
    once — the same per-layer GEMMs the fleet engine uses for training,
    instead of one full forward per level.
    """

    def __init__(self, template, psi_grid):
        from repro.nn.bank import FleetWaypointNet, ParamBank

        self.psis = [float(p) for p in sorted(psi_grid)]
        if len(self.psis) < 2:
            raise ValueError("psi grid needs at least two levels")
        self.bank = ParamBank(template, len(self.psis))
        self.net = FleetWaypointNet(self.bank, template)

    def compatible(self, node) -> bool:
        """Whether ``node``'s model/config fits this probe bank."""
        if node.config.compressor != "topk":
            return False
        if [float(p) for p in sorted(node.config.psi_grid)] != self.psis:
            return False
        try:
            self.bank._check_compatible(node.model)
        except ValueError:
            return False
        return True

    def build(self, node):
        """``(PsiLossMap, TopkPlan)`` for ``node`` in one batched forward."""
        from repro.compression.topk import topk_for_psi

        flat = np.asarray(node.flat_params, dtype=np.float32)
        plan = topk_plan(flat, node.config.nominal_model_bytes)
        n = flat.size
        # Fill rows densest-first: each sparser level copies its denser
        # neighbor and zeroes the next magnitude-order slice, so the
        # whole grid costs one pass over ``plan.order`` instead of a
        # compress + dense decompress per level.  Rows are bit-identical
        # to ``decompress(plan.compress(psi))``.
        prev_row: np.ndarray | None = None
        prev_k = n
        for row in reversed(range(len(self.psis))):
            dst = self.bank.flat[row]
            if self.psis[row] >= 1.0:
                dst[:] = flat
                prev_row, prev_k = dst, n
                continue
            k = topk_for_psi(n, self.psis[row])
            if prev_row is None:
                dst[:] = 0.0
                kept = plan.order[n - k :]
                dst[kept] = flat[kept]
            else:
                dst[:] = prev_row
                dst[plan.order[n - prev_k : n - k]] = 0.0
            prev_row, prev_k = dst, k
        bev, commands, targets, weights = node.coreset.data.arrays()
        pred = self.net.forward(bev, commands)  # (levels, batch, 2w)
        per_sample = np.abs(pred - np.asarray(targets)[None]).mean(axis=2)
        penalty = node.config.penalty
        weights64 = np.asarray(weights, dtype=float)
        weights64 = weights64 / weights64.sum()
        losses = []
        for row in range(len(self.psis)):
            row_losses = per_sample[row]
            if penalty.enabled:
                value = float(np.asarray(row_losses) @ weights64)
                if penalty.lambda_l2 > 0:
                    value += penalty.lambda_l2 * float(
                        np.linalg.norm(self.bank.flat[row])
                    )
                if penalty.lambda_entropy > 0:
                    value += penalty.lambda_entropy * command_loss_entropy(
                        row_losses, commands
                    )
            else:
                norm = np.asarray(weights, dtype=row_losses.dtype)
                value = float(row_losses @ (norm / norm.sum()))
            losses.append(value)
        return PsiLossMap(np.asarray(self.psis), np.asarray(losses)), plan


@dataclass
class TransferLeg:
    """One directional model transfer inside a flight."""

    sender: int  # trainer node index
    receiver: int
    n_bytes: float
    payload: CompressedModel | None
    session: TransferSession | None = None


@dataclass
class InFlightTransfer:
    """A chat's transfer phase, live on the virtual clock."""

    i: int
    j: int
    plan_start: float
    transfer_start: float
    contact_deadline: float
    model_deadline: float
    mean_aggregation: bool
    outcome: ChatOutcome
    legs: list[TransferLeg]
    joint: object  # DrivingDataset captured at plan time (Eq. 8 eval set)
    coreset_i: Coreset  # plan-time coreset snapshots, absorbed at commit
    coreset_j: Coreset
    leg_idx: int = 0
    #: Absolute time of the pending wakeup, and the virtual time that
    #: wakeup was armed (decides same-instant dispatch order on resume).
    next_fire: float | None = None
    armed_at: float = 0.0


@dataclass
class ChatPlan:
    """Result of the synchronous plan phase."""

    outcome: ChatOutcome
    elapsed: float  # plan-phase seconds (handshake through Eq. 7)
    flight: InFlightTransfer | None  # None when the chat ended in planning


def plan_chat(
    node_i,
    node_j,
    i: int,
    j: int,
    distance_fn,
    start_time: float,
    contact_deadline: float,
    wireless,
    channel,
    time_budget: float,
    *,
    lambda_c: float = 0.02,
    refresh_coresets: bool = True,
    equal_compression: bool = False,
    mean_aggregation: bool = False,
    coreset_only: bool = False,
    expected_goodput: float = 1.0,
    prober: DensePsiProber | None = None,
) -> ChatPlan:
    """Run a chat's plan phase; package the transfer phase as a flight.

    Stages 1-4 of the synchronous protocol (assist, coresets,
    cross-evaluations/results, Eq. 7) run unchanged; chats that end in
    planning (stage aborts, coreset-only, psi = 0) are finalized here
    exactly as the synchronous path would.  Otherwise both payloads are
    compressed from plan-time parameter snapshots and returned as an
    unlaunched :class:`InFlightTransfer`.
    """
    outcome = ChatOutcome(duration=0.0)
    now = start_time
    bandwidth = min(node_i.config.bandwidth_bps, node_j.config.bandwidth_bps)
    planning_bandwidth = bandwidth * max(min(expected_goodput, 1.0), 1e-3)

    def shared_channel(n_bytes: float, deadline: float):
        return simulate_transfer(n_bytes, distance_fn, wireless, channel, now, deadline)

    def finish_planned() -> ChatPlan:
        outcome.duration = now - start_time
        return ChatPlan(outcome, now - start_time, None)

    # 1. assistive info both ways.
    assist = shared_channel(2 * channel.assist_info_bytes, contact_deadline)
    now += assist.elapsed
    telemetry.on_chat_stage("assist", now, assist.completed)
    if not assist.completed:
        outcome.aborted = "assist"
        return finish_planned()

    # 2. coresets (rebuild first so they reflect the current model/data).
    if refresh_coresets:
        node_i.maybe_refresh_coreset()
        node_j.maybe_refresh_coreset()
    coreset_bytes = node_i.coreset.nominal_bytes + node_j.coreset.nominal_bytes
    transfer = shared_channel(coreset_bytes, contact_deadline)
    now += transfer.elapsed
    telemetry.on_chat_stage("coresets", now, transfer.completed)
    if not transfer.completed:
        outcome.aborted = "coresets"
        return finish_planned()
    outcome.coresets_exchanged = True

    if coreset_only:
        _absorb_both(node_i, node_j, outcome)
        return finish_planned()

    # 3. cross-evaluations and psi maps (compute treated as free, §IV-A).
    value = assess_value(
        loss_i_on_ci=node_i.evaluate(node_i.coreset.data),
        loss_i_on_cj=node_i.evaluate(node_j.coreset.data),
        loss_j_on_cj=node_j.evaluate(node_j.coreset.data),
        loss_j_on_ci=node_j.evaluate(node_i.coreset.data),
    )
    plan_i = plan_j = None
    if prober is not None and prober.compatible(node_i) and prober.compatible(node_j):
        map_i, plan_i = prober.build(node_i)
        map_j, plan_j = prober.build(node_j)
    else:
        map_i = node_i.build_psi_map()
        map_j = node_j.build_psi_map()
    results = shared_channel(2 * 256, contact_deadline)  # tiny payloads
    now += results.elapsed
    telemetry.on_chat_stage("results", now, results.completed)
    if not results.completed:
        outcome.aborted = "results"
        _absorb_both(node_i, node_j, outcome)
        return finish_planned()
    now += _RESULTS_EXCHANGE_SECONDS
    if now >= contact_deadline:
        outcome.aborted = "results_overhead"
        telemetry.on_chat_stage("results_overhead", now, False)
        _absorb_both(node_i, node_j, outcome)
        return finish_planned()

    # 4. Eq. 7: optimize both compression ratios jointly.
    remaining_contact = max(contact_deadline - now, 0.0)
    if equal_compression:
        decision = equal_compression_decision(
            node_i.config.nominal_model_bytes,
            planning_bandwidth,
            time_budget,
            remaining_contact,
        )
    else:
        decision = optimize_compression(
            map_i,
            map_j,
            loss_i_on_cj=value.loss_i_on_cj,
            loss_j_on_ci=value.loss_j_on_ci,
            model_size_bytes=node_i.config.nominal_model_bytes,
            bandwidth_bps=planning_bandwidth,
            time_budget=time_budget,
            contact_duration=remaining_contact,
            lambda_c=lambda_c,
        )
    outcome.psi = decision

    # Capture payloads now: overlapped transfers ship plan-time parameter
    # snapshots (the delayed-averaging staleness model, see module doc).
    legs: list[TransferLeg] = []
    if decision.psi_i > 0:
        compressed_i = (
            plan_i.compress(decision.psi_i)
            if plan_i is not None
            else node_i.compress_model(decision.psi_i)
        )
        if compressed_i.nominal_bytes > 0:
            legs.append(
                TransferLeg(
                    sender=i,
                    receiver=j,
                    n_bytes=float(compressed_i.nominal_bytes),
                    payload=compressed_i,
                )
            )
    if decision.psi_j > 0:
        compressed_j = (
            plan_j.compress(decision.psi_j)
            if plan_j is not None
            else node_j.compress_model(decision.psi_j)
        )
        if compressed_j.nominal_bytes > 0:
            legs.append(
                TransferLeg(
                    sender=j,
                    receiver=i,
                    n_bytes=float(compressed_j.nominal_bytes),
                    payload=compressed_j,
                )
            )
    if not legs:
        # Nothing to ship: the chat resolves at plan end, as the
        # synchronous protocol would.
        _absorb_both(node_i, node_j, outcome)
        return finish_planned()

    joint = node_i.coreset.data.copy()
    joint.absorb_from(node_j.coreset.data)
    flight = InFlightTransfer(
        i=i,
        j=j,
        plan_start=start_time,
        transfer_start=now,
        contact_deadline=contact_deadline,
        model_deadline=min(contact_deadline, now + time_budget),
        mean_aggregation=mean_aggregation,
        outcome=outcome,
        legs=legs,
        joint=joint,
        coreset_i=node_i.coreset,
        coreset_j=node_j.coreset,
    )
    return ChatPlan(outcome, now - start_time, flight)


def _outcome_state(outcome: ChatOutcome) -> dict:
    psi = None
    if outcome.psi is not None:
        psi = {
            "psi_i": float(outcome.psi.psi_i),
            "psi_j": float(outcome.psi.psi_j),
            "objective": float(outcome.psi.objective),
            "exchange_time": float(outcome.psi.exchange_time),
        }
    return {
        "duration": float(outcome.duration),
        "coresets_exchanged": bool(outcome.coresets_exchanged),
        "i_attempted": bool(outcome.i_attempted),
        "j_attempted": bool(outcome.j_attempted),
        "i_received_model": bool(outcome.i_received_model),
        "j_received_model": bool(outcome.j_received_model),
        "psi": psi,
        "absorbed_by_i": int(outcome.absorbed_by_i),
        "absorbed_by_j": int(outcome.absorbed_by_j),
        "aborted": outcome.aborted,
    }


def _outcome_from_state(state) -> ChatOutcome:
    psi = state["psi"]
    decision = PsiDecision(**psi) if psi is not None else None
    return ChatOutcome(
        duration=float(state["duration"]),
        coresets_exchanged=bool(state["coresets_exchanged"]),
        i_attempted=bool(state["i_attempted"]),
        j_attempted=bool(state["j_attempted"]),
        i_received_model=bool(state["i_received_model"]),
        j_received_model=bool(state["j_received_model"]),
        psi=decision,
        absorbed_by_i=int(state["absorbed_by_i"]),
        absorbed_by_j=int(state["absorbed_by_j"]),
        aborted=str(state["aborted"]),
    )


def _payload_state(payload: CompressedModel | None):
    if payload is None:
        return None
    return {
        "indices": payload.indices,
        "values": payload.values,
        "n_total": int(payload.n_total),
        "psi": float(payload.psi),
        "nominal_bytes": int(payload.nominal_bytes),
    }


def _payload_from_state(state) -> CompressedModel | None:
    if state is None:
        return None
    return CompressedModel(
        indices=np.asarray(state["indices"], dtype=np.int64),
        values=np.asarray(state["values"], dtype=np.float32),
        n_total=int(state["n_total"]),
        psi=float(state["psi"]),
        nominal_bytes=int(state["nominal_bytes"]),
    )


class TransferScheduler:
    """Owns every in-flight transfer of one trainer.

    Each launched flight runs as its own simulator process: wait for the
    next chunk boundary, advance the :class:`TransferSession` arithmetic,
    and on resolution commit the exchanged state atomically.  Vehicles
    stay in the :class:`~repro.core.ledger.TransferLedger`'s in-flight
    set for the whole window, so they train at full fleet width but
    accept no other chat.
    """

    def __init__(self, trainer):
        self.trainer = trainer
        self.flights: list[InFlightTransfer] = []
        self._prober: DensePsiProber | None = None
        self._prober_failed = False

    # -- planning helpers ----------------------------------------------------

    def prober_for(self, node) -> DensePsiProber | None:
        """A dense probe evaluator for ``node``, or None to fall back."""
        if self._prober_failed or node.config.compressor != "topk":
            return None
        if self._prober is None or not self._prober.compatible(node):
            try:
                self._prober = DensePsiProber(node.model, node.config.psi_grid)
            except (ValueError, AttributeError, TypeError):
                self._prober_failed = True
                return None
        return self._prober if self._prober.compatible(node) else None

    # -- flight lifecycle ----------------------------------------------------

    def launch(self, flight: InFlightTransfer) -> None:
        """Register a planned flight and start its background process."""
        trainer = self.trainer
        flight.next_fire = flight.transfer_start
        flight.armed_at = trainer.sim.now
        trainer.ledger.begin_flight(flight.i)
        trainer.ledger.begin_flight(flight.j)
        self.flights.append(flight)
        trainer.sim.process(self._flight_process(flight))

    def _flight_process(self, flight: InFlightTransfer):
        sim = self.trainer.sim
        # The pending wakeup (fresh launches: the transfer start; resumed
        # flights: whatever boundary was armed before the snapshot).
        if flight.next_fire is not None and sim.now < flight.next_fire:
            yield sim.wait_until(flight.next_fire)
        while True:
            when = self._advance(flight)
            if when is None:
                break
            flight.next_fire = when
            flight.armed_at = sim.now
            if when > sim.now:
                yield sim.wait_until(when)
        self._commit(flight)

    def _advance(self, flight: InFlightTransfer) -> float | None:
        """Zero-time bookkeeping at a wakeup; next wakeup time or None."""
        trainer = self.trainer
        sim = trainer.sim
        distance_fn = trainer.pair_distance_fn(flight.i, flight.j)
        while flight.leg_idx < len(flight.legs):
            leg = flight.legs[flight.leg_idx]
            if leg.session is None:
                leg.session = TransferSession(
                    leg.n_bytes, trainer.config.channel, sim.now
                )
                if leg.receiver == flight.i:
                    flight.outcome.i_attempted = True
                else:
                    flight.outcome.j_attempted = True
            session = leg.session
            if session.resolved:
                # The resolution instant arrived (or the cut happened at
                # the current time): close the leg, move on.
                self._finish_leg(leg)
                flight.leg_idx += 1
                continue
            when = session.step(distance_fn, trainer.wireless, flight.model_deadline)
            if when is None:
                # Cut (range/rate/deadline) effective immediately.
                self._finish_leg(leg)
                flight.leg_idx += 1
                continue
            return when  # chunk boundary, or a future completion instant
        return None

    def _finish_leg(self, leg: TransferLeg) -> None:
        telemetry.on_transfer(leg.n_bytes, leg.session.result(), leg.session.start_time)

    def _commit(self, flight: InFlightTransfer) -> None:
        """The commit barrier: absorb everything the flight delivered."""
        trainer = self.trainer
        now = trainer.sim.now
        outcome = flight.outcome
        node_i = trainer.nodes[flight.i]
        node_j = trainer.nodes[flight.j]
        delivered_all = True
        for leg in flight.legs:
            if leg.session is None or not leg.session.completed:
                delivered_all = False
                continue
            trainer.nodes[leg.receiver].receive_and_aggregate(
                leg.payload, flight.joint, mean_weights=flight.mean_aggregation
            )
            if leg.receiver == flight.i:
                outcome.i_received_model = True
            else:
                outcome.j_received_model = True
        # Coresets arrived during the plan phase; their plan-time
        # snapshots commit here, whatever happened to the models.
        outcome.absorbed_by_i = node_i.absorb_coreset(flight.coreset_j)
        outcome.absorbed_by_j = node_j.absorb_coreset(flight.coreset_i)
        outcome.duration = now - flight.plan_start
        trainer.ledger.end_flight(flight.i)
        trainer.ledger.end_flight(flight.j)
        self.flights.remove(flight)
        telemetry.on_overlap_outcome(
            flight.plan_start, now, outcome, committed=delivered_all
        )
        finalize = getattr(trainer, "on_overlap_commit", None)
        if finalize is not None:
            finalize(flight)

    # -- checkpointing -------------------------------------------------------

    def activities(self, resume: bool = False) -> list:
        """``(armed_at, generator)`` pairs re-arming every live flight."""
        return [(flight.armed_at, self._flight_process(flight)) for flight in self.flights]

    def snapshot(self) -> dict:
        from repro.checkpoint.state import dataset_state

        flights = []
        for flight in self.flights:
            flights.append(
                {
                    "i": int(flight.i),
                    "j": int(flight.j),
                    "plan_start": float(flight.plan_start),
                    "transfer_start": float(flight.transfer_start),
                    "contact_deadline": float(flight.contact_deadline),
                    "model_deadline": float(flight.model_deadline),
                    "mean_aggregation": bool(flight.mean_aggregation),
                    "leg_idx": int(flight.leg_idx),
                    "next_fire": flight.next_fire,
                    "armed_at": float(flight.armed_at),
                    "outcome": _outcome_state(flight.outcome),
                    "legs": [
                        {
                            "sender": int(leg.sender),
                            "receiver": int(leg.receiver),
                            "n_bytes": float(leg.n_bytes),
                            "payload": _payload_state(leg.payload),
                            "session": (
                                leg.session.snapshot() if leg.session is not None else None
                            ),
                        }
                        for leg in flight.legs
                    ],
                    "joint": dataset_state(flight.joint),
                    "coreset_i_data": dataset_state(flight.coreset_i.data),
                    "coreset_i_weights": flight.coreset_i.source_weights.copy(),
                    "coreset_j_data": dataset_state(flight.coreset_j.data),
                    "coreset_j_weights": flight.coreset_j.source_weights.copy(),
                }
            )
        return {"flights": flights}

    def restore(self, state) -> None:
        from repro.checkpoint.state import dataset_from_state

        self.flights = []
        if not state:
            return
        channel = self.trainer.config.channel
        for fs in state.get("flights", []):
            legs = []
            for ls in fs["legs"]:
                legs.append(
                    TransferLeg(
                        sender=int(ls["sender"]),
                        receiver=int(ls["receiver"]),
                        n_bytes=float(ls["n_bytes"]),
                        payload=_payload_from_state(ls["payload"]),
                        session=(
                            TransferSession.from_snapshot(ls["session"], channel)
                            if ls["session"] is not None
                            else None
                        ),
                    )
                )
            flight = InFlightTransfer(
                i=int(fs["i"]),
                j=int(fs["j"]),
                plan_start=float(fs["plan_start"]),
                transfer_start=float(fs["transfer_start"]),
                contact_deadline=float(fs["contact_deadline"]),
                model_deadline=float(fs["model_deadline"]),
                mean_aggregation=bool(fs["mean_aggregation"]),
                outcome=_outcome_from_state(fs["outcome"]),
                legs=legs,
                joint=dataset_from_state(fs["joint"]),
                coreset_i=Coreset(
                    data=dataset_from_state(fs["coreset_i_data"]),
                    source_weights=np.asarray(fs["coreset_i_weights"], dtype=float),
                ),
                coreset_j=Coreset(
                    data=dataset_from_state(fs["coreset_j_data"]),
                    source_weights=np.asarray(fs["coreset_j_weights"], dtype=float),
                ),
                leg_idx=int(fs["leg_idx"]),
                next_fire=(None if fs["next_fire"] is None else float(fs["next_fire"])),
                armed_at=float(fs["armed_at"]),
            )
            self.flights.append(flight)
            self.trainer.ledger.begin_flight(flight.i)
            self.trainer.ledger.begin_flight(flight.j)
