"""The pairwise "chat" protocol (Algorithm 2, lines 8-16).

One chat between vehicles i and j, simulated with real transfer timing:

1. assistive info (route, bandwidth — 184 bytes each, §III-A),
2. coreset exchange (C_i then C_j over the shared half-duplex channel),
3. cross-evaluations + psi-map fitting, results exchanged (small),
4. Eq. 7 joint compression optimization,
5. compressed model exchange (x_i then x_j), each direction aggregated
   on arrival via Eq. 8 on the joint coreset C_i ∪ C_j,
6. both sides absorb the peer's coreset into their local dataset.

A chat can be cut short at any stage by the vehicles moving out of
range; whatever already arrived is still used (a received coreset is
absorbed even if the model transfer after it died).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.node import VehicleNode
from repro.core.psi import PsiDecision, optimize_compression
from repro.core.value import assess_value
from repro.net.channel import ChannelConfig, simulate_transfer
from repro.net.wireless import WirelessModel
from repro.telemetry import hooks as telemetry

__all__ = ["ChatBytesMemo", "ChatOutcome", "estimated_chat_bytes", "pairwise_chat"]

#: Fixed overhead for computing/exchanging evaluation results and maps.
_RESULTS_EXCHANGE_SECONDS = 0.1


@dataclass
class ChatOutcome:
    """What one chat produced and how long it took."""

    duration: float
    coresets_exchanged: bool = False
    i_attempted: bool = False
    j_attempted: bool = False
    i_received_model: bool = False
    j_received_model: bool = False
    psi: PsiDecision | None = None
    absorbed_by_i: int = 0
    absorbed_by_j: int = 0
    aborted: str = ""  # stage at which contact was lost, if any


def pairwise_chat(
    node_i: VehicleNode,
    node_j: VehicleNode,
    distance_fn: Callable[[float], float],
    start_time: float,
    contact_deadline: float,
    wireless: WirelessModel,
    channel: ChannelConfig,
    time_budget: float,
    lambda_c: float = 0.02,
    refresh_coresets: bool = True,
    equal_compression: bool = False,
    mean_aggregation: bool = False,
    coreset_only: bool = False,
    expected_goodput: float = 1.0,
) -> ChatOutcome:
    """Run one full chat; mutates both nodes on success.

    ``contact_deadline`` is the absolute time the estimator predicts the
    pair drops out of range (transfers are additionally cut by actual
    distance via ``distance_fn``).  ``time_budget`` is T_B.

    The three flags implement the paper's ablations: ``equal_compression``
    replaces Eq. 7 with a fixed ratio that evenly fills the contact
    window (§IV-F); ``mean_aggregation`` replaces Eq. 8 with plain
    averaging (§IV-F); ``coreset_only`` skips model exchange entirely —
    the SCO variant of §IV-G.
    """
    session = telemetry.active()
    if session is not None:
        session.tracer.start_span(
            "chat", start_time, i=node_i.node_id, j=node_j.node_id
        )
    outcome = _pairwise_chat_impl(
        node_i,
        node_j,
        distance_fn,
        start_time,
        contact_deadline,
        wireless,
        channel,
        time_budget,
        lambda_c=lambda_c,
        refresh_coresets=refresh_coresets,
        equal_compression=equal_compression,
        mean_aggregation=mean_aggregation,
        coreset_only=coreset_only,
        expected_goodput=expected_goodput,
    )
    if session is not None:
        telemetry.on_chat_outcome(start_time, outcome)
    return outcome


def _pairwise_chat_impl(
    node_i: VehicleNode,
    node_j: VehicleNode,
    distance_fn: Callable[[float], float],
    start_time: float,
    contact_deadline: float,
    wireless: WirelessModel,
    channel: ChannelConfig,
    time_budget: float,
    lambda_c: float,
    refresh_coresets: bool,
    equal_compression: bool,
    mean_aggregation: bool,
    coreset_only: bool,
    expected_goodput: float,
) -> ChatOutcome:
    outcome = ChatOutcome(duration=0.0)
    now = start_time
    # Planning (Eq. 7) uses the loss-discounted effective bandwidth the
    # §III-A estimator predicts; actual transfers below are simulated
    # against the real channel.
    bandwidth = min(node_i.config.bandwidth_bps, node_j.config.bandwidth_bps)
    planning_bandwidth = bandwidth * max(min(expected_goodput, 1.0), 1e-3)

    def shared_channel(n_bytes: float, deadline: float):
        return simulate_transfer(
            n_bytes, distance_fn, wireless, channel, now, deadline
        )

    # 1. assistive info both ways.
    assist = shared_channel(2 * channel.assist_info_bytes, contact_deadline)
    now += assist.elapsed
    telemetry.on_chat_stage("assist", now, assist.completed)
    if not assist.completed:
        outcome.duration = now - start_time
        outcome.aborted = "assist"
        return outcome

    # 2. coresets (rebuild first so they reflect the current model/data).
    if refresh_coresets:
        node_i.maybe_refresh_coreset()
        node_j.maybe_refresh_coreset()
    coreset_bytes = node_i.coreset.nominal_bytes + node_j.coreset.nominal_bytes
    transfer = shared_channel(coreset_bytes, contact_deadline)
    now += transfer.elapsed
    telemetry.on_chat_stage("coresets", now, transfer.completed)
    if not transfer.completed:
        outcome.duration = now - start_time
        outcome.aborted = "coresets"
        return outcome
    outcome.coresets_exchanged = True

    if coreset_only:
        # SCO (§IV-G): data sharing only; no model value assessment or
        # model exchange at all.
        _absorb_both(node_i, node_j, outcome)
        outcome.duration = now - start_time
        return outcome

    # 3. cross-evaluations and psi maps (compute treated as free, §IV-A).
    value = assess_value(
        loss_i_on_ci=node_i.evaluate(node_i.coreset.data),
        loss_i_on_cj=node_i.evaluate(node_j.coreset.data),
        loss_j_on_cj=node_j.evaluate(node_j.coreset.data),
        loss_j_on_ci=node_j.evaluate(node_i.coreset.data),
    )
    map_i = node_i.build_psi_map()
    map_j = node_j.build_psi_map()
    results = shared_channel(2 * 256, contact_deadline)  # tiny payloads
    now += results.elapsed
    telemetry.on_chat_stage("results", now, results.completed)
    if not results.completed:
        outcome.duration = now - start_time
        outcome.aborted = "results"
        # Coresets still got through: absorb them before bailing.
        _absorb_both(node_i, node_j, outcome)
        return outcome
    # The fixed compute/exchange overhead applies only when the results
    # actually made it across — and it can itself eat the rest of the
    # contact, in which case planning Eq. 7 and starting model transfers
    # against an already-dead pair would be wasted (and would distort
    # receive-rate accounting with doomed attempts).
    now += _RESULTS_EXCHANGE_SECONDS
    if now >= contact_deadline:
        outcome.duration = now - start_time
        outcome.aborted = "results_overhead"
        telemetry.on_chat_stage("results_overhead", now, False)
        _absorb_both(node_i, node_j, outcome)
        return outcome

    # 4. Eq. 7: optimize both compression ratios jointly.
    remaining_contact = max(contact_deadline - now, 0.0)
    if equal_compression:
        decision = equal_compression_decision(
            node_i.config.nominal_model_bytes,
            planning_bandwidth,
            time_budget,
            remaining_contact,
        )
    else:
        decision = optimize_compression(
            map_i,
            map_j,
            loss_i_on_cj=value.loss_i_on_cj,
            loss_j_on_ci=value.loss_j_on_ci,
            model_size_bytes=node_i.config.nominal_model_bytes,
            bandwidth_bps=planning_bandwidth,
            time_budget=time_budget,
            contact_duration=remaining_contact,
            lambda_c=lambda_c,
        )
    outcome.psi = decision

    # 5. model exchange: x_i to j, then x_j to i, on the shared channel.
    joint = node_i.coreset.data.copy()
    joint.absorb_from(node_j.coreset.data)
    model_deadline = min(contact_deadline, now + time_budget)
    if decision.psi_i > 0:
        compressed_i = node_i.compress_model(decision.psi_i)
        # A positive psi can still round to an empty model (top-k keeps
        # zero entries); a zero-byte "transfer" would complete instantly
        # and inflate the receive rate, so skip it entirely.
        if compressed_i.nominal_bytes > 0:
            outcome.j_attempted = True
            sent = shared_channel(compressed_i.nominal_bytes, model_deadline)
            now += sent.elapsed
            telemetry.on_chat_stage("model_i", now, sent.completed)
            if sent.completed:
                node_j.receive_and_aggregate(
                    compressed_i, joint, mean_weights=mean_aggregation
                )
                outcome.j_received_model = True
    if decision.psi_j > 0:
        compressed_j = node_j.compress_model(decision.psi_j)
        if compressed_j.nominal_bytes > 0:
            outcome.i_attempted = True
            sent = shared_channel(compressed_j.nominal_bytes, model_deadline)
            now += sent.elapsed
            telemetry.on_chat_stage("model_j", now, sent.completed)
            if sent.completed:
                node_i.receive_and_aggregate(
                    compressed_j, joint, mean_weights=mean_aggregation
                )
                outcome.i_received_model = True

    # 6. absorb peer coresets, expanding local datasets.
    _absorb_both(node_i, node_j, outcome)
    outcome.duration = now - start_time
    return outcome


def _absorb_both(node_i: VehicleNode, node_j: VehicleNode, outcome: ChatOutcome) -> None:
    # Capture both coresets first: absorption merge-reduces the owner's
    # coreset in place, and each side must absorb what was actually sent.
    coreset_i, coreset_j = node_i.coreset, node_j.coreset
    outcome.absorbed_by_i = node_i.absorb_coreset(coreset_j)
    outcome.absorbed_by_j = node_j.absorb_coreset(coreset_i)


def equal_compression_decision(
    model_size_bytes: float,
    bandwidth_bps: float,
    time_budget: float,
    contact_duration: float,
) -> PsiDecision:
    """§IV-F ablation: both sides get the same fixed compression.

    The ratio is chosen so the two transfers exactly fill the available
    window — the straightforward rule the paper masks Eq. 7 with.
    """
    window = min(time_budget, contact_duration)
    bytes_per_second = bandwidth_bps / 8.0
    psi = min(window * bytes_per_second / (2.0 * model_size_bytes), 1.0)
    t_c = model_size_bytes * 2.0 * psi / bytes_per_second
    return PsiDecision(psi_i=float(psi), psi_j=float(psi), objective=0.0, exchange_time=t_c)


def estimated_chat_bytes(node_i: VehicleNode, node_j: VehicleNode, psi_total: float = 1.0) -> float:
    """Bytes a chat is expected to move, for the Eq. 5 estimator.

    Coresets both ways plus models at an anticipated combined relative
    size ``psi_total`` (callers typically assume a moderately compressed
    exchange when ranking neighbors).
    """
    return (
        node_i.coreset.nominal_bytes
        + node_j.coreset.nominal_bytes
        + psi_total * node_i.config.nominal_model_bytes
    )


class ChatBytesMemo:
    """Memoized :func:`estimated_chat_bytes` keyed on coreset identity.

    Selection policies estimate the same pairs over and over within a
    scan tick (every candidate neighbor of every scanning vehicle).  The
    estimate only changes when a coreset changes, so the memo keys on
    each node's ``(dataset uid, generation)`` — a coreset refresh swaps
    the dataset object (fresh uid) and absorption bumps the generation,
    so stale entries can never be served; they just age out of the
    bounded table.
    """

    #: Entries kept before the table is cleared wholesale (keys are
    #: per-(pair, coreset-identity), so city-scale fleets would otherwise
    #: grow it without bound).
    max_entries = 8192

    def __init__(self):
        self._table: dict[tuple, float] = {}
        self.hits = 0
        self.misses = 0

    def estimate(self, node_i, node_j, psi_total: float = 1.0) -> float:
        data_i = node_i.coreset.data
        data_j = node_j.coreset.data
        key = (
            node_i.node_id,
            node_j.node_id,
            data_i.uid,
            data_i.generation,
            data_j.uid,
            data_j.generation,
            psi_total,
        )
        cached = self._table.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        value = estimated_chat_bytes(node_i, node_j, psi_total)
        if len(self._table) >= self.max_entries:
            self._table.clear()
        self._table[key] = value
        return value
