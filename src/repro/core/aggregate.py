"""Model aggregation with coreset-derived weights (Eq. 8).

After receiving the peer's (decompressed) model, a vehicle combines it
with its own model using weights derived from both models' losses on
the joint evaluation set ``D_i ∪ C_j`` — approximated by ``C_i ∪ C_j``
per the ε-coreset union property, which makes the evaluation cheap.

The paper's text states the aggregation "assigns larger weights to
better-performing models"; we therefore weight each model by the
*other's* normalized loss (low own loss → high own weight).  The
printed Eq. 8 multiplies each model by its own loss, which would do the
opposite of the stated intent; DESIGN.md records the discrepancy.
"""

from __future__ import annotations

import numpy as np

__all__ = ["aggregation_weights", "aggregate_models"]


def aggregation_weights(loss_local: float, loss_received: float) -> tuple[float, float]:
    """(w_local, w_received), each in (0, 1), summing to 1.

    The lower-loss model receives the larger weight; equal losses give
    0.5/0.5.  Degenerate zero losses fall back to an even split.
    """
    if loss_local < 0 or loss_received < 0:
        raise ValueError("losses must be non-negative")
    total = loss_local + loss_received
    if total <= 0:
        return 0.5, 0.5
    return loss_received / total, loss_local / total


def aggregate_models(
    params_local: np.ndarray,
    params_received: np.ndarray,
    loss_local: float,
    loss_received: float,
) -> np.ndarray:
    """Eq. 8: loss-weighted convex combination of parameter vectors."""
    if params_local.shape != params_received.shape:
        raise ValueError(
            f"shape mismatch: {params_local.shape} vs {params_received.shape}"
        )
    w_local, w_received = aggregation_weights(loss_local, loss_received)
    return (w_local * params_local + w_received * params_received).astype(
        params_local.dtype
    )
