"""Compression-ratio optimization (Eq. 7) with Akima-interpolated maps.

To predict how compression degrades a model before sending it, a
vehicle samples a handful of compression levels ``psi``, compresses its
model at each, evaluates every compressed variant on its own coreset
(cheap — the coreset is tiny), and fits an interpolating curve through
the ``(psi, loss)`` pairs with Akima's method, as the paper prescribes.
The two vehicles exchange these curves (a few floats) and then solve
Eq. 7 jointly: pick ``(psi_i, psi_j)`` maximizing the sum of truncated
gains plus a reward for finishing early, subject to the exchange
fitting inside ``min(T_B, T_contact)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.interpolate import Akima1DInterpolator

from repro.compression import decompress, topk_plan
from repro.core.value import truncated_gain
from repro.nn.params import get_flat_params

__all__ = ["PsiLossMap", "build_psi_map", "optimize_compression", "PsiDecision"]

#: Default compression levels sampled when building a map.
DEFAULT_PSI_GRID = (0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0)


@dataclass(frozen=True)
class PsiLossMap:
    """The mapping ``phi``: relative model size -> loss on own coreset."""

    psis: np.ndarray
    losses: np.ndarray

    def __post_init__(self):
        if len(self.psis) != len(self.losses):
            raise ValueError("psis and losses must align")
        if len(self.psis) < 2:
            raise ValueError("need at least two sample points")
        # Akima needs >= 3 points; fall back to linear for 2.
        if len(self.psis) >= 3:
            interp = Akima1DInterpolator(self.psis, self.losses)
        else:
            interp = lambda x: np.interp(x, self.psis, self.losses)  # noqa: E731
        object.__setattr__(self, "_interp", interp)

    def loss_at(self, psi: float) -> float:
        """Interpolated loss of the model compressed to relative size psi.

        Akima interpolation inside the sampled range; clamped at the
        ends (extrapolation of loss curves is untrustworthy).
        """
        psi = float(np.clip(psi, self.psis[0], self.psis[-1]))
        return float(self._interp(psi))

    def payload(self) -> list[tuple[float, float]]:
        """The (psi, loss) pairs a vehicle sends to its peer."""
        return list(zip(self.psis.tolist(), self.losses.tolist()))


def build_psi_map(
    model,
    evaluate_on_coreset,
    nominal_size_bytes: int,
    psi_grid: tuple[float, ...] = DEFAULT_PSI_GRID,
    compress_fn=None,
) -> PsiLossMap:
    """Sample compression levels and fit the phi mapping.

    Parameters
    ----------
    model:
        The vehicle's current model (restored untouched afterwards).
    evaluate_on_coreset:
        Callable ``(model) -> float`` returning the weighted loss on the
        vehicle's own coreset.
    nominal_size_bytes:
        Paper-scale uncompressed model size (for size accounting only).
    compress_fn:
        Optional ``(flat, psi) -> CompressedModel`` matching the
        compressor the vehicle will actually use; defaults to top-k
        sharing one magnitude ordering (:func:`repro.compression.topk_plan`)
        across the whole grid instead of re-partitioning per psi.
    """
    from repro.nn.params import clone_model, set_flat_params

    flat = get_flat_params(model)
    if compress_fn is None:
        plan = topk_plan(flat, nominal_size_bytes)
        compress_fn = lambda _flat, psi: plan.compress(psi)  # noqa: E731
    probe = clone_model(model)
    psis, losses = [], []
    for psi in sorted(psi_grid):
        if psi >= 1.0:
            set_flat_params(probe, flat)
        else:
            compressed = compress_fn(flat, psi)
            set_flat_params(probe, decompress(compressed))
        psis.append(float(psi))
        losses.append(float(evaluate_on_coreset(probe)))
    return PsiLossMap(np.asarray(psis), np.asarray(losses))


@dataclass(frozen=True)
class PsiDecision:
    """Solution of Eq. 7 for one pairwise exchange."""

    psi_i: float
    psi_j: float
    objective: float
    exchange_time: float  # T_c


def optimize_compression(
    map_i: PsiLossMap,
    map_j: PsiLossMap,
    loss_i_on_cj: float,
    loss_j_on_ci: float,
    model_size_bytes: float,
    bandwidth_bps: float,
    time_budget: float,
    contact_duration: float,
    lambda_c: float = 0.02,
    grid_points: int = 21,
) -> PsiDecision:
    """Solve Eq. 7 by exhaustive search over a psi grid.

    The objective is evaluated on a ``grid_points x grid_points`` lattice
    over ``[0, 1]^2`` (psi = 0 meaning "send nothing"); with Akima maps
    this is exact enough, deterministic, and free of local minima
    concerns.  Gains follow §III-B: the receiver's loss on the sender's
    coreset minus the (compression-degraded) sender loss, truncated at
    zero; ``lambda_c`` rewards unfinished contact time so uninteresting
    exchanges end quickly.
    """
    window = min(time_budget, contact_duration)
    bytes_per_second = bandwidth_bps / 8.0
    grid = np.linspace(0.0, 1.0, grid_points)
    # Precompute each side's gain along its own psi axis (the objective
    # is separable apart from the shared time constraint).
    gains_i_axis = np.array(
        [truncated_gain(loss_j_on_ci, map_i.loss_at(p)) if p > 0 else 0.0 for p in grid]
    )
    gains_j_axis = np.array(
        [truncated_gain(loss_i_on_cj, map_j.loss_at(p)) if p > 0 else 0.0 for p in grid]
    )
    t_c = model_size_bytes * (grid[:, None] + grid[None, :]) / bytes_per_second
    objective = (
        gains_i_axis[:, None]
        + gains_j_axis[None, :]
        + lambda_c * (window - t_c)
    )
    objective[t_c > window] = -np.inf
    flat_idx = int(np.argmax(objective))
    i_idx, j_idx = np.unravel_index(flat_idx, objective.shape)
    if not np.isfinite(objective[i_idx, j_idx]):
        return PsiDecision(0.0, 0.0, 0.0, 0.0)
    return PsiDecision(
        float(grid[i_idx]),
        float(grid[j_idx]),
        float(objective[i_idx, j_idx]),
        float(t_c[i_idx, j_idx]),
    )
