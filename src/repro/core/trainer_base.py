"""Shared experiment scaffolding for LbChat and every baseline.

A trainer owns: the vehicle nodes, the mobility traces driving
encounters, the wireless/channel models, the discrete-event simulator,
and the metric recorders (fleet validation-loss curve, model receive
rate, byte counters).  Subclasses implement how/when vehicles exchange
models; the base class provides the vehicle main loop, neighbor
queries, and periodic loss recording so every method is measured
identically.

Timing conventions:

* each local training iteration occupies ``train_interval`` simulated
  seconds (a scaling knob standing in for GPU minibatch time — the paper
  trains far larger models on an RTX 2060);
* a vehicle is *busy* while chatting and trains no iterations then;
* validation loss of every vehicle is recorded every
  ``record_interval`` simulated seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.ledger import TransferLedger
from repro.core.node import VehicleNode
from repro.engine import (
    CounterSet,
    ReceiveRateRecorder,
    Simulator,
    TimeSeriesRecorder,
    spawn_rng,
)
from repro.net.channel import ChannelConfig
from repro.net.contact import ContactEstimate, estimate_contact
from repro.net.wireless import WirelessModel
from repro.sim.dataset import DrivingDataset
from repro.sim.traces import MobilityTraces
from repro.telemetry import hooks as telemetry

__all__ = ["TrainerConfig", "TrainerBase", "pair_times_state", "pair_times_from_state"]


def pair_times_state(pairs: dict[tuple[int, int], float]) -> dict:
    """A ``(i, j) -> time`` dict as a checkpointable pair of arrays."""
    items = sorted(pairs.items())
    return {
        "pairs": np.asarray([key for key, _ in items], dtype=np.int64).reshape(-1, 2),
        "times": np.asarray([value for _, value in items], dtype=float),
    }


def pair_times_from_state(state) -> dict[tuple[int, int], float]:
    """Inverse of :func:`pair_times_state`."""
    pairs = np.asarray(state["pairs"], dtype=np.int64).reshape(-1, 2)
    times = np.asarray(state["times"], dtype=float)
    return {(int(i), int(j)): float(t) for (i, j), t in zip(pairs, times)}


@dataclass
class TrainerConfig:
    """Timeline and communication parameters shared by all methods."""

    duration: float = 1200.0  # simulated training time T
    train_interval: float = 2.0  # sim-seconds per local iteration
    scan_interval: float = 5.0  # how often an idle vehicle looks around
    record_interval: float = 30.0
    time_budget: float = 15.0  # T_B (§IV-A)
    route_horizon: float = 120.0  # shared route lookahead (§III-A)
    lambda_c: float = 0.02
    #: Minimum time before the same pair exchanges again — repeat chats
    #: with a peer whose model/data was just absorbed add nothing.
    pair_cooldown: float = 60.0
    #: Record chat windows in a MAC contention tracker (sensitivity
    #: studies; the paper's channel model is contention-free).
    track_contention: bool = False
    wireless_loss: bool = True
    max_range: float = 500.0
    channel: ChannelConfig = field(default_factory=ChannelConfig)
    seed: int = 0
    #: Train the whole fleet through one batched parameter bank
    #: (:mod:`repro.core.fleet`).  Falls back to per-node training
    #: automatically when the nodes are heterogeneous.
    fleet_batching: bool = True
    #: Ring-buffer budget for per-chat logs (0 = unbounded).  City-scale
    #: fleets chat often enough that an append-only log would dominate
    #: resident memory; the budget keeps the newest records and counts
    #: the evicted ones.
    chat_log_budget: int = 0
    #: Shard each batched fleet step across this many forked worker
    #: processes over shared-memory banks (:mod:`repro.parallel.stepshard`).
    #: Purely an execution strategy: results are bit-identical for every
    #: value.  1 = serial; ignored without :attr:`fleet_batching`.
    step_workers: int = 1
    #: Overlap chat model transfers with training (:mod:`repro.core.overlap`):
    #: the plan phase (handshake, selection, psi planning) stays synchronous
    #: at contact start, the model byte-transfer becomes a background
    #: activity on the virtual clock, and the exchanged state is absorbed
    #: at a commit barrier when the transfer resolves.  Off by default —
    #: the synchronous protocol is the golden-pinned reference.
    overlap_chat: bool = False


class TrainerBase:
    """Runs one collaborative-training experiment on the event engine."""

    name = "base"

    def __init__(
        self,
        nodes: list[VehicleNode],
        traces: MobilityTraces,
        validation: DrivingDataset,
        config: TrainerConfig,
    ):
        if len(nodes) != traces.positions.shape[1]:
            raise ValueError(
                f"{len(nodes)} nodes but traces cover {traces.positions.shape[1]} vehicles"
            )
        self.nodes = nodes
        self.traces = traces
        self.validation = validation
        self.config = config
        self.sim = Simulator()
        self.wireless = WirelessModel(
            max_range=config.max_range, enabled=config.wireless_loss
        )
        self.loss_curve = TimeSeriesRecorder()
        self.receive_rate = ReceiveRateRecorder()
        self.counters = CounterSet()
        self.ledger = TransferLedger(len(nodes))
        #: Async transfer scheduler (set by subclasses when
        #: ``config.overlap_chat`` is on); ``None`` keeps every chat
        #: synchronous.
        self.overlap = None
        from repro.core.chat import ChatBytesMemo

        self._chat_bytes_memo = ChatBytesMemo()
        self._last_chat: dict[tuple[int, int], float] = {}
        # Externalized per-process timer state, so a checkpoint can
        # re-arm every pending loop from absolute times (generators
        # themselves cannot be serialized).
        self.next_scan = np.zeros(len(nodes))
        self._next_train = np.zeros(len(nodes))
        self._next_record = 0.0
        self._restored_at: float | None = None
        self.contention = None
        if config.track_contention:
            from repro.net.mac import ContentionTracker

            self.contention = ContentionTracker(sense_range=config.max_range)
        self.fleet = None
        if config.fleet_batching:
            from repro.core.fleet import FleetEngine

            self.fleet = FleetEngine.try_build(
                nodes, step_workers=config.step_workers
            )

    def note_transfer_window(self, i: int, j: int, duration: float) -> None:
        """Register a chat's airtime with the contention tracker (if on)."""
        if self.contention is None or duration <= 0:
            return
        midpoint = 0.5 * (
            self.traces.position(i, self.sim.now) + self.traces.position(j, self.sim.now)
        )
        self.contention.register(self.sim.now, self.sim.now + duration, midpoint)

    # -- helpers subclasses use ------------------------------------------------

    @property
    def busy_until(self) -> np.ndarray:
        """Radio occupancy horizons (owned by the :class:`TransferLedger`)."""
        return self.ledger.busy_until

    @busy_until.setter
    def busy_until(self, value) -> None:
        self.ledger.busy_until = np.asarray(value, dtype=float)

    def is_idle(self, i: int) -> bool:
        """Whether vehicle ``i`` is free to start a chat."""
        return self.ledger.is_idle(i, self.sim.now)

    def occupy(self, i: int, duration: float) -> None:
        """Mark vehicle ``i`` busy for ``duration`` from now."""
        self.ledger.occupy(i, self.sim.now, duration)

    def estimate_chat_bytes(self, i: int, j: int, psi_total: float) -> float:
        """Memoized :func:`~repro.core.chat.estimated_chat_bytes` for a pair.

        Selection scans re-estimate the same pair many times per tick;
        the memo keys on each node's coreset identity (dataset uid +
        generation), so a coreset refresh invalidates it naturally.
        """
        return self._chat_bytes_memo.estimate(self.nodes[i], self.nodes[j], psi_total)

    def idle_neighbors(self, i: int) -> list[int]:
        """Idle, cooldown-clear vehicles within radio range of ``i``.

        A non-positive ``max_range`` disables communication entirely
        (the local-training-only configuration).
        """
        if self.config.max_range <= 0:
            return []
        near = self.traces.neighbors(i, self.sim.now, self.config.max_range)
        return [j for j in near if self.is_idle(j) and self.pair_ready(i, j)]

    def pair_ready(self, i: int, j: int) -> bool:
        """Whether pair (i, j) is past its exchange cooldown."""
        last = self._last_chat.get((min(i, j), max(i, j)))
        return last is None or self.sim.now - last >= self.config.pair_cooldown

    def note_chat(self, i: int, j: int) -> None:
        """Record that pair (i, j) just chatted (cooldown start)."""
        self._last_chat[(min(i, j), max(i, j))] = self.sim.now

    def contact_estimate(self, i: int, j: int, exchange_bytes: float) -> ContactEstimate:
        """§III-A estimate for pair (i, j) from shared future routes."""
        now = self.sim.now
        route_i = self.traces.future_positions(i, now, self.config.route_horizon)
        route_j = self.traces.future_positions(j, now, self.config.route_horizon)
        return estimate_contact(
            route_i,
            route_j,
            self.traces.interval,
            self.wireless,
            self.config.channel,
            exchange_bytes,
            bandwidth_bps=min(
                self.nodes[i].config.bandwidth_bps, self.nodes[j].config.bandwidth_bps
            ),
        )

    def pair_distance_fn(self, i: int, j: int):
        """Distance between i and j as a function of absolute time."""
        return lambda t: self.traces.distance(i, j, t)

    def record_losses(self) -> None:
        """Record every vehicle's validation loss at the current time.

        With a fleet engine, all nodes evaluate in one batched forward
        (the shared validation batch broadcasts against the parameter
        bank); otherwise each node evaluates on its own.
        """
        if self.fleet is not None and len(self.validation):
            losses = self.fleet.evaluate_fleet(self.validation)
            for node, loss in zip(self.nodes, losses):
                self.loss_curve.record(node.node_id, self.sim.now, float(loss))
        else:
            for node in self.nodes:
                loss = node.evaluate(self.validation, with_penalty=False)
                self.loss_curve.record(node.node_id, self.sim.now, loss)
        telemetry.on_record_tick(self.sim.now, len(self.nodes))

    # -- processes ------------------------------------------------------------

    def _vehicle_process(self, i: int, resume: bool = False):
        """Algorithm 2 main loop for one vehicle (train + encounters).

        Local training runs continuously — the onboard GPU keeps
        iterating while the radio is mid-transfer (the paper counts only
        local training time; communication and computation overlap).
        The busy state gates *communication* only: a vehicle in a chat
        does not start or accept another chat.

        With ``resume`` the loop first waits until the absolute time its
        pending timer would have fired in the original run, then
        proceeds exactly as if it had never been torn down.
        """
        cfg = self.config
        node = self.nodes[i]
        if resume:
            yield self.sim.wait_until(self._next_train[i])
        while self.sim.now < cfg.duration:
            if self.fleet is not None:
                # All vehicles fire at the same instants (training is
                # never gated by busy state), so the fleet engine runs
                # one batched step per instant; this event just claims
                # vehicle i's share of it.
                self.fleet.train_tick(i)
            else:
                node.train_step()
            self.counters.add("train_steps")
            if self.sim.now >= self.next_scan[i] and self.is_idle(i):
                self.next_scan[i] = self.sim.now + cfg.scan_interval
                self.on_scan(i)
            self._next_train[i] = self.sim.now + cfg.train_interval
            yield self.sim.timeout(cfg.train_interval)

    def _recorder_process(self, resume: bool = False):
        if resume:
            yield self.sim.wait_until(self._next_record)
        while self.sim.now <= self.config.duration:
            self.record_losses()
            self._next_record = self.sim.now + self.config.record_interval
            yield self.sim.timeout(self.config.record_interval)

    # -- subclass hooks -----------------------------------------------------------

    def on_scan(self, i: int) -> None:
        """Called whenever idle vehicle ``i`` looks for exchange partners."""

    def extra_processes(self) -> list:
        """Additional generator processes (servers, RSUs, round clocks)."""
        return []

    def extra_activities(self, resume: bool = False) -> list:
        """``(armed_at, generator)`` pairs for the extra processes.

        ``armed_at`` is the virtual time the process's pending timer was
        *created* — it decides heap tie-break order on resume (see
        :meth:`run`).  Subclasses with resumable servers/round clocks
        override this alongside :meth:`extra_state`/:meth:`restore_extra`.
        """
        return [(self.sim.now, gen) for gen in self.extra_processes()]

    def extra_state(self) -> dict:
        """Subclass-owned state to include in checkpoints."""
        return {}

    def restore_extra(self, state) -> None:
        """Restore what :meth:`extra_state` captured."""

    def _reseed_extra_streams(self, barrier: int) -> None:
        """Re-derive subclass RNG streams at a checkpoint barrier."""

    # -- entry point -----------------------------------------------------------

    def run(self, checkpointer=None) -> None:
        """Execute the experiment until ``config.duration``.

        With a :class:`~repro.checkpoint.policy.Checkpointer`, barrier
        snapshots are armed *before* any process so that at a barrier
        instant the snapshot callback always dispatches ahead of
        same-time timer events (it holds a lower sequence number).

        On a resumed trainer (:meth:`restore` was called), processes are
        re-created and sorted by ``(armed_at, creation index)`` — the
        order their pending timers entered the original heap — so ties
        at the next fire instant dispatch exactly as the uninterrupted
        run would have dispatched them.
        """
        telemetry.on_run_started(self)
        if checkpointer is not None:
            checkpointer.schedule(self)
        cfg = self.config
        resume = self._restored_at is not None
        activities: list[tuple[float, int, object]] = []
        for i in range(len(self.nodes)):
            armed_at = self._next_train[i] - cfg.train_interval
            activities.append(
                (armed_at, len(activities), self._vehicle_process(i, resume=resume))
            )
        activities.append(
            (
                self._next_record - cfg.record_interval,
                len(activities),
                self._recorder_process(resume=resume),
            )
        )
        for armed_at, gen in self.extra_activities(resume):
            activities.append((armed_at, len(activities), gen))
        if self.overlap is not None:
            for armed_at, gen in self.overlap.activities(resume):
                activities.append((armed_at, len(activities), gen))
        if resume:
            activities.sort(key=lambda item: (item[0], item[1]))
        for _, _, gen in activities:
            self.sim.process(gen)
        try:
            self.sim.run(until=cfg.duration)
            # Final snapshot so curves end exactly at T.
            self.record_losses()
        finally:
            if self.fleet is not None:
                self.fleet.close()
        telemetry.on_run_finished(self)

    # -- checkpointing ------------------------------------------------------------

    def checkpoint_barrier(self, barrier: int) -> dict:
        """Reseed RNG streams, then snapshot (the per-barrier protocol).

        Reseeding happens in *every* checkpointed run at *every*
        barrier, interrupted or not — a resumed run re-derives the same
        streams from ``(seed, name, barrier)`` alone, so no generator
        state needs to be serialized mid-stream.
        """
        self.reseed_streams(barrier)
        state = self.snapshot()
        state["barrier"] = barrier
        return state

    def reseed_streams(self, barrier: int) -> None:
        """Re-derive every named RNG stream for the given barrier index."""
        for node in self.nodes:
            node.rng = spawn_rng(self.config.seed, f"node-{node.node_id}@ckpt{barrier}")
        self._reseed_extra_streams(barrier)

    def snapshot(self) -> dict:
        """Full trainer state as a checkpointable tree (a pure read)."""
        state = {
            "time": self.sim.now,
            "nodes": [node.snapshot() for node in self.nodes],
            "busy_until": self.busy_until.copy(),
            "next_train": self._next_train.copy(),
            "next_scan": self.next_scan.copy(),
            "next_record": self._next_record,
            "last_chat": pair_times_state(self._last_chat),
            "loss_curve": self.loss_curve.snapshot(),
            "receive_rate": self.receive_rate.snapshot(),
            "counters": self.counters.snapshot(),
            "extra": self.extra_state(),
        }
        if self.overlap is not None:
            state["overlap"] = self.overlap.snapshot()
        session = telemetry.active()
        state["telemetry"] = session.registry.state() if session is not None else None
        return state

    def restore(self, state) -> None:
        """Load a barrier snapshot into this (freshly built) trainer.

        Must be called before :meth:`run`; the saved telemetry registry
        state is merged into the active session so counters accumulated
        before the interruption are not lost.
        """
        barrier = int(state["barrier"])
        self.sim.advance_to(float(state["time"]))
        for node, node_state in zip(self.nodes, state["nodes"], strict=True):
            node.restore(node_state)
        self.busy_until = np.asarray(state["busy_until"], dtype=float).copy()
        self._next_train = np.asarray(state["next_train"], dtype=float).copy()
        self.next_scan = np.asarray(state["next_scan"], dtype=float).copy()
        self._next_record = float(state["next_record"])
        self._last_chat = pair_times_from_state(state["last_chat"])
        self.loss_curve.restore(state["loss_curve"])
        self.receive_rate.restore(state["receive_rate"])
        self.counters.restore(state["counters"])
        self.reseed_streams(barrier)
        self.restore_extra(state["extra"])
        overlap_state = state.get("overlap")
        if self.overlap is not None:
            self.overlap.restore(overlap_state)
        elif overlap_state is not None and overlap_state.get("flights"):
            raise ValueError(
                "checkpoint holds in-flight overlap transfers but this trainer "
                "was built with overlap_chat off; resume with --overlap-chat"
            )
        session = telemetry.active()
        if session is not None and state.get("telemetry") is not None:
            session.registry.merge_state(state["telemetry"])
        self._restored_at = self.sim.now
