"""LbChat reproduction: coreset-sharing collaborative model training
among peer vehicles (Zheng et al., ICDCS 2024).

Public API layout:

* :mod:`repro.core` — LbChat itself (value assessment, Eq. 5/7/8, the
  chat protocol, the Algorithm 2 trainer).
* :mod:`repro.coreset` — layered-sampling coresets (Algorithm 1),
  merge-and-reduce, the Eq. 6 penalized loss.
* :mod:`repro.baselines` — ProxSkip, RSU-L, DFL-DDS, DP, SCO, ablations.
* :mod:`repro.sim` — the 2-D driving world (CARLA substitute), BEV
  rasterization, datasets, online success-rate evaluation, mobility
  traces.
* :mod:`repro.net` — V2V wireless loss, packet-level transfers, §III-A
  contact estimation.
* :mod:`repro.nn` — the from-scratch numpy neural network substrate.
* :mod:`repro.compression` — top-k sparsification and quantization.
* :mod:`repro.engine` — the deterministic discrete-event simulator.
* :mod:`repro.experiments` — per-table/figure reproduction harness.
"""

__version__ = "1.0.0"
