"""Structured tracing over the simulator's virtual clock.

A :class:`Tracer` records **spans** (named intervals with attributes —
one chat, one trainer run) and **events** (named points — one transfer
chunk completing, one coreset refresh).  Timestamps are *virtual*
simulation seconds supplied by the caller, so traces are deterministic
and independent of host speed; wall-clock profiling lives in
:mod:`repro.telemetry.profile` instead.

Spans nest: :meth:`Tracer.start_span` pushes onto an open-span stack and
:meth:`Tracer.end_span` pops, so a transfer event emitted inside a chat
is attached to that chat's span.  The simulation engine runs chats
synchronously (a ``pairwise_chat`` call never yields mid-flight), so a
plain stack is sufficient — there is no cross-process interleaving
within a span.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SpanRecord", "EventRecord", "Tracer"]


@dataclass
class SpanRecord:
    """One named interval in virtual time."""

    span_id: int
    parent_id: int | None
    name: str
    start: float
    end: float | None = None
    status: str = "open"  # "open" until ended, then "ok"/"aborted"/...
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in virtual seconds (0 while still open)."""
        return (self.end - self.start) if self.end is not None else 0.0


@dataclass
class EventRecord:
    """One named instant, attached to the enclosing span (if any)."""

    name: str
    time: float
    span_id: int | None = None
    attrs: dict = field(default_factory=dict)


class Tracer:
    """Append-only span/event store with an open-span stack."""

    def __init__(self):
        self.spans: list[SpanRecord] = []
        self.events: list[EventRecord] = []
        self._stack: list[SpanRecord] = []
        self._next_id = 1

    # -- spans ------------------------------------------------------------

    def start_span(self, name: str, time: float, **attrs) -> SpanRecord:
        """Open a span at virtual ``time``; it becomes the current span."""
        parent = self._stack[-1].span_id if self._stack else None
        span = SpanRecord(
            span_id=self._next_id, parent_id=parent, name=name, start=time, attrs=attrs
        )
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span)
        return span

    def end_span(self, time: float, status: str = "ok", **attrs) -> SpanRecord:
        """Close the current span, stamping its end time and status."""
        if not self._stack:
            raise RuntimeError("end_span with no open span")
        span = self._stack.pop()
        span.end = time
        span.status = status
        span.attrs.update(attrs)
        return span

    @property
    def current_span(self) -> SpanRecord | None:
        """The innermost open span, or None outside any span."""
        return self._stack[-1] if self._stack else None

    # -- events ------------------------------------------------------------

    def event(self, name: str, time: float, **attrs) -> EventRecord:
        """Record a point event under the current span (if any)."""
        current = self._stack[-1].span_id if self._stack else None
        record = EventRecord(name=name, time=time, span_id=current, attrs=attrs)
        self.events.append(record)
        return record

    # -- queries ------------------------------------------------------------

    def find_spans(self, name: str) -> list[SpanRecord]:
        """All spans with the given name, in start order."""
        return [s for s in self.spans if s.name == name]

    def span_counts(self) -> dict[str, int]:
        """Span count per name."""
        out: dict[str, int] = {}
        for span in self.spans:
            out[span.name] = out.get(span.name, 0) + 1
        return out

    def event_counts(self) -> dict[str, int]:
        """Event count per name."""
        out: dict[str, int] = {}
        for event in self.events:
            out[event.name] = out.get(event.name, 0) + 1
        return out
