"""Persist and reload telemetry as JSONL / CSV.

The JSONL layout is one self-describing record per line — ``kind`` is
``meta``, ``span``, ``event``, ``metrics``, or ``profile`` — so a trace
streams to disk, greps cleanly, and round-trips without a schema file.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path

__all__ = ["LoadedTrace", "export_jsonl", "load_jsonl", "export_metrics_csv"]


def _json_default(value):
    # numpy scalars and similar: fall back to their Python value.
    item = getattr(value, "item", None)
    if callable(item):
        return item()
    return str(value)


def _dump(record: dict) -> str:
    return json.dumps(record, default=_json_default)


def export_jsonl(session, path: str | Path) -> Path:
    """Write a session's spans, events, metrics, and profile to JSONL."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as fh:
        fh.write(_dump({"kind": "meta", "label": session.label}) + "\n")
        for span in session.tracer.spans:
            fh.write(
                _dump(
                    {
                        "kind": "span",
                        "span_id": span.span_id,
                        "parent_id": span.parent_id,
                        "name": span.name,
                        "start": span.start,
                        "end": span.end,
                        "status": span.status,
                        "attrs": span.attrs,
                    }
                )
                + "\n"
            )
        for event in session.tracer.events:
            fh.write(
                _dump(
                    {
                        "kind": "event",
                        "name": event.name,
                        "time": event.time,
                        "span_id": event.span_id,
                        "attrs": event.attrs,
                    }
                )
                + "\n"
            )
        fh.write(_dump({"kind": "metrics", "data": session.registry.snapshot()}) + "\n")
        fh.write(_dump({"kind": "profile", "data": session.profiler.summary()}) + "\n")
    return path


@dataclass
class LoadedTrace:
    """A JSONL trace read back into memory."""

    meta: dict = field(default_factory=dict)
    spans: list[dict] = field(default_factory=list)
    events: list[dict] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    profile: dict = field(default_factory=dict)

    def span_counts(self) -> dict[str, int]:
        """Span count per name (mirrors ``Tracer.span_counts``)."""
        out: dict[str, int] = {}
        for span in self.spans:
            out[span["name"]] = out.get(span["name"], 0) + 1
        return out


def load_jsonl(path: str | Path) -> LoadedTrace:
    """Read a trace written by :func:`export_jsonl`."""
    trace = LoadedTrace()
    with Path(path).open() as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.pop("kind", None)
            if kind == "meta":
                trace.meta = record
            elif kind == "span":
                trace.spans.append(record)
            elif kind == "event":
                trace.events.append(record)
            elif kind == "metrics":
                trace.metrics = record["data"]
            elif kind == "profile":
                trace.profile = record["data"]
    return trace


def export_metrics_csv(registry, path: str | Path) -> Path:
    """Write a registry snapshot as flat (metric, field, value) CSV rows."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    snapshot = registry.snapshot()
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["metric", "field", "value"])
        for name, value in snapshot["counters"].items():
            writer.writerow([name, "count", value])
        for name, value in snapshot["gauges"].items():
            writer.writerow([name, "value", value])
        for name, summary in snapshot["histograms"].items():
            for stat, value in summary.items():
                writer.writerow([name, stat, value])
    return path
