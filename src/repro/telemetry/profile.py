"""Wall-clock profiling of simulation components.

The tracer measures *virtual* time; this module measures *host* time,
for the component-speed question ("how fast does the simulator itself
run?") that the tracer deliberately cannot answer.  The profiler is a
plain accumulator — ``perf_counter`` deltas per named section — so its
own overhead is one clock read on each side of the timed region.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

__all__ = ["WallClockProfiler", "time_call"]


class WallClockProfiler:
    """Accumulates wall-clock seconds per named section."""

    def __init__(self):
        self._totals: dict[str, float] = {}
        self._counts: dict[str, int] = {}

    @contextmanager
    def timeit(self, name: str):
        """Time the enclosed block under ``name``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - start)

    def add(self, name: str, seconds: float) -> None:
        """Record one timed occurrence of ``name``."""
        self._totals[name] = self._totals.get(name, 0.0) + seconds
        self._counts[name] = self._counts.get(name, 0) + 1

    def summary(self) -> dict[str, dict]:
        """Per-name {count, total_s, mean_s}, sorted by total descending."""
        out = {}
        for name in sorted(self._totals, key=self._totals.get, reverse=True):
            total = self._totals[name]
            count = self._counts[name]
            out[name] = {
                "count": count,
                "total_s": total,
                "mean_s": total / count if count else 0.0,
            }
        return out

    def render(self) -> str:
        """Summary as an aligned text block."""
        rows = self.summary()
        if not rows:
            return "(no wall-clock sections timed)"
        width = max(len(n) for n in rows)
        lines = [f"{'section':{width}s} {'count':>7s} {'total':>9s} {'mean':>10s}"]
        for name, stats in rows.items():
            lines.append(
                f"{name:{width}s} {stats['count']:7d} "
                f"{stats['total_s']:8.3f}s {1e3 * stats['mean_s']:8.3f}ms"
            )
        return "\n".join(lines)


def time_call(fn, repeat: int = 3) -> float:
    """Best-of-``repeat`` wall-clock seconds for one call of ``fn``.

    The minimum over repeats is the standard noise-resistant estimator
    for component-speed comparisons (e.g. telemetry on vs off).
    """
    best = float("inf")
    for _ in range(max(repeat, 1)):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best
