"""Observability for reproduction runs (opt-in, no-op by default).

The layer has three legs, one per question an experimenter asks:

* **tracer** — *what happened when* (virtual-time spans/events: chats,
  their protocol stages, transfers, trainer runs);
* **registry** — *how much* (named counters, gauges, histograms; adopts
  the trainers' :mod:`repro.engine.metrics` recorders at snapshot time);
* **profile** — *how fast on the host* (wall-clock section timers).

Hot paths call into :mod:`repro.telemetry.hooks`, which no-ops unless a
:class:`TelemetrySession` is active::

    from repro.telemetry import TelemetrySession, report_session

    with TelemetrySession(label="LbChat ci") as session:
        trainer.run()
    export_jsonl(session, "trace.jsonl")
    print(report_session(session))

``repro trace`` wraps exactly this around any method run.
"""

from repro.telemetry.export import (
    LoadedTrace,
    export_jsonl,
    export_metrics_csv,
    load_jsonl,
)
from repro.telemetry.hooks import TelemetrySession, activate, active, deactivate
from repro.telemetry.profile import WallClockProfiler, time_call
from repro.telemetry.registry import Counter, Gauge, Histogram, MetricRegistry
from repro.telemetry.report import render_report, report_session, report_trace
from repro.telemetry.tracer import EventRecord, SpanRecord, Tracer

__all__ = [
    "TelemetrySession",
    "activate",
    "active",
    "deactivate",
    "Tracer",
    "SpanRecord",
    "EventRecord",
    "MetricRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "WallClockProfiler",
    "time_call",
    "export_jsonl",
    "export_metrics_csv",
    "load_jsonl",
    "LoadedTrace",
    "render_report",
    "report_session",
    "report_trace",
]
