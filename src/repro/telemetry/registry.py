"""Named metric instruments: counters, gauges, histograms.

The :class:`MetricRegistry` is the accounting half of the telemetry
layer.  It subsumes the ad-hoc recorders in :mod:`repro.engine.metrics`
without replacing them: trainers keep their ``CounterSet`` /
``ReceiveRateRecorder`` (cheap, always on), and a registry *adopts*
their contents at snapshot time via :meth:`MetricRegistry.merge_counter_set`
and :meth:`MetricRegistry.merge_receive_rate` — duck-typed so this
module stays dependency-free.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["Counter", "Gauge", "Histogram", "MetricRegistry"]


class Counter:
    """A monotonically increasing scalar."""

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Increment by a non-negative amount."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} increment must be >= 0: {amount}")
        self.value += amount


class Gauge:
    """A scalar that can move both ways (last value wins)."""

    def __init__(self, name: str):
        self.name = name
        self.value = math.nan

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = float(value)


class Histogram:
    """A distribution of observations (stores raw values).

    Runs are short enough (thousands of chats, not billions) that
    keeping raw observations is cheaper than getting bucket boundaries
    wrong; summaries are computed lazily.
    """

    def __init__(self, name: str):
        self.name = name
        self.values: list[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return float(sum(self.values))

    def summary(self) -> dict:
        """count/sum/min/max/mean/p50/p90 of the observations so far."""
        if not self.values:
            return {"count": 0, "sum": 0.0}
        arr = np.asarray(self.values)
        return {
            "count": int(arr.size),
            "sum": float(arr.sum()),
            "min": float(arr.min()),
            "max": float(arr.max()),
            "mean": float(arr.mean()),
            "p50": float(np.percentile(arr, 50)),
            "p90": float(np.percentile(arr, 90)),
        }


class MetricRegistry:
    """Get-or-create home for named instruments."""

    def __init__(self):
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """The counter with this name (created on first use)."""
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """The gauge with this name (created on first use)."""
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        """The histogram with this name (created on first use)."""
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    # -- interop with repro.engine.metrics ---------------------------------

    def merge_counter_set(self, counter_set, prefix: str = "") -> None:
        """Adopt an ``engine.metrics.CounterSet`` (anything with as_dict)."""
        for name, value in counter_set.as_dict().items():
            counter = self.counter(prefix + name)
            counter.value = max(counter.value, float(value))

    def merge_receive_rate(self, recorder, prefix: str = "model_rx.") -> None:
        """Adopt an ``engine.metrics.ReceiveRateRecorder``."""
        attempted = self.counter(prefix + "attempted")
        completed = self.counter(prefix + "completed")
        attempted.value = max(attempted.value, float(recorder.attempted))
        completed.value = max(completed.value, float(recorder.completed))
        self.gauge(prefix + "rate").set(recorder.rate)

    # -- cross-process merge -------------------------------------------------

    def state(self) -> dict:
        """Full transferable contents (histograms keep raw values).

        Unlike :meth:`snapshot` (a human/JSON-facing summary), the state
        is lossless: another registry can :meth:`merge_state` it and end
        up observing everything this one observed.  Used to ship a
        worker process's per-run registry back to the parent.
        """
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {
                n: g.value
                for n, g in sorted(self._gauges.items())
                if not math.isnan(g.value)
            },
            "histograms": {
                n: list(h.values) for n, h in sorted(self._histograms.items())
            },
        }

    def merge_state(self, state: dict) -> None:
        """Fold another registry's :meth:`state` into this one.

        Counters add (the runs observed disjoint events), histogram
        observations are concatenated, and gauges are last-write-wins —
        call in job order for deterministic results.
        """
        for name, value in state.get("counters", {}).items():
            self.counter(name).inc(float(value))
        for name, value in state.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, values in state.get("histograms", {}).items():
            histogram = self.histogram(name)
            for value in values:
                histogram.observe(value)

    # -- output ------------------------------------------------------------

    def snapshot(self) -> dict:
        """All instruments as a plain nested dict (JSON-safe)."""
        return {
            "counters": {n: c.value for n, c in sorted(self._counters.items())},
            "gauges": {
                n: g.value
                for n, g in sorted(self._gauges.items())
                if not math.isnan(g.value)
            },
            "histograms": {
                n: h.summary() for n, h in sorted(self._histograms.items())
            },
        }
