"""Opt-in instrumentation entry points for the simulation hot paths.

Core modules (``core.chat``, ``net.channel``, ``core.trainer_base``,
``core.node``) call the module-level functions below at interesting
moments.  When no :class:`TelemetrySession` is active every call is a
global read plus a ``None`` check — the no-op fast path that keeps
disabled-telemetry overhead well under 5%.  Activating a session (via
``with TelemetrySession(): ...`` or :func:`activate`) routes the same
calls into its tracer/registry/profiler.

The telemetry package never imports ``repro.core``/``repro.net``;
domain objects (a ``ChatOutcome``, a trainer) are duck-typed here so the
dependency arrow points strictly from the hot paths to telemetry.
"""

from __future__ import annotations

from repro.telemetry.profile import WallClockProfiler
from repro.telemetry.registry import MetricRegistry
from repro.telemetry.tracer import Tracer

__all__ = [
    "TelemetrySession",
    "activate",
    "deactivate",
    "active",
    "count",
    "observe",
    "set_gauge",
    "add_event",
    "on_transfer",
    "on_chat_stage",
    "on_chat_outcome",
    "on_overlap_outcome",
    "on_model_reception",
    "on_coreset_refresh",
    "on_coreset_merge",
    "on_run_started",
    "on_run_finished",
    "on_record_tick",
]


class TelemetrySession:
    """One run's worth of telemetry: tracer + metrics + profiler.

    Usable as a context manager; entering activates it globally (saving
    any previously active session) and exiting restores the previous
    state, so sessions nest safely in tests.
    """

    def __init__(self, label: str = "run"):
        self.label = label
        self.tracer = Tracer()
        self.registry = MetricRegistry()
        self.profiler = WallClockProfiler()
        self.clock = None  # callable -> current virtual time, set by trainers
        self._previous: "TelemetrySession | None" = None

    def now(self) -> float:
        """Current virtual time (0.0 before any trainer sets the clock)."""
        return float(self.clock()) if self.clock is not None else 0.0

    def __enter__(self) -> "TelemetrySession":
        self._previous = active()
        activate(self)
        return self

    def __exit__(self, *exc) -> None:
        activate(self._previous)
        self._previous = None


_ACTIVE: TelemetrySession | None = None


def activate(session: TelemetrySession | None) -> None:
    """Make ``session`` the globally active one (None disables)."""
    global _ACTIVE
    _ACTIVE = session


def deactivate() -> None:
    """Disable telemetry (equivalent to ``activate(None)``)."""
    activate(None)


def active() -> TelemetrySession | None:
    """The active session, or None when telemetry is off."""
    return _ACTIVE


# -- generic instruments (each no-ops when telemetry is off) -----------------


def count(name: str, amount: float = 1.0) -> None:
    """Increment a registry counter."""
    s = _ACTIVE
    if s is not None:
        s.registry.counter(name).inc(amount)


def observe(name: str, value: float) -> None:
    """Record a histogram observation."""
    s = _ACTIVE
    if s is not None:
        s.registry.histogram(name).observe(value)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge level."""
    s = _ACTIVE
    if s is not None:
        s.registry.gauge(name).set(value)


def add_event(name: str, time: float | None = None, **attrs) -> None:
    """Record a trace event (virtual ``time``; session clock if omitted)."""
    s = _ACTIVE
    if s is not None:
        s.tracer.event(name, s.now() if time is None else time, **attrs)


# -- net.channel ------------------------------------------------------------


def on_transfer(n_bytes: float, result, start_time: float) -> None:
    """One simulated transfer finished (``result`` is a TransferResult)."""
    s = _ACTIVE
    if s is None:
        return
    s.registry.counter("transfer.count").inc()
    s.registry.counter("transfer.bytes_requested").inc(n_bytes)
    s.registry.counter("transfer.bytes_delivered").inc(result.bytes_delivered)
    if not result.completed:
        s.registry.counter("transfer.failed").inc()
    s.registry.histogram("transfer.elapsed_s").observe(result.elapsed)
    s.tracer.event(
        "transfer",
        start_time + result.elapsed,
        bytes=float(n_bytes),
        delivered=float(result.bytes_delivered),
        elapsed=float(result.elapsed),
        completed=bool(result.completed),
    )


# -- core.chat ---------------------------------------------------------------


def on_chat_stage(stage: str, time: float, ok: bool) -> None:
    """One protocol stage of the current chat finished (or died)."""
    s = _ACTIVE
    if s is not None:
        s.tracer.event("chat.stage", time, stage=stage, ok=bool(ok))


def on_chat_outcome(start_time: float, outcome) -> None:
    """Close the current chat span and account its ChatOutcome."""
    s = _ACTIVE
    if s is None:
        return
    status = "aborted" if outcome.aborted else "ok"
    psi_i = outcome.psi.psi_i if outcome.psi is not None else None
    psi_j = outcome.psi.psi_j if outcome.psi is not None else None
    s.tracer.end_span(
        start_time + outcome.duration,
        status=status,
        aborted=outcome.aborted,
        coresets_exchanged=outcome.coresets_exchanged,
        psi_i=psi_i,
        psi_j=psi_j,
        i_received_model=outcome.i_received_model,
        j_received_model=outcome.j_received_model,
        absorbed=outcome.absorbed_by_i + outcome.absorbed_by_j,
    )
    s.registry.counter("chat.count").inc()
    if outcome.aborted:
        s.registry.counter(f"chat.aborted.{outcome.aborted}").inc()
    else:
        s.registry.counter("chat.completed").inc()
    s.registry.histogram("chat.duration_s").observe(outcome.duration)
    s.registry.counter("chat.frames_absorbed").inc(
        outcome.absorbed_by_i + outcome.absorbed_by_j
    )
    for psi in (psi_i, psi_j):
        if psi is not None:
            s.registry.histogram("chat.psi").observe(psi)
    for attempted, received in (
        (outcome.i_attempted, outcome.i_received_model),
        (outcome.j_attempted, outcome.j_received_model),
    ):
        if attempted:
            on_model_reception(received)


def on_overlap_outcome(start_time: float, end_time: float, outcome, committed: bool) -> None:
    """An overlapped chat resolved (plan-phase end or transfer commit).

    Overlapped chats cannot use the tracer's span stack — several can be
    in flight at once — so the chat is recorded as one event carrying
    explicit start/end times, with the same counter accounting as
    :func:`on_chat_outcome` plus the overlap commit/abort tallies.
    """
    s = _ACTIVE
    if s is None:
        return
    status = "aborted" if outcome.aborted else "ok"
    psi_i = outcome.psi.psi_i if outcome.psi is not None else None
    psi_j = outcome.psi.psi_j if outcome.psi is not None else None
    s.tracer.event(
        "overlap.chat",
        end_time,
        start=start_time,
        status=status,
        aborted=outcome.aborted,
        committed=bool(committed),
        coresets_exchanged=outcome.coresets_exchanged,
        psi_i=psi_i,
        psi_j=psi_j,
        i_received_model=outcome.i_received_model,
        j_received_model=outcome.j_received_model,
        absorbed=outcome.absorbed_by_i + outcome.absorbed_by_j,
    )
    s.registry.counter("overlap.commits" if committed else "overlap.aborts").inc()
    s.registry.counter("chat.count").inc()
    if outcome.aborted:
        s.registry.counter(f"chat.aborted.{outcome.aborted}").inc()
    else:
        s.registry.counter("chat.completed").inc()
    s.registry.histogram("chat.duration_s").observe(outcome.duration)
    s.registry.counter("chat.frames_absorbed").inc(
        outcome.absorbed_by_i + outcome.absorbed_by_j
    )
    for psi in (psi_i, psi_j):
        if psi is not None:
            s.registry.histogram("chat.psi").observe(psi)
    for attempted, received in (
        (outcome.i_attempted, outcome.i_received_model),
        (outcome.j_attempted, outcome.j_received_model),
    ):
        if attempted:
            on_model_reception(received)


def on_model_reception(success: bool) -> None:
    """One attempted model reception resolved (any trainer)."""
    s = _ACTIVE
    if s is None:
        return
    s.registry.counter("model_rx.attempted").inc()
    if success:
        s.registry.counter("model_rx.completed").inc()


# -- core.node (coreset lifecycle) -------------------------------------------


def on_coreset_refresh(node_id: str, size: int) -> None:
    """A node rebuilt its coreset from scratch (Algorithm 1)."""
    s = _ACTIVE
    if s is None:
        return
    s.registry.counter("coreset.refreshes").inc()
    s.tracer.event("coreset.refresh", s.now(), node=node_id, size=size)


def on_coreset_merge(node_id: str, added: int) -> None:
    """A node merge-reduced a received coreset into its own (§III-D)."""
    s = _ACTIVE
    if s is None:
        return
    s.registry.counter("coreset.merges").inc()
    s.registry.counter("coreset.frames_added").inc(added)


# -- core.trainer_base --------------------------------------------------------


def on_run_started(trainer) -> None:
    """A trainer's run() began: bind the virtual clock, open the run span."""
    s = _ACTIVE
    if s is None:
        return
    s.clock = lambda: trainer.sim.now
    s.tracer.start_span(
        "trainer_run",
        trainer.sim.now,
        method=trainer.name,
        n_vehicles=len(trainer.nodes),
        duration=trainer.config.duration,
    )
    s.registry.gauge("run.n_vehicles").set(len(trainer.nodes))


def on_run_finished(trainer) -> None:
    """A trainer's run() ended: adopt its recorders, close the run span."""
    s = _ACTIVE
    if s is None:
        return
    s.registry.merge_counter_set(trainer.counters, prefix="trainer.")
    s.registry.merge_receive_rate(trainer.receive_rate)
    if s.tracer.current_span is not None:
        s.tracer.end_span(trainer.sim.now, status="ok")


def on_record_tick(time: float, n_nodes: int) -> None:
    """The periodic loss recorder fired."""
    s = _ACTIVE
    if s is not None:
        s.tracer.event("record_losses", time, n_nodes=n_nodes)
        s.registry.counter("run.record_ticks").inc()
