"""Human-readable per-run telemetry summaries.

Renders what an experimenter asks right after a run: how many chats ran,
where the aborted ones died, how many bytes actually moved, what the
Eq. 7 psi distribution looked like, and the model receive rate — the
quantities behind the paper's Tables 2–7 — plus the wall-clock profile
when sections were timed.  Works from a live session or from a JSONL
trace reloaded with :func:`repro.telemetry.export.load_jsonl`.
"""

from __future__ import annotations

__all__ = ["render_report", "report_session", "report_trace"]


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if abs(n) < 1024.0 or unit == "GB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{n:.0f} B"
        n /= 1024.0
    return f"{n:.1f} GB"


def render_report(
    metrics: dict,
    span_counts: dict | None = None,
    profile: dict | None = None,
    label: str = "run",
) -> str:
    """Render a metrics snapshot (plus optional spans/profile) as text."""
    counters = metrics.get("counters", {})
    gauges = metrics.get("gauges", {})
    histograms = metrics.get("histograms", {})
    lines = [f"=== telemetry report: {label} ==="]

    chats = counters.get("chat.count", 0)
    if chats:
        completed = counters.get("chat.completed", 0)
        lines.append(f"chats: {chats:.0f} total, {completed:.0f} ran to completion")
        aborts = {
            name.split("chat.aborted.", 1)[1]: value
            for name, value in sorted(counters.items())
            if name.startswith("chat.aborted.")
        }
        if aborts:
            stages = ", ".join(f"{stage}={value:.0f}" for stage, value in aborts.items())
            lines.append(f"  aborted by stage: {stages}")
        absorbed = counters.get("chat.frames_absorbed", 0)
        if absorbed:
            lines.append(f"  coreset frames absorbed: {absorbed:.0f}")

    attempted = counters.get("model_rx.attempted", 0)
    if attempted:
        completed = counters.get("model_rx.completed", 0)
        rate = gauges.get("model_rx.rate", completed / attempted)
        lines.append(
            f"model receptions: {completed:.0f}/{attempted:.0f} "
            f"completed (receive rate {100 * rate:.1f}%)"
        )

    transfers = counters.get("transfer.count", 0)
    if transfers:
        delivered = counters.get("transfer.bytes_delivered", 0.0)
        requested = counters.get("transfer.bytes_requested", 0.0)
        failed = counters.get("transfer.failed", 0)
        lines.append(
            f"transfers: {transfers:.0f} ({failed:.0f} cut short), "
            f"{_fmt_bytes(delivered)} delivered of {_fmt_bytes(requested)} requested"
        )

    psi = histograms.get("chat.psi", {})
    if psi.get("count"):
        lines.append(
            f"psi distribution (n={psi['count']}): mean {psi['mean']:.3f}, "
            f"p50 {psi['p50']:.3f}, p90 {psi['p90']:.3f}, max {psi['max']:.3f}"
        )

    refreshes = counters.get("coreset.refreshes", 0)
    merges = counters.get("coreset.merges", 0)
    if refreshes or merges:
        lines.append(f"coresets: {refreshes:.0f} rebuilds, {merges:.0f} merge-reduces")

    extra_counters = {
        name: value
        for name, value in sorted(counters.items())
        if name.startswith("trainer.")
    }
    if extra_counters:
        lines.append("trainer counters:")
        for name, value in extra_counters.items():
            lines.append(f"  {name.split('trainer.', 1)[1]}: {value:g}")

    if span_counts:
        spans = ", ".join(f"{name}={count}" for name, count in sorted(span_counts.items()))
        lines.append(f"spans: {spans}")

    if profile:
        lines.append("wall-clock profile:")
        for name, stats in profile.items():
            lines.append(
                f"  {name}: {stats['count']}x, total {stats['total_s']:.3f}s, "
                f"mean {1e3 * stats['mean_s']:.3f}ms"
            )

    if len(lines) == 1:
        lines.append("(no telemetry recorded)")
    return "\n".join(lines)


def report_session(session) -> str:
    """Render a live :class:`~repro.telemetry.hooks.TelemetrySession`."""
    return render_report(
        session.registry.snapshot(),
        span_counts=session.tracer.span_counts(),
        profile=session.profiler.summary(),
        label=session.label,
    )


def report_trace(trace) -> str:
    """Render a reloaded :class:`~repro.telemetry.export.LoadedTrace`."""
    return render_report(
        trace.metrics,
        span_counts=trace.span_counts(),
        profile=trace.profile,
        label=trace.meta.get("label", "trace"),
    )
