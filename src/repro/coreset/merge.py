"""Coreset merge-and-reduce updating (§III-D).

The ε-coreset union property: if C1, C2 are ε-coresets of disjoint D1,
D2 then C1 ∪ C2 is an ε-coreset of D1 ∪ D2 (Wang et al.).  A vehicle can
therefore keep its coreset fresh after absorbing a peer's coreset by
*merging* the two coresets, then *reducing* (re-running layered sampling
on the union) to hold the size constant — the classic Har-Peled &
Mazumdar merge-reduce tree, flattened to a single level.
"""

from __future__ import annotations

import numpy as np

from repro.coreset.construction import Coreset, build_coreset

__all__ = ["merge_coresets", "reduce_coreset"]


def merge_coresets(a: Coreset, b: Coreset) -> Coreset:
    """Union of two coresets, keeping each sample's coreset weight.

    Duplicate frame ids (possible after repeat encounters) are kept
    once — :class:`DrivingDataset` deduplicates on id.
    """
    data = a.data.copy()
    before = len(data)
    kept_from_b = data.absorb_from(b.data)
    source = np.concatenate(
        [
            a.source_weights
            if len(a.source_weights) == before
            else np.ones(before),
            (b.source_weights if len(b.source_weights) == len(b.data) else np.ones(len(b.data)))[
                :kept_from_b
            ]
            if kept_from_b
            else np.zeros(0),
        ]
    )
    return Coreset(data=data, source_weights=source)


def reduce_coreset(
    coreset: Coreset,
    losses: np.ndarray,
    target_size: int,
    rng: np.random.Generator,
) -> Coreset:
    """Shrink a (merged) coreset back to ``target_size``.

    Re-runs layered sampling with the existing coreset weights ``w_C``
    acting as the data weights, which preserves each sample's
    representation mass through the reduction.
    """
    if len(coreset) <= target_size:
        return coreset
    reduced = build_coreset(coreset.data, losses, target_size, rng)
    return reduced
