"""Layered-sampling coreset construction — Algorithm 1.

The dataset is partitioned into concentric layers (rings) by per-sample
loss under the current model: the "center" is the sample of smallest
loss, the 0-th layer radius is the mean loss ``R = f(x; D)/|D|``, and a
sample at loss-distance ``dist`` from the center lands in layer
``floor(log2(dist / R)) + 1`` (layer 0 holds samples within ``R``).
Each layer then contributes a ``w(d)``-weighted random sample, and the
selected samples of layer ``j`` carry the coreset weight

    w_C(d) = sum_{d' in layer_j} w(d') / sum_{d' in selected_j} w(d'),

exactly as Algorithm 1 line 12 prescribes, so the coreset's weighted
loss estimates the layer's weighted loss.  The construction is
data-independent in size and linear-time, per Wang et al. (NeurIPS'21).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.sim.dataset import DrivingDataset, Frame

__all__ = ["Coreset", "layer_assignments", "allocate_layer_quotas", "build_coreset"]

#: Nominal wire size of one coreset frame: 150 frames ~ 0.6 MB (§IV-A).
FRAME_NOMINAL_BYTES = 4096


@dataclass
class Coreset:
    """A weighted mini-dataset plus wire-size accounting.

    ``data`` is a :class:`DrivingDataset` whose per-frame weights are the
    coreset weights ``w_C(d)``; ``source_weights`` preserves the original
    ``w(d)`` of each selected sample (needed when a receiver absorbs the
    coreset into its local dataset, where original weights apply).
    """

    data: DrivingDataset
    source_weights: np.ndarray = field(default_factory=lambda: np.zeros(0))

    def __len__(self) -> int:
        return len(self.data)

    @property
    def nominal_bytes(self) -> int:
        """Transfer size at paper scale (~0.6 MB for 150 frames)."""
        return len(self.data) * FRAME_NOMINAL_BYTES

    def frames_with_original_weights(self) -> list[Frame]:
        """Frames carrying their original ``w(d)`` — for absorption.

        The paper keeps original weights uniform across the expanded
        dataset (§III-D), so receivers re-weight these to match their
        local convention; exposing the originals keeps that explicit.
        """
        frames = self.data.frames()
        if len(self.source_weights) != len(frames):
            return frames
        return [
            Frame(f.frame_id, f.bev, f.command, f.waypoints, float(w))
            for f, w in zip(frames, self.source_weights)
        ]


def layer_assignments(losses: np.ndarray) -> np.ndarray:
    """Layer index of every sample given its loss (Algorithm 1, l.1-6).

    Layer 0 collects samples whose loss-distance from the center (the
    minimum loss) is within the mean loss ``R``; outer layers double in
    radius, giving at most ``O(log |D|)`` layers.
    """
    losses = np.asarray(losses, dtype=float)
    if losses.ndim != 1 or losses.size == 0:
        raise ValueError("losses must be a non-empty vector")
    if (losses < 0).any():
        raise ValueError("losses must be non-negative")
    center = losses.min()
    radius = losses.mean() if losses.mean() > 0 else 1.0
    dist = losses - center
    layers = np.zeros(losses.size, dtype=np.int64)
    outer = dist > radius
    with np.errstate(divide="ignore"):
        layers[outer] = np.floor(np.log2(dist[outer] / radius)).astype(np.int64) + 1
    return layers


def allocate_layer_quotas(
    layer_weight: np.ndarray, layer_count: np.ndarray, target_size: int
) -> np.ndarray:
    """Split ``target_size`` samples across layers.

    Quotas are proportional to each layer's total data weight — heavier
    layers deserve more representatives — with every non-empty layer
    guaranteed at least one sample and no layer allocated more samples
    than it contains.
    """
    n_layers = len(layer_weight)
    quotas = np.zeros(n_layers, dtype=np.int64)
    nonempty = layer_count > 0
    n_nonempty = int(nonempty.sum())
    if n_nonempty == 0:
        return quotas
    target_size = max(target_size, n_nonempty)
    quotas[nonempty] = 1
    remaining = target_size - n_nonempty
    if remaining > 0:
        mass = np.where(nonempty, layer_weight, 0.0)
        total = mass.sum()
        if total > 0:
            extra = np.floor(remaining * mass / total).astype(np.int64)
            quotas += extra
            # Distribute leftovers to the heaviest layers.
            leftover = remaining - int(extra.sum())
            order = np.argsort(-mass)
            for layer_idx in order[:leftover]:
                quotas[layer_idx] += 1
    return np.minimum(quotas, layer_count)


def build_coreset(
    dataset: DrivingDataset,
    losses: np.ndarray,
    target_size: int,
    rng: np.random.Generator,
) -> Coreset:
    """Algorithm 1: layered-sampling coreset of ``dataset``.

    Parameters
    ----------
    dataset:
        The weighted local dataset ``D``.
    losses:
        Per-sample losses ``f(x; d)`` under the current model, aligned
        with the dataset's frame order.
    target_size:
        Desired ``|C|`` (the paper's default is 150).
    """
    if len(dataset) == 0:
        raise ValueError("cannot build a coreset from an empty dataset")
    losses = np.asarray(losses, dtype=float)
    if losses.size != len(dataset):
        raise ValueError(f"{losses.size} losses for {len(dataset)} samples")
    if target_size >= len(dataset):
        # Degenerate case: the dataset is already small enough.
        return Coreset(
            data=dataset.with_weights(dataset.weights),
            source_weights=dataset.weights.copy(),
        )

    weights = dataset.weights
    layers = layer_assignments(losses)
    n_layers = int(layers.max()) + 1
    layer_weight = np.zeros(n_layers)
    layer_count = np.zeros(n_layers, dtype=np.int64)
    for j in range(n_layers):
        mask = layers == j
        layer_count[j] = int(mask.sum())
        layer_weight[j] = float(weights[mask].sum())
    quotas = allocate_layer_quotas(layer_weight, layer_count, target_size)

    chosen_per_layer: list[np.ndarray] = []
    w_c_per_layer: list[np.ndarray] = []
    for j in range(n_layers):
        if quotas[j] == 0:
            continue
        members = np.where(layers == j)[0]
        member_weights = weights[members]
        probs = member_weights / member_weights.sum()
        chosen = rng.choice(members, size=int(quotas[j]), replace=False, p=probs)
        # Algorithm 1 line 12: one ratio per layer.
        w_c = float(layer_weight[j] / weights[chosen].sum())
        chosen_per_layer.append(np.asarray(chosen, dtype=np.int64))
        w_c_per_layer.append(np.full(chosen.size, w_c))
    if chosen_per_layer:
        idx = np.concatenate(chosen_per_layer)
        w_c_all = np.concatenate(w_c_per_layer)
    else:
        idx = np.zeros(0, dtype=np.int64)
        w_c_all = np.zeros(0)
    return Coreset(
        data=dataset.subset(idx, weights=w_c_all),
        source_weights=weights[idx].astype(float),
    )
