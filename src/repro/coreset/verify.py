"""Empirical ε-coreset verification (Definition II.2).

A coreset C of D should satisfy ``|f(x; C) − f(x; D)| ≤ ε f(x; D)`` for
every model x in a ball around the construction point.  We verify this
empirically: perturb the model within a radius, evaluate both weighted
losses, and report the worst relative error.  Tests use this to check
that Algorithm 1's output really approximates the dataset and that
merge-reduce preserves the guarantee.
"""

from __future__ import annotations

import numpy as np

from repro.coreset.construction import Coreset
from repro.nn import waypoint_l1
from repro.nn.params import get_flat_params, set_flat_params
from repro.sim.dataset import DrivingDataset

__all__ = ["weighted_dataset_loss", "relative_coreset_error"]


def weighted_dataset_loss(model, dataset: DrivingDataset) -> float:
    """Weighted mean waypoint-L1 loss of ``model`` over ``dataset``."""
    bev, commands, targets, weights = dataset.arrays()
    pred = model.forward(bev, commands)
    scalar, _, _ = waypoint_l1(pred, targets, weights=weights)
    return scalar


def relative_coreset_error(
    model,
    dataset: DrivingDataset,
    coreset: Coreset,
    radius: float = 0.0,
    n_probes: int = 5,
    rng: np.random.Generator | None = None,
) -> float:
    """Worst relative loss error of the coreset over a parameter ball.

    ``radius = 0`` checks only the construction point; a positive radius
    additionally probes ``n_probes`` random perturbations of norm up to
    ``radius`` (the CnB ball), restoring the model's parameters after.
    """
    original = get_flat_params(model)
    probes = [original]
    if radius > 0:
        rng = rng or np.random.default_rng(0)
        for _ in range(n_probes):
            direction = rng.normal(size=original.size).astype(np.float32)
            direction *= radius * rng.uniform() / max(np.linalg.norm(direction), 1e-12)
            probes.append(original + direction)
    worst = 0.0
    try:
        for flat in probes:
            set_flat_params(model, flat)
            full = weighted_dataset_loss(model, dataset)
            approx = weighted_dataset_loss(model, coreset.data)
            if full > 0:
                worst = max(worst, abs(approx - full) / full)
    finally:
        set_flat_params(model, original)
    return worst
