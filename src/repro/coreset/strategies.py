"""Alternative coreset construction strategies (§V, Discussion).

The paper's main method is layered sampling (Algorithm 1), but it notes
that random-sampling-based and clustering-based constructions "can be
adapted in LbChat" since value assessment only needs loss differences on
shared sample sets.  This module provides both alternatives behind the
same interface as :func:`repro.coreset.construction.build_coreset`:

* :func:`uniform_coreset` — w(d)-weighted random sampling with
  importance-style reweighting (the sensitivity-sampling baseline,
  Langberg & Schulman).
* :func:`kmeans_coreset` — cluster samples by (loss, command) features
  and sample per cluster (the clustering-based family, Lu et al.), which
  like layered sampling stratifies by model behaviour but with
  data-driven strata.
"""

from __future__ import annotations

import numpy as np

from repro.coreset.construction import Coreset
from repro.nn.model import N_COMMANDS
from repro.sim.dataset import DrivingDataset

__all__ = ["uniform_coreset", "kmeans_coreset", "CONSTRUCTORS", "build_coreset_with"]


def _select(
    dataset: DrivingDataset, indices: np.ndarray, coreset_weights: np.ndarray
) -> Coreset:
    idx = np.asarray(indices, dtype=np.int64)
    return Coreset(
        data=dataset.subset(idx, weights=np.asarray(coreset_weights, dtype=float)),
        source_weights=dataset.weights[idx],
    )


def uniform_coreset(
    dataset: DrivingDataset,
    losses: np.ndarray,
    target_size: int,
    rng: np.random.Generator,
) -> Coreset:
    """w(d)-weighted random sample with importance reweighting.

    Sample i is drawn with probability proportional to its weight; the
    coreset weight ``w_C(d) = W / (m * p(d)) * p(d)·...`` reduces to the
    classic Horvitz–Thompson form ``W / m`` under weight-proportional
    sampling, keeping the weighted-loss estimator unbiased.
    """
    n = len(dataset)
    if n == 0:
        raise ValueError("cannot build a coreset from an empty dataset")
    if target_size >= n:
        return Coreset(dataset.with_weights(dataset.weights), dataset.weights.copy())
    weights = dataset.weights
    probs = weights / weights.sum()
    indices = rng.choice(n, size=target_size, replace=False, p=probs)
    w_c = np.full(target_size, weights.sum() / target_size)
    return _select(dataset, indices, w_c)


def kmeans_coreset(
    dataset: DrivingDataset,
    losses: np.ndarray,
    target_size: int,
    rng: np.random.Generator,
    n_clusters: int | None = None,
    n_iters: int = 8,
) -> Coreset:
    """Cluster by (normalized loss, command one-hot) and sample per cluster.

    Each cluster contributes representatives proportional to its weight
    mass (at least one), with per-cluster ratio weights as in Algorithm
    1's per-layer formula — clusters are simply data-driven strata.
    """
    n = len(dataset)
    if n == 0:
        raise ValueError("cannot build a coreset from an empty dataset")
    if target_size >= n:
        return Coreset(dataset.with_weights(dataset.weights), dataset.weights.copy())
    losses = np.asarray(losses, dtype=float)
    if losses.size != n:
        raise ValueError(f"{losses.size} losses for {n} samples")
    _, commands, _, weights = dataset.arrays()

    # Feature space: normalized loss + scaled command one-hot.
    loss_feat = (losses - losses.min()) / max(np.ptp(losses), 1e-9)
    features = np.zeros((n, 1 + N_COMMANDS))
    features[:, 0] = loss_feat
    features[np.arange(n), 1 + commands] = 0.5

    k = n_clusters or max(min(target_size // 3, 8), 2)
    k = min(k, n)
    centers = features[rng.choice(n, size=k, replace=False)]
    assign = np.zeros(n, dtype=int)
    for _ in range(n_iters):
        dists = np.linalg.norm(features[:, None, :] - centers[None, :, :], axis=2)
        assign = dists.argmin(axis=1)
        for c in range(k):
            members = features[assign == c]
            if len(members):
                centers[c] = members.mean(axis=0)

    # Allocate per-cluster quotas by weight mass.
    from repro.coreset.construction import allocate_layer_quotas

    cluster_weight = np.array([weights[assign == c].sum() for c in range(k)])
    cluster_count = np.array([(assign == c).sum() for c in range(k)])
    quotas = allocate_layer_quotas(cluster_weight, cluster_count, target_size)

    indices, w_cs = [], []
    for c in range(k):
        if quotas[c] == 0:
            continue
        members = np.where(assign == c)[0]
        probs = weights[members] / weights[members].sum()
        chosen = rng.choice(members, size=int(quotas[c]), replace=False, p=probs)
        ratio = cluster_weight[c] / weights[chosen].sum()
        indices.extend(chosen.tolist())
        w_cs.extend([ratio] * len(chosen))
    return _select(dataset, np.asarray(indices), np.asarray(w_cs))


def _layered(dataset, losses, target_size, rng):
    from repro.coreset.construction import build_coreset

    return build_coreset(dataset, losses, target_size, rng)


#: Strategy registry: name -> constructor with the common signature.
CONSTRUCTORS = {
    "layered": _layered,
    "uniform": uniform_coreset,
    "kmeans": kmeans_coreset,
}


def build_coreset_with(
    strategy: str,
    dataset: DrivingDataset,
    losses: np.ndarray,
    target_size: int,
    rng: np.random.Generator,
) -> Coreset:
    """Construct a coreset with a named strategy."""
    try:
        constructor = CONSTRUCTORS[strategy]
    except KeyError:
        raise ValueError(
            f"unknown strategy {strategy!r}; choose from {sorted(CONSTRUCTORS)}"
        ) from None
    return constructor(dataset, losses, target_size, rng)
