"""Coresets for continuous-and-bounded learning (§II-B, §III-B, §III-D).

A coreset is a small weighted subset of a dataset whose weighted loss
approximates the full dataset's loss for any model in a bounded region
of parameter space.  LbChat builds coresets by layered sampling
(Algorithm 1), exchanges them during encounters, evaluates models on
them to assess value, absorbs received coresets into local datasets,
and keeps its own coreset fresh with merge-and-reduce updates.
"""

from repro.coreset.construction import (
    Coreset,
    build_coreset,
    layer_assignments,
)
from repro.coreset.merge import merge_coresets, reduce_coreset
from repro.coreset.penalty import PenaltyConfig, command_loss_entropy, penalized_loss
from repro.coreset.verify import relative_coreset_error
from repro.coreset.strategies import build_coreset_with, kmeans_coreset, uniform_coreset
from repro.coreset.theory import coreset_size_bound, epsilon_for_size

__all__ = [
    "build_coreset_with",
    "uniform_coreset",
    "kmeans_coreset",
    "coreset_size_bound",
    "epsilon_for_size",
    "Coreset",
    "build_coreset",
    "layer_assignments",
    "merge_coresets",
    "reduce_coreset",
    "PenaltyConfig",
    "penalized_loss",
    "command_loss_entropy",
    "relative_coreset_error",
]
