"""The penalized loss of Eq. 6.

    f(x; ξ) = Σ_d w_ξ(d) f(x; d) + λ1 ||x|| + λ2 σ(x)

The L2 term bounds the parameter-space ball (structural risk), keeping
the problem continuous-and-bounded so the coreset guarantees apply and
the coreset stays compact.  σ(x) is the problem-dependent penalty; for
the BEV driving model the paper uses the entropy of the losses observed
across driving commands so the model "effectively addresses all driving
commands without introducing any bias".  Concretely we penalize the
*imbalance* of per-command losses — the KL divergence of the normalized
per-command loss distribution from uniform, i.e. ``log K − H(q)`` — so
minimizing the penalty equalizes losses across commands (a literally
added raw entropy would reward concentrating all loss on one command,
the opposite of the stated intent).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.model import N_COMMANDS
from repro.nn.params import get_flat_params

__all__ = ["PenaltyConfig", "command_loss_entropy", "penalized_loss"]


@dataclass(frozen=True)
class PenaltyConfig:
    """Coefficients of the Eq. 6 penalty terms."""

    lambda_l2: float = 1e-4
    lambda_entropy: float = 0.05

    @property
    def enabled(self) -> bool:
        """Whether any penalty term is active."""
        return self.lambda_l2 > 0 or self.lambda_entropy > 0


def command_loss_entropy(per_sample_losses: np.ndarray, commands: np.ndarray) -> float:
    """Imbalance of mean losses across commands: ``log K - H(q)``.

    ``q`` is the normalized vector of per-command mean losses over the
    commands present; the value is 0 when losses are perfectly balanced
    and grows as loss concentrates on few commands.  Commands absent
    from the batch are excluded (their loss is unobserved, not zero).
    """
    per_sample_losses = np.asarray(per_sample_losses, dtype=float)
    commands = np.asarray(commands)
    means = []
    for cmd in range(N_COMMANDS):
        mask = commands == cmd
        if mask.any():
            means.append(per_sample_losses[mask].mean())
    if len(means) <= 1:
        return 0.0
    q = np.asarray(means)
    total = q.sum()
    if total <= 0:
        return 0.0
    q = q / total
    entropy = float(-(q * np.log(np.clip(q, 1e-12, None))).sum())
    return float(np.log(len(means)) - entropy)


def penalized_loss(
    model,
    per_sample_losses: np.ndarray,
    commands: np.ndarray,
    weights: np.ndarray,
    config: PenaltyConfig,
) -> float:
    """Eq. 6: weighted empirical loss plus L2 and command-entropy terms."""
    weights = np.asarray(weights, dtype=float)
    total = weights.sum()
    if total <= 0:
        raise ValueError("weights must have positive sum")
    empirical = float(np.asarray(per_sample_losses) @ (weights / total))
    value = empirical
    if config.lambda_l2 > 0:
        flat = get_flat_params(model)
        value += config.lambda_l2 * float(np.linalg.norm(flat))
    if config.lambda_entropy > 0:
        value += config.lambda_entropy * command_loss_entropy(per_sample_losses, commands)
    return value
