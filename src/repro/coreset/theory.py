"""Theoretical quantities behind the coreset guarantees (§II-B, §III-B).

Algorithm 1 yields an ε-coreset of size

    |C| = Θ( (log|D| / ε²) · (ddim · log(1/ε) + log(1/η)) )

with probability 1 − η, where ``ddim`` is the doubling dimension of the
parameter space and the hidden constant depends on the Lipschitz
constant α and on ``inf_x f(x; D)/|D|``.  These helpers make the bound
computable so experiments can sanity-check chosen coreset sizes, and
estimate the CnB ingredients (α, the loss infimum) empirically for a
concrete model/dataset pair — including the paper's observation that a
too-small loss infimum blows the bound up, which motivates the Eq. 6
penalty terms.
"""

from __future__ import annotations

import numpy as np

from repro.nn.params import get_flat_params, set_flat_params

__all__ = [
    "coreset_size_bound",
    "epsilon_for_size",
    "estimate_lipschitz",
    "loss_infimum_term",
]


def coreset_size_bound(
    n_samples: int,
    epsilon: float,
    ddim: float,
    eta: float = 0.1,
    constant: float = 1.0,
) -> int:
    """The Θ-bound on |C| for an ε-coreset of a CnB problem.

    ``constant`` folds the α/loss-infimum dependence; the default 1.0
    gives the bound's growth shape, which is what size studies compare.
    """
    if not 0 < epsilon < 1:
        raise ValueError(f"epsilon must lie in (0, 1): {epsilon}")
    if not 0 < eta < 1:
        raise ValueError(f"eta must lie in (0, 1): {eta}")
    if n_samples < 1:
        raise ValueError(f"need at least one sample: {n_samples}")
    if ddim <= 0:
        raise ValueError(f"doubling dimension must be positive: {ddim}")
    layers = np.log2(n_samples + 1)
    per_layer = (ddim * np.log(1.0 / epsilon) + np.log(1.0 / eta)) / epsilon**2
    return int(np.ceil(constant * layers * per_layer))


def epsilon_for_size(
    n_samples: int,
    coreset_size: int,
    ddim: float,
    eta: float = 0.1,
    constant: float = 1.0,
) -> float:
    """Invert :func:`coreset_size_bound`: the ε a given |C| affords.

    Solved numerically by bisection over ε ∈ (1e-4, 0.999).
    """
    if coreset_size < 1:
        raise ValueError("coreset must have at least one sample")
    lo, hi = 1e-4, 0.999
    if coreset_size_bound(n_samples, hi, ddim, eta, constant) > coreset_size:
        return hi  # even the loosest ε needs more samples than given
    for _ in range(60):
        mid = 0.5 * (lo + hi)
        if coreset_size_bound(n_samples, mid, ddim, eta, constant) <= coreset_size:
            hi = mid
        else:
            lo = mid
    return hi


def estimate_lipschitz(
    model,
    evaluate,
    n_probes: int = 10,
    step: float = 0.05,
    rng: np.random.Generator | None = None,
) -> float:
    """Empirical Lipschitz constant of ``evaluate`` w.r.t. parameters.

    Probes random directions around the current parameters and returns
    the largest observed |Δloss| / ||Δx||; the model's parameters are
    restored afterwards.  A finite-sample lower bound on α, good enough
    for sizing intuition.
    """
    rng = rng or np.random.default_rng(0)
    original = get_flat_params(model)
    base = float(evaluate(model))
    best = 0.0
    try:
        for _ in range(n_probes):
            direction = rng.normal(size=original.size).astype(np.float32)
            direction *= step / max(np.linalg.norm(direction), 1e-12)
            set_flat_params(model, original + direction)
            perturbed = float(evaluate(model))
            best = max(best, abs(perturbed - base) / step)
    finally:
        set_flat_params(model, original)
    return best


def loss_infimum_term(per_sample_losses: np.ndarray) -> float:
    """The ``inf_x (1/|D|) f(x; D)`` surrogate at the current model.

    The coreset size constant scales like 1/this value: when the mean
    loss approaches zero the required coreset explodes — the paper's
    motivation for adding the Eq. 6 penalty terms, which keep the
    penalized objective bounded away from zero.
    """
    per_sample_losses = np.asarray(per_sample_losses, dtype=float)
    if per_sample_losses.size == 0:
        raise ValueError("need at least one loss")
    return float(per_sample_losses.mean())
