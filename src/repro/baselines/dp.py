"""DP — Decentralized Powerloss gossip learning (Dinani et al.).

Asynchronous gossip: whenever an idle vehicle finds an idle neighbor it
exchanges models (no coresets, no value assessment; a random neighbor —
there is no route sharing to rank them).  The receiver evaluates the
received model on its *local* dataset and derives the merge weight from
a normalized logarithmic function of the loss: a received model with
much lower loss than the local one dominates the merge, and vice versa.

Per §IV-B the method runs under the same communication constraints as
LbChat, with the compression ratio fixed per encounter to fit the
contact duration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression import decompress
from repro.core.chat import equal_compression_decision
from repro.core.trainer_base import TrainerBase, TrainerConfig
from repro.net.channel import simulate_transfer
from repro.nn.params import clone_model, set_flat_params

__all__ = ["DpConfig", "DpTrainer", "powerloss_weights"]


def powerloss_weights(loss_local: float, loss_received: float) -> tuple[float, float]:
    """Normalized-log loss weights: lower loss -> larger weight.

    Each model's score is ``-log`` of its share of the total loss; the
    weights are the normalized scores.  Equal losses give 0.5/0.5.
    """
    if loss_local < 0 or loss_received < 0:
        raise ValueError("losses must be non-negative")
    total = loss_local + loss_received
    if total <= 0:
        return 0.5, 0.5
    eps = 1e-6
    score_local = -np.log(max(loss_local / total, eps))
    score_received = -np.log(max(loss_received / total, eps))
    denom = score_local + score_received
    if denom <= 0:
        return 0.5, 0.5
    return float(score_local / denom), float(score_received / denom)


@dataclass
class DpConfig(TrainerConfig):
    #: Frames of the local dataset used as the gossip validation slice.
    """DP gossip timeline configuration."""
    validation_slice: int = 64


class DpTrainer(TrainerBase):
    """Loss-based gossip merging without coresets."""

    name = "DP"

    def __init__(self, nodes, traces, validation, config: DpConfig | None = None):
        super().__init__(nodes, traces, validation, config or DpConfig())
        self.config: DpConfig

    def on_scan(self, i: int) -> None:
        """Gossip with a uniformly random idle neighbor."""
        candidates = self.idle_neighbors(i)
        if not candidates:
            return
        rng = self.nodes[i].rng
        j = int(candidates[rng.integers(len(candidates))])
        self._gossip(i, j)

    def _gossip(self, i: int, j: int) -> None:
        now = self.sim.now
        node_i, node_j = self.nodes[i], self.nodes[j]
        estimate = self.contact_estimate(i, j, node_i.config.nominal_model_bytes)
        contact = max(estimate.contact_duration, 1.0)
        bandwidth = min(node_i.config.bandwidth_bps, node_j.config.bandwidth_bps)
        # Raw-bandwidth planning: like DFL-DDS, DP sizes its exchange
        # without loss-aware estimation, so lossy links overrun contacts.
        decision = equal_compression_decision(
            node_i.config.nominal_model_bytes,
            bandwidth,
            self.config.time_budget,
            contact,
        )
        distance_fn = self.pair_distance_fn(i, j)
        deadline = now + min(contact, self.config.time_budget)
        elapsed = 0.0
        for sender, receiver, psi in (
            (node_i, node_j, decision.psi_i),
            (node_j, node_i, decision.psi_j),
        ):
            if psi <= 0:
                continue
            compressed = sender.compress_model(psi)
            sent = simulate_transfer(
                compressed.nominal_bytes,
                distance_fn,
                self.wireless,
                self.config.channel,
                now + elapsed,
                deadline,
            )
            elapsed += sent.elapsed
            self.receive_rate.observe(receiver.node_id, sent.completed)
            if sent.completed:
                self._merge(receiver, decompress(compressed, fill=receiver.flat_params))
        self.occupy(i, elapsed)
        self.occupy(j, elapsed)
        self.note_chat(i, j)
        self.counters.add("gossips")

    def _merge(self, node, received_params: np.ndarray) -> None:
        # Evaluate both models on a slice of the local dataset.
        n = len(node.dataset)
        k = min(self.config.validation_slice, n)
        idx = node.rng.choice(n, size=k, replace=False)
        val = node.dataset.subset(idx)
        loss_local = node.evaluate(val, with_penalty=False)
        probe = clone_model(node.model)
        set_flat_params(probe, received_params)
        loss_received = node.evaluate_model_on(probe, val)
        w_local, w_received = powerloss_weights(loss_local, loss_received)
        merged = w_local * node.flat_params + w_received * received_params
        node.replace_model_params(merged.astype(np.float32))
