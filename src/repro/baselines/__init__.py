"""Benchmark methods the paper compares against (§IV-B).

* :class:`~repro.baselines.proxskip.ProxSkipTrainer` — central-server
  federated learning with probabilistic synchronization (idealized: no
  backend bandwidth constraint).
* :class:`~repro.baselines.rsul.RsuLTrainer` — road-side units at
  intersections act as local aggregation points.
* :class:`~repro.baselines.dfl_dds.DflDdsTrainer` — synchronous fully
  decentralized rounds with data-source-diversity aggregation weights.
* :class:`~repro.baselines.dp.DpTrainer` — asynchronous gossip with
  log-loss merge weights.
* :class:`~repro.baselines.sco.ScoTrainer` — coreset-sharing only
  (§IV-G study).
* :mod:`~repro.baselines.ablations` — LbChat with Eq. 7 / Eq. 8 /
  prioritization masked (§IV-F and extras).
"""

from repro.baselines.local_only import LocalOnlyTrainer
from repro.baselines.proxskip import ProxSkipConfig, ProxSkipTrainer
from repro.baselines.rsul import RsuLConfig, RsuLTrainer
from repro.baselines.dfl_dds import DflDdsConfig, DflDdsTrainer
from repro.baselines.dp import DpConfig, DpTrainer
from repro.baselines.sco import ScoTrainer
from repro.baselines.ablations import (
    equal_compression_trainer,
    mean_aggregation_trainer,
    no_prioritization_trainer,
)

__all__ = [
    "LocalOnlyTrainer",
    "ProxSkipConfig",
    "ProxSkipTrainer",
    "RsuLConfig",
    "RsuLTrainer",
    "DflDdsConfig",
    "DflDdsTrainer",
    "DpConfig",
    "DpTrainer",
    "ScoTrainer",
    "equal_compression_trainer",
    "mean_aggregation_trainer",
    "no_prioritization_trainer",
]
