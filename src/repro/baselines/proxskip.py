"""ProxSkip — central-server federated learning baseline.

Mishchenko et al.'s ProxSkip alternates cheap local gradient steps with
*probabilistically skipped* synchronizations: at each step the prox
(averaging) operator is applied only with probability ``p``, which
provably accelerates communication.  As in the paper's setup we grant
it an idealized backend: no bandwidth constraint and no contact-duration
limits — only wireless loss (sampled uniformly from the distance-loss
lookup table, §IV-C) can cost a vehicle its round trip.

Vehicles train locally between rounds exactly like every other method;
at each synchronization event the server averages the parameters of all
vehicles whose uplink succeeded and pushes the average back to all
vehicles whose downlink succeeded.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.trainer_base import TrainerBase, TrainerConfig
from repro.engine.random import spawn_rng
from repro.net.wireless import DEFAULT_LOSS_TABLE

__all__ = ["ProxSkipConfig", "ProxSkipTrainer"]


@dataclass
class ProxSkipConfig(TrainerConfig):
    """Server-based timeline: rounds fire at ``round_interval``."""

    round_interval: float = 15.0  # matches T_B so rounds ~ LbChat budget
    sync_probability: float = 0.8  # ProxSkip's p: skip some rounds


class ProxSkipTrainer(TrainerBase):
    """Central-server FL with skip-able synchronization rounds."""

    name = "ProxSkip"

    def __init__(self, nodes, traces, validation, config: ProxSkipConfig | None = None):
        super().__init__(nodes, traces, validation, config or ProxSkipConfig())
        self.config: ProxSkipConfig
        self._rng = spawn_rng(self.config.seed, "proxskip-server")
        self._loss_values = np.array([row[1] for row in DEFAULT_LOSS_TABLE])
        self._next_round = self.config.round_interval

    def _link_succeeds(self) -> bool:
        """One backend link attempt under uniformly-sampled wireless loss."""
        if not self.config.wireless_loss:
            return True
        loss = float(self._rng.choice(self._loss_values))
        return bool(self._rng.uniform() > loss)

    def _server_process(self, resume: bool = False):
        # Yield-first loop, unrolled so a resumed process can re-arm its
        # pending round timer at the exact absolute time (the round body
        # and the duration check keep their original relative order).
        cfg = self.config
        if resume:
            yield self.sim.wait_until(self._next_round)
        else:
            if self.sim.now >= cfg.duration:
                return
            self._next_round = self.sim.now + cfg.round_interval
            yield self.sim.timeout(cfg.round_interval)
        while True:
            if self._rng.uniform() <= cfg.sync_probability:
                self._synchronize()
            # (a skipped draw is ProxSkip skipping this synchronization)
            if self.sim.now >= cfg.duration:
                return
            self._next_round = self.sim.now + cfg.round_interval
            yield self.sim.timeout(cfg.round_interval)

    def _synchronize(self) -> None:
        uploads = []
        for node in self.nodes:
            if self._link_succeeds():
                uploads.append(node.flat_params)
        self.counters.add("rounds")
        if not uploads:
            return
        average = np.mean(uploads, axis=0)
        for node in self.nodes:
            ok = self._link_succeeds()
            self.receive_rate.observe(node.node_id, ok)
            if ok:
                node.replace_model_params(average)

    def extra_processes(self):
        """The server's synchronization round process."""
        return [self._server_process()]

    def extra_activities(self, resume: bool = False):
        armed_at = self._next_round - self.config.round_interval
        return [(armed_at, self._server_process(resume=resume))]

    def extra_state(self) -> dict:
        return {"next_round": self._next_round}

    def restore_extra(self, state) -> None:
        self._next_round = float(state["next_round"])

    def _reseed_extra_streams(self, barrier: int) -> None:
        self._rng = spawn_rng(self.config.seed, f"proxskip-server@ckpt{barrier}")
