"""ProxSkip — central-server federated learning baseline.

Mishchenko et al.'s ProxSkip alternates cheap local gradient steps with
*probabilistically skipped* synchronizations: at each step the prox
(averaging) operator is applied only with probability ``p``, which
provably accelerates communication.  As in the paper's setup we grant
it an idealized backend: no bandwidth constraint and no contact-duration
limits — only wireless loss (sampled uniformly from the distance-loss
lookup table, §IV-C) can cost a vehicle its round trip.

Vehicles train locally between rounds exactly like every other method;
at each synchronization event the server averages the parameters of all
vehicles whose uplink succeeded and pushes the average back to all
vehicles whose downlink succeeded.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.trainer_base import TrainerBase, TrainerConfig
from repro.engine.random import spawn_rng
from repro.net.wireless import DEFAULT_LOSS_TABLE

__all__ = ["ProxSkipConfig", "ProxSkipTrainer"]


@dataclass
class ProxSkipConfig(TrainerConfig):
    """Server-based timeline: rounds fire at ``round_interval``."""

    round_interval: float = 15.0  # matches T_B so rounds ~ LbChat budget
    sync_probability: float = 0.8  # ProxSkip's p: skip some rounds


class ProxSkipTrainer(TrainerBase):
    """Central-server FL with skip-able synchronization rounds."""

    name = "ProxSkip"

    def __init__(self, nodes, traces, validation, config: ProxSkipConfig | None = None):
        super().__init__(nodes, traces, validation, config or ProxSkipConfig())
        self.config: ProxSkipConfig
        self._rng = spawn_rng(self.config.seed, "proxskip-server")
        self._loss_values = np.array([row[1] for row in DEFAULT_LOSS_TABLE])

    def _link_succeeds(self) -> bool:
        """One backend link attempt under uniformly-sampled wireless loss."""
        if not self.config.wireless_loss:
            return True
        loss = float(self._rng.choice(self._loss_values))
        return bool(self._rng.uniform() > loss)

    def _server_process(self):
        while self.sim.now < self.config.duration:
            yield self.sim.timeout(self.config.round_interval)
            if self._rng.uniform() > self.config.sync_probability:
                continue  # ProxSkip skips this synchronization
            self._synchronize()

    def _synchronize(self) -> None:
        uploads = []
        for node in self.nodes:
            if self._link_succeeds():
                uploads.append(node.flat_params)
        self.counters.add("rounds")
        if not uploads:
            return
        average = np.mean(uploads, axis=0)
        for node in self.nodes:
            ok = self._link_succeeds()
            self.receive_rate.observe(node.node_id, ok)
            if ok:
                node.replace_model_params(average)

    def extra_processes(self):
        """The server's synchronization round process."""
        return [self._server_process()]
