"""LbChat ablation variants (§IV-F plus extras from DESIGN.md).

Each factory returns a fully-wired :class:`~repro.core.lbchat.LbChatTrainer`
whose config masks exactly one coreset-based design:

* ``equal_compression_trainer`` — Eq. 7 replaced by a fixed, contact-
  filling compression ratio (Table V),
* ``mean_aggregation_trainer`` — Eq. 8 replaced by plain averaging
  (Table VI),
* ``no_prioritization_trainer`` — Eq. 5 neighbor ranking replaced by a
  random idle neighbor (extra ablation: isolates route sharing).
"""

from __future__ import annotations

import copy

from repro.core.lbchat import LbChatConfig, LbChatTrainer
from repro.sim.dataset import DrivingDataset
from repro.sim.traces import MobilityTraces

__all__ = [
    "equal_compression_trainer",
    "mean_aggregation_trainer",
    "no_prioritization_trainer",
]


def _variant(
    nodes,
    traces: MobilityTraces,
    validation: DrivingDataset,
    config: LbChatConfig | None,
    name: str,
    **overrides,
) -> LbChatTrainer:
    config = copy.deepcopy(config) if config is not None else LbChatConfig()
    for key, value in overrides.items():
        setattr(config, key, value)
    trainer = LbChatTrainer(nodes, traces, validation, config)
    trainer.name = name
    return trainer


def equal_compression_trainer(
    nodes, traces, validation, config: LbChatConfig | None = None
) -> LbChatTrainer:
    """LbChat with Eq. 7 masked: equal compression ratios (§IV-F)."""
    return _variant(
        nodes, traces, validation, config, "LbChat (equal comp.)", equal_compression=True
    )


def mean_aggregation_trainer(
    nodes, traces, validation, config: LbChatConfig | None = None
) -> LbChatTrainer:
    """LbChat with Eq. 8 masked: plain model averaging (§IV-F)."""
    return _variant(
        nodes, traces, validation, config, "LbChat (avg. agg.)", mean_aggregation=True
    )


def no_prioritization_trainer(
    nodes, traces, validation, config: LbChatConfig | None = None
) -> LbChatTrainer:
    """LbChat with Eq. 5 masked: random neighbor choice (extra)."""
    return _variant(
        nodes,
        traces,
        validation,
        config,
        "LbChat (no priority)",
        prioritize_neighbors=False,
    )
