"""Local-only training — the no-collaboration floor.

Not a paper baseline, but the reference every collaborative method
implicitly claims to beat: each vehicle trains on its own local dataset
and never communicates.  Including it makes the collaboration gain of
every other method directly measurable.
"""

from __future__ import annotations

from repro.core.trainer_base import TrainerBase, TrainerConfig

__all__ = ["LocalOnlyTrainer"]


class LocalOnlyTrainer(TrainerBase):
    """Pure local training; every scan is a no-op."""

    name = "Local"

    def __init__(self, nodes, traces, validation, config: TrainerConfig | None = None):
        super().__init__(nodes, traces, validation, config or TrainerConfig())

    def on_scan(self, i: int) -> None:
        """No-op: local-only vehicles never communicate."""
        return
