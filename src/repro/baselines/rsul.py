"""RSU-L — road-side-unit based opportunistic learning (Xu et al.).

Road-side units sit at road crossings; each maintains its own RSU model
and acts as a local coordinator: a passing vehicle uploads its model,
the RSU folds it into its running aggregate, and the vehicle downloads
the RSU model and adopts it.  The backend behind the RSUs is assumed
unconstrained (§IV-B), but the *radio hop* between the vehicle and the
RSU is a real transfer: distance-based wireless loss applies and the
vehicle must stay in range long enough, so the vehicle-side experience
matches LbChat's constraints.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.trainer_base import TrainerBase, TrainerConfig
from repro.engine.random import spawn_rng
from repro.net.channel import simulate_transfer
from repro.net.wireless import WirelessModel

__all__ = ["RsuLConfig", "RsuLTrainer", "RoadSideUnit"]


@dataclass
class RsuLConfig(TrainerConfig):
    """RSU placement and session configuration."""
    n_rsus: int = 4
    rsu_range: float = 500.0
    #: A vehicle syncs with (any) RSU at most this often.
    rsu_cooldown: float = 30.0
    #: EMA coefficient for folding a vehicle model into the RSU model.
    rsu_mix: float = 0.5
    #: Fraction of the session window the up+down transfers are sized to
    #: fill — the protocol's fixed headroom for retransmissions.
    fill_factor: float = 0.75


class RoadSideUnit:
    """One RSU: a fixed position plus an aggregate of recent uploads.

    The RSU model is the mean of the last few uploaded vehicle models
    (a sliding window), so it tracks the fleet's *current* training
    progress instead of an ever-staler EMA reaching back to the shared
    initialization.
    """

    WINDOW = 6

    def __init__(self, rsu_id: str, position: np.ndarray, params: np.ndarray):
        self.rsu_id = rsu_id
        self.position = np.asarray(position, dtype=float)
        self.params = params.copy()
        self.uploads = 0
        self._recent: list[np.ndarray] = []

    def fold_in(self, params: np.ndarray, mix: float) -> None:
        """Fold an uploaded model into the sliding-window aggregate."""
        self._recent.append(params.copy())
        if len(self._recent) > self.WINDOW:
            self._recent.pop(0)
        self.params = np.mean(self._recent, axis=0).astype(params.dtype)
        self.uploads += 1


class RsuLTrainer(TrainerBase):
    """RSU-based opportunistic aggregation."""

    name = "RSU-L"

    def __init__(
        self,
        nodes,
        traces,
        validation,
        config: RsuLConfig | None = None,
        rsu_positions: np.ndarray | None = None,
    ):
        super().__init__(nodes, traces, validation, config or RsuLConfig())
        self.config: RsuLConfig
        from repro.net.wireless import DEFAULT_LOSS_TABLE

        self._rng = spawn_rng(self.config.seed, "rsul-links")
        self._loss_values = np.array([row[1] for row in DEFAULT_LOSS_TABLE])
        if rsu_positions is None:
            rsu_positions = self._default_positions()
        init = nodes[0].flat_params
        self.rsus = [
            RoadSideUnit(f"rsu{k}", pos, init) for k, pos in enumerate(rsu_positions)
        ]
        self._last_sync: dict[int, float] = {}

    def _default_positions(self) -> np.ndarray:
        """Spread RSUs over the area the traces actually cover."""
        pts = self.traces.positions.reshape(-1, 2)
        lo, hi = pts.min(axis=0), pts.max(axis=0)
        k = self.config.n_rsus
        # Place on a diagonal-ish lattice inside the bounding box.
        fractions = np.linspace(0.25, 0.75, max(k, 1))
        return np.stack(
            [lo + f * (hi - lo) for f in fractions]
        ) if k > 1 else np.array([(lo + hi) / 2.0])

    def on_scan(self, i: int) -> None:
        """Sync with the nearest in-range RSU once per cooldown."""
        last = self._last_sync.get(i)
        if last is not None and self.sim.now - last < self.config.rsu_cooldown:
            return
        pos = self.traces.position(i, self.sim.now)
        best, best_dist = None, np.inf
        for rsu in self.rsus:
            dist = float(np.linalg.norm(rsu.position - pos))
            if dist <= self.config.rsu_range and dist < best_dist:
                best, best_dist = rsu, dist
        if best is None:
            return
        self._sync_with_rsu(i, best)

    def _sync_with_rsu(self, i: int, rsu: RoadSideUnit) -> None:
        node = self.nodes[i]
        now = self.sim.now
        self._last_sync[i] = now

        def distance_fn(t: float) -> float:
            return float(np.linalg.norm(self.traces.position(i, t) - rsu.position))

        # Session window: remaining dwell in RSU range.  Unlike V2V
        # chats, an RSU session has no T_B cap — the RSU is fixed
        # infrastructure and keeps serving as long as the vehicle stays
        # in range (the paper grants RSU-L an unconstrained backend).
        future = self.traces.future_positions(i, now, self.config.route_horizon)
        dists = np.linalg.norm(future - rsu.position, axis=1)
        out = np.where(dists > self.config.rsu_range)[0]
        dwell = (out[0] if len(out) else len(dists)) * self.traces.interval
        window = min(max(float(dwell), 1.0), self.config.route_horizon)
        deadline = now + window
        # Size both directions to fit the window at the *raw* bandwidth
        # (the RSU protocol does not do LbChat's loss-aware estimation).
        bytes_per_second = node.config.bandwidth_bps / 8.0
        psi = min(
            self.config.fill_factor
            * window
            * bytes_per_second
            / (2.0 * node.config.nominal_model_bytes),
            1.0,
        )
        # Per §IV-C the RSU link's wireless loss is sampled uniformly
        # from the distance-loss lookup table (as for ProxSkip), one
        # draw per transfer.
        if self.config.wireless_loss:
            up_wireless = WirelessModel.fixed(float(self._rng.choice(self._loss_values)))
            down_wireless = WirelessModel.fixed(float(self._rng.choice(self._loss_values)))
        else:
            up_wireless = down_wireless = self.wireless
        up_model = node.compress_model(psi)
        up = simulate_transfer(
            up_model.nominal_bytes, distance_fn, up_wireless, self.config.channel, now, deadline
        )
        elapsed = up.elapsed
        if up.completed:
            from repro.compression import decompress

            rsu.fold_in(decompress(up_model, fill=node.flat_params), self.config.rsu_mix)
            down = simulate_transfer(
                up_model.nominal_bytes,
                distance_fn,
                down_wireless,
                self.config.channel,
                now + elapsed,
                deadline,
            )
            elapsed += down.elapsed
            self.receive_rate.observe(node.node_id, down.completed)
            if down.completed:
                # Merge the RSU aggregate into the local model (keeping
                # half the local progress, as the RSU model lags the
                # freshest local training between visits).
                merged = 0.5 * node.flat_params + 0.5 * rsu.params
                node.replace_model_params(merged.astype(np.float32))
                self.counters.add("rsu_syncs")
        else:
            self.receive_rate.observe(node.node_id, False)
        self.occupy(i, elapsed)

    # -- checkpointing ------------------------------------------------------------

    def extra_state(self) -> dict:
        items = sorted(self._last_sync.items())
        return {
            "rsus": [
                {
                    "params": rsu.params.copy(),
                    "uploads": rsu.uploads,
                    "recent": [params.copy() for params in rsu._recent],
                }
                for rsu in self.rsus
            ],
            "sync_vehicles": np.asarray([i for i, _ in items], dtype=np.int64),
            "sync_times": np.asarray([t for _, t in items], dtype=float),
        }

    def restore_extra(self, state) -> None:
        for rsu, rsu_state in zip(self.rsus, state["rsus"], strict=True):
            rsu.params = np.asarray(rsu_state["params"]).copy()
            rsu.uploads = int(rsu_state["uploads"])
            rsu._recent = [np.asarray(p).copy() for p in rsu_state["recent"]]
        self._last_sync = {
            int(i): float(t)
            for i, t in zip(state["sync_vehicles"], state["sync_times"])
        }

    def _reseed_extra_streams(self, barrier: int) -> None:
        self._rng = spawn_rng(self.config.seed, f"rsul-links@ckpt{barrier}")
