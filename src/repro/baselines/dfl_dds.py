"""DFL-DDS — synchronous decentralized FL with diversified data sources.

Su et al.'s DFL-DDS runs global *rounds*: every vehicle trains locally
during a round and exchanges models with an encountered neighbor at the
round boundary.  Aggregation weights are tuned to diversify the data
sources contributing to each vehicle's model: a peer whose model (and
transitively, data) has already flowed into mine many times gets a
smaller weight than a fresh source.

Per the paper's fair-comparison setup (§IV-B), the method is subject to
the same communication constraints as LbChat, with the model
compression ratio fixed per encounter so the pairwise exchange fits the
contact duration — there is no value assessment, so the ratio cannot
adapt to how useful the peer's model actually is.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compression import decompress
from repro.core.chat import equal_compression_decision
from repro.core.trainer_base import TrainerBase, TrainerConfig
from repro.net.channel import simulate_transfer
from repro.telemetry import hooks as telemetry

__all__ = ["DflDdsConfig", "DflDdsTrainer"]


@dataclass
class DflDdsConfig(TrainerConfig):
    #: Round length; the paper sets it equal to LbChat's T_B.
    """Synchronous-round timeline configuration."""
    round_interval: float = 15.0


class DflDdsTrainer(TrainerBase):
    """Synchronous rounds + data-source-diversity aggregation weights."""

    name = "DFL-DDS"

    def __init__(self, nodes, traces, validation, config: DflDdsConfig | None = None):
        super().__init__(nodes, traces, validation, config or DflDdsConfig())
        self.config: DflDdsConfig
        n = len(nodes)
        # source_counts[i][j]: how often source j contributed to model i.
        self.source_counts = np.zeros((n, n))
        for i in range(n):
            self.source_counts[i, i] = 1.0
        self._next_round = self.config.round_interval

    # Vehicles do not exchange on scan — only at round boundaries.
    def on_scan(self, i: int) -> None:
        """No-op: DFL-DDS only exchanges at round boundaries."""
        return

    def _round_process(self, resume: bool = False):
        # Yield-first loop, unrolled like ProxSkip's so a resumed round
        # clock re-arms at the exact absolute fire time.
        cfg = self.config
        if resume:
            yield self.sim.wait_until(self._next_round)
        else:
            if self.sim.now >= cfg.duration:
                return
            self._next_round = self.sim.now + cfg.round_interval
            yield self.sim.timeout(cfg.round_interval)
        while True:
            self._run_round()
            if self.sim.now >= cfg.duration:
                return
            self._next_round = self.sim.now + cfg.round_interval
            yield self.sim.timeout(cfg.round_interval)

    def _run_round(self) -> None:
        self.counters.add("rounds")
        paired: set[int] = set()
        order = np.argsort([n.node_id for n in self.nodes])
        for i in order:
            i = int(i)
            if i in paired or not self.is_idle(i):
                continue
            neighbors = [
                j
                for j in self.traces.neighbors(i, self.sim.now, self.config.max_range)
                if j not in paired and self.is_idle(j) and self.pair_ready(i, j)
            ]
            if not neighbors:
                continue
            j = min(
                neighbors,
                key=lambda j: self.traces.distance(i, j, self.sim.now),
            )
            paired.update((i, j))
            self._exchange(i, j)

    def _exchange(self, i: int, j: int) -> None:
        now = self.sim.now
        node_i, node_j = self.nodes[i], self.nodes[j]
        estimate = self.contact_estimate(
            i, j, node_i.config.nominal_model_bytes
        )
        contact = max(estimate.contact_duration, 1.0)
        bandwidth = min(node_i.config.bandwidth_bps, node_j.config.bandwidth_bps)
        # Raw-bandwidth planning: DFL-DDS has no loss-aware route
        # estimator (that is LbChat's coreset/route machinery), so under
        # wireless loss its exchanges routinely overrun the contact.
        decision = equal_compression_decision(
            node_i.config.nominal_model_bytes,
            bandwidth,
            self.config.round_interval,
            contact,
        )
        distance_fn = self.pair_distance_fn(i, j)
        deadline = now + min(contact, self.config.round_interval)
        session = telemetry.active()
        if session is not None:
            session.tracer.start_span(
                "exchange", now, i=node_i.node_id, j=node_j.node_id
            )
        elapsed = 0.0
        received = 0
        for sender, receiver, psi, s_idx, r_idx in (
            (node_i, node_j, decision.psi_i, i, j),
            (node_j, node_i, decision.psi_j, j, i),
        ):
            if psi <= 0:
                continue
            compressed = sender.compress_model(psi)
            # Same empty-send edge case as the chat protocol: a positive
            # psi rounded down to zero retained bytes must not count as
            # an instantly-successful reception.
            if compressed.nominal_bytes <= 0:
                continue
            sent = simulate_transfer(
                compressed.nominal_bytes,
                distance_fn,
                self.wireless,
                self.config.channel,
                now + elapsed,
                deadline,
            )
            elapsed += sent.elapsed
            self.receive_rate.observe(receiver.node_id, sent.completed)
            telemetry.on_model_reception(sent.completed)
            if sent.completed:
                received += 1
                self._aggregate(r_idx, s_idx, decompress(compressed, fill=receiver.flat_params))
        if session is not None:
            session.tracer.end_span(now + elapsed, status="ok", received=received)
        self.occupy(i, elapsed)
        self.occupy(j, elapsed)
        self.note_chat(i, j)
        self.counters.add("exchanges")

    def _aggregate(self, receiver: int, source: int, received_params: np.ndarray) -> None:
        """Diversity-weighted merge: fresher sources weigh more.

        A never-seen source contributes with weight 0.5; repeat
        contributions from the same source decay harmonically, steering
        each model toward a diverse mix of data sources without letting
        any single incoming model overwrite local progress.
        """
        node = self.nodes[receiver]
        w_peer = 0.5 / (1.0 + self.source_counts[receiver, source])
        merged = (1.0 - w_peer) * node.flat_params + w_peer * received_params
        node.replace_model_params(merged.astype(np.float32))
        self.source_counts[receiver, source] += 1.0

    def extra_processes(self):
        """The global round-boundary clock process."""
        return [self._round_process()]

    def extra_activities(self, resume: bool = False):
        armed_at = self._next_round - self.config.round_interval
        return [(armed_at, self._round_process(resume=resume))]

    def extra_state(self) -> dict:
        return {
            "next_round": self._next_round,
            "source_counts": self.source_counts.copy(),
        }

    def restore_extra(self, state) -> None:
        self._next_round = float(state["next_round"])
        self.source_counts = np.asarray(state["source_counts"], dtype=float).copy()
