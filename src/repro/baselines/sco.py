"""SCO — Share Coresets Only (§IV-G).

Identical to LbChat's encounter machinery (route-prioritized chats,
coreset exchange, dataset expansion) but vehicles never exchange or
merge models; all learning happens through local training on the
coreset-enriched dataset.  The paper finds SCO eventually reaches
almost the same driving quality but takes 1.5-1.8x longer to converge.
"""

from __future__ import annotations

from repro.core.lbchat import LbChatConfig, LbChatTrainer
from repro.sim.dataset import DrivingDataset
from repro.sim.traces import MobilityTraces

__all__ = ["ScoTrainer"]


class ScoTrainer(LbChatTrainer):
    """LbChat with model exchange disabled."""

    name = "SCO"

    def __init__(
        self,
        nodes,
        traces: MobilityTraces,
        validation: DrivingDataset,
        config: LbChatConfig | None = None,
    ):
        config = config or LbChatConfig()
        config.coreset_only = True
        super().__init__(nodes, traces, validation, config)
