"""Uniform quantization — the alternative compressor the paper notes.

Quantizing float32 parameters to ``bits`` bits gives relative size
``bits / 32`` (ignoring the two float32 range scalars, which are
negligible at model scale).  Returned as a dense
:class:`~repro.compression.topk.CompressedModel` whose values have been
quantize-dequantized, so downstream code is agnostic to the compressor.
"""

from __future__ import annotations

import numpy as np

from repro.compression.topk import CompressedModel

__all__ = ["compress_quantize"]


def compress_quantize(flat: np.ndarray, bits: int, nominal_size_bytes: int) -> CompressedModel:
    """Uniformly quantize ``flat`` to ``bits`` bits per parameter."""
    if not 1 <= bits <= 32:
        raise ValueError(f"bits must lie in [1, 32]: {bits}")
    flat = np.asarray(flat, dtype=np.float32)
    n = flat.size
    psi = bits / 32.0
    if bits == 32 or n == 0:
        values = flat.copy()
    else:
        lo, hi = float(flat.min()), float(flat.max())
        if hi == lo:
            values = flat.copy()
        else:
            levels = (1 << bits) - 1
            scaled = np.round((flat - lo) / (hi - lo) * levels)
            values = (scaled / levels * (hi - lo) + lo).astype(np.float32)
    return CompressedModel(
        indices=np.arange(n, dtype=np.int64),
        values=values,
        n_total=n,
        psi=psi,
        nominal_bytes=int(round(psi * nominal_size_bytes)),
    )
