"""Model compression for constrained V2V exchange.

The paper uses top-k sparsification (Albasyoni et al.) with index–value
pair encoding; uniform quantization is provided as the alternative the
paper mentions can be dropped in.

The central quantity is :math:`\\psi = 1/\\varphi = S_c / S`: the size
of the compressed model relative to the original.  ``psi = 0`` means
"send nothing", ``psi = 1`` means "send uncompressed".
"""

from repro.compression.topk import (
    CompressedModel,
    TopkPlan,
    compress_topk,
    decompress,
    topk_for_psi,
    topk_plan,
)
from repro.compression.quantize import compress_quantize

__all__ = [
    "CompressedModel",
    "TopkPlan",
    "compress_topk",
    "compress_quantize",
    "decompress",
    "topk_for_psi",
    "topk_plan",
]
