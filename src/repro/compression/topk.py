"""Top-k sparsification with index-value encoding (§III-C).

A model compressed to relative size ``psi`` keeps the ``k`` largest-
magnitude parameters.  For sparse sends each kept parameter costs an
(index, value) pair — 8 bytes instead of 4 — so ``k = psi * n / 2``;
when ``psi == 1`` the dense vector is sent and no index overhead is
paid.  This matches the paper's remark that small-``k`` models are
represented by index-value pairs to further reduce size.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "CompressedModel",
    "topk_for_psi",
    "compress_topk",
    "TopkPlan",
    "topk_plan",
    "decompress",
]

_BYTES_PER_VALUE = 4
_BYTES_PER_PAIR = 8


@dataclass(frozen=True)
class CompressedModel:
    """A sparsified parameter vector plus its size accounting.

    ``nominal_bytes`` is the transfer size used by the communication
    simulator; it scales the *paper's* model size (52 MB by default) by
    the achieved compression so that transfer times match the paper's
    regime even though the numpy model is tiny.
    """

    indices: np.ndarray  # int64 positions of retained entries
    values: np.ndarray  # float32 retained values
    n_total: int  # original parameter count
    psi: float  # achieved relative size S_c / S
    nominal_bytes: int  # bytes to transmit at nominal model scale

    @property
    def is_dense(self) -> bool:
        """Whether every coordinate was retained (psi = 1 send)."""
        return self.indices.size == self.n_total

    @property
    def is_empty(self) -> bool:
        """Whether nothing was retained (psi = 0 send)."""
        return self.indices.size == 0


def topk_for_psi(n_total: int, psi: float) -> int:
    """Number of entries retainable at relative size ``psi``.

    Accounts for index-value overhead on sparse sends; ``psi >= 1`` keeps
    everything (dense send).
    """
    if not 0.0 <= psi <= 1.0:
        raise ValueError(f"psi must lie in [0, 1]: {psi}")
    if psi >= 1.0:
        return n_total
    k = int(psi * n_total * _BYTES_PER_VALUE / _BYTES_PER_PAIR)
    return min(k, n_total)


def compress_topk(flat: np.ndarray, psi: float, nominal_size_bytes: int) -> CompressedModel:
    """Sparsify ``flat`` to relative size ``psi`` by magnitude top-k.

    Parameters
    ----------
    flat:
        The flat parameter vector.
    psi:
        Target relative size in [0, 1].
    nominal_size_bytes:
        Uncompressed size of the model at paper scale (e.g. 52 MB); the
        result's :attr:`CompressedModel.nominal_bytes` is derived from it.
    """
    flat = np.asarray(flat, dtype=np.float32)
    n = flat.size
    if psi >= 1.0:
        return CompressedModel(
            indices=np.arange(n, dtype=np.int64),
            values=flat.copy(),
            n_total=n,
            psi=1.0,
            nominal_bytes=nominal_size_bytes,
        )
    k = topk_for_psi(n, psi)
    if k == 0:
        return CompressedModel(
            indices=np.zeros(0, dtype=np.int64),
            values=np.zeros(0, dtype=np.float32),
            n_total=n,
            psi=0.0,
            nominal_bytes=0,
        )
    # argpartition gives the k largest magnitudes in O(n).
    idx = np.argpartition(np.abs(flat), n - k)[n - k :]
    idx.sort()
    achieved_psi = k * _BYTES_PER_PAIR / (n * _BYTES_PER_VALUE)
    return CompressedModel(
        indices=idx.astype(np.int64),
        values=flat[idx].copy(),
        n_total=n,
        psi=float(achieved_psi),
        nominal_bytes=int(round(achieved_psi * nominal_size_bytes)),
    )


@dataclass(frozen=True)
class TopkPlan:
    """A reusable magnitude ordering for compressing one parameter vector.

    Sampling several compression levels of the *same* parameters (the
    Eq. 7 psi-map fit evaluates ~7 levels per chat) only needs one full
    magnitude sort; each level is then an O(k) slice instead of a fresh
    O(n) argpartition of the whole vector.
    """

    flat: np.ndarray  # float32 parameter snapshot
    order: np.ndarray  # argsort of |flat|, ascending magnitude
    nominal_size_bytes: int

    def compress(self, psi: float) -> CompressedModel:
        """The plan's parameters sparsified to relative size ``psi``."""
        n = self.flat.size
        if psi >= 1.0:
            return CompressedModel(
                indices=np.arange(n, dtype=np.int64),
                values=self.flat.copy(),
                n_total=n,
                psi=1.0,
                nominal_bytes=self.nominal_size_bytes,
            )
        k = topk_for_psi(n, psi)
        if k == 0:
            return CompressedModel(
                indices=np.zeros(0, dtype=np.int64),
                values=np.zeros(0, dtype=np.float32),
                n_total=n,
                psi=0.0,
                nominal_bytes=0,
            )
        idx = np.sort(self.order[n - k :])
        achieved_psi = k * _BYTES_PER_PAIR / (n * _BYTES_PER_VALUE)
        return CompressedModel(
            indices=idx.astype(np.int64),
            values=self.flat[idx].copy(),
            n_total=n,
            psi=float(achieved_psi),
            nominal_bytes=int(round(achieved_psi * self.nominal_size_bytes)),
        )


def topk_plan(flat: np.ndarray, nominal_size_bytes: int) -> TopkPlan:
    """Sort ``flat`` by magnitude once, for repeated :meth:`TopkPlan.compress`."""
    flat = np.asarray(flat, dtype=np.float32)
    order = np.argsort(np.abs(flat))  # introsort: ~2x faster than 7 argpartitions
    return TopkPlan(flat=flat, order=order, nominal_size_bytes=nominal_size_bytes)


def decompress(compressed: CompressedModel, fill: np.ndarray | None = None) -> np.ndarray:
    """Reconstruct a dense vector from a compressed model.

    Unsent positions are zero by default; passing ``fill`` (e.g. the
    receiver's own parameters) overlays the received values on it, which
    is how receivers materialize a sparsified peer model before Eq. 8
    aggregation.
    """
    if fill is None:
        dense = np.zeros(compressed.n_total, dtype=np.float32)
    else:
        if fill.size != compressed.n_total:
            raise ValueError(
                f"fill has {fill.size} entries, expected {compressed.n_total}"
            )
        dense = fill.astype(np.float32, copy=True)
    dense[compressed.indices] = compressed.values
    return dense
