"""Process-pool execution of independent experiment runs.

:func:`run_specs` fans :class:`~repro.experiments.runner.RunSpec` jobs
out to worker processes and collects results *in submission order*, so
its output is bit-identical to running the same specs serially — every
job re-derives its RNG streams from its own spec, and nothing mutable
crosses process boundaries (see :mod:`repro.parallel.worker`).

Failure policy, per job:

1. the job is retried up to ``retries`` times in a (fresh, if broken)
   pool — this absorbs flaky worker deaths and per-job timeouts;
2. when retries are exhausted the job runs *serially in the parent*,
   so a sick pool degrades to the serial path instead of losing work;
3. an error in that final serial attempt is a real, reproducible
   failure of the job itself and propagates to the caller.

A per-job ``timeout`` (wall-clock seconds) counts as a failure: the
pool is recycled so the retry gets a fresh worker (the abandoned worker
finishes its stale task in the background and then exits).
"""

from __future__ import annotations

import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, replace
from multiprocessing import get_context

from repro.parallel import worker

__all__ = ["ParallelConfig", "clamp_step_workers", "resolve_jobs", "run_specs"]


@dataclass(frozen=True)
class ParallelConfig:
    """How to fan runs out to processes.

    ``jobs <= 0`` means "all available cores"; ``jobs == 1`` is the
    serial path (no pool, no pickling).  ``start_method`` defaults to
    the platform default ("fork" on Linux, which also lets workers
    inherit already-built contexts).
    """

    jobs: int = 1
    timeout: float | None = None
    retries: int = 1
    start_method: str | None = None


def resolve_jobs(jobs: int) -> int:
    """Normalize a --jobs value: non-positive selects all cores."""
    return jobs if jobs > 0 else (os.cpu_count() or 1)


def clamp_step_workers(specs: list, n_jobs: int) -> list:
    """Budget run-level jobs x per-run step workers against host cores.

    Each pooled run forks its own step workers, so ``jobs`` runs at
    ``step_workers`` each would oversubscribe the host ``jobs x workers``
    fold.  Specs asking for more than ``cores // n_jobs`` step workers
    are clamped to that budget (results are bit-identical for every
    worker count, so clamping is free); one warning and one telemetry
    counter report how many specs were touched instead of silently
    thrashing the machine.
    """
    from repro.telemetry import hooks

    if n_jobs <= 1:
        return specs
    budget = max(1, (os.cpu_count() or 1) // n_jobs)
    clamped = []
    touched = 0
    for spec in specs:
        asked = int((getattr(spec, "overrides", None) or {}).get("step_workers", 1))
        if asked > budget:
            overrides = dict(spec.overrides)
            overrides["step_workers"] = budget
            spec = replace(spec, overrides=overrides)
            touched += 1
        clamped.append(spec)
    if touched:
        warnings.warn(
            f"step_workers clamped to {budget} on {touched} of {len(specs)} "
            f"specs: {n_jobs} pooled jobs share {os.cpu_count() or 1} cores",
            RuntimeWarning,
            stacklevel=3,
        )
        hooks.count("stepshard.oversubscription_clamped", touched)
    return clamped


def _new_executor(config: ParallelConfig, n_jobs: int) -> ProcessPoolExecutor:
    mp_context = get_context(config.start_method) if config.start_method else None
    return ProcessPoolExecutor(max_workers=n_jobs, mp_context=mp_context)


def run_specs(specs, jobs: int | ParallelConfig = 1, timeout: float | None = None,
              retries: int = 1, start_method: str | None = None):
    """Execute specs (serially or in a process pool) and return results in order.

    ``jobs`` may be an int or a full :class:`ParallelConfig`.  With an
    active telemetry session, worker registries are merged back into it
    in job order; on the serial path hooks record into it directly.
    """
    from repro.telemetry import hooks

    config = jobs if isinstance(jobs, ParallelConfig) else ParallelConfig(
        jobs=jobs, timeout=timeout, retries=retries, start_method=start_method
    )
    specs = list(specs)
    if not specs:
        return []
    session = hooks.active()
    capture = session is not None
    n_workers = min(resolve_jobs(config.jobs), len(specs))
    if n_workers <= 1:
        # Single run: record straight into the active session (keeps
        # tracer spans — e.g. `repro trace`).  Several runs: use the same
        # per-run capture-and-merge protocol as the pool, so the final
        # registry is identical for every jobs value.
        if not capture or len(specs) == 1:
            return [worker.execute_spec(spec) for spec in specs]
        results = []
        for spec in specs:
            result, state = worker.run_isolated(spec)
            results.append(result)
            session.registry.merge_state(state)
        return results
    specs = clamp_step_workers(specs, n_workers)
    n = len(specs)
    results: list = [None] * n
    states: list = [None] * n
    attempts = [0] * n
    executor = _new_executor(config, n_workers)
    futures: dict[int, object] = {}

    def submit(i: int) -> None:
        futures[i] = executor.submit(worker.run_job, specs[i], capture)

    def recycle() -> None:
        """Replace a broken/stalled pool and resubmit every pending job."""
        nonlocal executor
        executor.shutdown(wait=False, cancel_futures=True)
        executor = _new_executor(config, n_workers)
        for j in list(futures):
            submit(j)

    try:
        for i in range(n):
            submit(i)
        for i in range(n):  # ordered collection: job i's result lands in slot i
            while True:
                future = futures.pop(i)
                try:
                    results[i], states[i] = future.result(timeout=config.timeout)
                    break
                except Exception as exc:
                    attempts[i] += 1
                    if isinstance(exc, (BrokenProcessPool, TimeoutError)):
                        recycle()  # job i is already popped; peers resubmit
                    if attempts[i] <= config.retries:
                        submit(i)
                        continue
                    # Retries exhausted: degrade to the serial path in the
                    # parent so completed results are never thrown away.
                    if capture:
                        results[i], states[i] = worker.run_isolated(specs[i])
                    else:
                        results[i] = worker.execute_spec(specs[i])
                    break
    finally:
        executor.shutdown(wait=False, cancel_futures=True)

    if capture:
        for state in states:
            if state is not None:
                session.registry.merge_state(state)
    return results
