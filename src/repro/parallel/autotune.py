"""Throughput auto-tuner for within-run step sharding.

``--step-workers auto`` should pick the worker count that actually
maximizes fleet-step throughput on *this* host — which depends on core
count, BLAS build, cache sizes, and fork cost, none of which we want to
model.  So this module measures instead of predicting, borrowing the
power-of-two-scaling + binary-search shape of Lightning's
``batch_size_finder`` (per ROADMAP): double the worker count while
measured throughput keeps improving, then binary-search the gap between
the last two candidates.  The same harness scans the fused-Adam chunk
width (:attr:`~repro.nn.bank.FleetAdam._CHUNK`) over a power-of-two
ladder.

Every measurement drives a real :class:`~repro.core.fleet.FleetEngine`
over a synthetic paper-shaped fleet, so the tuned numbers reflect the
actual sharded step path (fork, pipe round-trip, shared-memory banks)
rather than a microbenchmark.  Results are cached in
``.repro_cache/autotune.json`` keyed by a host fingerprint; the probe
runs once per host, not once per run.

Step sharding is bit-identical for every worker count, so whatever this
module picks can never change a result — only how fast it arrives.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from pathlib import Path

import numpy as np

__all__ = [
    "AutotuneResult",
    "autotune",
    "host_fingerprint",
    "measure_step_throughput",
    "resolve_step_workers",
]

#: Override the autotune cache file (tests point this at a temp path).
_CACHE_ENV = "REPRO_AUTOTUNE_CACHE"

_DEFAULT_CACHE = Path(".repro_cache") / "autotune.json"

#: Synthetic fleet used for probing — paper-shaped but small enough that
#: the full probe stays in the low seconds.
_PROBE = dict(n_nodes=32, hidden=32, batch_size=16, bev_shape=(3, 10, 10))

_CHUNK_LADDER = (16384, 32768, 65536, 131072, 262144, 524288)


def host_fingerprint() -> str:
    """Stable identity of the execution environment for cache keying."""
    tag = "\x00".join(
        [
            platform.platform(),
            platform.machine(),
            str(os.cpu_count() or 1),
            platform.python_version(),
            np.__version__,
        ]
    )
    return hashlib.sha256(tag.encode()).hexdigest()[:16]


def _cache_path() -> Path:
    override = os.environ.get(_CACHE_ENV)
    return Path(override) if override else _DEFAULT_CACHE


class AutotuneResult(dict):
    """Tuned configuration: ``step_workers``, ``adam_chunk``, evidence."""

    @property
    def step_workers(self) -> int:
        return int(self["step_workers"])

    @property
    def adam_chunk(self) -> int:
        return int(self["adam_chunk"])


def _build_probe_engine(step_workers: int, seed: int = 0):
    """A FleetEngine over a synthetic homogeneous fleet (probe workload)."""
    # Imported lazily: repro.core.fleet imports this package.
    from repro.core.fleet import FleetEngine
    from repro.core.node import NodeConfig, VehicleNode
    from repro.engine.random import spawn_rng
    from repro.nn import make_driving_model
    from repro.sim.dataset import DrivingDataset, Frame

    n_waypoints = 4
    bev_shape = _PROBE["bev_shape"]
    batch_size = _PROBE["batch_size"]
    config = NodeConfig(
        coreset_size=2 * batch_size, learning_rate=1e-3, batch_size=batch_size
    )
    nodes = []
    for i in range(_PROBE["n_nodes"]):
        rng = np.random.default_rng(seed * 1000 + i)
        frames = [
            Frame(
                f"probe-{i}-{k}",
                rng.normal(size=bev_shape).astype(np.float32),
                int(rng.integers(0, 4)),
                rng.normal(size=2 * n_waypoints).astype(np.float32),
                1.0,
            )
            for k in range(2 * batch_size)
        ]
        nodes.append(
            VehicleNode(
                f"probe-{i}",
                make_driving_model(
                    bev_shape, n_waypoints, hidden=_PROBE["hidden"], seed=i
                ),
                DrivingDataset(frames),
                config,
                spawn_rng(seed, f"autotune-{i}"),
            )
        )
    return FleetEngine(nodes, step_workers=step_workers)


def measure_step_throughput(
    step_workers: int, *, steps: int = 12, warmup: int = 3, seed: int = 0
) -> float:
    """Measured fleet-step throughput (node-steps/second) at a worker count.

    Spawn cost is excluded (the pool is persistent across a whole run, so
    warmup absorbs fork + first-touch) but the per-step pipe round-trip
    and shared-memory staging are fully included.
    """
    engine = _build_probe_engine(step_workers, seed=seed)
    try:
        for _ in range(warmup):
            engine.train_step_all()
        start = time.perf_counter()
        for _ in range(steps):
            engine.train_step_all()
        elapsed = time.perf_counter() - start
    finally:
        engine.close()
    return _PROBE["n_nodes"] * steps / max(elapsed, 1e-9)


def _tune_step_workers(measure) -> tuple[int, dict[str, float]]:
    """Power-of-two scaling then binary search over the last interval."""
    cores = os.cpu_count() or 1
    evidence: dict[str, float] = {}

    def probe(w: int) -> float:
        if str(w) not in evidence:
            evidence[str(w)] = measure(w)
        return evidence[str(w)]

    best, best_rate = 1, probe(1)
    w = 2
    # Doubling phase: climb while throughput improves, up to 2x cores
    # (beyond that oversubscription can only get worse).
    while w <= max(2, 2 * cores):
        rate = probe(w)
        if rate <= best_rate:
            break
        best, best_rate = w, rate
        w *= 2
    # Binary-search phase: the optimum sits between the last winner and
    # the first loser; probe midpoints until the interval closes.
    lo, hi = best, min(w, max(2, 2 * cores))
    while hi - lo > 1:
        mid = (lo + hi) // 2
        rate = probe(mid)
        if rate > best_rate:
            best, best_rate = mid, rate
            lo = mid
        else:
            hi = mid
    return best, evidence


def _tune_adam_chunk(step_workers: int) -> tuple[int, dict[str, float]]:
    """Pick the fused-Adam chunk width by measuring the ladder in place."""
    from repro.nn.bank import FleetAdam

    original = FleetAdam._CHUNK
    evidence: dict[str, float] = {}
    best, best_rate = original, 0.0
    try:
        for chunk in _CHUNK_LADDER:
            FleetAdam._CHUNK = chunk
            rate = measure_step_throughput(step_workers, steps=6, warmup=2)
            evidence[str(chunk)] = rate
            if rate > best_rate:
                best, best_rate = chunk, rate
    finally:
        FleetAdam._CHUNK = original
    return best, evidence


def autotune(force: bool = False) -> AutotuneResult:
    """Tuned ``(step_workers, adam_chunk)`` for this host, cached on disk."""
    cache_path = _cache_path()
    key = host_fingerprint()
    if not force and cache_path.exists():
        try:
            cached = json.loads(cache_path.read_text())
        except (OSError, ValueError):
            cached = {}
        if key in cached:
            return AutotuneResult(cached[key])
    workers, worker_evidence = _tune_step_workers(measure_step_throughput)
    chunk, chunk_evidence = _tune_adam_chunk(workers)
    result = AutotuneResult(
        step_workers=workers,
        adam_chunk=chunk,
        host_cores=os.cpu_count() or 1,
        throughput=worker_evidence,
        chunk_throughput=chunk_evidence,
    )
    try:
        cached = {}
        if cache_path.exists():
            cached = json.loads(cache_path.read_text())
        cached[key] = dict(result)
        cache_path.parent.mkdir(parents=True, exist_ok=True)
        tmp = cache_path.with_suffix(".tmp")
        tmp.write_text(json.dumps(cached, indent=2, sort_keys=True))
        os.replace(tmp, cache_path)
    except OSError:
        pass  # unwritable cache: tune again next time
    return result


def apply_tuned_chunk(result: AutotuneResult) -> None:
    """Install the tuned fused-Adam chunk width process-wide.

    Chunking is elementwise (:meth:`FleetAdam._step_chunked` applies the
    identical op sequence per element regardless of block boundaries),
    so this cannot change any result.
    """
    from repro.nn.bank import FleetAdam

    FleetAdam._CHUNK = result.adam_chunk


def resolve_step_workers(value) -> int:
    """Normalize a ``--step-workers`` value: int-like, or ``"auto"``.

    ``auto`` runs (or reads) the host autotune and also installs the
    tuned fused-Adam chunk width as a side effect.
    """
    if isinstance(value, str) and value.strip().lower() == "auto":
        result = autotune()
        apply_tuned_chunk(result)
        return result.step_workers
    workers = int(value)
    if workers < 1:
        raise ValueError(f"step workers must be >= 1 (or 'auto'): {value}")
    return workers
