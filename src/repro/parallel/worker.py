"""Worker-side execution of :class:`~repro.experiments.runner.RunSpec` jobs.

A worker process receives only the picklable spec — never a built
context or a live trainer.  It resolves the context locally (the
per-process memo in :func:`repro.experiments.runner.build_context`
means each worker builds a scale at most once, and fork-started workers
inherit contexts the parent already built for free), runs the method,
and ships back a picklable :class:`~repro.experiments.runner.RunResult`
plus an optional telemetry registry state for the parent to merge.

Imports of the experiment stack are deliberately lazy so that
``repro.parallel`` can be imported from inside ``repro.experiments``
modules without creating an import cycle.

Specs with ``checkpoint_every`` set compose with the pool's
crash-recovery for free: ``run_method`` routes them through
:func:`repro.checkpoint.resume.run_with_checkpoints`, so a retried or
serial-fallback attempt resumes from the newest on-disk barrier
snapshot instead of recomputing from virtual time zero — and still
returns a bit-identical result.
"""

from __future__ import annotations

import os

__all__ = ["execute_spec", "run_isolated", "run_job", "resolve_context"]

#: Env knobs for fault-injection tests: crash jobs whose method matches
#: ``REPRO_PARALLEL_CRASH_METHOD``.  With ``REPRO_PARALLEL_CRASH_FLAG``
#: set to a path, the crash happens only while that file exists (the
#: worker unlinks it first, so exactly one attempt dies — the retry
#: path); without it every worker attempt dies (the serial-fallback
#: path).  ``REPRO_PARALLEL_CRASH_HARD=1`` kills the process outright
#: instead of raising (exercises BrokenProcessPool recovery).
CRASH_METHOD_ENV = "REPRO_PARALLEL_CRASH_METHOD"
CRASH_FLAG_ENV = "REPRO_PARALLEL_CRASH_FLAG"
CRASH_HARD_ENV = "REPRO_PARALLEL_CRASH_HARD"


def _maybe_crash(spec) -> None:
    """Fault-injection hook; a no-op unless the crash env knobs are set."""
    target = os.environ.get(CRASH_METHOD_ENV)
    if target is None or spec.method != target:
        return
    flag = os.environ.get(CRASH_FLAG_ENV)
    if flag is not None:
        if not os.path.exists(flag):
            return
        os.unlink(flag)
    if os.environ.get(CRASH_HARD_ENV) == "1":
        os._exit(3)
    raise RuntimeError(f"injected worker crash for {spec.method!r}")


def resolve_context(spec):
    """The context for a spec's scale, built or loaded in this process."""
    if spec.use_cache:
        from repro.experiments.io import cached_context

        return cached_context(spec.scale)
    from repro.experiments.runner import build_context

    return build_context(spec.scale)


def execute_spec(spec):
    """Run one spec in the *current* process (serial path and fallback).

    Telemetry, if a session is active here, records directly into it —
    no capture/merge detour.
    """
    from repro.experiments.runner import run_method

    return run_method(resolve_context(spec), spec)


def run_isolated(spec):
    """Execute a spec under a private telemetry session.

    Returns ``(result, registry_state)``.  Wrapping each run in its own
    session makes a run's metric contribution a pure function of its
    spec: per-run recorder adoption (which is max-semantics *within* a
    session) can never interact across runs, so merging the states in
    job order yields the same registry whether the runs happened in one
    process or many.
    """
    from repro.telemetry import TelemetrySession

    with TelemetrySession(label=spec.label) as session:
        result = execute_spec(spec)
    return result, session.registry.state()


def run_job(spec, capture_telemetry: bool):
    """Pool entry point: execute a spec inside a worker process.

    Returns ``(result, registry_state_or_None)``.  When the parent has
    an active telemetry session, the run is wrapped in a private
    worker-side session whose registry state is returned for the parent
    to merge in job order (tracer spans stay worker-local; the registry
    is the cross-process contract).
    """
    _maybe_crash(spec)
    if capture_telemetry:
        return run_isolated(spec)
    return execute_spec(spec), None
