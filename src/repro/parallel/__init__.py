"""Process-parallel experiment engine.

Independent ``(method, seed, scale, wireless)`` runs are embarrassingly
parallel: each re-derives every RNG stream from its own
:class:`~repro.experiments.runner.RunSpec`, so fanning them out to
worker processes cannot change any number.  :func:`run_specs` is the
single entry point — the serial path (``jobs=1``) and the pool path run
the same per-job code and return bit-identical results in job order::

    from repro.experiments import RunSpec, build_context, get_scale
    from repro.parallel import run_specs

    context = build_context(get_scale("ci"))
    specs = [RunSpec.for_context(context, "LbChat", seed=s) for s in (1, 2, 3)]
    results = run_specs(specs, jobs=3)

``scripts/parallel_smoke.py`` gates exactly this determinism claim.
"""

from repro.parallel.autotune import resolve_step_workers
from repro.parallel.pool import (
    ParallelConfig,
    clamp_step_workers,
    resolve_jobs,
    run_specs,
)
from repro.parallel.stepshard import (
    ShmArena,
    StepWorkerPool,
    fork_available,
    partition_rows,
)
from repro.parallel.worker import execute_spec, run_job

__all__ = [
    "ParallelConfig",
    "clamp_step_workers",
    "resolve_jobs",
    "resolve_step_workers",
    "run_specs",
    "execute_spec",
    "run_job",
    "ShmArena",
    "StepWorkerPool",
    "fork_available",
    "partition_rows",
]
