"""Within-run parallel fleet stepping over shared-memory parameter banks.

The run-level pool (:mod:`repro.parallel.pool`) shards *across*
independent runs; this module shards *within* one run.  Between contact
events every vehicle trains in lock-step, and PR 7's
:class:`~repro.core.fleet.FleetEngine` already fused the whole fleet's
forward/backward/Adam into batched per-layer ops.  Those ops are all
independent per leading (node) index, so one batched step can be
partitioned by **contiguous bank-row ranges** and executed by worker
processes in place:

* :class:`ShmArena` carves numpy arrays out of one
  ``multiprocessing.shared_memory`` segment.  The engine allocates the
  parameter/gradient banks, the Adam moment matrices and step counters,
  the stacked minibatch buffers, and the per-node loss vector there.
  The segment is unlinked immediately after creation — forked workers
  inherit the mapping, nothing is ever addressed by name, and the
  memory disappears with the last process.
* :class:`StepWorkerPool` forks one persistent worker per row shard.
  Each worker owns a :class:`~repro.nn.bank.FleetWaypointNet` and a
  :class:`~repro.nn.bank.FleetAdam` built over *views* of its rows
  (:meth:`ParamBank.slice_rows`).  A step command carries only the
  batch length: inputs are read from, and parameters/moments/losses are
  written to, the shared segment — the merge is the memory itself,
  zero-copy, no pickling of parameters.

Determinism is structural, not numerical luck: the parent draws every
node's minibatch from the node's own RNG stream in row order (exactly
as the serial engine does), and every batched tensor op in
:mod:`repro.nn.bank` reduces along non-row axes only.  Row ``r`` sees
the same float ops on the same operands whether it is computed by the
serial engine, by worker 0 of 2, or by worker 3 of 4 — so run results
are **bit-identical for every worker count**, which the stepshard smoke
gate and :mod:`tests.test_stepshard` enforce.

Requires the ``fork`` start method (workers inherit the mapped segment
and the live slice objects); on platforms without it the engine falls
back to serial batched stepping.
"""

from __future__ import annotations

import multiprocessing
import os
import traceback
from multiprocessing import shared_memory

import numpy as np

__all__ = [
    "ShmArena",
    "StepWorkerPool",
    "StepShard",
    "StepWorkerError",
    "fork_available",
    "partition_rows",
]

#: Allocation alignment inside an arena, in bytes (cache-line friendly).
_ALIGN = 64


def fork_available() -> bool:
    """Whether this platform can fork step workers."""
    return "fork" in multiprocessing.get_all_start_methods()


def partition_rows(n_rows: int, n_workers: int) -> list[tuple[int, int]]:
    """Contiguous ``[lo, hi)`` row ranges, sizes differing by at most 1.

    The shard count is clamped to ``n_rows`` so no worker is ever idle;
    partitioning is deterministic in (n_rows, n_workers).
    """
    if n_rows <= 0:
        raise ValueError(f"need at least one row: {n_rows}")
    if n_workers <= 0:
        raise ValueError(f"need at least one worker: {n_workers}")
    n_workers = min(n_workers, n_rows)
    base, extra = divmod(n_rows, n_workers)
    ranges = []
    lo = 0
    for w in range(n_workers):
        hi = lo + base + (1 if w < extra else 0)
        ranges.append((lo, hi))
        lo = hi
    return ranges


class ShmArena:
    """Bump allocator over one ``multiprocessing.shared_memory`` segment.

    The segment is created zero-filled, unlinked immediately (so its
    name never outlives this constructor — forked children share the
    *mapping*, not the name), and carved into aligned numpy arrays via
    :meth:`alloc`.  The arena object itself keeps the mapping alive; it
    must outlive every array allocated from it.
    """

    def __init__(self, nbytes: int):
        if nbytes <= 0:
            raise ValueError(f"arena needs a positive size: {nbytes}")
        self._shm = shared_memory.SharedMemory(create=True, size=int(nbytes))
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - platform quirk
            pass
        self.nbytes = int(nbytes)
        self._offset = 0

    @staticmethod
    def bytes_for(*specs: tuple[tuple[int, ...], type]) -> int:
        """Total arena bytes for a sequence of ``(shape, dtype)`` specs."""
        total = 0
        for shape, dtype in specs:
            size = int(np.prod(shape)) * np.dtype(dtype).itemsize
            total += -(-size // _ALIGN) * _ALIGN
        return max(total, _ALIGN)

    def alloc(self, shape: tuple[int, ...], dtype) -> np.ndarray:
        """A zeroed C-contiguous array carved out of the segment."""
        shape = tuple(int(s) for s in shape)
        size = int(np.prod(shape)) * np.dtype(dtype).itemsize
        if self._offset + size > self.nbytes:
            raise MemoryError(
                f"arena exhausted: need {size} bytes at offset {self._offset} "
                f"of {self.nbytes}"
            )
        arr = np.ndarray(shape, dtype=dtype, buffer=self._shm.buf, offset=self._offset)
        self._offset += -(-size // _ALIGN) * _ALIGN
        return arr

    @property
    def allocator(self):
        """``alloc`` bound as a ``(shape, dtype) -> ndarray`` callable."""
        return self.alloc


class StepWorkerError(RuntimeError):
    """A step worker died or reported an exception mid-step.

    Bank rows may be partially updated when this is raised, so the run
    cannot fall back to recomputing the step — the run-level pool's
    crash-retry (which rebuilds from the spec or a checkpoint) is the
    recovery path.
    """


class StepShard:
    """One worker's slice of the fleet: rows, model, optimizer, buffers."""

    def __init__(self, index, lo, hi, model, optim, bev, commands, targets, losses):
        self.index = index
        self.lo = lo
        self.hi = hi
        self.model = model  # FleetWaypointNet over bank rows [lo, hi)
        self.optim = optim  # FleetAdam over the same rows
        self.bev = bev  # (n, b_cap, C, H, W) shared input buffer
        self.commands = commands  # (n, b_cap)
        self.targets = targets  # (n, b_cap, D)
        self.losses = losses  # (n,) float64 shared output vector

    def run_step(self, batch_len: int) -> None:
        """One batched step over this shard's rows (worker-side)."""
        from repro.nn.losses import fleet_waypoint_l1

        lo, hi, b = self.lo, self.hi, batch_len
        pred = self.model.forward(self.bev[lo:hi, :b], self.commands[lo:hi, :b])
        scalars, _, grad = fleet_waypoint_l1(pred, self.targets[lo:hi, :b])
        # Backward *assigns* gradients into the shared bank rows; the
        # optimizer updates parameters and moments in place.  Writing
        # the loss vector completes the shard — there is no merge step.
        self.model.backward(grad)
        self.optim.step()
        self.losses[lo:hi] = scalars


def _worker_main(conn, shard: StepShard) -> None:
    """Step-worker loop: wait for commands, step the shard, acknowledge.

    Telemetry is captured per shard in a plain counter dict and shipped
    to the parent with the ``stop`` acknowledgement (the parent merges
    it into the active session) — the same capture-and-merge contract
    the run-level pool uses for whole runs.
    """
    counters = {"steps": 0.0, "rows_stepped": 0.0}
    try:
        while True:
            msg = conn.recv()
            if msg[0] == "stop":
                conn.send(("bye", counters))
                conn.close()
                break
            batch_len = msg[1]
            shard.run_step(batch_len)
            counters["steps"] += 1
            counters["rows_stepped"] += shard.hi - shard.lo
            conn.send(("ok",))
    except (EOFError, KeyboardInterrupt):
        pass
    except Exception:
        try:
            conn.send(("err", traceback.format_exc()))
        except (OSError, ValueError):
            pass
    # Skip interpreter teardown: the worker shares inherited state
    # (shm mappings, telemetry sessions) with the parent, and normal
    # exit hooks would try to finalize objects the parent still owns.
    os._exit(0)


class StepWorkerPool:
    """Persistent forked workers stepping disjoint bank-row shards.

    ``shards`` carry live slice objects (views into shared memory);
    forking inherits them, so nothing is pickled — not at spawn, not
    per step.  One ``step(batch_len)`` call fans a command out to every
    worker over its pipe and blocks until all shards acknowledge; the
    updated parameters, moments, step counters, and losses are already
    in the shared segment when it returns.
    """

    def __init__(self, shards: list[StepShard]):
        if not fork_available():
            raise StepWorkerError("step workers require the fork start method")
        ctx = multiprocessing.get_context("fork")
        self._conns = []
        self._procs = []
        self.n_workers = len(shards)
        self.shard_rows = [(s.lo, s.hi) for s in shards]
        for shard in shards:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, shard),
                name=f"repro-stepshard-{shard.index}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)
        self._closed = False

    def step(self, batch_len: int) -> None:
        """Run one batched step on every shard; returns when all finish."""
        if self._closed:
            raise StepWorkerError("step worker pool is closed")
        for proc, conn in zip(self._procs, self._conns):
            try:
                conn.send(("step", int(batch_len)))
            except OSError as exc:
                self._abandon()
                raise StepWorkerError(
                    f"step worker {proc.name} died before the step"
                ) from exc
        for proc, conn in zip(self._procs, self._conns):
            try:
                msg = conn.recv()
            except EOFError as exc:
                self._abandon()
                raise StepWorkerError(
                    f"step worker {proc.name} died mid-step"
                ) from exc
            if msg[0] != "ok":
                self._abandon()
                raise StepWorkerError(
                    f"step worker {proc.name} failed:\n{msg[1]}"
                )

    def close(self) -> dict[int, dict[str, float]]:
        """Stop every worker; per-shard telemetry counters, by shard index."""
        if self._closed:
            return {}
        self._closed = True
        merged: dict[int, dict[str, float]] = {}
        for i, (proc, conn) in enumerate(zip(self._procs, self._conns)):
            try:
                conn.send(("stop",))
                msg = conn.recv()
                if msg[0] == "bye":
                    merged[i] = msg[1]
            except (OSError, EOFError, BrokenPipeError):
                pass
            finally:
                conn.close()
                proc.join(timeout=5.0)
                if proc.is_alive():  # pragma: no cover - defensive
                    proc.terminate()
        return merged

    def _abandon(self) -> None:
        """Tear down without the stop handshake (a worker already died)."""
        self._closed = True
        for conn in self._conns:
            conn.close()
        for proc in self._procs:
            proc.terminate()
            proc.join(timeout=5.0)

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            if not self._closed:
                self._abandon()
        except Exception:
            pass
