"""Command-line interface.

Examples
--------
::

    python -m repro scales
    python -m repro run --method LbChat --scale ci --wireless
    python -m repro run --method SCO --out sco.json --save-model sco.npz
    python -m repro run --method LbChat --checkpoint-every 60
    python -m repro resume .repro_cache/checkpoints/lbchat-seed1-0123456789abcdef
    python -m repro table 3 --scale ci
    python -m repro fig 2b
    python -m repro rates
    python -m repro trace --method LbChat --out trace.jsonl
    python -m repro report --trace trace.jsonl
    python -m repro eval --model sco.npz --trials 4
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.configs import get_scale, iter_scales, scale_names
from repro.experiments.render import render_curves


def _add_scale_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scale", default="ci", choices=scale_names(), help="experiment scale preset"
    )


def _add_jobs_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for independent runs (0 = all cores); "
        "results are bit-identical to --jobs 1",
    )


def _add_step_workers_arg(parser: argparse.ArgumentParser, default: str = "1") -> None:
    parser.add_argument(
        "--step-workers", default=default, metavar="N|auto",
        help="shard each run's fleet training step across N forked workers "
        "over shared-memory banks ('auto' = measured per-host tuning); "
        "results are bit-identical for every value",
    )


def _step_workers(args: argparse.Namespace) -> int:
    """Resolve the --step-workers flag ('auto' probes/reads the host cache)."""
    from repro.parallel import resolve_step_workers

    return resolve_step_workers(args.step_workers)


def _add_overlap_arg(parser: argparse.ArgumentParser, default: bool | None = False) -> None:
    parser.add_argument(
        "--overlap-chat", action=argparse.BooleanOptionalAction, default=default,
        help="overlap chat model transfers with training: chats plan "
        "synchronously, then ship models in the background and commit "
        "them atomically when the transfer resolves (default off; the "
        "synchronous protocol stays the golden-pinned reference)",
    )


def _run_overrides(args: argparse.Namespace) -> dict:
    """Config overrides shared by the run/trace commands."""
    workers = _step_workers(args)
    overrides: dict = {}
    if workers != 1:
        overrides["step_workers"] = workers
    if getattr(args, "overlap_chat", False):
        overrides["overlap_chat"] = True
    return overrides


def _add_run_args(parser: argparse.ArgumentParser) -> None:
    """Flags shared by every single-training-run command (run, trace)."""
    parser.add_argument("--method", default="LbChat")
    _add_scale_arg(parser)
    parser.add_argument("--wireless", action=argparse.BooleanOptionalAction, default=True)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=True,
        help="use the on-disk context cache",
    )
    parser.add_argument(
        "--checkpoint-every", type=float, default=None, metavar="SECONDS",
        help="snapshot run state every N virtual seconds; an interrupted "
        "run continues from the newest snapshot (repro resume <run-dir>)",
    )
    parser.add_argument(
        "--checkpoint-dir", default=None,
        help="checkpoint store root (default .repro_cache/checkpoints)",
    )
    _add_jobs_arg(parser)
    _add_step_workers_arg(parser)
    _add_overlap_arg(parser)


def _cmd_scales(args: argparse.Namespace) -> int:
    for scale in iter_scales():
        world = scale.world
        print(
            f"{scale.name:6s} map {world.map_size:.0f}m  vehicles {world.n_vehicles}  "
            f"traffic {world.n_background_cars}c/{world.n_pedestrians}p  "
            f"coreset {scale.coreset_size}  T {scale.train_duration:.0f}s"
        )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.runner import RunSpec
    from repro.parallel import run_specs

    scale = get_scale(args.scale)
    spec = RunSpec(
        method=args.method,
        scale=scale,
        wireless=args.wireless,
        seed=args.seed,
        coreset_size=args.coreset_size,
        overrides=_run_overrides(args),
        use_cache=args.cache,
        checkpoint_every=args.checkpoint_every,
        checkpoint_dir=args.checkpoint_dir,
    )
    print(f"Training {args.method} (scale={args.scale}, wireless={args.wireless})...")
    result = run_specs([spec], jobs=args.jobs)[0]
    _render_result(args, result)
    return 0


def _render_result(args: argparse.Namespace, result) -> None:
    """Shared tail of the run/resume commands: curve, rate, artifacts."""
    from repro.experiments.io import save_run

    grid, curve = result.loss_curve(11)
    print(render_curves(f"{result.method}: fleet validation loss", grid, {result.method: curve}))
    print(f"receive rate: {100 * result.receive_rate:.1f}%")
    if args.out:
        save_run(result, args.out)
        print(f"run archived to {args.out}")
    if args.save_model:
        from repro.nn.serialize import save_model

        save_model(result.nodes[0].model, args.save_model)
        print(f"model checkpoint written to {args.save_model}")


def _cmd_resume(args: argparse.Namespace) -> int:
    from repro.checkpoint import resume_run_dir

    print(f"Resuming run from {args.run_dir}...")
    workers = None if args.step_workers is None else _step_workers(args)
    result = resume_run_dir(
        args.run_dir, step_workers=workers, overlap_chat=args.overlap_chat
    )
    _render_result(args, result)
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.experiments import tables

    fn = {
        "2": tables.table2,
        "3": tables.table3,
        "4": tables.table4,
        "5": tables.table5,
        "6": tables.table6,
        "7": tables.table7,
    }[args.number]
    print(f"Reproducing Table {args.number} at scale {args.scale} "
          "(trains every required method; this takes a while)...")
    result = fn(args.scale, seed=args.seed, jobs=args.jobs,
                step_workers=_step_workers(args), overlap_chat=args.overlap_chat)
    print(result.render())
    if result.receive_rates:
        print("\nreceive rates: " + ", ".join(
            f"{k}={100 * v:.0f}%" for k, v in result.receive_rates.items()
        ))
    return 0


def _cmd_fig(args: argparse.Namespace) -> int:
    from repro.experiments import figures

    if args.which in ("2a", "2b"):
        result = figures.fig2(
            args.scale, wireless=args.which == "2b", seed=args.seed, jobs=args.jobs,
            step_workers=_step_workers(args), overlap_chat=args.overlap_chat,
        )
    else:
        result = figures.fig3(
            args.scale, seed=args.seed, jobs=args.jobs,
            step_workers=_step_workers(args), overlap_chat=args.overlap_chat,
        )
    print(result.render())
    return 0


def _cmd_rates(args: argparse.Namespace) -> int:
    from repro.experiments.figures import receive_rates

    rates = receive_rates(
        args.scale, seed=args.seed, jobs=args.jobs,
        step_workers=_step_workers(args), overlap_chat=args.overlap_chat,
    )
    print("Successful model receiving rate (w wireless loss)")
    for method, rate in rates.items():
        print(f"  {method:10s} {100 * rate:5.1f}%")
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    from repro.experiments.io import cached_context
    from repro.nn.serialize import load_model
    from repro.sim.comfort import comfort_score, compute_comfort
    from repro.sim.evaluate import DrivingCondition, EvalConfig, route_for_condition, run_episode
    from repro.sim.scenarios import SCENARIOS
    from repro.engine.random import spawn_rng

    scale = get_scale(args.scale)
    context = cached_context(scale)
    model = load_model(args.model)
    print(f"{'scenario':22s} {'outcome':10s} {'min gap':>8s}")
    for name, scenario in SCENARIOS.items():
        result = scenario(context.town, model, scale.bev)
        gap = "-" if result.min_gap == float("inf") else f"{result.min_gap:.1f}m"
        print(f"{name:22s} {result.reason:10s} {gap:>8s}")
    if args.comfort:
        config = EvalConfig(
            bev_spec=scale.bev,
            n_waypoints=scale.n_waypoints,
            normal_cars=0,
            normal_pedestrians=0,
        )
        plan = route_for_condition(
            context.town, DrivingCondition.NAVI_EMPTY, spawn_rng(args.seed, "cmf"), config
        )
        episode = run_episode(
            model, context.town, plan, DrivingCondition.NAVI_EMPTY, config,
            seed=args.seed, record_trajectory=True,
        )
        if episode.trajectory is not None and len(episode.trajectory) >= 3:
            metrics = compute_comfort(episode.trajectory, config.dt)
            print(f"\ncomfort on an empty navigation route ({episode.reason}):")
            print(f"  max accel {metrics.max_acceleration:.2f} m/s², "
                  f"max brake {metrics.max_deceleration:.2f} m/s²")
            print(f"  jerk RMS {metrics.jerk_rms:.2f} m/s³, "
                  f"max lateral {metrics.max_lateral_acceleration:.2f} m/s²")
            print(f"  comfort score: {comfort_score(metrics):.0f}/100")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.experiments.runner import RunSpec
    from repro.parallel import run_specs
    from repro.telemetry import TelemetrySession, export_jsonl, report_session

    scale = get_scale(args.scale)
    spec = RunSpec(
        method=args.method,
        scale=scale,
        wireless=args.wireless,
        seed=args.seed,
        overrides=_run_overrides(args),
        use_cache=args.cache,
    )
    print(f"Tracing {args.method} (scale={args.scale}, wireless={args.wireless})...")
    session = TelemetrySession(label=f"{args.method} @ {args.scale}")
    with session:
        result = run_specs([spec], jobs=args.jobs)[0]
    path = export_jsonl(session, args.out)
    print(report_session(session))
    print(f"\ntrace written to {path}")
    if args.csv:
        from repro.telemetry import export_metrics_csv

        print(f"metrics written to {export_metrics_csv(session.registry, args.csv)}")
    print(f"receive rate: {100 * result.receive_rate:.1f}%")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    if args.trace:
        from repro.telemetry import load_jsonl, report_trace

        report = report_trace(load_jsonl(args.trace))
        if args.out:
            Path(args.out).write_text(report + "\n")
            print(f"report written to {args.out}")
        else:
            print(report)
        return 0

    from repro.experiments.report import build_report

    report = build_report(args.artifacts)
    if args.out:
        Path(args.out).write_text(report)
        print(f"report written to {args.out}")
    else:
        print(report)
    return 0


def _cmd_eval(args: argparse.Namespace) -> int:
    from repro.nn.serialize import load_model
    from repro.experiments.io import cached_context
    from repro.sim.evaluate import DrivingCondition, EvalConfig, success_rate

    scale = get_scale(args.scale)
    context = cached_context(scale)
    model = load_model(args.model)
    config = EvalConfig(
        bev_spec=scale.bev,
        n_waypoints=scale.n_waypoints,
        normal_cars=scale.eval_normal_cars,
        normal_pedestrians=scale.eval_normal_pedestrians,
    )
    print(f"{'condition':16s} {'success':>8s}")
    for condition in DrivingCondition:
        rate = success_rate(
            model, context.town, condition, args.trials, config, seed=args.seed
        )
        print(f"{condition.value:16s} {100 * rate:7.0f}%")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro", description="LbChat reproduction experiment runner"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("scales", help="list scale presets")
    p.set_defaults(fn=_cmd_scales)

    p = sub.add_parser("run", help="train one method")
    _add_run_args(p)
    p.add_argument("--coreset-size", type=int, default=None)
    p.add_argument("--out", default=None, help="archive run results to JSON")
    p.add_argument("--save-model", default=None, help="write a model checkpoint (.npz)")
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser("resume", help="continue a checkpointed run from its run directory")
    p.add_argument("run_dir", help="checkpoint run directory (contains run.json)")
    _add_step_workers_arg(p, default=None)
    _add_overlap_arg(p, default=None)
    p.add_argument("--out", default=None, help="archive run results to JSON")
    p.add_argument("--save-model", default=None, help="write a model checkpoint (.npz)")
    p.set_defaults(fn=_cmd_resume)

    p = sub.add_parser("table", help="reproduce a paper table")
    p.add_argument("number", choices=("2", "3", "4", "5", "6", "7"))
    _add_scale_arg(p)
    p.add_argument("--seed", type=int, default=1)
    _add_jobs_arg(p)
    _add_step_workers_arg(p)
    _add_overlap_arg(p)
    p.set_defaults(fn=_cmd_table)

    p = sub.add_parser("fig", help="reproduce a paper figure")
    p.add_argument("which", choices=("2a", "2b", "3"))
    _add_scale_arg(p)
    p.add_argument("--seed", type=int, default=1)
    _add_jobs_arg(p)
    _add_step_workers_arg(p)
    _add_overlap_arg(p)
    p.set_defaults(fn=_cmd_fig)

    p = sub.add_parser("rates", help="§IV-C receive-rate comparison")
    _add_scale_arg(p)
    p.add_argument("--seed", type=int, default=1)
    _add_jobs_arg(p)
    _add_step_workers_arg(p)
    _add_overlap_arg(p)
    p.set_defaults(fn=_cmd_rates)

    p = sub.add_parser("scenario", help="run stress scenarios on a checkpoint")
    p.add_argument("--model", required=True)
    _add_scale_arg(p)
    p.add_argument("--comfort", action="store_true", help="also report comfort metrics")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_scenario)

    p = sub.add_parser("trace", help="train one method with telemetry on")
    _add_run_args(p)
    p.add_argument("--out", default="trace.jsonl", help="JSONL trace destination")
    p.add_argument("--csv", default=None, help="also dump the metric snapshot as CSV")
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser("report", help="assemble the reproduction report")
    p.add_argument("--artifacts", default="benchmarks/out")
    p.add_argument("--trace", default=None, help="render a telemetry JSONL trace instead")
    p.add_argument("--out", default=None, help="write the report to a file")
    p.set_defaults(fn=_cmd_report)

    p = sub.add_parser("eval", help="online-evaluate a model checkpoint")
    p.add_argument("--model", required=True)
    _add_scale_arg(p)
    p.add_argument("--trials", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_eval)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
