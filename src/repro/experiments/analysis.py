"""Post-hoc analysis of loss curves.

The paper's Fig. 3 discussion compares *convergence times* ("SCO takes
about 1.5-1.8x longer to converge"); these helpers compute exactly such
statistics from recorded curves so benches and notebooks don't re-derive
them ad hoc.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "time_to_threshold",
    "relative_slowdown",
    "area_under_curve",
    "improvement_rate",
    "convergence_summary",
]


def time_to_threshold(grid: np.ndarray, curve: np.ndarray, threshold: float) -> float:
    """First time the curve reaches ``threshold``, linearly interpolated.

    Returns ``inf`` when the curve never gets there.
    """
    grid = np.asarray(grid, dtype=float)
    curve = np.asarray(curve, dtype=float)
    if grid.shape != curve.shape:
        raise ValueError("grid and curve must align")
    below = np.where(curve <= threshold)[0]
    if len(below) == 0:
        return np.inf
    k = int(below[0])
    if k == 0:
        return float(grid[0])
    # Linear interpolation between the straddling samples.
    t0, t1 = grid[k - 1], grid[k]
    v0, v1 = curve[k - 1], curve[k]
    if v0 == v1:
        return float(t1)
    frac = (v0 - threshold) / (v0 - v1)
    return float(t0 + frac * (t1 - t0))


def relative_slowdown(
    grid: np.ndarray,
    fast_curve: np.ndarray,
    slow_curve: np.ndarray,
    threshold: float | None = None,
) -> float:
    """How much longer the slow curve takes to reach the threshold.

    Default threshold: 110% of the better final loss (the "converged"
    band).  Returns ``inf`` when only the fast curve converges, 1.0 when
    neither does.
    """
    if threshold is None:
        threshold = 1.1 * min(fast_curve[-1], slow_curve[-1])
    t_fast = time_to_threshold(grid, fast_curve, threshold)
    t_slow = time_to_threshold(grid, slow_curve, threshold)
    if np.isinf(t_fast) and np.isinf(t_slow):
        return 1.0
    if np.isinf(t_slow):
        return np.inf
    if np.isinf(t_fast):
        return 0.0
    return float(t_slow / max(t_fast, 1e-9))


def area_under_curve(grid: np.ndarray, curve: np.ndarray) -> float:
    """Trapezoidal integral of the loss curve — total regret."""
    return float(np.trapezoid(curve, grid))


def improvement_rate(grid: np.ndarray, curve: np.ndarray) -> float:
    """Average loss reduction per unit time over the whole run."""
    span = float(grid[-1] - grid[0])
    if span <= 0:
        raise ValueError("grid must span a positive duration")
    return float((curve[0] - curve[-1]) / span)


def convergence_summary(
    grid: np.ndarray, curves: dict[str, np.ndarray], threshold: float | None = None
) -> dict[str, dict[str, float]]:
    """Per-method convergence statistics for a family of curves.

    ``threshold`` defaults to 110% of the best final loss across methods.
    """
    if threshold is None:
        threshold = 1.1 * min(curve[-1] for curve in curves.values())
    return {
        name: {
            "final": float(curve[-1]),
            "time_to_threshold": time_to_threshold(grid, curve, threshold),
            "auc": area_under_curve(grid, curve),
            "rate": improvement_rate(grid, curve),
        }
        for name, curve in curves.items()
    }
