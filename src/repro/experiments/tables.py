"""Tables II-VII: driving success rates under the paper's conditions.

Each function trains the required methods on the shared context,
deploys the resulting models in closed-loop online evaluation, and
returns ``{condition: {method: success%}}`` plus a rendered text table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.configs import ExperimentScale, get_scale
from repro.experiments.render import render_table
from repro.experiments.runner import (
    ExperimentContext,
    RunSpec,
    build_context,
    online_evaluate,
    register_context,
)
from repro.parallel import run_specs
from repro.sim.evaluate import DrivingCondition

__all__ = [
    "TableResult",
    "success_table",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
]

CONDITIONS = [cond.value for cond in DrivingCondition]
MAIN_METHODS = ("ProxSkip", "RSU-L", "DFL-DDS", "DP", "LbChat")


def _overrides(step_workers: int, overlap_chat: bool = False) -> dict:
    """Trainer-config overrides for the shared perf knobs (defaults = none)."""
    overrides: dict = {}
    if step_workers != 1:
        overrides["step_workers"] = int(step_workers)
    if overlap_chat:
        overrides["overlap_chat"] = True
    return overrides


@dataclass
class TableResult:
    """A reproduced table: values indexed [condition][column]."""

    title: str
    columns: list[str]
    values: dict[str, dict[str, float]]
    receive_rates: dict[str, float]

    def render(self) -> str:
        """The table as aligned text, paper-shaped."""
        return render_table(self.title, CONDITIONS, self.columns, self.values)

    def cell(self, condition: str, column: str) -> float:
        """One table value by condition and column."""
        return self.values[condition][column]


def _assemble(
    title: str,
    columns: list[str],
    specs: list[RunSpec],
    context: ExperimentContext,
    seed: int,
    jobs: int,
) -> TableResult:
    """Train one spec per column (fanned out to ``jobs`` workers) and
    online-evaluate each into one table."""
    register_context(context)
    results = run_specs(specs, jobs=jobs)
    values: dict[str, dict[str, float]] = {cond: {} for cond in CONDITIONS}
    receive_rates: dict[str, float] = {}
    for column, result in zip(columns, results):
        rates = online_evaluate(result, context, seed=seed)
        receive_rates[column] = result.receive_rate
        for cond in CONDITIONS:
            values[cond][column] = rates[cond]
    return TableResult(
        title=title, columns=columns, values=values, receive_rates=receive_rates
    )


def success_table(
    title: str,
    methods: tuple[str, ...],
    context: ExperimentContext,
    wireless: bool,
    seed: int = 1,
    coreset_sizes: dict[str, int] | None = None,
    jobs: int = 1,
    step_workers: int = 1,
    overlap_chat: bool = False,
) -> TableResult:
    """Train ``methods`` and online-evaluate each into one table.

    ``coreset_sizes`` optionally overrides the coreset size per column
    label (Table IV); ``jobs`` fans the training runs out to worker
    processes, and ``step_workers`` shards each run's fleet stepping
    (results are bit-identical for every value of either).
    """
    specs = []
    for column in methods:
        method = column
        coreset_size = None
        if coreset_sizes and column in coreset_sizes:
            method = "LbChat"
            coreset_size = coreset_sizes[column]
        specs.append(
            RunSpec.for_context(
                context, method, wireless=wireless, seed=seed,
                coreset_size=coreset_size,
                overrides=_overrides(step_workers, overlap_chat),
            )
        )
    return _assemble(title, list(methods), specs, context, seed, jobs)


def table2(
    scale: ExperimentScale | str = "ci", seed: int = 1, jobs: int = 1,
    step_workers: int = 1, overlap_chat: bool = False,
) -> TableResult:
    """Table II: success rate without wireless loss, all five methods."""
    scale = get_scale(scale) if isinstance(scale, str) else scale
    context = build_context(scale)
    return success_table(
        "Table II: driving success rate (w/o wireless loss) (%)",
        MAIN_METHODS,
        context,
        wireless=False,
        seed=seed,
        jobs=jobs,
        step_workers=step_workers,
        overlap_chat=overlap_chat,
    )


def table3(
    scale: ExperimentScale | str = "ci", seed: int = 1, jobs: int = 1,
    step_workers: int = 1, overlap_chat: bool = False,
) -> TableResult:
    """Table III: success rate with wireless loss, all five methods."""
    scale = get_scale(scale) if isinstance(scale, str) else scale
    context = build_context(scale)
    return success_table(
        "Table III: driving success rate (w wireless loss) (%)",
        MAIN_METHODS,
        context,
        wireless=True,
        seed=seed,
        jobs=jobs,
        step_workers=step_workers,
        overlap_chat=overlap_chat,
    )


def table4(
    scale: ExperimentScale | str = "ci",
    seed: int = 1,
    sizes: tuple[int, int] | None = None,
    jobs: int = 1,
    step_workers: int = 1,
    overlap_chat: bool = False,
) -> TableResult:
    """Table IV: LbChat with 10x and 1/10x the default coreset size.

    Columns follow the paper: large/small coreset, each with and
    without wireless loss.
    """
    scale = get_scale(scale) if isinstance(scale, str) else scale
    context = build_context(scale)
    large, small = sizes or (scale.coreset_size * 10, max(scale.coreset_size // 10, 2))
    columns = [f"{large} (W/O)", f"{small} (W/O)", f"{large} (W)", f"{small} (W)"]
    specs = [
        RunSpec.for_context(
            context, "LbChat", wireless=wireless, seed=seed, coreset_size=size,
            overrides=_overrides(step_workers, overlap_chat),
        )
        for size, wireless in ((large, False), (small, False), (large, True), (small, True))
    ]
    return _assemble(
        "Table IV: success rate with different coreset sizes (%)",
        columns,
        specs,
        context,
        seed,
        jobs,
    )


def _ablation_table(
    title: str, method: str, scale: ExperimentScale | str, seed: int,
    jobs: int = 1, step_workers: int = 1, overlap_chat: bool = False,
) -> TableResult:
    scale = get_scale(scale) if isinstance(scale, str) else scale
    context = build_context(scale)
    columns = ["W/O wireless loss", "W wireless loss"]
    specs = [
        RunSpec.for_context(
            context, method, wireless=wireless, seed=seed,
            overrides=_overrides(step_workers, overlap_chat),
        )
        for wireless in (False, True)
    ]
    return _assemble(title, columns, specs, context, seed, jobs)


def table5(
    scale: ExperimentScale | str = "ci", seed: int = 1, jobs: int = 1,
    step_workers: int = 1, overlap_chat: bool = False,
) -> TableResult:
    """Table V: LbChat with equal compression ratios (Eq. 7 masked)."""
    return _ablation_table(
        "Table V: success rate with equal comp. ratio (%)",
        "LbChat (equal comp.)",
        scale,
        seed,
        jobs,
        step_workers,
        overlap_chat,
    )


def table6(
    scale: ExperimentScale | str = "ci", seed: int = 1, jobs: int = 1,
    step_workers: int = 1, overlap_chat: bool = False,
) -> TableResult:
    """Table VI: LbChat with plain averaging (Eq. 8 masked)."""
    return _ablation_table(
        "Table VI: success rate with avg. aggregation (%)",
        "LbChat (avg. agg.)",
        scale,
        seed,
        jobs,
        step_workers,
        overlap_chat,
    )


def table7(
    scale: ExperimentScale | str = "ci", seed: int = 1, jobs: int = 1,
    step_workers: int = 1, overlap_chat: bool = False,
) -> TableResult:
    """Table VII: sharing coresets only (SCO)."""
    return _ablation_table(
        "Table VII: success rate with sharing coreset only (%)",
        "SCO",
        scale,
        seed,
        jobs,
        step_workers,
        overlap_chat,
    )
