"""LaTeX rendering of reproduced tables and figures.

Releases of paper reproductions usually ship LaTeX snippets so the
measured numbers can be dropped straight into a writeup next to the
originals.  These renderers mirror :mod:`repro.experiments.render` but
emit ``tabular`` environments and pgfplots coordinate lists.
"""

from __future__ import annotations

import numpy as np

__all__ = ["latex_table", "latex_curves"]


def _escape(text: str) -> str:
    out = []
    for ch in str(text):
        if ch in "&%$#_{}":
            out.append("\\" + ch)
        elif ch == "~":
            out.append(r"\textasciitilde{}")
        elif ch == "^":
            out.append(r"\textasciicircum{}")
        elif ch == "\\":
            out.append(r"\textbackslash{}")
        else:
            out.append(ch)
    return "".join(out)


def latex_table(
    caption: str,
    row_labels: list[str],
    col_labels: list[str],
    values: dict[str, dict[str, float]],
    fmt: str = "{:.0f}",
    label: str | None = None,
) -> str:
    """Render ``values[row][col]`` as a LaTeX ``table`` environment."""
    cols = "l" + "c" * len(col_labels)
    lines = [
        r"\begin{table}[t]",
        r"  \centering",
        rf"  \caption{{{_escape(caption)}}}",
    ]
    if label:
        lines.append(rf"  \label{{{_escape(label)}}}")
    lines.append(rf"  \begin{{tabular}}{{{cols}}}")
    lines.append(r"    \hline")
    header = " & ".join(["Task"] + [_escape(c) for c in col_labels])
    lines.append(f"    {header} \\\\")
    lines.append(r"    \hline")
    for row in row_labels:
        cells = [_escape(row)]
        for col in col_labels:
            value = values.get(row, {}).get(col)
            cells.append("-" if value is None else fmt.format(value))
        lines.append("    " + " & ".join(cells) + r" \\")
    lines.append(r"    \hline")
    lines.append(r"  \end{tabular}")
    lines.append(r"\end{table}")
    return "\n".join(lines)


def latex_curves(
    title: str,
    grid: np.ndarray,
    curves: dict[str, np.ndarray],
    xlabel: str = "Time (s)",
    ylabel: str = "Training loss",
) -> str:
    """Render loss curves as a pgfplots ``axis`` environment."""
    lines = [
        r"\begin{tikzpicture}",
        r"  \begin{axis}[",
        rf"      title={{{_escape(title)}}},",
        rf"      xlabel={{{_escape(xlabel)}}}, ylabel={{{_escape(ylabel)}}},",
        r"      legend pos=north east]",
    ]
    for name, curve in curves.items():
        coords = " ".join(f"({t:g},{v:.4f})" for t, v in zip(grid, curve))
        lines.append(rf"    \addplot coordinates {{{coords}}};")
        lines.append(rf"    \addlegendentry{{{_escape(name)}}}")
    lines.append(r"  \end{axis}")
    lines.append(r"\end{tikzpicture}")
    return "\n".join(lines)
