"""Experiment harness: everything needed to regenerate the paper's
figures and tables (see DESIGN.md's per-experiment index).

* :mod:`repro.experiments.configs` — scale presets (``ci`` for tests and
  benchmark runs, ``paper`` for §IV-A-faithful parameters).
* :mod:`repro.experiments.runner` — builds the shared world/data/trace
  context, instantiates any method by name, runs it, and online-evaluates
  the resulting models.
* :mod:`repro.experiments.tables` — Tables II-VII.
* :mod:`repro.experiments.figures` — Fig. 2 and Fig. 3 loss curves, plus
  the §IV-C receive-rate comparison.
* :mod:`repro.experiments.render` — plain-text renderers shaped like the
  paper's tables.
"""

from repro.experiments.configs import (
    ExperimentScale,
    get_scale,
    iter_scales,
    register_scale,
    scale_names,
)
from repro.experiments.runner import (
    ExperimentContext,
    METHOD_NAMES,
    RunResult,
    RunSpec,
    build_context,
    make_config,
    make_nodes,
    make_trainer,
    online_evaluate,
    register_context,
    run_method,
)
from repro.experiments.render import render_curves, render_table
from repro.experiments.tables import (
    TableResult,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
)
from repro.experiments.figures import FigureResult, fig2, fig3, receive_rates
from repro.experiments.analysis import (
    convergence_summary,
    relative_slowdown,
    time_to_threshold,
)
from repro.experiments.io import cached_context, load_run, save_run
from repro.experiments.multiseed import SeedSummary, compare_methods, run_seeds
from repro.experiments.report import build_report

__all__ = [
    "TableResult",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "FigureResult",
    "fig2",
    "fig3",
    "receive_rates",
    "time_to_threshold",
    "relative_slowdown",
    "convergence_summary",
    "cached_context",
    "save_run",
    "load_run",
    "SeedSummary",
    "run_seeds",
    "compare_methods",
    "build_report",
    "ExperimentScale",
    "get_scale",
    "register_scale",
    "iter_scales",
    "scale_names",
    "ExperimentContext",
    "METHOD_NAMES",
    "RunSpec",
    "RunResult",
    "build_context",
    "make_config",
    "make_nodes",
    "make_trainer",
    "register_context",
    "run_method",
    "online_evaluate",
    "render_table",
    "render_curves",
]
