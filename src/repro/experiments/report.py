"""Reproduction report generator.

Collects the artifacts a benchmark run wrote to ``benchmarks/out/`` and
assembles a single markdown report with a checklist of the paper's
qualitative claims, each marked reproduced / not-reproduced from the
measured numbers.  Runs offline over the text artifacts so it can be
re-generated without re-training anything.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path

__all__ = ["ClaimCheck", "parse_receive_rates", "parse_final_losses", "build_report"]


@dataclass
class ClaimCheck:
    """One paper claim and whether the measured artifacts support it."""

    claim: str
    verdict: bool | None  # None when the needed artifact is missing
    detail: str

    def render(self) -> str:
        """One markdown checklist line for this claim."""
        mark = "?" if self.verdict is None else ("x" if self.verdict else " ")
        return f"- [{mark}] {self.claim} — {self.detail}"


def parse_receive_rates(text: str) -> dict[str, float]:
    """Parse the receive-rate artifact into {method: rate%}."""
    rates = {}
    for line in text.splitlines():
        match = re.match(r"\s*([\w\-\. ()]+?)\s+([\d.]+)%\s*$", line)
        if match:
            rates[match.group(1).strip()] = float(match.group(2))
    return rates


def parse_final_losses(text: str) -> dict[str, float]:
    """Parse a loss-curve artifact into {method: final loss}."""
    finals = {}
    for line in text.splitlines():
        parts = line.split()
        if len(parts) >= 3 and parts[0] not in ("t(s)",) and not line.startswith(("=", "-", "Fig", "Table")):
            try:
                values = [float(p) for p in parts[1:]]
            except ValueError:
                continue
            finals[parts[0]] = values[-1]
    return finals


def _load(out_dir: Path, name: str) -> str | None:
    path = out_dir / name
    return path.read_text() if path.exists() else None


def build_report(out_dir: str | Path = "benchmarks/out") -> str:
    """Assemble the markdown reproduction report from artifacts."""
    out_dir = Path(out_dir)
    checks: list[ClaimCheck] = []

    fig2b = _load(out_dir, "fig2b_loss_with_wireless.txt")
    if fig2b:
        finals = parse_final_losses(fig2b)
        if {"LbChat", "ProxSkip", "DFL-DDS", "DP"} <= set(finals):
            competitive = finals["LbChat"] <= finals["ProxSkip"] * 1.5
            ahead = finals["LbChat"] < finals["DFL-DDS"] and finals["LbChat"] < finals["DP"]
            checks.append(
                ClaimCheck(
                    "Under wireless loss LbChat converges like the central server",
                    competitive,
                    f"final loss LbChat={finals['LbChat']:.3f} vs ProxSkip={finals['ProxSkip']:.3f}",
                )
            )
            checks.append(
                ClaimCheck(
                    "LbChat beats the fully decentralized baselines (Fig. 2b)",
                    ahead,
                    f"LbChat={finals['LbChat']:.3f}, DFL-DDS={finals['DFL-DDS']:.3f}, DP={finals['DP']:.3f}",
                )
            )
    else:
        checks.append(ClaimCheck("Fig. 2(b) loss ordering", None, "artifact missing"))

    rates_text = _load(out_dir, "receive_rates.txt")
    if rates_text:
        rates = parse_receive_rates(rates_text)
        if {"LbChat", "DFL-DDS", "DP"} <= set(rates):
            gap = rates["LbChat"] - max(rates["DFL-DDS"], rates["DP"])
            checks.append(
                ClaimCheck(
                    "LbChat's receive rate is far above DFL-DDS/DP (87% vs ~51%)",
                    gap > 10.0,
                    f"gap of {gap:.0f} percentage points",
                )
            )
    else:
        checks.append(ClaimCheck("§IV-C receive rates", None, "artifact missing"))

    fig3 = _load(out_dir, "fig3_lbchat_vs_sco.txt")
    if fig3:
        finals = parse_final_losses(fig3)
        if {"LbChat", "SCO"} <= set(finals):
            checks.append(
                ClaimCheck(
                    "LbChat converges at least as fast as coreset-only SCO (Fig. 3)",
                    finals["LbChat"] <= finals["SCO"] + 0.02,
                    f"final loss LbChat={finals['LbChat']:.3f} vs SCO={finals['SCO']:.3f}",
                )
            )
    else:
        checks.append(ClaimCheck("Fig. 3 LbChat vs SCO", None, "artifact missing"))

    lines = [
        "# Reproduction report",
        "",
        "Auto-generated from the artifacts in `benchmarks/out/`.",
        "",
        "## Claim checklist",
        "",
    ]
    lines.extend(check.render() for check in checks)
    lines.append("")
    lines.append("## Raw artifacts")
    lines.append("")
    for path in sorted(out_dir.glob("*.txt")):
        lines.append(f"### {path.name}")
        lines.append("```")
        lines.append(path.read_text().rstrip())
        lines.append("```")
        lines.append("")
    return "\n".join(lines)
