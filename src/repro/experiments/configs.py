"""Scale presets for the experiment harness.

``paper`` mirrors §IV-A: a ~1 km x 1 km town+rural map, 32 expert
vehicles, 50 background cars, 250 pedestrians, 52 MB nominal model,
150-sample coresets, 31 Mbps / 500 m radios, T_B = 15 s.  (Training
horizons are scaled: the paper trains for simulated hours on a GPU; the
pure-numpy learner here reaches its convergence plateau far sooner.)

``ci`` is a miniature of the same world that keeps every mechanism
exercised while finishing on one CPU core — used by the test suite and
the pytest-benchmark targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.coreset import PenaltyConfig
from repro.sim.bev import BevSpec
from repro.sim.world import WorldConfig

__all__ = ["ExperimentScale", "get_scale", "CI", "PAPER"]


@dataclass(frozen=True)
class ExperimentScale:
    """Everything that differs between ci and paper scale."""

    name: str
    world: WorldConfig
    bev: BevSpec = field(default_factory=lambda: BevSpec(grid=20, cell=2.0))
    n_waypoints: int = 5
    hidden: int = 96
    model_seed: int = 0
    #: Seconds of expert driving collected per local dataset.
    collect_duration: float = 120.0
    #: Seconds of mobility traces for the communication phase.
    trace_duration: float = 600.0
    #: Collaborative-training horizon T.
    train_duration: float = 300.0
    train_interval: float = 2.0
    record_interval: float = 30.0
    coreset_size: int = 30
    learning_rate: float = 1e-3
    batch_size: int = 64
    penalty: PenaltyConfig = field(default_factory=PenaltyConfig)
    #: Online-evaluation trials per driving condition.
    eval_trials: int = 6
    #: Vehicles whose trained models are online-evaluated (averaged).
    eval_models: int = 2
    eval_normal_cars: int = 8
    eval_normal_pedestrians: int = 30
    #: Fraction of collected frames held out as the shared validation set.
    validation_stride: int = 10


CI = ExperimentScale(
    name="ci",
    world=WorldConfig(
        map_size=500.0,
        grid_n=4,
        n_vehicles=6,
        n_background_cars=6,
        n_pedestrians=20,
        seed=7,
        min_route_length=150.0,
        n_districts=4,
        ped_district_skew=True,
    ),
    collect_duration=120.0,
    trace_duration=1300.0,
    train_duration=1200.0,
    train_interval=1.0,
    coreset_size=12,
    eval_trials=8,
    eval_models=2,
    eval_normal_cars=8,
    eval_normal_pedestrians=30,
)

PAPER = ExperimentScale(
    name="paper",
    world=WorldConfig(
        map_size=1000.0,
        grid_n=6,
        n_vehicles=32,
        n_background_cars=50,
        n_pedestrians=250,
        seed=7,
        min_route_length=250.0,
        n_districts=4,
        ped_district_skew=True,
    ),
    collect_duration=300.0,
    trace_duration=2400.0,
    train_duration=1800.0,
    coreset_size=150,
    eval_trials=20,
    eval_models=4,
    eval_normal_cars=50,
    eval_normal_pedestrians=250,
    learning_rate=1e-3,
)

_SCALES = {scale.name: scale for scale in (CI, PAPER)}


def get_scale(name: str) -> ExperimentScale:
    """Look up a preset by name ('ci' or 'paper')."""
    try:
        return _SCALES[name]
    except KeyError:
        raise ValueError(f"unknown scale {name!r}; choose from {sorted(_SCALES)}") from None
