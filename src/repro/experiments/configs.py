"""Scale presets for the experiment harness.

``paper`` mirrors §IV-A: a ~1 km x 1 km town+rural map, 32 expert
vehicles, 50 background cars, 250 pedestrians, 52 MB nominal model,
150-sample coresets, 31 Mbps / 500 m radios, T_B = 15 s.  (Training
horizons are scaled: the paper trains for simulated hours on a GPU; the
pure-numpy learner here reaches its convergence plateau far sooner.)

``ci`` is a miniature of the same world that keeps every mechanism
exercised while finishing on one CPU core — used by the test suite and
the pytest-benchmark targets.

``city`` goes beyond the paper: a multi-district map ~10x the paper's
town with 512 vehicles, sharded world stepping, swept contact
detection over the mobility traces, and memory-bounded loss-cache /
chat-log budgets so per-node state stays O(coreset) as the fleet grows.

Scales enter the system through an open registry: :func:`register_scale`
adds a preset (the three built-ins register the same way third-party
scales do), :func:`iter_scales` / :func:`scale_names` enumerate it, and
:func:`get_scale` looks one up by name.  New scales are declared as
deltas of an existing preset via :meth:`ExperimentScale.derived`.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field, replace as _dc_replace
from typing import Iterator

from repro.coreset import PenaltyConfig
from repro.sim.bev import BevSpec
from repro.sim.world import WorldConfig

__all__ = [
    "ExperimentScale",
    "register_scale",
    "iter_scales",
    "scale_names",
    "get_scale",
    "CI",
    "PAPER",
    "CITY",
]


@dataclass(frozen=True)
class ExperimentScale:
    """Everything that differs between the experiment scales."""

    name: str
    world: WorldConfig
    bev: BevSpec = field(default_factory=lambda: BevSpec(grid=20, cell=2.0))
    n_waypoints: int = 5
    hidden: int = 96
    model_seed: int = 0
    #: Seconds of expert driving collected per local dataset.
    collect_duration: float = 120.0
    #: Seconds of mobility traces for the communication phase.
    trace_duration: float = 600.0
    #: Collaborative-training horizon T.
    train_duration: float = 300.0
    train_interval: float = 2.0
    record_interval: float = 30.0
    coreset_size: int = 30
    learning_rate: float = 1e-3
    batch_size: int = 64
    penalty: PenaltyConfig = field(default_factory=PenaltyConfig)
    #: Online-evaluation trials per driving condition.
    eval_trials: int = 6
    #: Vehicles whose trained models are online-evaluated (averaged).
    eval_models: int = 2
    eval_normal_cars: int = 8
    eval_normal_pedestrians: int = 30
    #: Fraction of collected frames held out as the shared validation set.
    validation_stride: int = 10
    #: Max live entries in a node's slot-based loss cache (0 = unbounded).
    loss_cache_budget: int = 0
    #: Max retained ChatRecord entries per run (0 = unbounded).
    chat_log_budget: int = 0

    def derived(self, name: str, *, world=None, **overrides) -> "ExperimentScale":
        """A copy of this scale with ``overrides`` applied.

        ``world`` may be a full :class:`WorldConfig` or a mapping of
        WorldConfig field overrides applied on top of this scale's
        world; every other keyword replaces the scale field of the same
        name.  The derived scale is *not* registered — pass it to
        :func:`register_scale` to make it addressable by name.
        """
        if world is not None:
            if isinstance(world, Mapping):
                world = _dc_replace(self.world, **dict(world))
            elif not isinstance(world, WorldConfig):
                raise TypeError(
                    f"world override must be a WorldConfig or mapping, got {type(world).__name__}"
                )
            overrides["world"] = world
        return _dc_replace(self, name=name, **overrides)


#: Registry of named scales, in registration order.  Mutate only via
#: :func:`register_scale` — the CLI, error messages, and cache
#: fingerprints all derive their name lists from here.
_SCALES: dict[str, ExperimentScale] = {}


def register_scale(scale: ExperimentScale, *, replace: bool = False) -> ExperimentScale:
    """Add ``scale`` to the registry; returns it for chaining.

    Registration is the only way scales enter the system: ``repro
    scales``, ``--scale`` choices, and :func:`get_scale` all read the
    registry.  Re-registering a taken name raises unless
    ``replace=True``.
    """
    if not isinstance(scale, ExperimentScale):
        raise TypeError(f"expected ExperimentScale, got {type(scale).__name__}")
    if not scale.name:
        raise ValueError("scale name must be non-empty")
    if scale.name in _SCALES and not replace:
        raise ValueError(
            f"scale {scale.name!r} is already registered; pass replace=True to override"
        )
    _SCALES[scale.name] = scale
    return scale


def iter_scales() -> Iterator[ExperimentScale]:
    """Registered scales, in registration order."""
    return iter(tuple(_SCALES.values()))


def scale_names() -> tuple[str, ...]:
    """Registered scale names, in registration order."""
    return tuple(_SCALES)


def get_scale(name: str) -> ExperimentScale:
    """Look up a registered preset by name (e.g. 'ci', 'paper', 'city')."""
    try:
        return _SCALES[name]
    except KeyError:
        raise ValueError(f"unknown scale {name!r}; choose from {sorted(_SCALES)}") from None


PAPER = ExperimentScale(
    name="paper",
    world=WorldConfig(
        map_size=1000.0,
        grid_n=6,
        n_vehicles=32,
        n_background_cars=50,
        n_pedestrians=250,
        seed=7,
        min_route_length=250.0,
        n_districts=4,
        ped_district_skew=True,
    ),
    collect_duration=300.0,
    trace_duration=2400.0,
    train_duration=1800.0,
    coreset_size=150,
    eval_trials=20,
    eval_models=4,
    eval_normal_cars=50,
    eval_normal_pedestrians=250,
    learning_rate=1e-3,
)

#: The ci miniature is a delta of the paper world — same mechanisms,
#: one-core-sized horizons.
CI = PAPER.derived(
    "ci",
    world=dict(
        map_size=500.0,
        grid_n=4,
        n_vehicles=6,
        n_background_cars=6,
        n_pedestrians=20,
        min_route_length=150.0,
    ),
    collect_duration=120.0,
    trace_duration=1300.0,
    train_duration=1200.0,
    train_interval=1.0,
    coreset_size=12,
    eval_trials=8,
    eval_models=2,
    eval_normal_cars=8,
    eval_normal_pedestrians=30,
)

#: City scale: a 3x3 district grid (each district a paper-sized town,
#: arterial links between neighbours), 512 expert vehicles, sharded
#: world stepping + swept contact detection, and bounded per-node
#: memory.  Horizons are trimmed so an end-to-end run finishes on one
#: core in minutes rather than hours.
CITY = PAPER.derived(
    "city",
    world=dict(
        map_size=3200.0,
        grid_n=4,
        n_vehicles=512,
        n_background_cars=64,
        n_pedestrians=128,
        min_route_length=300.0,
        n_districts=9,
        city_blocks=3,
        shard_stepping=True,
    ),
    bev=BevSpec(grid=12, cell=3.0),
    hidden=48,
    collect_duration=40.0,
    trace_duration=360.0,
    train_duration=300.0,
    train_interval=10.0,
    record_interval=100.0,
    coreset_size=16,
    batch_size=32,
    eval_trials=2,
    eval_models=1,
    eval_normal_cars=12,
    eval_normal_pedestrians=40,
    validation_stride=20,
    loss_cache_budget=4096,
    chat_log_budget=2000,
)

for _scale in (CI, PAPER, CITY):
    register_scale(_scale)
del _scale
