"""Experiment persistence: context caching and result archives.

Building an :class:`~repro.experiments.runner.ExperimentContext` (world
run, dataset collection, mobility traces) is the most expensive
method-independent step of every experiment; :func:`cached_context`
persists it to disk keyed by a hash of the scale parameters, so repeated
benchmark sessions skip straight to training.

:func:`save_run` / :func:`load_run` archive a run's measurable outputs
(loss curve, receive rate, counters) as JSON for post-processing.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from dataclasses import asdict
from pathlib import Path

import numpy as np

from repro.experiments.configs import ExperimentScale
from repro.experiments.runner import (
    ExperimentContext,
    RunResult,
    build_context,
    register_context,
)

__all__ = ["scale_fingerprint", "cached_context", "save_run", "load_run"]

DEFAULT_CACHE_DIR = Path(".repro_cache")

#: Bump when the pickled context representation changes (format 2:
#: array-native DrivingDataset storage; format 3: spatial-grid world —
#: TownMap grew a lazy node table and TrafficManager/World pickle
#: struct-of-arrays agent mirrors; format 4: multi-district city maps —
#: TownMap grew ``districts_per_side``, WorldConfig grew
#: ``city_blocks``/``shard_stepping``, MobilityTraces memoize contact
#: indexes).
_CACHE_FORMAT = 4


def scale_fingerprint(scale: ExperimentScale) -> str:
    """Deterministic hash of every context-relevant scale parameter."""
    payload = {
        "format": _CACHE_FORMAT,
        "world": asdict(scale.world),
        "bev": (scale.bev.grid, scale.bev.cell, scale.bev.back_fraction),
        "n_waypoints": scale.n_waypoints,
        "collect_duration": scale.collect_duration,
        "trace_duration": scale.trace_duration,
        "validation_stride": scale.validation_stride,
    }
    blob = json.dumps(payload, sort_keys=True, default=str).encode()
    return hashlib.sha256(blob).hexdigest()[:16]


def cached_context(
    scale: ExperimentScale, cache_dir: str | Path = DEFAULT_CACHE_DIR
) -> ExperimentContext:
    """Load the scale's context from disk, building and storing on miss.

    The cache key covers everything that influences the context, so a
    changed world parameter never serves stale data.  Corrupt cache
    files are rebuilt silently.
    """
    cache_dir = Path(cache_dir)
    path = cache_dir / f"context-{scale.name}-{scale_fingerprint(scale)}.pkl"
    if path.exists():
        try:
            with open(path, "rb") as fh:
                context = pickle.load(fh)
            if isinstance(context, ExperimentContext):
                register_context(context)
                return context
        except (pickle.UnpicklingError, EOFError, AttributeError):
            path.unlink(missing_ok=True)
    context = build_context(scale)
    cache_dir.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(".tmp")
    with open(tmp, "wb") as fh:
        pickle.dump(context, fh, protocol=pickle.HIGHEST_PROTOCOL)
    tmp.replace(path)
    return context


def save_run(result: RunResult, path: str | Path, n_points: int = 41) -> None:
    """Archive a run's outputs as JSON.

    Only the result's own (picklable) fields are touched, so results
    returned from worker processes archive identically to serial ones.
    """
    grid, curve = result.loss_curve(n_points)
    payload = {
        "method": result.method,
        "duration": result.duration,
        "wireless_loss": result.wireless,
        "seed": result.seed,
        "grid": grid.tolist(),
        "loss_curve": curve.tolist(),
        "receive_rate": result.receive_rate,
        "counters": dict(result.counters),
        "per_vehicle_final_loss": {
            key: result.loss_recorder.series(key)[1][-1]
            for key in result.loss_recorder.keys()
        },
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # Atomic, like the context cache above: a crash mid-write must not
    # leave a truncated archive under the final name.
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2, default=float))
    tmp.replace(path)


def load_run(path: str | Path) -> dict:
    """Load a run archive; arrays come back as numpy."""
    payload = json.loads(Path(path).read_text())
    payload["grid"] = np.asarray(payload["grid"])
    payload["loss_curve"] = np.asarray(payload["loss_curve"])
    return payload
