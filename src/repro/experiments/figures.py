"""Figures 2-3 and the §IV-C receive-rate comparison.

Figures are returned as ``(grid, {method: curve})`` pairs: the fleet's
mean validation loss over training time, step-interpolated onto a
common grid — exactly what the paper plots.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.configs import ExperimentScale, get_scale
from repro.experiments.render import render_curves
from repro.experiments.runner import RunSpec, build_context, register_context
from repro.parallel import run_specs

__all__ = ["FigureResult", "fig2", "fig3", "receive_rates"]

FIG2_METHODS = ("ProxSkip", "RSU-L", "DFL-DDS", "DP", "LbChat")


def _overrides(step_workers: int, overlap_chat: bool = False) -> dict:
    """Trainer-config overrides for the shared perf knobs (defaults = none)."""
    overrides: dict = {}
    if step_workers != 1:
        overrides["step_workers"] = int(step_workers)
    if overlap_chat:
        overrides["overlap_chat"] = True
    return overrides


@dataclass
class FigureResult:
    """A reproduced loss-vs-time figure."""

    title: str
    grid: np.ndarray
    curves: dict[str, np.ndarray]

    def render(self) -> str:
        """The figure as aligned text columns."""
        return render_curves(self.title, self.grid, self.curves)

    def final(self, method: str) -> float:
        """A method's final loss value."""
        return float(self.curves[method][-1])

    def convergence_time(self, method: str, threshold: float) -> float:
        """First grid time at which the curve drops below ``threshold``.

        Returns the last grid time if the threshold is never reached.
        """
        curve = self.curves[method]
        below = np.where(curve <= threshold)[0]
        return float(self.grid[below[0]]) if len(below) else float(self.grid[-1])


def _method_curves(
    methods: tuple[str, ...],
    scale: ExperimentScale,
    wireless: bool,
    seed: int,
    n_points: int,
    jobs: int,
    step_workers: int = 1,
    overlap_chat: bool = False,
) -> dict[str, np.ndarray]:
    """One loss curve per method, trained serially or across workers."""
    context = build_context(scale)
    register_context(context)
    specs = [
        RunSpec.for_context(
            context, method, wireless=wireless, seed=seed,
            overrides=_overrides(step_workers, overlap_chat),
        )
        for method in methods
    ]
    results = run_specs(specs, jobs=jobs)
    return {
        method: result.loss_curve(n_points)[1]
        for method, result in zip(methods, results)
    }


def fig2(
    scale: ExperimentScale | str = "ci",
    wireless: bool = False,
    seed: int = 1,
    n_points: int = 21,
    jobs: int = 1,
    step_workers: int = 1,
    overlap_chat: bool = False,
) -> FigureResult:
    """Fig. 2(a) (wireless=False) / Fig. 2(b) (wireless=True)."""
    scale = get_scale(scale) if isinstance(scale, str) else scale
    grid = np.linspace(0.0, scale.train_duration, n_points)
    curves = _method_curves(
        FIG2_METHODS, scale, wireless, seed, n_points, jobs, step_workers,
        overlap_chat,
    )
    label = "w" if wireless else "w/o"
    return FigureResult(
        title=f"Fig. 2: training loss vs. time ({label} wireless loss)",
        grid=grid,
        curves=curves,
    )


def fig3(
    scale: ExperimentScale | str = "ci",
    wireless: bool = True,
    seed: int = 1,
    n_points: int = 21,
    jobs: int = 1,
    step_workers: int = 1,
    overlap_chat: bool = False,
) -> FigureResult:
    """Fig. 3: LbChat vs SCO convergence speed."""
    scale = get_scale(scale) if isinstance(scale, str) else scale
    grid = np.linspace(0.0, scale.train_duration, n_points)
    curves = _method_curves(
        ("LbChat", "SCO"), scale, wireless, seed, n_points, jobs, step_workers,
        overlap_chat,
    )
    return FigureResult(
        title="Fig. 3: training loss vs. time (LbChat & SCO)", grid=grid, curves=curves
    )


def receive_rates(
    scale: ExperimentScale | str = "ci", seed: int = 1, jobs: int = 1,
    step_workers: int = 1, overlap_chat: bool = False,
) -> dict[str, float]:
    """§IV-C: successful model receiving rate per method, under loss."""
    scale = get_scale(scale) if isinstance(scale, str) else scale
    context = build_context(scale)
    register_context(context)
    specs = [
        RunSpec.for_context(
            context, method, wireless=True, seed=seed,
            overrides=_overrides(step_workers, overlap_chat),
        )
        for method in FIG2_METHODS
    ]
    results = run_specs(specs, jobs=jobs)
    return {
        method: result.receive_rate for method, result in zip(FIG2_METHODS, results)
    }
