"""Experiment runner: context building, method dispatch, online eval.

The expensive, method-independent work — running the world to collect
per-vehicle datasets and mobility traces — happens once per scale in
:func:`build_context` (memoized in-process).  Every method then trains
from identical initial models, identical local datasets, and identical
encounter patterns, so differences in outcomes are attributable to the
methods alone, matching the paper's controlled comparison.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.baselines import (
    DflDdsTrainer,
    DpTrainer,
    ProxSkipTrainer,
    RsuLTrainer,
    ScoTrainer,
    equal_compression_trainer,
    mean_aggregation_trainer,
    no_prioritization_trainer,
)
from repro.baselines.dfl_dds import DflDdsConfig
from repro.baselines.dp import DpConfig
from repro.baselines.proxskip import ProxSkipConfig
from repro.baselines.rsul import RsuLConfig
from repro.core.lbchat import LbChatConfig, LbChatTrainer
from repro.core.node import NodeConfig, VehicleNode
from repro.core.trainer_base import TrainerBase
from repro.engine.random import spawn_rng
from repro.experiments.configs import ExperimentScale
from repro.nn import make_driving_model
from repro.sim.dataset import DrivingDataset, collect_fleet_datasets
from repro.sim.evaluate import DrivingCondition, EvalConfig, success_rate
from repro.sim.map import TownMap
from repro.sim.traces import MobilityTraces, simulate_traces
from repro.sim.world import World

__all__ = [
    "ExperimentContext",
    "RunResult",
    "METHOD_NAMES",
    "build_context",
    "make_nodes",
    "make_trainer",
    "run_method",
    "online_evaluate",
]

METHOD_NAMES = (
    "Local",
    "ProxSkip",
    "RSU-L",
    "DFL-DDS",
    "DP",
    "LbChat",
    "SCO",
    "LbChat (equal comp.)",
    "LbChat (avg. agg.)",
    "LbChat (no priority)",
)


@dataclass
class ExperimentContext:
    """Method-independent world artifacts shared by all runs."""

    scale: ExperimentScale
    town: TownMap
    datasets: dict[str, DrivingDataset]
    validation: DrivingDataset
    traces: MobilityTraces


@dataclass
class RunResult:
    """Output of one method's collaborative-training run."""

    method: str
    trainer: TrainerBase
    nodes: list[VehicleNode]

    @property
    def receive_rate(self) -> float:
        """The run's §IV-C model-receive completion rate."""
        return self.trainer.receive_rate.rate

    def loss_curve(self, n_points: int = 21) -> tuple[np.ndarray, np.ndarray]:
        """(grid, mean fleet validation loss) over the run."""
        grid = np.linspace(0.0, self.trainer.config.duration, n_points)
        return grid, self.trainer.loss_curve.mean_curve(grid)

    def final_loss(self) -> float:
        """Mean of each vehicle's final recorded loss."""
        return self.trainer.loss_curve.final_mean()


_context_cache: dict[str, ExperimentContext] = {}


def build_context(scale: ExperimentScale) -> ExperimentContext:
    """Collect datasets and traces for a scale (memoized per process)."""
    if scale.name in _context_cache:
        return _context_cache[scale.name]
    world = World(scale.world)
    raw = collect_fleet_datasets(
        world, scale.collect_duration, scale.bev, n_waypoints=scale.n_waypoints
    )
    validation = DrivingDataset()
    datasets: dict[str, DrivingDataset] = {}
    stride = scale.validation_stride
    for vid, dataset in sorted(raw.items()):
        n = len(dataset)
        validation.extend([dataset.frame(i) for i in range(0, n, stride)])
        datasets[vid] = dataset.subset([i for i in range(n) if i % stride])
    traces = simulate_traces(scale.world, scale.trace_duration)
    context = ExperimentContext(
        scale=scale, town=world.town, datasets=datasets, validation=validation, traces=traces
    )
    _context_cache[scale.name] = context
    return context


def make_nodes(context: ExperimentContext, seed: int = 1) -> list[VehicleNode]:
    """Fresh nodes with identical model initializations (§II-A)."""
    scale = context.scale
    node_config = NodeConfig(
        coreset_size=scale.coreset_size,
        batch_size=scale.batch_size,
        learning_rate=scale.learning_rate,
        penalty=scale.penalty,
    )
    nodes = []
    for vid, dataset in sorted(context.datasets.items()):
        model = make_driving_model(
            context.scale.bev.shape,
            scale.n_waypoints,
            scale.hidden,
            seed=scale.model_seed,
        )
        # Each node gets a *copy* of its dataset: trainers mutate them.
        local = DrivingDataset(dataset.frames())
        nodes.append(
            VehicleNode(vid, model, local, node_config, spawn_rng(seed, f"node-{vid}"))
        )
    return nodes


def _base_trainer_kwargs(scale: ExperimentScale, wireless: bool, seed: int) -> dict:
    return dict(
        duration=scale.train_duration,
        train_interval=scale.train_interval,
        record_interval=scale.record_interval,
        wireless_loss=wireless,
        seed=seed,
    )


def make_trainer(
    method: str,
    nodes: list[VehicleNode],
    context: ExperimentContext,
    wireless: bool = True,
    seed: int = 1,
    coreset_size: int | None = None,
) -> TrainerBase:
    """Instantiate any method by its paper name."""
    scale = context.scale
    kwargs = _base_trainer_kwargs(scale, wireless, seed)
    traces, validation = context.traces, context.validation
    if method == "Local":
        from repro.baselines import LocalOnlyTrainer
        from repro.core.trainer_base import TrainerConfig

        return LocalOnlyTrainer(nodes, traces, validation, TrainerConfig(**kwargs))
    if method == "ProxSkip":
        return ProxSkipTrainer(nodes, traces, validation, ProxSkipConfig(**kwargs))
    if method == "RSU-L":
        # RSU radio range scaled to the map so that, like in the paper's
        # 1 km world, vehicles regularly leave RSU coverage.
        rsu_range = min(500.0, scale.world.map_size * 0.4)
        return RsuLTrainer(
            nodes, traces, validation, RsuLConfig(rsu_range=rsu_range, **kwargs)
        )
    if method == "DFL-DDS":
        return DflDdsTrainer(nodes, traces, validation, DflDdsConfig(**kwargs))
    if method == "DP":
        return DpTrainer(nodes, traces, validation, DpConfig(**kwargs))
    if method == "LbChat":
        return LbChatTrainer(nodes, traces, validation, LbChatConfig(**kwargs))
    if method == "SCO":
        return ScoTrainer(nodes, traces, validation, LbChatConfig(**kwargs))
    if method == "LbChat (equal comp.)":
        return equal_compression_trainer(nodes, traces, validation, LbChatConfig(**kwargs))
    if method == "LbChat (avg. agg.)":
        return mean_aggregation_trainer(nodes, traces, validation, LbChatConfig(**kwargs))
    if method == "LbChat (no priority)":
        return no_prioritization_trainer(nodes, traces, validation, LbChatConfig(**kwargs))
    raise ValueError(f"unknown method {method!r}; choose from {METHOD_NAMES}")


def run_method(
    context: ExperimentContext,
    method: str,
    wireless: bool = True,
    seed: int = 1,
    coreset_size: int | None = None,
    coreset_strategy: str | None = None,
    trainer_overrides: dict | None = None,
) -> RunResult:
    """Train one method on the shared context and return its results.

    ``coreset_size`` overrides the scale's default (Table IV study);
    ``coreset_strategy`` switches Algorithm 1 for a §V alternative;
    ``trainer_overrides`` sets attributes on the trainer config (e.g.
    ``{"lambda_c": 0.2}`` for Eq. 7 sensitivity studies).
    """
    nodes = make_nodes(context, seed=seed)
    overrides = {}
    if coreset_size is not None:
        overrides["coreset_size"] = coreset_size
    if coreset_strategy is not None:
        overrides["coreset_strategy"] = coreset_strategy
    if overrides:
        for node in nodes:
            node.config = replace(node.config, **overrides)
            node.refresh_coreset()
    trainer = make_trainer(method, nodes, context, wireless=wireless, seed=seed)
    for key, value in (trainer_overrides or {}).items():
        if not hasattr(trainer.config, key):
            raise AttributeError(f"{method} config has no field {key!r}")
        setattr(trainer.config, key, value)
    trainer.run()
    return RunResult(method=method, trainer=trainer, nodes=nodes)


def select_eval_nodes(result: RunResult, context: ExperimentContext) -> list[VehicleNode]:
    """The vehicles whose models get deployed: the fleet's median.

    Fully decentralized methods leave mild quality variance across the
    fleet; the paper deploys "the trained model" on a testing autopilot,
    which we read as a *typical* vehicle.  Ranking by validation loss
    and taking the middle ``eval_models`` nodes measures exactly that
    (server-based methods are unaffected — their models are identical).
    """
    k = context.scale.eval_models
    ranked = sorted(
        result.nodes,
        key=lambda node: node.evaluate(context.validation, with_penalty=False),
    )
    start = max((len(ranked) - k) // 2, 0)
    return ranked[start : start + k]


def online_evaluate(
    result: RunResult,
    context: ExperimentContext,
    conditions: list[DrivingCondition] | None = None,
    seed: int = 0,
) -> dict[str, float]:
    """Deploy trained models on test routes; mean success rate (%) per condition.

    Evaluates the fleet-median models (see :func:`select_eval_nodes`)
    and averages their success rates.
    """
    scale = context.scale
    conditions = conditions or list(DrivingCondition)
    config = EvalConfig(
        bev_spec=scale.bev,
        n_waypoints=scale.n_waypoints,
        normal_cars=scale.eval_normal_cars,
        normal_pedestrians=scale.eval_normal_pedestrians,
    )
    out: dict[str, list[float]] = {cond.value: [] for cond in conditions}
    for node in select_eval_nodes(result, context):
        for cond in conditions:
            rate = success_rate(
                node.model, context.town, cond, scale.eval_trials, config, seed=seed
            )
            out[cond.value].append(100.0 * rate)
    return {key: float(np.mean(values)) for key, values in out.items()}
