"""Experiment runner: context building, method dispatch, online eval.

The expensive, method-independent work — running the world to collect
per-vehicle datasets and mobility traces — happens once per scale in
:func:`build_context` (memoized in-process).  Every method then trains
from identical initial models, identical local datasets, and identical
encounter patterns, so differences in outcomes are attributable to the
methods alone, matching the paper's controlled comparison.

One run is described by a :class:`RunSpec` — a small picklable job
description that carries everything a worker process needs to reproduce
the run from scratch (the scale, the method, the seed, and any config
overrides).  :func:`run_method` executes a spec against a context and
returns a :class:`RunResult`, which is likewise plain picklable data so
results can cross process boundaries (see :mod:`repro.parallel`).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, fields, replace
from typing import Any, Mapping

import numpy as np

from repro.baselines import (
    DflDdsTrainer,
    DpTrainer,
    LocalOnlyTrainer,
    ProxSkipTrainer,
    RsuLTrainer,
    ScoTrainer,
    equal_compression_trainer,
    mean_aggregation_trainer,
    no_prioritization_trainer,
)
from repro.baselines.dfl_dds import DflDdsConfig
from repro.baselines.dp import DpConfig
from repro.baselines.proxskip import ProxSkipConfig
from repro.baselines.rsul import RsuLConfig
from repro.core.lbchat import LbChatConfig, LbChatTrainer
from repro.core.node import NodeConfig, VehicleNode
from repro.core.trainer_base import TrainerBase, TrainerConfig
from repro.engine.metrics import TimeSeriesRecorder
from repro.engine.random import spawn_rng
from repro.experiments.configs import ExperimentScale
from repro.nn import clone_model, make_driving_model
from repro.sim.dataset import DrivingDataset, collect_fleet_datasets
from repro.sim.evaluate import DrivingCondition, EvalConfig, success_rate
from repro.sim.map import TownMap
from repro.sim.traces import MobilityTraces, simulate_traces
from repro.sim.world import World

__all__ = [
    "ExperimentContext",
    "RunSpec",
    "RunResult",
    "METHOD_NAMES",
    "build_context",
    "register_context",
    "make_nodes",
    "make_config",
    "make_trainer",
    "prepare_trainer",
    "run_method",
    "online_evaluate",
]

METHOD_NAMES = (
    "Local",
    "ProxSkip",
    "RSU-L",
    "DFL-DDS",
    "DP",
    "LbChat",
    "SCO",
    "LbChat (equal comp.)",
    "LbChat (avg. agg.)",
    "LbChat (no priority)",
)


@dataclass
class ExperimentContext:
    """Method-independent world artifacts shared by all runs."""

    scale: ExperimentScale
    town: TownMap
    datasets: dict[str, DrivingDataset]
    validation: DrivingDataset
    traces: MobilityTraces


@dataclass(frozen=True)
class RunSpec:
    """Picklable description of one (method, seed, scale, wireless) run.

    A spec is self-contained: a worker process that receives one can
    rebuild the context from ``scale`` and reproduce the run exactly —
    every RNG stream is re-derived from ``(seed, name)`` inside the run,
    so execution order across jobs never changes results.

    ``overrides`` sets trainer-config fields by name (validated against
    the method's config class via :func:`make_config`); ``use_cache``
    lets workers resolve the context through the on-disk cache instead
    of rebuilding it.

    ``checkpoint_every`` opts the run into barrier checkpointing (see
    :mod:`repro.checkpoint`): state is snapshotted every that many
    virtual seconds and a crashed/retried run resumes from the newest
    snapshot.  RNG streams are re-derived at every barrier, so the
    cadence is part of the run's identity — a checkpointed run is a
    *different* (equally valid) run than a non-checkpointed one.
    ``checkpoint_dir`` only says where snapshots live and does not
    affect results.
    """

    method: str
    scale: ExperimentScale
    wireless: bool = True
    seed: int = 1
    coreset_size: int | None = None
    coreset_strategy: str | None = None
    overrides: Mapping[str, Any] = field(default_factory=dict)
    use_cache: bool = False
    checkpoint_every: float | None = None
    checkpoint_dir: str | None = None

    def __post_init__(self):
        if self.method not in METHOD_NAMES:
            raise ValueError(
                f"unknown method {self.method!r}; choose from {METHOD_NAMES}"
            )
        if self.checkpoint_every is not None and not self.checkpoint_every > 0:
            raise ValueError(
                f"checkpoint_every must be positive: {self.checkpoint_every}"
            )
        object.__setattr__(self, "overrides", dict(self.overrides))

    @classmethod
    def for_context(cls, context: ExperimentContext, method: str, **kwargs) -> "RunSpec":
        """A spec targeting an already-built context's scale."""
        return cls(method=method, scale=context.scale, **kwargs)

    @property
    def label(self) -> str:
        """Short human-readable job label (logs, telemetry, progress)."""
        loss = "w" if self.wireless else "w/o"
        return f"{self.method} @ {self.scale.name} seed={self.seed} ({loss} loss)"


@dataclass
class RunResult:
    """Output of one method's collaborative-training run.

    Plain data plus the trained nodes: everything downstream consumers
    need (curves, rates, counters, deployable models) without the live
    trainer, so results pickle cleanly across process boundaries.  On
    the serial path ``trainer`` still exposes the full trainer for
    inspection; it is dropped on pickle (simulator generators cannot
    cross processes).
    """

    method: str
    seed: int
    wireless: bool
    duration: float
    loss_recorder: TimeSeriesRecorder
    receive_attempted: int
    receive_completed: int
    counters: dict[str, float]
    nodes: list[VehicleNode]
    spec: RunSpec | None = None
    trainer: TrainerBase | None = None

    @classmethod
    def from_trainer(
        cls, spec: RunSpec, trainer: TrainerBase, nodes: list[VehicleNode]
    ) -> "RunResult":
        """Capture a finished trainer's measurable outputs."""
        return cls(
            method=spec.method,
            seed=spec.seed,
            wireless=trainer.config.wireless_loss,
            duration=trainer.config.duration,
            loss_recorder=trainer.loss_curve,
            receive_attempted=trainer.receive_rate.attempted,
            receive_completed=trainer.receive_rate.completed,
            counters=dict(trainer.counters.as_dict()),
            nodes=nodes,
            spec=spec,
            trainer=trainer,
        )

    def __getstate__(self):
        state = self.__dict__.copy()
        state["trainer"] = None  # simulator generators are not picklable
        return state

    @property
    def receive_rate(self) -> float:
        """The run's §IV-C model-receive completion rate."""
        return (
            self.receive_completed / self.receive_attempted
            if self.receive_attempted
            else 0.0
        )

    def loss_curve(self, n_points: int = 21) -> tuple[np.ndarray, np.ndarray]:
        """(grid, mean fleet validation loss) over the run."""
        grid = np.linspace(0.0, self.duration, n_points)
        return grid, self.loss_recorder.mean_curve(grid)

    def final_loss(self) -> float:
        """Mean of each vehicle's final recorded loss."""
        return self.loss_recorder.final_mean()


_context_cache: dict[str, ExperimentContext] = {}


def build_context(scale: ExperimentScale) -> ExperimentContext:
    """Collect datasets and traces for a scale (memoized per process)."""
    if scale.name in _context_cache:
        return _context_cache[scale.name]
    world = World(scale.world)
    raw = collect_fleet_datasets(
        world, scale.collect_duration, scale.bev, n_waypoints=scale.n_waypoints
    )
    validation = DrivingDataset()
    datasets: dict[str, DrivingDataset] = {}
    stride = scale.validation_stride
    for vid, dataset in sorted(raw.items()):
        n = len(dataset)
        validation.absorb_from(dataset.subset(range(0, n, stride)))
        datasets[vid] = dataset.subset([i for i in range(n) if i % stride])
    traces = simulate_traces(scale.world, scale.trace_duration)
    context = ExperimentContext(
        scale=scale, town=world.town, datasets=datasets, validation=validation, traces=traces
    )
    _context_cache[scale.name] = context
    return context


def register_context(context: ExperimentContext) -> None:
    """Adopt an externally built context into the per-process memo.

    Lets contexts loaded from the disk cache (or built by hand) be found
    by code that resolves contexts through :func:`build_context` — e.g.
    the serial path of :func:`repro.parallel.run_specs`.
    """
    _context_cache[context.scale.name] = context


def make_nodes(context: ExperimentContext, seed: int = 1) -> list[VehicleNode]:
    """Fresh nodes with identical model initializations (§II-A)."""
    scale = context.scale
    node_config = NodeConfig(
        coreset_size=scale.coreset_size,
        batch_size=scale.batch_size,
        learning_rate=scale.learning_rate,
        penalty=scale.penalty,
        loss_cache_budget=scale.loss_cache_budget,
    )
    nodes = []
    # All vehicles share one deterministic initialization (fixed model
    # seed), so draw the weights once and clone bit-identical copies —
    # the trainer's fleet engine then re-homes them into one bank.
    template = None
    for vid, dataset in sorted(context.datasets.items()):
        if template is None:
            template = make_driving_model(
                context.scale.bev.shape,
                scale.n_waypoints,
                scale.hidden,
                seed=scale.model_seed,
            )
            model = template
        else:
            model = clone_model(template)
        # Each node gets a *copy* of its dataset: trainers mutate them.
        local = dataset.copy()
        nodes.append(
            VehicleNode(vid, model, local, node_config, spawn_rng(seed, f"node-{vid}"))
        )
    return nodes


#: Trainer-config class per method name (ablations share LbChatConfig).
_CONFIG_CLASSES: dict[str, type[TrainerConfig]] = {
    "Local": TrainerConfig,
    "ProxSkip": ProxSkipConfig,
    "RSU-L": RsuLConfig,
    "DFL-DDS": DflDdsConfig,
    "DP": DpConfig,
    "LbChat": LbChatConfig,
    "SCO": LbChatConfig,
    "LbChat (equal comp.)": LbChatConfig,
    "LbChat (avg. agg.)": LbChatConfig,
    "LbChat (no priority)": LbChatConfig,
}

#: Trainer factory per method name: (nodes, traces, validation, config).
_TRAINER_FACTORIES = {
    "Local": LocalOnlyTrainer,
    "ProxSkip": ProxSkipTrainer,
    "RSU-L": RsuLTrainer,
    "DFL-DDS": DflDdsTrainer,
    "DP": DpTrainer,
    "LbChat": LbChatTrainer,
    "SCO": ScoTrainer,
    "LbChat (equal comp.)": equal_compression_trainer,
    "LbChat (avg. agg.)": mean_aggregation_trainer,
    "LbChat (no priority)": no_prioritization_trainer,
}


def make_config(method: str, **overrides) -> TrainerConfig:
    """Build a method's trainer config without importing its class.

    Callers tweak one field via ``make_config("DP", lambda_c=0.2)``
    instead of importing the per-baseline ``*Config`` classes.  Unknown
    fields raise :class:`AttributeError` naming the offending key.
    """
    cls = _CONFIG_CLASSES.get(method)
    if cls is None:
        raise ValueError(f"unknown method {method!r}; choose from {METHOD_NAMES}")
    valid = {f.name for f in fields(cls)}
    unknown = sorted(set(overrides) - valid)
    if unknown:
        raise AttributeError(
            f"{method} config ({cls.__name__}) has no field(s) {unknown}"
        )
    return cls(**overrides)


def _base_trainer_kwargs(scale: ExperimentScale, wireless: bool, seed: int) -> dict:
    return dict(
        duration=scale.train_duration,
        train_interval=scale.train_interval,
        record_interval=scale.record_interval,
        wireless_loss=wireless,
        seed=seed,
        chat_log_budget=scale.chat_log_budget,
    )


def make_trainer(
    method: str,
    nodes: list[VehicleNode],
    context: ExperimentContext,
    wireless: bool = True,
    seed: int = 1,
    overrides: Mapping[str, Any] | None = None,
) -> TrainerBase:
    """Instantiate any method by its paper name.

    ``overrides`` sets trainer-config fields (validated by
    :func:`make_config`) on top of the scale's base parameters.
    """
    scale = context.scale
    kwargs = _base_trainer_kwargs(scale, wireless, seed)
    kwargs.update(overrides or {})
    if method == "RSU-L" and "rsu_range" not in kwargs:
        # RSU radio range scaled to the map so that, like in the paper's
        # 1 km world, vehicles regularly leave RSU coverage.
        kwargs["rsu_range"] = min(500.0, scale.world.map_size * 0.4)
    config = make_config(method, **kwargs)
    factory = _TRAINER_FACTORIES[method]
    return factory(nodes, context.traces, context.validation, config)


def run_method(context: ExperimentContext, spec, /, **legacy_kwargs) -> RunResult:
    """Train one spec on the shared context and return its results.

    The canonical form is ``run_method(context, spec)`` with a
    :class:`RunSpec`.  Passing a method name plus keyword arguments
    (``wireless``, ``seed``, ``coreset_size``, ``coreset_strategy``,
    ``trainer_overrides``) still works but is deprecated — it is mapped
    onto a spec internally.
    """
    if not isinstance(spec, RunSpec):
        warnings.warn(
            "run_method(context, method, **kwargs) is deprecated; build a "
            "RunSpec and call run_method(context, spec)",
            DeprecationWarning,
            stacklevel=2,
        )
        spec = RunSpec.for_context(
            context,
            spec,
            wireless=legacy_kwargs.pop("wireless", True),
            seed=legacy_kwargs.pop("seed", 1),
            coreset_size=legacy_kwargs.pop("coreset_size", None),
            coreset_strategy=legacy_kwargs.pop("coreset_strategy", None),
            overrides=legacy_kwargs.pop("trainer_overrides", None) or {},
        )
        if legacy_kwargs:
            raise TypeError(f"unknown run_method arguments {sorted(legacy_kwargs)}")
    elif legacy_kwargs:
        raise TypeError("run_method(context, spec) takes no extra keyword arguments")

    if spec.checkpoint_every is not None:
        from repro.checkpoint.resume import run_with_checkpoints

        return run_with_checkpoints(context, spec)

    nodes, trainer = prepare_trainer(context, spec)
    trainer.run()
    return RunResult.from_trainer(spec, trainer, nodes)


def prepare_trainer(
    context: ExperimentContext, spec: RunSpec
) -> tuple[list[VehicleNode], TrainerBase]:
    """Build the (nodes, trainer) pair a spec describes, ready to run.

    Split out of :func:`run_method` so the checkpoint subsystem can
    build the identical trainer and then restore a snapshot into it
    before running.
    """
    nodes = make_nodes(context, seed=spec.seed)
    node_overrides = {}
    if spec.coreset_size is not None:
        node_overrides["coreset_size"] = spec.coreset_size
    if spec.coreset_strategy is not None:
        node_overrides["coreset_strategy"] = spec.coreset_strategy
    if node_overrides:
        for node in nodes:
            node.config = replace(node.config, **node_overrides)
            node.refresh_coreset()
    trainer = make_trainer(
        spec.method,
        nodes,
        context,
        wireless=spec.wireless,
        seed=spec.seed,
        overrides=spec.overrides,
    )
    return nodes, trainer


def select_eval_nodes(result: RunResult, context: ExperimentContext) -> list[VehicleNode]:
    """The vehicles whose models get deployed: the fleet's median.

    Fully decentralized methods leave mild quality variance across the
    fleet; the paper deploys "the trained model" on a testing autopilot,
    which we read as a *typical* vehicle.  Ranking by validation loss
    and taking the middle ``eval_models`` nodes measures exactly that
    (server-based methods are unaffected — their models are identical).
    """
    k = context.scale.eval_models
    ranked = sorted(
        result.nodes,
        key=lambda node: node.evaluate(context.validation, with_penalty=False),
    )
    start = max((len(ranked) - k) // 2, 0)
    return ranked[start : start + k]


def online_evaluate(
    result: RunResult,
    context: ExperimentContext,
    conditions: list[DrivingCondition] | None = None,
    seed: int = 0,
) -> dict[str, float]:
    """Deploy trained models on test routes; mean success rate (%) per condition.

    Evaluates the fleet-median models (see :func:`select_eval_nodes`)
    and averages their success rates.
    """
    scale = context.scale
    conditions = conditions or list(DrivingCondition)
    config = EvalConfig(
        bev_spec=scale.bev,
        n_waypoints=scale.n_waypoints,
        normal_cars=scale.eval_normal_cars,
        normal_pedestrians=scale.eval_normal_pedestrians,
    )
    out: dict[str, list[float]] = {cond.value: [] for cond in conditions}
    for node in select_eval_nodes(result, context):
        for cond in conditions:
            rate = success_rate(
                node.model, context.town, cond, scale.eval_trials, config, seed=seed
            )
            out[cond.value].append(100.0 * rate)
    return {key: float(np.mean(values)) for key, values in out.items()}
