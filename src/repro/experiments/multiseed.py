"""Multi-seed experiment aggregation.

Single-seed tables are noisy at ci scale (8-16 driving trials per
cell).  These helpers repeat a run across seeds and aggregate curves
and scalars into mean ± std summaries, plus a Welch t-test for "is
method A really better than method B here?" — the statistical rigor a
reproduction's claims should rest on when compute allows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from repro.experiments.runner import ExperimentContext, RunSpec, register_context
from repro.parallel import run_specs

__all__ = ["SeedSummary", "run_seeds", "compare_methods", "aggregate_tables"]


@dataclass
class SeedSummary:
    """Aggregated outcomes of one method across seeds."""

    method: str
    seeds: list[int]
    grid: np.ndarray
    curves: np.ndarray  # (n_seeds, n_points)
    receive_rates: np.ndarray  # (n_seeds,)

    @property
    def mean_curve(self) -> np.ndarray:
        """Mean loss curve across seeds."""
        return self.curves.mean(axis=0)

    @property
    def std_curve(self) -> np.ndarray:
        """Per-point std across seeds (zeros for one seed)."""
        return self.curves.std(axis=0, ddof=1) if len(self.seeds) > 1 else np.zeros_like(
            self.mean_curve
        )

    @property
    def final_losses(self) -> np.ndarray:
        """Final loss of each seed's curve."""
        return self.curves[:, -1]

    def describe(self) -> str:
        """One-line human summary (mean ± std, receive rate)."""
        final = self.final_losses
        rate = self.receive_rates.mean()
        return (
            f"{self.method}: final loss {final.mean():.3f} ± {final.std(ddof=1) if len(final) > 1 else 0.0:.3f} "
            f"(n={len(self.seeds)}), receive rate {100 * rate:.1f}%"
        )


def run_seeds(
    context: ExperimentContext,
    method: str,
    seeds: list[int],
    wireless: bool = True,
    n_points: int = 21,
    jobs: int = 1,
    coreset_size: int | None = None,
    coreset_strategy: str | None = None,
    overrides: dict | None = None,
) -> SeedSummary:
    """Run one method across several seeds and stack the loss curves.

    One :class:`RunSpec` is built per seed and executed through
    :func:`repro.parallel.run_specs` — ``jobs > 1`` fans the seeds out
    to worker processes with bit-identical results and ordering.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    register_context(context)  # serial path / forked workers reuse it
    specs = [
        RunSpec.for_context(
            context,
            method,
            wireless=wireless,
            seed=seed,
            coreset_size=coreset_size,
            coreset_strategy=coreset_strategy,
            overrides=dict(overrides or {}),
        )
        for seed in seeds
    ]
    results = run_specs(specs, jobs=jobs)
    curves, rates = [], []
    grid = None
    for seed, result in zip(seeds, results):
        seed_grid, curve = result.loss_curve(n_points)
        if grid is None:
            grid = seed_grid
        elif not np.array_equal(seed_grid, grid):
            raise ValueError(
                f"seed {seed} produced a different time grid than seed "
                f"{seeds[0]} (durations {seed_grid[-1]} vs {grid[-1]}, "
                f"{len(seed_grid)} vs {len(grid)} points); seeds of one "
                "summary must share duration and n_points"
            )
        curves.append(curve)
        rates.append(result.receive_rate)
    return SeedSummary(
        method=method,
        seeds=list(seeds),
        grid=grid,
        curves=np.stack(curves),
        receive_rates=np.asarray(rates),
    )


def compare_methods(a: SeedSummary, b: SeedSummary) -> dict[str, float]:
    """Welch t-test on final losses: is A's final loss lower than B's?

    Returns the means, the difference, and the one-sided p-value for
    ``mean(A) < mean(B)``.  With a single seed the p-value is NaN.
    """
    mean_a = float(a.final_losses.mean())
    mean_b = float(b.final_losses.mean())
    if len(a.seeds) < 2 or len(b.seeds) < 2:
        p_value = float("nan")
    else:
        t_stat, p_two_sided = stats.ttest_ind(
            a.final_losses, b.final_losses, equal_var=False
        )
        p_value = p_two_sided / 2 if t_stat < 0 else 1.0 - p_two_sided / 2
    return {
        "mean_a": mean_a,
        "mean_b": mean_b,
        "difference": mean_a - mean_b,
        "p_value_a_less_than_b": float(p_value),
    }


def aggregate_tables(tables: list[dict[str, dict[str, float]]]) -> dict[str, dict[str, tuple[float, float]]]:
    """Combine per-seed success tables into (mean, std) cells.

    Each input is ``{condition: {column: value}}``; all must share the
    same keys.
    """
    if not tables:
        raise ValueError("need at least one table")
    out: dict[str, dict[str, tuple[float, float]]] = {}
    for condition in tables[0]:
        out[condition] = {}
        for column in tables[0][condition]:
            values = np.array([table[condition][column] for table in tables])
            std = float(values.std(ddof=1)) if len(values) > 1 else 0.0
            out[condition][column] = (float(values.mean()), std)
    return out
