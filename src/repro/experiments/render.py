"""Plain-text rendering of results in the paper's table shapes."""

from __future__ import annotations

import numpy as np

__all__ = ["render_table", "render_curves"]


def render_table(
    title: str,
    row_labels: list[str],
    col_labels: list[str],
    values: dict[str, dict[str, float]],
    fmt: str = "{:.0f}",
) -> str:
    """Render ``values[row][col]`` as an aligned text table.

    Missing cells render as '-'.
    """
    header = ["Task"] + list(col_labels)
    rows = [header]
    for row in row_labels:
        cells = [row]
        for col in col_labels:
            value = values.get(row, {}).get(col)
            cells.append("-" if value is None else fmt.format(value))
        rows.append(cells)
    widths = [max(len(r[c]) for r in rows) for c in range(len(header))]
    lines = [title, "=" * len(title)]
    for idx, cells in enumerate(rows):
        line = "  ".join(cell.ljust(widths[c]) for c, cell in enumerate(cells))
        lines.append(line.rstrip())
        if idx == 0:
            lines.append("-" * len(line))
    return "\n".join(lines)


def render_curves(
    title: str,
    grid: np.ndarray,
    curves: dict[str, np.ndarray],
    n_points: int = 11,
) -> str:
    """Render loss-vs-time series as aligned text columns (a "figure")."""
    idx = np.linspace(0, len(grid) - 1, n_points).astype(int)
    lines = [title, "=" * len(title)]
    name_width = max(len(name) for name in curves) if curves else 4
    time_cells = "  ".join(f"{grid[i]:7.0f}" for i in idx)
    lines.append(f"{'t(s)'.ljust(name_width)}  {time_cells}")
    lines.append("-" * len(lines[-1]))
    for name, curve in curves.items():
        cells = "  ".join(f"{curve[i]:7.3f}" for i in idx)
        lines.append(f"{name.ljust(name_width)}  {cells}")
    return "\n".join(lines)
