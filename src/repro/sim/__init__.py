"""A 2-D driving world standing in for CARLA.

The world provides everything the paper's experiments consume from the
simulator:

* a town road network (:mod:`repro.sim.map`) on a ~1 km x 1 km area with
  town and rural parts,
* expert autopilot vehicles that drive routes safely
  (:mod:`repro.sim.autopilot`) and background traffic — roaming cars and
  pedestrians (:mod:`repro.sim.traffic`),
* bird's-eye-view rasterization (:mod:`repro.sim.bev`),
* frame datasets of (BEV, command, waypoints) for imitation learning
  (:mod:`repro.sim.dataset`),
* closed-loop online evaluation by driving-success rate
  (:mod:`repro.sim.evaluate`), and
* mobility traces for the communication simulation
  (:mod:`repro.sim.traces`).
"""

from repro.sim.map import TownMap
from repro.sim.router import RoutePlan, plan_route, random_route
from repro.sim.kinematics import VehicleState, advance
from repro.sim.spatial import SpatialGrid
from repro.sim.bev import BevSpec, render_bev, render_fleet_bev
from repro.sim.world import World, WorldConfig
from repro.sim.dataset import DrivingDataset, Frame, collect_fleet_datasets
from repro.sim.evaluate import DrivingCondition, evaluate_model, success_rate
from repro.sim.traces import MobilityTraces, simulate_traces

__all__ = [
    "TownMap",
    "RoutePlan",
    "plan_route",
    "random_route",
    "VehicleState",
    "advance",
    "SpatialGrid",
    "BevSpec",
    "render_bev",
    "render_fleet_bev",
    "World",
    "WorldConfig",
    "Frame",
    "DrivingDataset",
    "collect_fleet_datasets",
    "DrivingCondition",
    "evaluate_model",
    "success_rate",
    "MobilityTraces",
    "simulate_traces",
]
