"""Planar geometry helpers (vectorized where it matters)."""

from __future__ import annotations

import numpy as np

__all__ = [
    "wrap_angle",
    "to_vehicle_frame",
    "to_vehicle_frame_fleet",
    "to_world_frame",
    "point_segment_distance",
    "polyline_lengths",
    "resample_polyline",
]


def wrap_angle(theta: float | np.ndarray) -> float | np.ndarray:
    """Wrap angle(s) to (-pi, pi]."""
    return np.arctan2(np.sin(theta), np.cos(theta))


def to_vehicle_frame(
    points: np.ndarray, position: np.ndarray, heading: float
) -> np.ndarray:
    """Transform world points into a vehicle frame.

    The vehicle frame has +x pointing along the heading and +y to the
    vehicle's left.  ``points`` is ``(..., 2)``.
    """
    points = np.asarray(points, dtype=float)
    cos_h, sin_h = np.cos(heading), np.sin(heading)
    shifted = points - np.asarray(position, dtype=float)
    x = shifted[..., 0] * cos_h + shifted[..., 1] * sin_h
    y = -shifted[..., 0] * sin_h + shifted[..., 1] * cos_h
    return np.stack([x, y], axis=-1)


def to_vehicle_frame_fleet(
    points: np.ndarray, positions: np.ndarray, headings: np.ndarray
) -> np.ndarray:
    """:func:`to_vehicle_frame` for a fleet of frames at once.

    ``points`` is ``(V, n, 2)`` — per-frame point sets — with frame
    origins ``positions`` ``(V, 2)`` and ``headings`` ``(V,)``.  The
    arithmetic broadcasts the per-vehicle version elementwise, so each
    ``out[v]`` is bit-identical to
    ``to_vehicle_frame(points[v], positions[v], headings[v])``.
    """
    points = np.asarray(points, dtype=float)
    cos_h = np.cos(headings)[:, None]
    sin_h = np.sin(headings)[:, None]
    shifted = points - np.asarray(positions, dtype=float)[:, None, :]
    x = shifted[..., 0] * cos_h + shifted[..., 1] * sin_h
    y = -shifted[..., 0] * sin_h + shifted[..., 1] * cos_h
    return np.stack([x, y], axis=-1)


def to_world_frame(points: np.ndarray, position: np.ndarray, heading: float) -> np.ndarray:
    """Inverse of :func:`to_vehicle_frame`."""
    points = np.asarray(points, dtype=float)
    cos_h, sin_h = np.cos(heading), np.sin(heading)
    x = points[..., 0] * cos_h - points[..., 1] * sin_h
    y = points[..., 0] * sin_h + points[..., 1] * cos_h
    return np.stack([x, y], axis=-1) + np.asarray(position, dtype=float)


def point_segment_distance(
    points: np.ndarray, seg_a: np.ndarray, seg_b: np.ndarray
) -> np.ndarray:
    """Distance from each point to the segment ``seg_a -> seg_b``.

    ``points`` is ``(n, 2)``; returns ``(n,)``.
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    a = np.asarray(seg_a, dtype=float)
    b = np.asarray(seg_b, dtype=float)
    ab = b - a
    denom = float(ab @ ab)
    if denom == 0.0:
        return np.linalg.norm(points - a, axis=1)
    t = np.clip(((points - a) @ ab) / denom, 0.0, 1.0)
    closest = a + t[:, None] * ab
    return np.linalg.norm(points - closest, axis=1)


def polyline_lengths(polyline: np.ndarray) -> np.ndarray:
    """Cumulative arc length at each vertex of a polyline (starts at 0)."""
    polyline = np.asarray(polyline, dtype=float)
    seg = np.linalg.norm(np.diff(polyline, axis=0), axis=1)
    return np.concatenate([[0.0], np.cumsum(seg)])


def resample_polyline(polyline: np.ndarray, spacing: float) -> np.ndarray:
    """Resample a polyline to (approximately) uniform ``spacing``.

    The first and last vertices are always kept.
    """
    if spacing <= 0:
        raise ValueError(f"spacing must be positive: {spacing}")
    polyline = np.asarray(polyline, dtype=float)
    if len(polyline) < 2:
        return polyline.copy()
    lengths = polyline_lengths(polyline)
    total = lengths[-1]
    if total == 0:
        return polyline[:1].copy()
    n_samples = max(int(np.ceil(total / spacing)) + 1, 2)
    targets = np.linspace(0.0, total, n_samples)
    xs = np.interp(targets, lengths, polyline[:, 0])
    ys = np.interp(targets, lengths, polyline[:, 1])
    return np.stack([xs, ys], axis=1)
