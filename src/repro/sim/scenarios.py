"""Scripted stress-test scenarios beyond the paper's benchmark ladder.

The CARLA ladder measures end-to-end navigation; these scenarios probe
*specific* competencies of a driving model in isolation, each with its
own pass criterion:

* **pedestrian_crossing** — a pedestrian steps onto the road ahead of
  the cruising vehicle; pass = stop or pass without contact.
* **lead_vehicle_stop** — a slower car ahead brakes to a halt; pass =
  no rear-end collision and progress resumes after it clears.
* **empty_sprint** — a straight empty road; pass = reach the end at a
  reasonable average speed (catches over-conservative models).

Each scenario builds a minimal deterministic world, so failures point
at model behaviour rather than traffic randomness.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.autopilot import ModelPilot
from repro.sim.bev import BevSpec, render_bev
from repro.sim.kinematics import VehicleState, advance
from repro.sim.map import TownMap
from repro.sim.router import RoutePlan
from repro.sim.world import CAR_RADIUS, PED_RADIUS

__all__ = ["ScenarioResult", "pedestrian_crossing", "lead_vehicle_stop", "empty_sprint", "SCENARIOS"]


@dataclass
class ScenarioResult:
    """Outcome of one scripted scenario run."""
    passed: bool
    reason: str
    time: float
    min_gap: float  # closest approach to the hazard, meters (inf if none)


def _straight_route(town: TownMap) -> RoutePlan:
    """The longest straight edge in the town, as a route."""
    best, best_len = None, 0.0
    for a, b in town.graph.edges():
        pa, pb = town.node_position(a), town.node_position(b)
        length = float(np.linalg.norm(pb - pa))
        if length > best_len:
            best, best_len = (pa, pb), length
    return RoutePlan(np.stack(best))


def _drive(
    town: TownMap,
    model,
    bev_spec: BevSpec,
    plan: RoutePlan,
    hazard_step,
    duration: float,
    hazard_radius: float,
) -> ScenarioResult:
    start = plan.point_at(0.0)
    state = VehicleState(start[0], start[1], plan.heading_at(0.0), 8.0)
    hazard_pos, cars, peds = hazard_step(0.0, state)

    def bev_fn(current_state, current_plan):
        return render_bev(town, bev_spec, current_state, current_plan, cars, peds)

    pilot = ModelPilot(model, plan, bev_fn)
    time, dt = 0.0, 0.1
    min_gap = np.inf
    while time < duration:
        hazard_pos, cars, peds = hazard_step(time, state)
        turn_rate, accel = pilot.control(state, dt)
        state = advance(state, turn_rate, accel, dt)
        time += dt
        if hazard_pos is not None:
            gap = float(np.linalg.norm(state.position - hazard_pos))
            min_gap = min(min_gap, gap)
            if gap < hazard_radius:
                return ScenarioResult(False, "collision", time, min_gap)
        if not town.is_on_road(state.position, margin=3.0):
            return ScenarioResult(False, "off_road", time, min_gap)
        if pilot.done():
            return ScenarioResult(True, "success", time, min_gap)
    return ScenarioResult(False, "timeout", time, min_gap)


def pedestrian_crossing(
    town: TownMap, model, bev_spec: BevSpec, duration: float = 90.0
) -> ScenarioResult:
    """A pedestrian crosses 45 m ahead of the vehicle's start."""
    plan = _straight_route(town)
    ahead = plan.point_at(45.0)
    heading = plan.heading_at(45.0)
    normal = np.array([-np.sin(heading), np.cos(heading)])
    ped_speed = 1.0

    def hazard_step(time, state):
        # Walks across the road, then stays on the far sidewalk.
        offset = min(-5.0 + ped_speed * time, 5.0)
        pos = ahead + normal * offset
        return pos, np.zeros((0, 2)), pos[None, :]

    return _drive(
        town, model, bev_spec, plan, hazard_step, duration, CAR_RADIUS + PED_RADIUS
    )


def lead_vehicle_stop(
    town: TownMap, model, bev_spec: BevSpec, duration: float = 90.0
) -> ScenarioResult:
    """A lead car 25 m ahead drives slowly, stops, then pulls away."""
    plan = _straight_route(town)

    def lead_progress(time):
        if time < 6.0:
            return 25.0 + 4.0 * time  # slow lead
        if time < 14.0:
            return 25.0 + 24.0  # stopped
        return 25.0 + 24.0 + 10.0 * (time - 14.0)  # clears off

    def hazard_step(time, state):
        pos = plan.lane_point_at(lead_progress(time), 2.0)
        return pos, pos[None, :], np.zeros((0, 2))

    return _drive(town, model, bev_spec, plan, hazard_step, duration, 2 * CAR_RADIUS)


def empty_sprint(
    town: TownMap, model, bev_spec: BevSpec, duration: float = 60.0
) -> ScenarioResult:
    """Straight empty road; also fails on over-conservative crawling."""
    plan = _straight_route(town)

    def hazard_step(time, state):
        return None, np.zeros((0, 2)), np.zeros((0, 2))

    result = _drive(town, model, bev_spec, plan, hazard_step, duration, 0.0)
    if result.passed:
        average_speed = plan.total_length / result.time
        if average_speed < 3.0:
            return ScenarioResult(False, "too_slow", result.time, np.inf)
    return result


SCENARIOS = {
    "pedestrian_crossing": pedestrian_crossing,
    "lead_vehicle_stop": lead_vehicle_stop,
    "empty_sprint": empty_sprint,
}
