"""Mobility traces for the communication simulation.

The paper runs the fleet for an additional 120 hours collecting vehicle
locations at 2 fps, then replays those traces to drive encounters during
collaborative training.  :func:`simulate_traces` does the same on our
world (background traffic disabled — only the learning fleet's positions
matter for encounters), and :class:`MobilityTraces` answers the queries
the communication layer needs: positions, pairwise distances, and
look-ahead routes for contact-duration estimation (§III-A).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.world import World, WorldConfig

__all__ = ["MobilityTraces", "simulate_traces", "SWEPT_MIN_VEHICLES"]

#: Fleet size from which ``neighbors`` answers out of a swept
#: :class:`~repro.net.sweep.ContactIndex` instead of a brute-force
#: distance scan.  Both paths return bit-identical neighbor sets; the
#: index amortizes one grid sweep over the whole trace, which only pays
#: off once per-query O(n) scans dominate.
SWEPT_MIN_VEHICLES = 48


@dataclass
class MobilityTraces:
    """Positions of every fleet vehicle over time.

    ``positions[k, i]`` is vehicle ``i``'s (x, y) at ``times[k]``.
    """

    vehicle_ids: list[str]
    times: np.ndarray  # (n_steps,)
    positions: np.ndarray  # (n_steps, n_vehicles, 2)

    @property
    def duration(self) -> float:
        """Time of the final trace sample."""
        return float(self.times[-1]) if len(self.times) else 0.0

    @property
    def interval(self) -> float:
        """Sampling interval between trace rows."""
        if len(self.times) < 2:
            raise ValueError("trace needs at least two samples")
        return float(self.times[1] - self.times[0])

    def index_at(self, time: float) -> int:
        """Index of the last sample at or before ``time``."""
        idx = int(np.searchsorted(self.times, time + 1e-9) - 1)
        return max(min(idx, len(self.times) - 1), 0)

    def position(self, vehicle: int | str, time: float) -> np.ndarray:
        """A vehicle's position at (or just before) ``time``."""
        i = vehicle if isinstance(vehicle, int) else self.vehicle_ids.index(vehicle)
        return self.positions[self.index_at(time), i]

    def distance(self, a: int, b: int, time: float) -> float:
        """Distance between two vehicles at ``time``."""
        k = self.index_at(time)
        return float(np.linalg.norm(self.positions[k, a] - self.positions[k, b]))

    def pairwise_distances(self, time: float) -> np.ndarray:
        """Full (n, n) distance matrix at ``time``."""
        pos = self.positions[self.index_at(time)]
        diff = pos[:, None, :] - pos[None, :, :]
        return np.linalg.norm(diff, axis=-1)

    def contact_index(self, radius: float):
        """Swept :class:`~repro.net.sweep.ContactIndex` for ``radius``.

        Built on first use (one spatial-grid sweep over the whole
        trace) and memoized per radius; ``getattr``-guarded so traces
        unpickled from older context caches grow the memo lazily.
        """
        from repro.net.sweep import ContactIndex, sweep_encounters

        cache = getattr(self, "_contact_indexes", None)
        if cache is None:
            cache = {}
            self._contact_indexes = cache
        index = cache.get(float(radius))
        if index is None:
            index = ContactIndex(sweep_encounters(self.positions, radius))
            cache[float(radius)] = index
        return index

    def neighbors(self, vehicle: int, time: float, radius: float) -> list[int]:
        """Other vehicles within ``radius`` of ``vehicle`` at ``time``.

        Large fleets answer from the swept contact index; small fleets
        keep the direct scan.  Both return the identical neighbor list
        (same distance expression, ascending order, ties included).
        """
        if self.positions.shape[1] >= SWEPT_MIN_VEHICLES:
            return self.contact_index(radius).neighbors_at(vehicle, self.index_at(time))
        pos = self.positions[self.index_at(time)]
        dist = np.linalg.norm(pos - pos[vehicle], axis=1)
        return [int(i) for i in np.where(dist <= radius)[0] if i != vehicle]

    def save(self, path) -> None:
        """Persist the traces as a compressed .npz archive."""
        from pathlib import Path

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        np.savez_compressed(
            path,
            vehicle_ids=np.asarray(self.vehicle_ids),
            times=self.times,
            positions=self.positions,
        )

    @classmethod
    def load(cls, path) -> "MobilityTraces":
        """Load traces written by :meth:`save`."""
        with np.load(path) as data:
            return cls(
                vehicle_ids=[str(v) for v in data["vehicle_ids"]],
                times=data["times"],
                positions=data["positions"],
            )

    def future_positions(self, vehicle: int, time: float, horizon: float) -> np.ndarray:
        """Trace samples of ``vehicle`` in ``[time, time + horizon]``.

        This is the "route for the next few minutes" vehicles share in
        §III-A; in the simulation we read it off the trace, exactly as a
        navigation service would supply it.
        """
        k0 = self.index_at(time)
        k1 = self.index_at(time + horizon)
        return self.positions[k0 : k1 + 1, vehicle]


def simulate_traces(
    config: WorldConfig,
    duration: float,
    sample_interval: float = 0.5,
) -> MobilityTraces:
    """Generate fleet mobility traces by running the world.

    Background traffic is disabled for speed — it does not participate
    in V2V communication — while the fleet still renews random routes
    endlessly, producing realistic intermittent encounter patterns.
    """
    trace_config = WorldConfig(
        map_size=config.map_size,
        grid_n=config.grid_n,
        n_vehicles=config.n_vehicles,
        n_background_cars=0,
        n_pedestrians=0,
        dt=config.dt,
        snapshot_interval=sample_interval,
        min_route_length=config.min_route_length,
        seed=config.seed + 1,  # decorrelated from data collection
        rural=config.rural,
        # Map structure must match the collection world (districts stay
        # off in trace worlds — only geometry shapes the encounters).
        city_blocks=config.city_blocks,
        shard_stepping=config.shard_stepping,
    )
    world = World(trace_config)
    world.run(duration)
    vehicle_ids = [v.vehicle_id for v in world.vehicles]
    times = np.array([snap.time for snap in world.snapshots])
    positions = np.array(
        [
            [snap.vehicle_states[vid].position for vid in vehicle_ids]
            for snap in world.snapshots
        ]
    )
    return MobilityTraces(vehicle_ids=vehicle_ids, times=times, positions=positions)
