"""The simulated world: expert fleet + background traffic + collisions."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.random import spawn_rng
from repro.sim.autopilot import ExpertAutopilot
from repro.sim.kinematics import VehicleState, advance
from repro.sim.map import TownMap
from repro.sim.router import RoutePlan, random_route
from repro.sim.spatial import ShardedSpatialGrid, SpatialGrid
from repro.sim.traffic import TrafficManager, road_obstacles

__all__ = ["WorldConfig", "ExpertVehicle", "World", "CAR_RADIUS", "PED_RADIUS"]

CAR_RADIUS = 1.2  # collision circle of a car (~half its width + margin)
PED_RADIUS = 0.4  # collision circle of a pedestrian


@dataclass
class WorldConfig:
    """World construction parameters (paper defaults, see §IV-A)."""

    map_size: float = 1000.0
    grid_n: int = 6
    n_vehicles: int = 32
    n_background_cars: int = 50
    n_pedestrians: int = 250
    dt: float = 0.1
    snapshot_interval: float = 0.5  # 2 fps, as the paper collects data
    min_route_length: float = 250.0
    seed: int = 0
    rural: bool = True
    #: Fleet data heterogeneity: vehicles get a home district (map
    #: quadrant) their route endpoints stay in.  1 disables districts.
    n_districts: int = 1
    #: Fraction of trips whose destination leaves the home district
    #: (commutes); keeps every road geometry — in particular straight
    #: runs through intersections — represented in everyone's data.
    out_of_district_prob: float = 0.25
    #: Skew pedestrian spawn density across districts (heterogeneous
    #: hazard exposure); requires n_districts > 1.
    ped_district_skew: bool = False
    #: Map structure: 1 keeps the paper's single town grid; s > 1
    #: builds an s x s city of district grids joined by arterial links
    #: (pairs naturally with n_districts = s²).
    city_blocks: int = 1
    #: Step the world on a sharded spatial grid (sparse coarse tiles
    #: with lazily-built dense sub-grids).  Query results are
    #: bit-identical to the dense SpatialGrid; turn on for city-sized
    #: maps where the dense cell table would be huge.
    shard_stepping: bool = False


@dataclass
class ExpertVehicle:
    """One expert autopilot of the learning fleet."""

    vehicle_id: str
    state: VehicleState
    pilot: ExpertAutopilot
    rng: np.random.Generator
    district: int = 0

    @property
    def plan(self) -> RoutePlan:
        """The vehicle's current route plan."""
        return self.pilot.plan


@dataclass
class Snapshot:
    """Everything recorded about the world at one frame time."""

    time: float
    vehicle_states: dict[str, VehicleState]
    vehicle_commands: dict[str, int]
    vehicle_plans: dict[str, RoutePlan]
    bg_car_positions: np.ndarray  # background cars only
    pedestrian_positions: np.ndarray

    def __post_init__(self):
        self._fleet_cache: tuple[list[str], np.ndarray] | None = None

    def _fleet(self) -> tuple[list[str], np.ndarray]:
        """Vehicle ids and their stacked (n, 2) positions, built once."""
        if self._fleet_cache is None:
            ids = list(self.vehicle_states)
            stack = (
                np.array([self.vehicle_states[v].position for v in ids])
                if ids
                else np.zeros((0, 2))
            )
            self._fleet_cache = (ids, stack)
        return self._fleet_cache

    def other_car_positions(self, vehicle_id: str) -> np.ndarray:
        """All cars except ``vehicle_id``: remaining fleet + background."""
        ids, fleet = self._fleet()
        try:
            k = ids.index(vehicle_id)
        except ValueError:
            return np.vstack([fleet, self.bg_car_positions])
        return np.vstack([fleet[:k], fleet[k + 1 :], self.bg_car_positions])


class World:
    """Steps the full simulation and records snapshots at frame rate."""

    def __init__(self, config: WorldConfig, town: TownMap | None = None):
        self.config = config
        self.town = town or TownMap(
            size=config.map_size,
            grid_n=config.grid_n,
            rural=config.rural,
            seed=config.seed,
            districts_per_side=config.city_blocks,
        )
        self.time = 0.0
        self._since_snapshot = 0.0
        self.snapshots: list[Snapshot] = []
        self.vehicles: list[ExpertVehicle] = []
        for i in range(config.n_vehicles):
            rng = spawn_rng(config.seed, f"vehicle-{i}")
            district = i % config.n_districts
            plan = random_route(
                self.town,
                rng,
                min_length=config.min_route_length,
                nodes=self._route_endpoints(district, rng),
            )
            start = plan.point_at(0.0)
            self.vehicles.append(
                ExpertVehicle(
                    vehicle_id=f"v{i}",
                    state=VehicleState(start[0], start[1], plan.heading_at(0.0), 0.0),
                    pilot=ExpertAutopilot(plan),
                    rng=rng,
                    district=district,
                )
            )
        self.traffic = TrafficManager(
            self.town,
            config.n_background_cars,
            config.n_pedestrians,
            spawn_rng(config.seed, "traffic"),
            ped_district_weights=self._ped_district_weights(),
            n_districts=config.n_districts,
        )
        # Struct-of-arrays mirror of the fleet state, updated in place
        # as each vehicle advances (vehicles only move inside step()).
        self._fleet_pos = np.array(
            [v.state.position for v in self.vehicles], dtype=float
        ).reshape(-1, 2)
        self._fleet_speed = np.array(
            [v.state.speed for v in self.vehicles], dtype=float
        )
        self._fleet_pos_view = self._fleet_pos.view()
        self._fleet_pos_view.flags.writeable = False

    def _district_nodes(self, district: int) -> list | None:
        if self.config.n_districts <= 1:
            return None
        return self.town.district_nodes(district, self.config.n_districts)

    def _route_endpoints(self, district: int, rng: np.random.Generator) -> list | None:
        """Endpoint candidates for one trip: usually the home district,
        sometimes anywhere (a commute out of the district)."""
        if self.config.n_districts <= 1:
            return None
        if rng.uniform() < self.config.out_of_district_prob:
            return None
        return self.town.district_nodes(district, self.config.n_districts)

    def _ped_district_weights(self) -> np.ndarray | None:
        """Skewed pedestrian density: some districts are crowded, some
        nearly empty, so hazard exposure differs across the fleet."""
        if not self.config.ped_district_skew or self.config.n_districts <= 1:
            return None
        k = self.config.n_districts
        weights = np.linspace(0.2, 2.0, k)
        return weights / weights.sum()

    # -- stepping ----------------------------------------------------------

    def vehicle_positions(self) -> np.ndarray:
        """(n, 2) array of the fleet's current positions (read-only view)."""
        return self._fleet_pos_view

    def all_car_positions(self) -> np.ndarray:
        """Expert fleet plus background cars, stacked."""
        return np.vstack([self.vehicle_positions(), self.traffic.car_positions()])

    def step(self) -> None:
        """Advance the world by one control timestep."""
        dt = self.config.dt
        # Pre-step positions of every agent: the vstack copies out of
        # the live mirrors, so all vehicles this tick react to where the
        # others *were*, even after earlier vehicles have advanced.
        everything = np.vstack(
            [
                self._fleet_pos,
                self.traffic.car_positions(),
                self.traffic.pedestrian_positions(),
            ]
        )
        grid = (
            ShardedSpatialGrid(everything)
            if self.config.shard_stepping
            else SpatialGrid(everything)
        )
        # One batched road-occupancy lookup shared by the whole tick
        # (the per-row results equal each query's own candidate lookup).
        on_road = self.town.occupancy_at(everything)
        for i, vehicle in enumerate(self.vehicles):
            if vehicle.pilot.done():
                self._assign_new_route(vehicle)
            near = road_obstacles(
                self.town,
                everything,
                everything[i],
                grid=grid,
                exclude=i,
                on_road=on_road,
            )
            turn_rate, accel = vehicle.pilot.control(vehicle.state, near, dt=dt)
            vehicle.state = advance(vehicle.state, turn_rate, accel, dt)
            self._fleet_pos[i, 0] = vehicle.state.x
            self._fleet_pos[i, 1] = vehicle.state.y
            self._fleet_speed[i] = vehicle.state.speed
        n = len(self.vehicles)
        self.traffic.step(everything[:n], dt, extra_speeds=self._fleet_speed)
        self.time += dt
        self._since_snapshot += dt
        if self._since_snapshot >= self.config.snapshot_interval - 1e-9:
            self._take_snapshot()
            self._since_snapshot = 0.0

    def run(self, duration: float) -> None:
        """Step the world for ``duration`` simulated seconds."""
        steps = int(round(duration / self.config.dt))
        for _ in range(steps):
            self.step()

    def _assign_new_route(self, vehicle: ExpertVehicle) -> None:
        node = self.town.nearest_node(vehicle.state.position)
        plan = random_route(
            self.town,
            vehicle.rng,
            min_length=self.config.min_route_length,
            start=node,
            nodes=self._route_endpoints(vehicle.district, vehicle.rng),
        )
        vehicle.pilot = ExpertAutopilot(plan)

    def _take_snapshot(self) -> None:
        self.snapshots.append(
            Snapshot(
                time=self.time,
                vehicle_states={v.vehicle_id: v.state.copy() for v in self.vehicles},
                vehicle_commands={v.vehicle_id: v.pilot.command() for v in self.vehicles},
                vehicle_plans={v.vehicle_id: v.plan for v in self.vehicles},
                # Snapshots outlive the tick; copy out of the live views.
                bg_car_positions=self.traffic.car_positions().copy(),
                pedestrian_positions=self.traffic.pedestrian_positions().copy(),
            )
        )

    # -- collision queries ---------------------------------------------------

    def check_collision(
        self, position: np.ndarray, exclude_index: int | None = None
    ) -> bool:
        """Whether a car at ``position`` overlaps any other agent.

        ``exclude_index`` skips one expert vehicle (the queried one).
        """
        fleet = self.vehicle_positions()
        if exclude_index is not None and len(fleet):
            fleet = np.delete(fleet, exclude_index, axis=0)
        cars = np.vstack([fleet, self.traffic.car_positions()])
        if len(cars):
            if (np.linalg.norm(cars - position, axis=1) < 2 * CAR_RADIUS).any():
                return True
        peds = self.traffic.pedestrian_positions()
        if len(peds):
            if (np.linalg.norm(peds - position, axis=1) < CAR_RADIUS + PED_RADIUS).any():
                return True
        return False
