"""The simulated world: expert fleet + background traffic + collisions."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.random import spawn_rng
from repro.sim.autopilot import ExpertAutopilot
from repro.sim.kinematics import VehicleState, advance
from repro.sim.map import TownMap
from repro.sim.router import RoutePlan, random_route
from repro.sim.traffic import TrafficManager, road_obstacles

__all__ = ["WorldConfig", "ExpertVehicle", "World", "CAR_RADIUS", "PED_RADIUS"]

CAR_RADIUS = 1.2  # collision circle of a car (~half its width + margin)
PED_RADIUS = 0.4  # collision circle of a pedestrian


@dataclass
class WorldConfig:
    """World construction parameters (paper defaults, see §IV-A)."""

    map_size: float = 1000.0
    grid_n: int = 6
    n_vehicles: int = 32
    n_background_cars: int = 50
    n_pedestrians: int = 250
    dt: float = 0.1
    snapshot_interval: float = 0.5  # 2 fps, as the paper collects data
    min_route_length: float = 250.0
    seed: int = 0
    rural: bool = True
    #: Fleet data heterogeneity: vehicles get a home district (map
    #: quadrant) their route endpoints stay in.  1 disables districts.
    n_districts: int = 1
    #: Fraction of trips whose destination leaves the home district
    #: (commutes); keeps every road geometry — in particular straight
    #: runs through intersections — represented in everyone's data.
    out_of_district_prob: float = 0.25
    #: Skew pedestrian spawn density across districts (heterogeneous
    #: hazard exposure); requires n_districts > 1.
    ped_district_skew: bool = False


@dataclass
class ExpertVehicle:
    """One expert autopilot of the learning fleet."""

    vehicle_id: str
    state: VehicleState
    pilot: ExpertAutopilot
    rng: np.random.Generator
    district: int = 0

    @property
    def plan(self) -> RoutePlan:
        """The vehicle's current route plan."""
        return self.pilot.plan


@dataclass
class Snapshot:
    """Everything recorded about the world at one frame time."""

    time: float
    vehicle_states: dict[str, VehicleState]
    vehicle_commands: dict[str, int]
    vehicle_plans: dict[str, RoutePlan]
    bg_car_positions: np.ndarray  # background cars only
    pedestrian_positions: np.ndarray

    def other_car_positions(self, vehicle_id: str) -> np.ndarray:
        """All cars except ``vehicle_id``: remaining fleet + background."""
        fleet = [
            s.position for vid, s in self.vehicle_states.items() if vid != vehicle_id
        ]
        fleet_arr = np.array(fleet) if fleet else np.zeros((0, 2))
        return np.vstack([fleet_arr, self.bg_car_positions])


class World:
    """Steps the full simulation and records snapshots at frame rate."""

    def __init__(self, config: WorldConfig, town: TownMap | None = None):
        self.config = config
        self.town = town or TownMap(
            size=config.map_size,
            grid_n=config.grid_n,
            rural=config.rural,
            seed=config.seed,
        )
        self.time = 0.0
        self._since_snapshot = 0.0
        self.snapshots: list[Snapshot] = []
        self.vehicles: list[ExpertVehicle] = []
        for i in range(config.n_vehicles):
            rng = spawn_rng(config.seed, f"vehicle-{i}")
            district = i % config.n_districts
            plan = random_route(
                self.town,
                rng,
                min_length=config.min_route_length,
                nodes=self._route_endpoints(district, rng),
            )
            start = plan.point_at(0.0)
            self.vehicles.append(
                ExpertVehicle(
                    vehicle_id=f"v{i}",
                    state=VehicleState(start[0], start[1], plan.heading_at(0.0), 0.0),
                    pilot=ExpertAutopilot(plan),
                    rng=rng,
                    district=district,
                )
            )
        self.traffic = TrafficManager(
            self.town,
            config.n_background_cars,
            config.n_pedestrians,
            spawn_rng(config.seed, "traffic"),
            ped_district_weights=self._ped_district_weights(),
            n_districts=config.n_districts,
        )

    def _district_nodes(self, district: int) -> list | None:
        if self.config.n_districts <= 1:
            return None
        return self.town.district_nodes(district, self.config.n_districts)

    def _route_endpoints(self, district: int, rng: np.random.Generator) -> list | None:
        """Endpoint candidates for one trip: usually the home district,
        sometimes anywhere (a commute out of the district)."""
        if self.config.n_districts <= 1:
            return None
        if rng.uniform() < self.config.out_of_district_prob:
            return None
        return self.town.district_nodes(district, self.config.n_districts)

    def _ped_district_weights(self) -> np.ndarray | None:
        """Skewed pedestrian density: some districts are crowded, some
        nearly empty, so hazard exposure differs across the fleet."""
        if not self.config.ped_district_skew or self.config.n_districts <= 1:
            return None
        k = self.config.n_districts
        weights = np.linspace(0.2, 2.0, k)
        return weights / weights.sum()

    # -- stepping ----------------------------------------------------------

    def vehicle_positions(self) -> np.ndarray:
        """(n, 2) array of the fleet's current positions."""
        if not self.vehicles:
            return np.zeros((0, 2))
        return np.array([v.state.position for v in self.vehicles])

    def all_car_positions(self) -> np.ndarray:
        """Expert fleet plus background cars, stacked."""
        return np.vstack([self.vehicle_positions(), self.traffic.car_positions()])

    def step(self) -> None:
        """Advance the world by one control timestep."""
        dt = self.config.dt
        fleet_pos = self.vehicle_positions()
        bg_cars = self.traffic.car_positions()
        peds = self.traffic.pedestrian_positions()
        everything = np.vstack([fleet_pos, bg_cars, peds])
        for i, vehicle in enumerate(self.vehicles):
            if vehicle.pilot.done():
                self._assign_new_route(vehicle)
            mask = np.ones(len(everything), dtype=bool)
            mask[i] = False
            near = road_obstacles(self.town, everything[mask], vehicle.state.position)
            turn_rate, accel = vehicle.pilot.control(vehicle.state, near, dt=dt)
            vehicle.state = advance(vehicle.state, turn_rate, accel, dt)
        fleet_speeds = np.array([v.state.speed for v in self.vehicles])
        self.traffic.step(fleet_pos, dt, extra_speeds=fleet_speeds)
        self.time += dt
        self._since_snapshot += dt
        if self._since_snapshot >= self.config.snapshot_interval - 1e-9:
            self._take_snapshot()
            self._since_snapshot = 0.0

    def run(self, duration: float) -> None:
        """Step the world for ``duration`` simulated seconds."""
        steps = int(round(duration / self.config.dt))
        for _ in range(steps):
            self.step()

    def _assign_new_route(self, vehicle: ExpertVehicle) -> None:
        node = self.town.nearest_node(vehicle.state.position)
        plan = random_route(
            self.town,
            vehicle.rng,
            min_length=self.config.min_route_length,
            start=node,
            nodes=self._route_endpoints(vehicle.district, vehicle.rng),
        )
        vehicle.pilot = ExpertAutopilot(plan)

    def _take_snapshot(self) -> None:
        self.snapshots.append(
            Snapshot(
                time=self.time,
                vehicle_states={v.vehicle_id: v.state.copy() for v in self.vehicles},
                vehicle_commands={v.vehicle_id: v.pilot.command() for v in self.vehicles},
                vehicle_plans={v.vehicle_id: v.plan for v in self.vehicles},
                bg_car_positions=self.traffic.car_positions(),
                pedestrian_positions=self.traffic.pedestrian_positions(),
            )
        )

    # -- collision queries ---------------------------------------------------

    def check_collision(
        self, position: np.ndarray, exclude_index: int | None = None
    ) -> bool:
        """Whether a car at ``position`` overlaps any other agent.

        ``exclude_index`` skips one expert vehicle (the queried one).
        """
        fleet = self.vehicle_positions()
        if exclude_index is not None and len(fleet):
            fleet = np.delete(fleet, exclude_index, axis=0)
        cars = np.vstack([fleet, self.traffic.car_positions()])
        if len(cars):
            if (np.linalg.norm(cars - position, axis=1) < 2 * CAR_RADIUS).any():
                return True
        peds = self.traffic.pedestrian_positions()
        if len(peds):
            if (np.linalg.norm(peds - position, axis=1) < CAR_RADIUS + PED_RADIUS).any():
                return True
        return False
