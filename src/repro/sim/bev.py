"""Bird's-eye-view rasterization.

The BEV is the model input the paper uses: a sparse, privacy-friendly
top-down tensor of the vehicle's surroundings.  Channels:

0. road        — paved surface occupancy
1. route       — the navigation route to follow
2. vehicles    — other cars
3. pedestrians — pedestrians
4. speed       — ego speed as a constant plane (normalized)

The grid is in the vehicle frame with +x (forward) spanning rows and +y
(left) spanning columns; the ego sits near the rear edge so most of the
field of view is ahead, matching the paper's "front view ... in a
top-down view".
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.sim.autopilot import CRUISE_SPEED
from repro.sim.geometry import to_vehicle_frame, to_world_frame
from repro.sim.kinematics import VehicleState
from repro.sim.map import TownMap
from repro.sim.router import RoutePlan

__all__ = ["BevSpec", "render_bev", "render_fleet_bev"]

N_BEV_CHANNELS = 5


@lru_cache(maxsize=64)
def _cell_centers(spec: BevSpec) -> np.ndarray:
    extent = spec.grid * spec.cell
    x0 = -spec.back_fraction * extent
    xs = x0 + (np.arange(spec.grid) + 0.5) * spec.cell
    ys = -extent / 2.0 + (np.arange(spec.grid) + 0.5) * spec.cell
    xx, yy = np.meshgrid(xs, ys, indexing="ij")
    centers = np.stack([xx.ravel(), yy.ravel()], axis=1)
    centers.flags.writeable = False
    return centers


@dataclass(frozen=True)
class BevSpec:
    """Geometry of the BEV grid.

    ``grid`` cells per side, each ``cell`` meters; the ego is positioned
    ``back_fraction`` of the way up from the grid's rear edge.
    """

    grid: int = 16
    cell: float = 2.5
    back_fraction: float = 0.2

    @property
    def shape(self) -> tuple[int, int, int]:
        """The `(channels, grid, grid)` tensor shape."""
        return (N_BEV_CHANNELS, self.grid, self.grid)

    def cell_centers(self) -> np.ndarray:
        """Vehicle-frame centers of all cells, shape ``(grid*grid, 2)``.

        Row i runs along +x (forward), column j along +y (left).  The
        array is cached per spec and read-only; copy before mutating.
        """
        return _cell_centers(self)

    def local_to_index(self, local_points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Map vehicle-frame points to (row, col) indices plus a validity mask."""
        extent = self.grid * self.cell
        x0 = -self.back_fraction * extent
        rows = np.floor((local_points[:, 0] - x0) / self.cell).astype(int)
        cols = np.floor((local_points[:, 1] + extent / 2.0) / self.cell).astype(int)
        valid = (rows >= 0) & (rows < self.grid) & (cols >= 0) & (cols < self.grid)
        return np.stack([rows, cols], axis=1), valid


def _route_cells(plan: RoutePlan, cell: float) -> set[tuple[int, int]]:
    """Per-plan cached set of map-grid cells the route passes through."""
    cache = getattr(plan, "_bev_route_cells", None)
    if cache is None or cache[0] != cell:
        cache = (cell, plan.route_cells(cell))
        plan._bev_route_cells = cache  # type: ignore[attr-defined]
    return cache[1]


def _route_mask(plan: RoutePlan, cell: float) -> tuple[np.ndarray, np.ndarray]:
    """Per-plan cached dense boolean grid of the route's map cells.

    Returns ``(lo, mask)`` where ``mask[i - lo[0], j - lo[1]]`` is True
    exactly when cell ``(i, j)`` is in ``plan.route_cells(cell)``; any
    index outside the mask is off-route.  A dense lookup replaces the
    per-cell Python set-membership loop with one fancy-index gather.
    """
    cache = getattr(plan, "_bev_route_mask", None)
    if cache is None or cache[0] != cell:
        cells = np.array(sorted(_route_cells(plan, cell)), dtype=np.int64)
        lo = cells.min(axis=0)
        shape = cells.max(axis=0) - lo + 1
        mask = np.zeros(shape, dtype=bool)
        mask[cells[:, 0] - lo[0], cells[:, 1] - lo[1]] = True
        cache = (cell, lo, mask)
        plan._bev_route_mask = cache  # type: ignore[attr-defined]
    return cache[1], cache[2]


def _route_lookup(plan: RoutePlan, cell: float, idx: np.ndarray) -> np.ndarray:
    """Boolean route membership for integer map-cell indices ``(..., 2)``."""
    lo, mask = _route_mask(plan, cell)
    shifted = idx - lo
    valid = (
        (shifted[..., 0] >= 0)
        & (shifted[..., 0] < mask.shape[0])
        & (shifted[..., 1] >= 0)
        & (shifted[..., 1] < mask.shape[1])
    )
    on_route = np.zeros(idx.shape[:-1], dtype=bool)
    on_route[valid] = mask[shifted[..., 0][valid], shifted[..., 1][valid]]
    return on_route


def render_bev(
    town: TownMap,
    spec: BevSpec,
    state: VehicleState,
    plan: RoutePlan,
    car_positions: np.ndarray,
    pedestrian_positions: np.ndarray,
) -> np.ndarray:
    """Render the 5-channel BEV tensor for one vehicle.

    ``car_positions`` / ``pedestrian_positions`` are ``(n, 2)`` world
    coordinates of *other* agents (the ego must not be included).
    """
    bev = np.zeros(spec.shape, dtype=np.float32)
    centers_local = spec.cell_centers()
    centers_world = to_world_frame(centers_local, state.position, state.heading)

    # Channel 0: road occupancy via the map's static grid.
    road = town.occupancy_at(centers_world).reshape(spec.grid, spec.grid)
    bev[0] = road

    # Channel 1: route cells via the plan's dense cell mask.
    idx = np.floor(centers_world / town.cell).astype(int)
    on_route = _route_lookup(plan, town.cell, idx)
    bev[1] = on_route.reshape(spec.grid, spec.grid)

    # Channels 2-3: dynamic agents.
    for channel, positions in ((2, car_positions), (3, pedestrian_positions)):
        positions = np.asarray(positions, dtype=float).reshape(-1, 2)
        if len(positions) == 0:
            continue
        local = to_vehicle_frame(positions, state.position, state.heading)
        rc, valid = spec.local_to_index(local)
        rc = rc[valid]
        bev[channel, rc[:, 0], rc[:, 1]] = 1.0

    # Channel 4: normalized ego speed plane.
    bev[4] = np.clip(state.speed / CRUISE_SPEED, 0.0, 1.5)
    return bev


def render_fleet_bev(
    town: TownMap,
    spec: BevSpec,
    states: list[VehicleState],
    plans: list[RoutePlan],
    fleet_positions: np.ndarray,
    bg_car_positions: np.ndarray,
    pedestrian_positions: np.ndarray,
) -> np.ndarray:
    """Render one snapshot's BEVs for the whole fleet, batched.

    ``fleet_positions`` must be the ``(V, 2)`` stacked positions of the
    same vehicles as ``states``/``plans``; each vehicle's car channel
    sees the other V-1 fleet members plus ``bg_car_positions``.  Every
    channel is computed with the same elementwise arithmetic as
    :func:`render_bev` (broadcast across the fleet axis), so the result
    is bit-identical to rendering each vehicle separately.

    Returns a ``(V, channels, grid, grid)`` float32 tensor.
    """
    n_fleet = len(states)
    bev = np.zeros((n_fleet,) + spec.shape, dtype=np.float32)
    if n_fleet == 0:
        return bev
    pos = np.asarray(fleet_positions, dtype=float).reshape(n_fleet, 2)
    headings = np.array([s.heading for s in states])
    cos_h = np.cos(headings)[:, None]
    sin_h = np.sin(headings)[:, None]

    # All vehicles' cell centers in world frame: to_world_frame with the
    # scalar cos/sin broadcast over a (V, 1) column instead.
    centers_local = spec.cell_centers()
    clx = centers_local[:, 0][None, :]
    cly = centers_local[:, 1][None, :]
    wx = clx * cos_h - cly * sin_h
    wy = clx * sin_h + cly * cos_h
    centers_world = np.stack([wx, wy], axis=-1) + pos[:, None, :]

    # Channel 0: road occupancy, one lookup for all V*grid*grid centers.
    occ = town.occupancy_at(centers_world.reshape(-1, 2))
    bev[:, 0] = occ.reshape(n_fleet, spec.grid, spec.grid)

    # Channel 1: per-plan dense route masks.
    idx = np.floor(centers_world / town.cell).astype(int)
    for v, plan in enumerate(plans):
        bev[v, 1] = _route_lookup(plan, town.cell, idx[v]).reshape(
            spec.grid, spec.grid
        )

    # Channels 2-3: dynamic agents, all egos at once.  The fleet itself
    # doubles as each ego's "other cars" with the ego's own column
    # masked out.
    extent = spec.grid * spec.cell
    x0 = -spec.back_fraction * extent
    for channel, points, self_exclude in (
        (2, np.vstack([pos, np.asarray(bg_car_positions, dtype=float).reshape(-1, 2)]), True),
        (3, np.asarray(pedestrian_positions, dtype=float).reshape(-1, 2), False),
    ):
        if len(points) == 0:
            continue
        # to_vehicle_frame, broadcast to (V, n_points).
        sx = points[None, :, 0] - pos[:, 0][:, None]
        sy = points[None, :, 1] - pos[:, 1][:, None]
        lx = sx * cos_h + sy * sin_h
        ly = -sx * sin_h + sy * cos_h
        rows = np.floor((lx - x0) / spec.cell).astype(int)
        cols = np.floor((ly + extent / 2.0) / spec.cell).astype(int)
        valid = (rows >= 0) & (rows < spec.grid) & (cols >= 0) & (cols < spec.grid)
        if self_exclude:
            diag = np.arange(n_fleet)
            valid[diag, diag] = False
        vi, pi = np.nonzero(valid)
        bev[vi, channel, rows[vi, pi], cols[vi, pi]] = 1.0

    # Channel 4: normalized ego speed planes.
    speeds = np.array([s.speed for s in states])
    bev[:, 4] = np.clip(speeds / CRUISE_SPEED, 0.0, 1.5)[:, None, None]
    return bev
