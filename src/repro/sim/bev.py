"""Bird's-eye-view rasterization.

The BEV is the model input the paper uses: a sparse, privacy-friendly
top-down tensor of the vehicle's surroundings.  Channels:

0. road        — paved surface occupancy
1. route       — the navigation route to follow
2. vehicles    — other cars
3. pedestrians — pedestrians
4. speed       — ego speed as a constant plane (normalized)

The grid is in the vehicle frame with +x (forward) spanning rows and +y
(left) spanning columns; the ego sits near the rear edge so most of the
field of view is ahead, matching the paper's "front view ... in a
top-down view".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.autopilot import CRUISE_SPEED
from repro.sim.geometry import to_world_frame
from repro.sim.kinematics import VehicleState
from repro.sim.map import TownMap
from repro.sim.router import RoutePlan

__all__ = ["BevSpec", "render_bev"]

N_BEV_CHANNELS = 5


@dataclass(frozen=True)
class BevSpec:
    """Geometry of the BEV grid.

    ``grid`` cells per side, each ``cell`` meters; the ego is positioned
    ``back_fraction`` of the way up from the grid's rear edge.
    """

    grid: int = 16
    cell: float = 2.5
    back_fraction: float = 0.2

    @property
    def shape(self) -> tuple[int, int, int]:
        """The `(channels, grid, grid)` tensor shape."""
        return (N_BEV_CHANNELS, self.grid, self.grid)

    def cell_centers(self) -> np.ndarray:
        """Vehicle-frame centers of all cells, shape ``(grid*grid, 2)``.

        Row i runs along +x (forward), column j along +y (left).
        """
        extent = self.grid * self.cell
        x0 = -self.back_fraction * extent
        xs = x0 + (np.arange(self.grid) + 0.5) * self.cell
        ys = -extent / 2.0 + (np.arange(self.grid) + 0.5) * self.cell
        xx, yy = np.meshgrid(xs, ys, indexing="ij")
        return np.stack([xx.ravel(), yy.ravel()], axis=1)

    def local_to_index(self, local_points: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Map vehicle-frame points to (row, col) indices plus a validity mask."""
        extent = self.grid * self.cell
        x0 = -self.back_fraction * extent
        rows = np.floor((local_points[:, 0] - x0) / self.cell).astype(int)
        cols = np.floor((local_points[:, 1] + extent / 2.0) / self.cell).astype(int)
        valid = (rows >= 0) & (rows < self.grid) & (cols >= 0) & (cols < self.grid)
        return np.stack([rows, cols], axis=1), valid


def _route_cells(plan: RoutePlan, cell: float) -> set[tuple[int, int]]:
    """Per-plan cached set of map-grid cells the route passes through."""
    cache = getattr(plan, "_bev_route_cells", None)
    if cache is None or cache[0] != cell:
        cache = (cell, plan.route_cells(cell))
        plan._bev_route_cells = cache  # type: ignore[attr-defined]
    return cache[1]


def render_bev(
    town: TownMap,
    spec: BevSpec,
    state: VehicleState,
    plan: RoutePlan,
    car_positions: np.ndarray,
    pedestrian_positions: np.ndarray,
) -> np.ndarray:
    """Render the 5-channel BEV tensor for one vehicle.

    ``car_positions`` / ``pedestrian_positions`` are ``(n, 2)`` world
    coordinates of *other* agents (the ego must not be included).
    """
    bev = np.zeros(spec.shape, dtype=np.float32)
    centers_local = spec.cell_centers()
    centers_world = to_world_frame(centers_local, state.position, state.heading)

    # Channel 0: road occupancy via the map's static grid.
    road = town.occupancy_at(centers_world).reshape(spec.grid, spec.grid)
    bev[0] = road

    # Channel 1: route cells.
    cells = _route_cells(plan, town.cell)
    idx = np.floor(centers_world / town.cell).astype(int)
    on_route = np.fromiter(
        ((int(i), int(j)) in cells for i, j in idx), dtype=bool, count=len(idx)
    )
    bev[1] = on_route.reshape(spec.grid, spec.grid)

    # Channels 2-3: dynamic agents.
    for channel, positions in ((2, car_positions), (3, pedestrian_positions)):
        positions = np.asarray(positions, dtype=float).reshape(-1, 2)
        if len(positions) == 0:
            continue
        from repro.sim.geometry import to_vehicle_frame

        local = to_vehicle_frame(positions, state.position, state.heading)
        rc, valid = spec.local_to_index(local)
        rc = rc[valid]
        bev[channel, rc[:, 0], rc[:, 1]] = 1.0

    # Channel 4: normalized ego speed plane.
    bev[4] = np.clip(state.speed / CRUISE_SPEED, 0.0, 1.5)
    return bev
