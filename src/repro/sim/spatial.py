"""Uniform spatial-hash grid for neighbor queries.

The simulation's per-tick question is "which agents sit within radius
``r`` of point ``p``?", asked once per agent per tick.  Brute force
recomputes all ``n`` distances for each of the ``n`` agents — O(n^2)
per tick, the dominant cost of paper-scale worlds (332 agents).

:class:`SpatialGrid` buckets the agent positions into square cells once
per tick (a single counting sort), after which each query gathers the
buckets overlapping the query disk's bounding square — a *superset* of
the true neighbors, returned as indices sorted in original order.
Callers then apply the **same exact distance test** the brute-force
scan used, on the same float values, in the same index order, so
selected obstacle sets — and therefore entire simulation runs — stay
bit-identical to the O(n^2) path (gated by the hotpath goldens).

The grid is rebuilt from scratch every tick: construction is a handful
of vectorized passes over an ``(n, 2)`` array, far cheaper than even a
single brute-force sweep, and rebuilding sidesteps incremental-update
bookkeeping entirely.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["SpatialGrid", "ShardedSpatialGrid", "DEFAULT_CELL_SIZE"]

#: Default bucket edge length in meters.  Matching the common query
#: radius (``road_obstacles``' 45 m) keeps the gathered window at most
#: 2-3 buckets per axis while buckets stay coarse enough that the
#: per-query Python overhead does not dominate.
DEFAULT_CELL_SIZE = 45.0

#: Refuse to allocate absurdly large bucket tables (a stray agent flung
#: to huge coordinates would otherwise blow up the flat cell index);
#: past this the grid degrades to brute force, which stays correct.
_MAX_CELLS = 1 << 22

_EMPTY = np.zeros(0, dtype=np.intp)


class SpatialGrid:
    """Bucket grid over ``(n, 2)`` points answering radius queries.

    Parameters
    ----------
    positions:
        ``(n, 2)`` float array of point coordinates.  The grid keeps a
        reference (no copy); callers must not mutate it while querying.
    cell_size:
        Bucket edge length.  Queries are cheapest when this is close to
        the typical query radius.
    """

    def __init__(self, positions: np.ndarray, cell_size: float = DEFAULT_CELL_SIZE):
        positions = np.asarray(positions, dtype=float).reshape(-1, 2)
        if cell_size <= 0.0:
            raise ValueError(f"cell_size must be positive: {cell_size}")
        self.positions = positions
        self.cell_size = float(cell_size)
        n = len(positions)
        self._n = n
        self._brute = False
        if n == 0:
            return
        ij = np.floor(positions / self.cell_size).astype(np.int64)
        i0 = int(ij[:, 0].min())
        j0 = int(ij[:, 1].min())
        ni = int(ij[:, 0].max()) - i0 + 1
        nj = int(ij[:, 1].max()) - j0 + 1
        if ni * nj > _MAX_CELLS:
            self._brute = True
            return
        flat = (ij[:, 0] - i0) * nj + (ij[:, 1] - j0)
        self._order = np.argsort(flat, kind="stable")
        counts = np.bincount(flat, minlength=ni * nj)
        self._starts = np.concatenate([[0], np.cumsum(counts)])
        self._i0, self._j0 = i0, j0
        self._ni, self._nj = ni, nj
        # Memo of gathered windows: co-located agents issue the same
        # bucket-window query, so one tick's n queries hit far fewer
        # distinct windows.  Cached arrays are shared — hence read-only.
        self._window_cache: dict[tuple[int, int, int, int], np.ndarray] = {}

    def query(self, center: np.ndarray, radius: float) -> np.ndarray:
        """Indices of a superset of the points within ``radius`` of ``center``.

        Returns every point whose bucket intersects the query disk's
        bounding square, as an ascending index array.  Callers needing
        the exact disk apply their own distance test (see
        :meth:`query_radius`); the superset-then-exact-filter split is
        what keeps grid-backed queries bit-identical to brute force.
        """
        if self._n == 0:
            return _EMPTY
        if self._brute:
            return np.arange(self._n, dtype=np.intp)
        inv = 1.0 / self.cell_size
        cx = float(center[0])
        cy = float(center[1])
        ci0 = max(math.floor((cx - radius) * inv) - self._i0, 0)
        ci1 = min(math.floor((cx + radius) * inv) - self._i0, self._ni - 1)
        cj0 = max(math.floor((cy - radius) * inv) - self._j0, 0)
        cj1 = min(math.floor((cy + radius) * inv) - self._j0, self._nj - 1)
        if ci0 > ci1 or cj0 > cj1:
            return _EMPTY
        key = (ci0, ci1, cj0, cj1)
        cached = self._window_cache.get(key)
        if cached is not None:
            return cached
        starts = self._starts
        order = self._order
        nj = self._nj
        # Bucket ids along one i-row are contiguous in the flat index,
        # so each row of the query window is a single slice.
        chunks = []
        for ci in range(ci0, ci1 + 1):
            base = ci * nj
            s = starts[base + cj0]
            e = starts[base + cj1 + 1]
            if e > s:
                chunks.append(order[s:e])
        if not chunks:
            cand = _EMPTY
        else:
            cand = np.sort(chunks[0] if len(chunks) == 1 else np.concatenate(chunks))
            cand.flags.writeable = False
        self._window_cache[key] = cand
        return cand

    def query_radius(self, center: np.ndarray, radius: float) -> np.ndarray:
        """Indices of exactly the points with ``|p - center| < radius``.

        Ascending order; distances are computed with the same
        ``np.linalg.norm`` expression a brute-force scan would use, so
        the selection matches it bit for bit.
        """
        idx = self.query(center, radius)
        if len(idx) == 0:
            return idx
        d = self.positions[idx] - np.asarray(center, dtype=float)
        dist = np.sqrt(np.add.reduce(d * d, axis=1))
        return idx[dist < radius]


#: Tile edge of the sharded grid, in fine cells.  Queries whose radius
#: fits inside one tile touch at most a 3x3 tile ring.
_TILE_CELLS = 8

#: Sparse tile-key packing offsets (supports |tile index| < 2^20, i.e.
#: maps out to ~380,000 km at the default cell size — effectively any).
_KEY_OFF = 1 << 20
_KEY_MUL = 1 << 21


class ShardedSpatialGrid:
    """Sparse sharded variant of :class:`SpatialGrid` for huge maps.

    :class:`SpatialGrid` allocates its bucket table and window memo
    over the *bounding box* of all points, which grows with the map
    whether or not anyone is there.  This variant hashes points into
    coarse sparse tiles (a dict keyed by tile coordinates, memory
    proportional to *occupied* tiles) and lazily builds one dense
    ``SpatialGrid`` per queried tile over the points of its 3x3 tile
    neighbourhood — empty districts cost nothing, and per-tick work
    stays near-linear in the agent count regardless of map size.

    Queries return ascending global indices and are a superset of the
    true disk, exactly like ``SpatialGrid.query``; after the caller's
    exact distance filter the selected set is bit-identical to both the
    dense grid and brute force.  Queries with ``radius > tile_size``
    (rare) delegate to a lazily-built dense grid, preserving the same
    guarantee.
    """

    def __init__(self, positions: np.ndarray, cell_size: float = DEFAULT_CELL_SIZE):
        positions = np.asarray(positions, dtype=float).reshape(-1, 2)
        if cell_size <= 0.0:
            raise ValueError(f"cell_size must be positive: {cell_size}")
        self.positions = positions
        self.cell_size = float(cell_size)
        self.tile_size = float(cell_size * _TILE_CELLS)
        self._n = len(positions)
        self._tiles: dict[int, np.ndarray] = {}
        #: tile key -> (members, sub-grid) for tiles that have been queried.
        self._subgrids: dict[int, tuple[np.ndarray, SpatialGrid]] = {}
        self._full: SpatialGrid | None = None
        if self._n == 0:
            return
        tij = np.floor(positions / self.tile_size).astype(np.int64)
        keys = (tij[:, 0] + _KEY_OFF) * _KEY_MUL + (tij[:, 1] + _KEY_OFF)
        order = np.argsort(keys, kind="stable")
        sorted_keys = keys[order]
        uniq, starts = np.unique(sorted_keys, return_index=True)
        bounds = np.append(starts, self._n)
        for k, s, e in zip(uniq, bounds[:-1], bounds[1:]):
            # Stable sort by key keeps each tile's members ascending.
            self._tiles[int(k)] = order[s:e]

    def _tile_key(self, ti: int, tj: int) -> int:
        return (ti + _KEY_OFF) * _KEY_MUL + (tj + _KEY_OFF)

    def _subgrid(self, ti: int, tj: int) -> tuple[np.ndarray, SpatialGrid]:
        """Members + dense sub-grid of the 3x3 tile ring around (ti, tj)."""
        key = self._tile_key(ti, tj)
        cached = self._subgrids.get(key)
        if cached is not None:
            return cached
        chunks = [
            members
            for di in (-1, 0, 1)
            for dj in (-1, 0, 1)
            if (members := self._tiles.get(self._tile_key(ti + di, tj + dj)))
            is not None
        ]
        if not chunks:
            members = _EMPTY
        else:
            members = np.sort(np.concatenate(chunks))
        sub = SpatialGrid(self.positions[members], self.cell_size)
        self._subgrids[key] = (members, sub)
        return members, sub

    def _full_grid(self) -> SpatialGrid:
        if self._full is None:
            self._full = SpatialGrid(self.positions, self.cell_size)
        return self._full

    def query(self, center: np.ndarray, radius: float) -> np.ndarray:
        """Ascending superset of the points within ``radius`` of ``center``.

        Same contract as :meth:`SpatialGrid.query`: callers apply their
        own exact distance test over the candidates.
        """
        if self._n == 0:
            return _EMPTY
        if radius > self.tile_size:
            # The 3x3 tile ring no longer covers the disk; fall back to
            # one shared dense grid (still correct, rarely needed).
            return self._full_grid().query(center, radius)
        ti = math.floor(float(center[0]) / self.tile_size)
        tj = math.floor(float(center[1]) / self.tile_size)
        members, sub = self._subgrid(ti, tj)
        if len(members) == 0:
            return _EMPTY
        local = sub.query(center, radius)
        if len(local) == 0:
            return _EMPTY
        # members is ascending, so members[local] (local ascending) is too.
        return members[local]

    def query_radius(self, center: np.ndarray, radius: float) -> np.ndarray:
        """Indices of exactly the points with ``|p - center| < radius``.

        Bit-identical to ``SpatialGrid.query_radius`` (same distance
        expression over the same values, ascending order).
        """
        idx = self.query(center, radius)
        if len(idx) == 0:
            return idx
        d = self.positions[idx] - np.asarray(center, dtype=float)
        dist = np.sqrt(np.add.reduce(d * d, axis=1))
        return idx[dist < radius]
