"""Driving comfort metrics (§IV-D notes them as future evaluation work).

The paper measures only the safety-centric success rate and explicitly
defers comfort; this module supplies the standard comfort measures over
a recorded episode trajectory so the evaluation can be extended:

* longitudinal acceleration / deceleration extremes,
* jerk (rate of change of acceleration) RMS,
* lateral acceleration (v * yaw-rate) extremes,
* speed smoothness (std of speed).

A :func:`comfort_score` folds them into one 0-100 scalar with
conventional comfort thresholds (≈2 m/s² accel, ≈0.9 m/s³ jerk feel
comfortable; beyond ≈5 m/s² / 2 m/s³ is clearly not).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ComfortMetrics", "compute_comfort", "comfort_score"]


@dataclass(frozen=True)
class ComfortMetrics:
    """Aggregates of one trajectory; all SI units."""

    max_acceleration: float
    max_deceleration: float  # positive magnitude
    jerk_rms: float
    max_lateral_acceleration: float
    speed_std: float
    duration: float


def compute_comfort(trajectory: np.ndarray, dt: float) -> ComfortMetrics:
    """Compute comfort metrics from an ``(n, 4)`` trajectory.

    Columns are ``(x, y, heading, speed)`` sampled every ``dt`` seconds
    (what :func:`repro.sim.evaluate.run_episode` records with
    ``record_trajectory=True``).
    """
    trajectory = np.asarray(trajectory, dtype=float)
    if trajectory.ndim != 2 or trajectory.shape[1] != 4:
        raise ValueError(f"trajectory must be (n, 4), got {trajectory.shape}")
    if len(trajectory) < 3:
        raise ValueError("need at least three samples")
    if dt <= 0:
        raise ValueError(f"dt must be positive: {dt}")
    speed = trajectory[:, 3]
    heading = trajectory[:, 2]
    accel = np.diff(speed) / dt
    jerk = np.diff(accel) / dt
    yaw_rate = np.diff(np.unwrap(heading)) / dt
    lateral = np.abs(speed[1:] * yaw_rate)
    return ComfortMetrics(
        max_acceleration=float(accel.max(initial=0.0)),
        max_deceleration=float(-accel.min(initial=0.0)),
        jerk_rms=float(np.sqrt(np.mean(jerk**2))) if len(jerk) else 0.0,
        max_lateral_acceleration=float(lateral.max(initial=0.0)),
        speed_std=float(speed.std()),
        duration=float((len(trajectory) - 1) * dt),
    )


def comfort_score(metrics: ComfortMetrics) -> float:
    """Fold the metrics into a 0-100 comfort score (higher = smoother).

    Each component maps through a soft penalty normalized by its
    comfortable/uncomfortable thresholds; the score is 100 minus the
    mean penalty.
    """

    def penalty(value: float, comfortable: float, harsh: float) -> float:
        if value <= comfortable:
            return 0.0
        if value >= harsh:
            return 1.0
        return (value - comfortable) / (harsh - comfortable)

    penalties = [
        penalty(metrics.max_acceleration, 2.0, 5.0),
        penalty(metrics.max_deceleration, 2.5, 6.0),
        penalty(metrics.jerk_rms, 0.9, 2.5),
        penalty(metrics.max_lateral_acceleration, 1.8, 4.0),
    ]
    return float(100.0 * (1.0 - np.mean(penalties)))
