"""Synthetic mobility models.

The main experiments replay traces from the driving world, but
communication-layer studies often want *controlled* encounter patterns.
These generators produce :class:`~repro.sim.traces.MobilityTraces`
directly, without simulating any driving:

* :func:`platoon_traces` — vehicles travel as a convoy with small
  spacing jitter: contacts are near-permanent (the easiest regime).
* :func:`crossing_flows_traces` — two opposing lanes passing each
  other: every cross-lane contact is brief (the paper's hard regime).
* :func:`random_waypoint_traces` — the classic MANET mobility model on
  a square area: intermittent, unstructured contacts.

All three are deterministic given a seed and sampled at a fixed
interval, so they slot into any trainer in place of world traces.
"""

from __future__ import annotations

import numpy as np

from repro.sim.traces import MobilityTraces

__all__ = ["platoon_traces", "crossing_flows_traces", "random_waypoint_traces"]


def _times(duration: float, interval: float) -> np.ndarray:
    n = int(np.floor(duration / interval)) + 1
    return np.arange(n) * interval


def platoon_traces(
    n_vehicles: int,
    duration: float,
    speed: float = 12.0,
    spacing: float = 30.0,
    jitter: float = 2.0,
    interval: float = 0.5,
    seed: int = 0,
) -> MobilityTraces:
    """A single-file convoy heading +x with mild longitudinal jitter."""
    if n_vehicles < 1:
        raise ValueError("need at least one vehicle")
    rng = np.random.default_rng(seed)
    times = _times(duration, interval)
    positions = np.zeros((len(times), n_vehicles, 2))
    offsets = -spacing * np.arange(n_vehicles)
    for k, t in enumerate(times):
        wobble = rng.normal(0.0, jitter, size=n_vehicles)
        positions[k, :, 0] = speed * t + offsets + wobble
        positions[k, :, 1] = rng.normal(0.0, 0.5, size=n_vehicles)
    return MobilityTraces(
        vehicle_ids=[f"v{i}" for i in range(n_vehicles)],
        times=times,
        positions=positions,
    )


def crossing_flows_traces(
    n_vehicles: int,
    duration: float,
    speed: float = 12.0,
    lane_gap: float = 8.0,
    spacing: float = 120.0,
    interval: float = 0.5,
    seed: int = 0,
) -> MobilityTraces:
    """Two opposing flows: even vehicles head +x, odd head −x.

    Cross-flow pairs close at ``2 * speed``, so their contacts last only
    ``2 * range / (2 * speed)`` seconds — the short-contact regime that
    motivates the paper's Eq. 5 prioritization.
    """
    if n_vehicles < 2:
        raise ValueError("need at least two vehicles for two flows")
    rng = np.random.default_rng(seed)
    times = _times(duration, interval)
    positions = np.zeros((len(times), n_vehicles, 2))
    span = speed * duration + spacing * n_vehicles
    for i in range(n_vehicles):
        eastbound = i % 2 == 0
        start = rng.uniform(0.0, span)
        y = 0.0 if eastbound else lane_gap
        for k, t in enumerate(times):
            if eastbound:
                x = start + speed * t
            else:
                x = span - start - speed * t
            positions[k, i] = (x, y)
    return MobilityTraces(
        vehicle_ids=[f"v{i}" for i in range(n_vehicles)],
        times=times,
        positions=positions,
    )


def random_waypoint_traces(
    n_vehicles: int,
    duration: float,
    area: float = 1000.0,
    speed_range: tuple[float, float] = (6.0, 14.0),
    interval: float = 0.5,
    seed: int = 0,
) -> MobilityTraces:
    """Classic random-waypoint: pick a point, walk there, repeat."""
    if n_vehicles < 1:
        raise ValueError("need at least one vehicle")
    rng = np.random.default_rng(seed)
    times = _times(duration, interval)
    positions = np.zeros((len(times), n_vehicles, 2))
    current = rng.uniform(0.0, area, size=(n_vehicles, 2))
    targets = rng.uniform(0.0, area, size=(n_vehicles, 2))
    speeds = rng.uniform(*speed_range, size=n_vehicles)
    for k in range(len(times)):
        positions[k] = current
        delta = targets - current
        dist = np.linalg.norm(delta, axis=1)
        arrived = dist < speeds * interval
        for i in np.where(arrived)[0]:
            targets[i] = rng.uniform(0.0, area, size=2)
            speeds[i] = rng.uniform(*speed_range)
        delta = targets - current
        dist = np.maximum(np.linalg.norm(delta, axis=1), 1e-9)
        step = np.minimum(speeds * interval, dist)
        current = current + delta / dist[:, None] * step[:, None]
    return MobilityTraces(
        vehicle_ids=[f"v{i}" for i in range(n_vehicles)],
        times=times,
        positions=positions,
    )
