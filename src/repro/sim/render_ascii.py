"""ASCII rendering of the world — quick visual sanity checks.

Renders the road network, fleet vehicles (letters), background cars
(``c``), pedestrians (``.``), and optionally a route (``*``) onto a
character grid.  Used by examples and invaluable when debugging driving
behaviour without a GUI.
"""

from __future__ import annotations

import numpy as np

from repro.sim.map import TownMap
from repro.sim.router import RoutePlan

__all__ = ["render_town", "render_world"]


def _empty_canvas(town: TownMap, width: int) -> tuple[list[list[str]], float]:
    height = width // 2  # terminal cells are ~2x taller than wide
    canvas = [[" "] * width for _ in range(height)]
    return canvas, width


def _to_cell(point: np.ndarray, town: TownMap, width: int) -> tuple[int, int] | None:
    height = width // 2
    col = int(point[0] / town.size * (width - 1))
    # Rows grow downward; map y grows upward.
    row = int((1.0 - point[1] / town.size) * (height - 1))
    if 0 <= row < height and 0 <= col < width:
        return row, col
    return None


def render_town(
    town: TownMap,
    width: int = 72,
    plan: RoutePlan | None = None,
) -> str:
    """The road network (and optionally one route) as ASCII art."""
    canvas, _ = _empty_canvas(town, width)
    # Roads: sample each edge densely.
    for a, b in town.graph.edges():
        pa, pb = town.node_position(a), town.node_position(b)
        n = max(int(np.linalg.norm(pb - pa) / town.size * width * 2), 2)
        for t in np.linspace(0.0, 1.0, n):
            cell = _to_cell(pa + t * (pb - pa), town, width)
            if cell:
                canvas[cell[0]][cell[1]] = "-"
    for node in town.graph:
        cell = _to_cell(town.node_position(node), town, width)
        if cell:
            canvas[cell[0]][cell[1]] = "+"
    if plan is not None:
        for s in np.linspace(0.0, plan.total_length, width * 2):
            cell = _to_cell(plan.point_at(float(s)), town, width)
            if cell:
                canvas[cell[0]][cell[1]] = "*"
    return "\n".join("".join(row) for row in canvas)


def render_world(world, width: int = 72, plan: RoutePlan | None = None) -> str:
    """The current world state over the road map.

    Fleet vehicles render as letters (A, B, C, ...), background cars as
    ``c``, pedestrians as ``.``.
    """
    base = render_town(world.town, width, plan).splitlines()
    canvas = [list(row) for row in base]

    def stamp(point, char):
        cell = _to_cell(np.asarray(point), world.town, width)
        if cell:
            canvas[cell[0]][cell[1]] = char

    for ped in world.traffic.pedestrian_positions():
        stamp(ped, ".")
    for car in world.traffic.car_positions():
        stamp(car, "c")
    for index, vehicle in enumerate(world.vehicles):
        stamp(vehicle.state.position, chr(ord("A") + index % 26))
    header = (
        f"t={world.time:7.1f}s  fleet={len(world.vehicles)}  "
        f"cars={len(world.traffic.cars)}  peds={len(world.traffic.pedestrians)}"
    )
    return header + "\n" + "\n".join("".join(row) for row in canvas)
