"""Driving controllers: the expert autopilot and the model-driven pilot.

The expert mirrors CARLA's built-in autopilot: it uses privileged
information (exact route geometry, exact positions of all other agents)
to drive safely — pure-pursuit steering, speed limits through turns, and
hard braking for obstacles in its path.  Its trajectories are the
imitation targets.

The model pilot drives from the learned :class:`~repro.nn.model.WaypointNet`
alone: every decision interval it renders a BEV, queries the network for
waypoints, and then steers/accelerates to track them.  Driving quality
therefore reflects model quality, which is what the online evaluation
(driving success rate) measures.
"""

from __future__ import annotations

import numpy as np

from repro.sim.geometry import to_vehicle_frame
from repro.sim.kinematics import MAX_TURN_RATE, VehicleState
from repro.sim.router import CMD_FOLLOW, RoutePlan

__all__ = ["ExpertAutopilot", "ModelPilot", "CRUISE_SPEED", "TURN_SPEED"]

CRUISE_SPEED = 12.0  # m/s on open road
TURN_SPEED = 5.5  # m/s approaching/inside turns
LANE_OFFSET = 2.0  # m right of centerline (right-hand traffic)
_STEER_GAIN = 2.2
_SPEED_GAIN = 1.8
_OBSTACLE_LANE_HALF_WIDTH = 2.6
_INTERSECTION_SLOW_DISTANCE = 14.0


class ExpertAutopilot:
    """Privileged rule-based driver following a :class:`RoutePlan`."""

    def __init__(self, plan: RoutePlan, lane_offset: float = LANE_OFFSET):
        self.plan = plan
        self.lane_offset = lane_offset
        self._s = 0.0
        self._stopped_time = 0.0
        self._creep_time_left = 0.0

    @property
    def route_progress(self) -> float:
        """Current arc-length position along the route."""
        return self._s

    def command(self) -> int:
        """The high-level command active at the current route position."""
        return self.plan.command_at(self._s)

    def done(self) -> bool:
        """Whether the route end has been reached."""
        return self.plan.done(self._s)

    def control(
        self, state: VehicleState, obstacles: np.ndarray, dt: float = 0.1
    ) -> tuple[float, float]:
        """Compute (turn_rate, accel) for one step.

        ``obstacles`` is an ``(n, 2)`` array of other agents' positions
        (the privileged information CARLA experts enjoy).
        """
        self._s = self.plan.project(state.position, hint=self._s)
        if state.speed < 0.3:
            self._stopped_time += dt
        else:
            self._stopped_time = 0.0
        # Pure pursuit toward a speed-scaled lookahead point on the
        # right-hand lane line.  The single-point frame transform is
        # inlined (same expressions as ``to_vehicle_frame``) and the
        # scalar clip is a min/max — this runs for every car every tick.
        lookahead = max(5.0, 0.9 * state.speed)
        target = self.plan.lane_point_at(self._s + lookahead, self.lane_offset)
        cos_h, sin_h = np.cos(state.heading), np.sin(state.heading)
        sx = target[0] - state.x
        sy = target[1] - state.y
        local_x = sx * cos_h + sy * sin_h
        local_y = -sx * sin_h + sy * cos_h
        heading_error = float(np.arctan2(local_y, max(local_x, 1e-3)))
        turn_rate = float(
            min(max(_STEER_GAIN * heading_error, -MAX_TURN_RATE), MAX_TURN_RATE)
        )

        near_intersection = (
            self.plan.distance_to_intersection(self._s) < _INTERSECTION_SLOW_DISTANCE
        )
        if near_intersection or self.command() != CMD_FOLLOW:
            target_speed = TURN_SPEED
        else:
            target_speed = CRUISE_SPEED
        # Slow down proportionally to how hard we are turning.
        target_speed *= max(0.35, 1.0 - abs(heading_error) * 1.2)
        # Deadlock breaking: after being stopped a while, negotiate past
        # the blocker with a narrow corridor at creep speed (real drivers
        # edge around a standoff rather than waiting forever).  Creep is
        # sticky for a few seconds so it survives the first meter of
        # motion instead of flapping back to a full stop.
        if self._stopped_time > 6.0:
            self._creep_time_left = 5.0
        creeping = self._creep_time_left > 0.0
        if creeping:
            self._creep_time_left -= dt
        limit = self._obstacle_speed_limit(
            state, obstacles, wide=near_intersection and not creeping, narrow=creeping
        )
        if creeping:
            if limit <= 0.0:
                # Hard-blocked dead ahead: edge around the blocker on its
                # freer side at walking pace.
                limit = 1.2
                edged = turn_rate - np.sign(self._blocker_side(state, obstacles)) * 0.5
                turn_rate = float(min(max(edged, -MAX_TURN_RATE), MAX_TURN_RATE))
            else:
                limit = max(limit, 2.0)
        target_speed = min(target_speed, limit)
        accel = _SPEED_GAIN * (target_speed - state.speed)
        return turn_rate, float(accel)

    def _blocker_side(self, state: VehicleState, obstacles: np.ndarray) -> float:
        """Lateral sign of the nearest obstacle ahead (+1 left, -1 right).

        Used while creeping to pick which way to edge around a blocker;
        0 when nothing is ahead.
        """
        if len(obstacles) == 0:
            return 0.0
        local = to_vehicle_frame(obstacles, state.position, state.heading)
        ahead = local[(local[:, 0] > 0.0) & (local[:, 0] < 8.0)]
        if len(ahead) == 0:
            return 0.0
        nearest = ahead[np.argmin(ahead[:, 0])]
        if nearest[1] == 0.0:
            return 1.0  # dead center: arbitrarily pass on the right
        return float(np.sign(nearest[1]))

    def _obstacle_speed_limit(
        self,
        state: VehicleState,
        obstacles: np.ndarray,
        wide: bool = False,
        narrow: bool = False,
    ) -> float:
        """Speed cap from the nearest obstacle in the driving corridor.

        ``wide`` broadens the watched corridor (intersection approach,
        where cross traffic enters from the side); ``narrow`` shrinks it
        for deadlock-breaking creep.
        """
        if len(obstacles) == 0:
            return np.inf
        local = to_vehicle_frame(obstacles, state.position, state.heading)
        horizon = 6.0 + 1.6 * state.speed
        half_width = _OBSTACLE_LANE_HALF_WIDTH
        if wide:
            half_width += 2.0
        if narrow:
            half_width = 1.6
        stop_gap = 3.5 if narrow else 6.0
        in_corridor = (
            (local[:, 0] > 0.5)
            & (local[:, 0] < horizon)
            & (np.abs(local[:, 1]) < half_width)
        )
        if not in_corridor.any():
            return np.inf
        gap = float(local[in_corridor, 0].min())
        # Full stop inside the stop gap, linear ramp back to cruise.
        if gap < stop_gap:
            return 0.0
        return CRUISE_SPEED * (gap - stop_gap) / max(horizon - stop_gap, 1e-6)


class ModelPilot:
    """Drives from learned waypoints; no privileged obstacle access.

    Parameters
    ----------
    model:
        A trained :class:`~repro.nn.model.WaypointNet`.
    plan:
        The navigation route (supplies the high-level command and the
        BEV route channel — exactly what a navigation service provides).
    bev_fn:
        Callable ``(state, plan) -> bev`` rendering the current BEV
        observation; injected so the pilot stays decoupled from world
        internals.
    waypoint_interval:
        Time spacing of the model's waypoints in seconds.
    decision_interval:
        How often the model is queried (paper collects/acts at 2 fps).
    """

    def __init__(
        self,
        model,
        plan: RoutePlan,
        bev_fn,
        waypoint_interval: float = 0.5,
        decision_interval: float = 0.5,
    ):
        self.model = model
        self.plan = plan
        self._bev_fn = bev_fn
        self.waypoint_interval = waypoint_interval
        self.decision_interval = decision_interval
        self._s = 0.0
        self._since_decision = np.inf  # force a decision on first step
        self._waypoints: np.ndarray | None = None  # vehicle-frame at decision time
        self._decision_state: VehicleState | None = None

    @property
    def route_progress(self) -> float:
        """Current arc-length position along the route."""
        return self._s

    def done(self) -> bool:
        """Whether the route end has been reached."""
        return self.plan.done(self._s)

    def control(self, state: VehicleState, dt: float) -> tuple[float, float]:
        """Compute (turn_rate, accel) for one step of length ``dt``."""
        self._s = self.plan.project(state.position, hint=self._s)
        self._since_decision += dt
        if self._since_decision >= self.decision_interval or self._waypoints is None:
            self._decide(state)
            self._since_decision = 0.0
        assert self._waypoints is not None and self._decision_state is not None
        # Re-express the cached waypoints in the *current* vehicle frame.
        from repro.sim.geometry import to_world_frame

        world_wp = to_world_frame(
            self._waypoints, self._decision_state.position, self._decision_state.heading
        )
        local_wp = to_vehicle_frame(world_wp, state.position, state.heading)

        # Steering: pursue the first waypoint far enough ahead that small
        # prediction noise does not whip the steering around (same
        # speed-scaled lookahead philosophy as the expert).
        lookahead = max(4.0, 0.8 * state.speed)
        dist = np.linalg.norm(local_wp, axis=1)
        ahead = np.where(dist >= lookahead)[0]
        target = local_wp[ahead[0]] if len(ahead) else local_wp[-1]
        heading_error = float(np.arctan2(target[1], max(target[0], 1e-3)))
        turn_rate = float(np.clip(_STEER_GAIN * heading_error, -MAX_TURN_RATE, MAX_TURN_RATE))

        # Speed: implied by the spacing of consecutive predicted
        # waypoints.  Taking the minimum over the first half of the
        # horizon makes braking reactive: when the expert would be
        # slowing for an obstacle, the near-term waypoints compress and
        # the pilot brakes immediately instead of averaging it away.
        chain = np.vstack([[0.0, 0.0], self._waypoints])
        spacing = np.linalg.norm(np.diff(chain, axis=0), axis=1)
        near_term = spacing[: max(len(spacing) // 2, 1)]
        implied = min(float(near_term.min()), float(spacing.mean()))
        target_speed = float(np.clip(implied / self.waypoint_interval, 0.0, CRUISE_SPEED))
        accel = _SPEED_GAIN * (target_speed - state.speed)
        return turn_rate, float(accel)

    def _decide(self, state: VehicleState) -> None:
        bev = self._bev_fn(state, self.plan)
        command = self.plan.command_at(self._s)
        pred = self.model.forward(bev[None, ...], np.array([command]))
        self._waypoints = pred[0].reshape(-1, 2).astype(float)
        self._decision_state = state.copy()
