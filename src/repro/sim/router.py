"""Route planning and high-level command generation.

A :class:`RoutePlan` is the navigation-service output the paper assumes
every vehicle has: the geometric path to follow plus, at every point on
it, the high-level command ("follow lane", "turn left", "turn right",
"go straight through") that conditions the driving model.
"""

from __future__ import annotations

import numpy as np

from repro.nn.model import COMMAND_NAMES
from repro.sim.geometry import polyline_lengths, resample_polyline, wrap_angle
from repro.sim.map import TownMap

__all__ = ["RoutePlan", "plan_route", "random_route"]

CMD_FOLLOW = COMMAND_NAMES.index("follow")
CMD_LEFT = COMMAND_NAMES.index("left")
CMD_RIGHT = COMMAND_NAMES.index("right")
CMD_STRAIGHT = COMMAND_NAMES.index("straight")

#: Distance before an intersection at which its command becomes active.
COMMAND_HORIZON = 30.0
#: Turn angles below this (radians) count as "go straight".
STRAIGHT_THRESHOLD = np.deg2rad(25.0)


class RoutePlan:
    """A resampled route polyline with arc-length queries.

    Parameters
    ----------
    vertices:
        Route waypoints (intersection positions), ``(n, 2)``.
    spacing:
        Resampling spacing in meters for the dense polyline.
    """

    def __init__(self, vertices: np.ndarray, spacing: float = 2.0):
        vertices = np.asarray(vertices, dtype=float)
        if len(vertices) < 2:
            raise ValueError("a route needs at least two vertices")
        self.vertices = vertices
        self.polyline = resample_polyline(vertices, spacing)
        self.cum_lengths = polyline_lengths(self.polyline)
        self.total_length = float(self.cum_lengths[-1])
        self.vertex_s = polyline_lengths(vertices)
        self._turns = self._compute_turns()

    def _compute_turns(self) -> list[tuple[float, int]]:
        """(arc position, command) for every interior route vertex."""
        turns: list[tuple[float, int]] = []
        vertex_s = polyline_lengths(self.vertices)
        for i in range(1, len(self.vertices) - 1):
            incoming = self.vertices[i] - self.vertices[i - 1]
            outgoing = self.vertices[i + 1] - self.vertices[i]
            angle = wrap_angle(
                np.arctan2(outgoing[1], outgoing[0]) - np.arctan2(incoming[1], incoming[0])
            )
            if abs(angle) < STRAIGHT_THRESHOLD:
                cmd = CMD_STRAIGHT
            elif angle > 0:
                cmd = CMD_LEFT
            else:
                cmd = CMD_RIGHT
            turns.append((float(vertex_s[i]), cmd))
        return turns

    # -- queries -----------------------------------------------------------

    def point_at(self, s: float) -> np.ndarray:
        """Point on the route at arc length ``s`` (clamped).

        Scalar linear interpolation with ``np.interp``'s exact branch
        and arithmetic order (segment lookup, equal-knot shortcut,
        ``slope * (s - knot) + value``), inlined because this is the
        single hottest query of the simulation's control loop.
        """
        cum = self.cum_lengths
        total = self.total_length
        s = 0.0 if s < 0.0 else (total if s > total else float(s))
        poly = self.polyline
        j = int(np.searchsorted(cum, s, side="right")) - 1
        if j >= len(cum) - 1:
            return np.array([poly[-1, 0], poly[-1, 1]])
        if j < 0:
            return np.array([poly[0, 0], poly[0, 1]])
        cj = cum[j]
        if cj == s:
            return np.array([poly[j, 0], poly[j, 1]])
        dxp = cum[j + 1] - cj
        t = s - cj
        x = (poly[j + 1, 0] - poly[j, 0]) / dxp * t + poly[j, 0]
        y = (poly[j + 1, 1] - poly[j, 1]) / dxp * t + poly[j, 1]
        return np.array([x, y])

    def heading_at(self, s: float) -> float:
        """Tangent heading of the route at arc length ``s``."""
        ds = 1.0
        ahead = self.point_at(min(s + ds, self.total_length))
        here = self.point_at(max(min(s, self.total_length) - ds, 0.0))
        delta = ahead - here
        return float(np.arctan2(delta[1], delta[0]))

    def command_at(self, s: float) -> int:
        """High-level command active at arc length ``s``.

        The command of the next turning vertex applies once the vehicle
        is within :data:`COMMAND_HORIZON` of it; otherwise "follow".
        """
        for turn_s, cmd in self._turns:
            if s <= turn_s <= s + COMMAND_HORIZON:
                return cmd
        return CMD_FOLLOW

    def project(self, position: np.ndarray, hint: float | None = None) -> float:
        """Arc length of the route point nearest ``position``.

        ``hint`` (a previous projection) restricts the search to a local
        window, which both speeds up the query and prevents snapping to a
        later self-crossing of the route.
        """
        position = np.asarray(position, dtype=float)
        if hint is None:
            lo, hi = 0, len(self.polyline)
        else:
            idx = int(np.searchsorted(self.cum_lengths, hint))
            window = getattr(self, "_window", None)
            if window is None:
                window = max(int(60.0 / max(self.cum_lengths[1], 1e-9)), 5)
                self._window = window
            lo, hi = max(idx - window, 0), min(idx + window, len(self.polyline))
        segment = self.polyline[lo:hi]
        # norm inlined (sqrt kept: argmin on rounded distances, not the
        # squares, preserves the original tie-breaking bit for bit).
        d = segment - position
        dists = np.sqrt(np.add.reduce(d * d, axis=1))
        return float(self.cum_lengths[lo + int(np.argmin(dists))])

    def route_cells(self, cell: float) -> set[tuple[int, int]]:
        """Grid cells (at resolution ``cell``) the route passes through."""
        dense = resample_polyline(self.polyline, cell / 2.0)
        idx = np.floor(dense / cell).astype(int)
        return set(map(tuple, idx.tolist()))

    def distance_to_intersection(self, s: float) -> float:
        """Arc distance from ``s`` to the nearest upcoming route vertex.

        Used by drivers to slow down on intersection approach; returns
        infinity past the last interior vertex.
        """
        interior = self.vertex_s[1:-1]
        # First interior vertex at or beyond s - 5.0 (vertex_s ascends).
        k = int(np.searchsorted(interior, s - 5.0))
        if k >= len(interior):
            return np.inf
        return float(max(interior[k] - s, 0.0))

    def lane_point_at(self, s: float, lane_offset: float) -> np.ndarray:
        """Route point shifted ``lane_offset`` meters to the right.

        Right-hand traffic: vehicles track this offset line rather than
        the centerline, so opposing flows do not share a path.
        """
        point = self.point_at(s)
        heading = self.heading_at(s)
        return np.array(
            [
                point[0] + lane_offset * np.sin(heading),
                point[1] + lane_offset * -np.cos(heading),
            ]
        )

    def done(self, s: float, tolerance: float = 5.0) -> bool:
        """Whether arc position ``s`` is within ``tolerance`` of the end."""
        return s >= self.total_length - tolerance


def plan_route(
    town: TownMap, start, goal, spacing: float = 2.0, rng: np.random.Generator | None = None
) -> RoutePlan:
    """Shortest-path route between two intersections.

    With ``rng`` the path is sampled with jittered edge weights (see
    :meth:`TownMap.shortest_path`) for route variety.
    """
    path = town.shortest_path(start, goal, rng=rng)
    vertices = np.array([town.node_position(n) for n in path])
    return RoutePlan(vertices, spacing=spacing)


def random_route(
    town: TownMap,
    rng: np.random.Generator,
    min_length: float = 200.0,
    start=None,
    max_tries: int = 64,
    nodes=None,
) -> RoutePlan:
    """A random route of at least ``min_length`` meters.

    When ``start`` is given the route begins there; otherwise both ends
    are random intersections.  ``nodes`` restricts candidate endpoints
    (e.g. to a vehicle's home district) — intermediate intersections may
    still lie outside it, as real trips do.
    """
    nodes = list(nodes) if nodes is not None else town.nodes()
    for _ in range(max_tries):
        a = start if start is not None else nodes[rng.integers(len(nodes))]
        b = nodes[rng.integers(len(nodes))]
        if a == b:
            continue
        plan = plan_route(town, a, b, rng=rng)
        if plan.total_length >= min_length:
            return plan
    raise RuntimeError(f"no route of length >= {min_length} found in {max_tries} tries")
