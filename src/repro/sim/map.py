"""The town road network.

Mirrors the paper's setting: the largest CARLA built-in map covers about
1 km x 1 km with both town and rural areas.  Here the town is a jittered
grid of intersections and the rural part is a sparse outer loop with
long road segments.  Roads are undirected two-way edges of a networkx
graph; geometry is straight segments between intersection positions.

The map also owns a static occupancy grid ("is this point on a road?")
used both by the BEV rasterizer and by off-road detection during online
evaluation.
"""

from __future__ import annotations

import math

import numpy as np
import networkx as nx

from repro.sim.geometry import point_segment_distance

__all__ = ["TownMap"]


class TownMap:
    """A road network over a square area.

    Parameters
    ----------
    size:
        Side of the square map in meters (paper: ~1000).
    grid_n:
        Number of town intersections per side.
    road_half_width:
        Half the paved width of a road in meters.
    rural:
        Whether to attach the rural outer loop.
    seed:
        Seed for intersection jitter.
    cell:
        Resolution of the static occupancy grid in meters.
    districts_per_side:
        1 builds the paper's single town grid.  ``s > 1`` builds a
        city: an s x s array of district grids (each a jittered
        ``grid_n`` x ``grid_n`` town occupying the central ~70% of its
        block) connected by arterial links between adjacent districts.
    """

    def __init__(
        self,
        size: float = 1000.0,
        grid_n: int = 6,
        road_half_width: float = 4.0,
        rural: bool = True,
        seed: int = 0,
        cell: float = 2.0,
        districts_per_side: int = 1,
    ):
        if grid_n < 2:
            raise ValueError(f"grid_n must be >= 2: {grid_n}")
        if districts_per_side < 1:
            raise ValueError(f"districts_per_side must be >= 1: {districts_per_side}")
        self.size = float(size)
        self.road_half_width = float(road_half_width)
        self.cell = float(cell)
        self.districts_per_side = int(districts_per_side)
        self.graph = nx.Graph()
        rng = np.random.default_rng(seed)
        if districts_per_side == 1:
            self._build_town(grid_n, rng)
            town_corners = [
                ("t", 0, 0),
                ("t", grid_n - 1, 0),
                ("t", grid_n - 1, grid_n - 1),
                ("t", 0, grid_n - 1),
            ]
        else:
            self._build_city(grid_n, districts_per_side, rng)
            s = districts_per_side
            town_corners = [
                ("t", 0, 0, 0, 0),
                ("t", s - 1, 0, grid_n - 1, 0),
                ("t", s - 1, s - 1, grid_n - 1, grid_n - 1),
                ("t", 0, s - 1, 0, grid_n - 1),
            ]
        if rural:
            self._build_rural(rng, town_corners)
        self._edges = list(self.graph.edges())
        self._node_pos = {n: np.asarray(self.graph.nodes[n]["pos"], dtype=float) for n in self.graph}
        self._node_names: list | None = None
        self._node_stack: np.ndarray | None = None
        self._occupancy = self._rasterize_roads()

    # -- construction ------------------------------------------------------

    def _build_town(self, grid_n: int, rng: np.random.Generator) -> None:
        # Town occupies the central ~70% of the map.
        lo, hi = 0.15 * self.size, 0.85 * self.size
        xs = np.linspace(lo, hi, grid_n)
        ys = np.linspace(lo, hi, grid_n)
        jitter = 0.08 * (xs[1] - xs[0])
        for i in range(grid_n):
            for j in range(grid_n):
                pos = np.array(
                    [
                        xs[i] + rng.uniform(-jitter, jitter),
                        ys[j] + rng.uniform(-jitter, jitter),
                    ]
                )
                self.graph.add_node(("t", i, j), pos=pos, kind="town")
        for i in range(grid_n):
            for j in range(grid_n):
                if i + 1 < grid_n:
                    self._add_road(("t", i, j), ("t", i + 1, j))
                if j + 1 < grid_n:
                    self._add_road(("t", i, j), ("t", i, j + 1))

    def _build_city(
        self, grid_n: int, blocks: int, rng: np.random.Generator
    ) -> None:
        # An s x s array of district grids.  Each district occupies the
        # central ~70% of its block (the same proportion the single town
        # keeps to the map), leaving arterial corridors between blocks.
        block = self.size / blocks
        for bi in range(blocks):
            for bj in range(blocks):
                xs = np.linspace(bi * block + 0.15 * block, bi * block + 0.85 * block, grid_n)
                ys = np.linspace(bj * block + 0.15 * block, bj * block + 0.85 * block, grid_n)
                jitter = 0.08 * (xs[1] - xs[0])
                for i in range(grid_n):
                    for j in range(grid_n):
                        pos = np.array(
                            [
                                xs[i] + rng.uniform(-jitter, jitter),
                                ys[j] + rng.uniform(-jitter, jitter),
                            ]
                        )
                        self.graph.add_node(("t", bi, bj, i, j), pos=pos, kind="town")
                for i in range(grid_n):
                    for j in range(grid_n):
                        if i + 1 < grid_n:
                            self._add_road(("t", bi, bj, i, j), ("t", bi, bj, i + 1, j))
                        if j + 1 < grid_n:
                            self._add_road(("t", bi, bj, i, j), ("t", bi, bj, i, j + 1))
        # Arterial links stitch adjacent districts together at one or two
        # boundary rows/columns, so inter-district trips funnel through a
        # few corridors (and the graph stays connected).
        lanes = sorted({grid_n // 3, grid_n - 1 - grid_n // 3})
        for bi in range(blocks - 1):
            for bj in range(blocks):
                for j in lanes:
                    self._add_road(
                        ("t", bi, bj, grid_n - 1, j), ("t", bi + 1, bj, 0, j), arterial=True
                    )
        for bi in range(blocks):
            for bj in range(blocks - 1):
                for i in lanes:
                    self._add_road(
                        ("t", bi, bj, i, grid_n - 1), ("t", bi, bj + 1, i, 0), arterial=True
                    )

    def _build_rural(self, rng: np.random.Generator, town_corners: list) -> None:
        # Four rural waypoints near the map corners, chained into a loop
        # and attached to the nearest town corner intersections.
        margin = 0.05 * self.size
        corners = [
            np.array([margin, margin]),
            np.array([self.size - margin, margin]),
            np.array([self.size - margin, self.size - margin]),
            np.array([margin, self.size - margin]),
        ]
        names = []
        for k, base in enumerate(corners):
            pos = base + rng.uniform(-margin / 2, margin / 2, size=2)
            name = ("r", k)
            self.graph.add_node(name, pos=pos, kind="rural")
            names.append(name)
        for k in range(4):
            self._add_road(names[k], names[(k + 1) % 4])
        for rural_node, town_node in zip(names, town_corners):
            self._add_road(rural_node, town_node)

    def _add_road(self, a, b, arterial: bool = False) -> None:
        pa = self.graph.nodes[a]["pos"]
        pb = self.graph.nodes[b]["pos"]
        self.graph.add_edge(a, b, length=float(np.linalg.norm(pa - pb)), arterial=arterial)

    def _rasterize_roads(self) -> np.ndarray:
        n_cells = int(np.ceil(self.size / self.cell))
        occ = np.zeros((n_cells, n_cells), dtype=bool)
        half = self.road_half_width
        for a, b in self._edges:
            pa, pb = self._node_pos[a], self._node_pos[b]
            lo = np.minimum(pa, pb) - half - self.cell
            hi = np.maximum(pa, pb) + half + self.cell
            i0, j0 = np.maximum(np.floor(lo / self.cell).astype(int), 0)
            i1 = min(int(np.ceil(hi[0] / self.cell)), n_cells - 1)
            j1 = min(int(np.ceil(hi[1] / self.cell)), n_cells - 1)
            if i0 > i1 or j0 > j1:
                continue
            ii, jj = np.meshgrid(
                np.arange(i0, i1 + 1), np.arange(j0, j1 + 1), indexing="ij"
            )
            centers = np.stack(
                [(ii.ravel() + 0.5) * self.cell, (jj.ravel() + 0.5) * self.cell], axis=1
            )
            dist = point_segment_distance(centers, pa, pb)
            mask = (dist <= half).reshape(ii.shape)
            occ[i0 : i1 + 1, j0 : j1 + 1] |= mask
        return occ

    # -- queries -----------------------------------------------------------

    def node_position(self, node) -> np.ndarray:
        """(x, y) position of an intersection node."""
        return self._node_pos[node]

    def nodes(self) -> list:
        """All intersection nodes."""
        return list(self.graph.nodes)

    def town_nodes(self) -> list:
        """Intersections belonging to the town grid (not rural)."""
        return [n for n in self.graph if self.graph.nodes[n]["kind"] == "town"]

    def _node_table(self) -> tuple[list, np.ndarray]:
        """Node names and their stacked (n, 2) positions, built lazily.

        Lazy (and guarded with ``getattr``) so ``TownMap`` instances
        unpickled from older context caches grow the table on first use.
        """
        names = getattr(self, "_node_names", None)
        if names is None:
            names = list(self._node_pos)
            self._node_names = names
            self._node_stack = np.array([self._node_pos[n] for n in names])
        return names, self._node_stack

    def nearest_node(self, point: np.ndarray):
        """The intersection closest to ``point``."""
        point = np.asarray(point, dtype=float)
        names, stack = self._node_table()
        if not names:
            return None
        # Same per-node norm as the former min-loop; np.argmin keeps the
        # loop's first-minimum tie-break.
        return names[int(np.argmin(np.linalg.norm(stack - point, axis=1)))]

    def shortest_path(self, a, b, rng: np.random.Generator | None = None) -> list:
        """Node sequence of the shortest road path from ``a`` to ``b``.

        With ``rng``, edge lengths are jittered (+-20%) for this query
        only, so repeated trips between the same areas take varied paths
        — drivers do not all follow one canonical shortest path, and the
        variety balances left/right turn exposure in collected data.
        """
        if rng is None:
            return nx.shortest_path(self.graph, a, b, weight="length")
        jitter = {
            frozenset(edge): rng.uniform(0.8, 1.2) for edge in self.graph.edges()
        }

        def weight(u, v, data):
            return data["length"] * jitter[frozenset((u, v))]

        return nx.shortest_path(self.graph, a, b, weight=weight)

    def is_on_road(self, point: np.ndarray, margin: float = 0.0) -> bool:
        """Whether ``point`` lies on the paved road (plus ``margin``)."""
        point = np.asarray(point, dtype=float)
        if margin > 0.0:
            # Exact check against segments; used sparingly.
            for a, b in self._edges:
                d = point_segment_distance(point[None, :], self._node_pos[a], self._node_pos[b])[0]
                if d <= self.road_half_width + margin:
                    return True
            return False
        i = int(point[0] / self.cell)
        j = int(point[1] / self.cell)
        n = self._occupancy.shape[0]
        if not (0 <= i < n and 0 <= j < n):
            return False
        return bool(self._occupancy[i, j])

    def occupancy_at(self, points: np.ndarray) -> np.ndarray:
        """Vectorized road-occupancy lookup for ``(n, 2)`` world points."""
        points = np.asarray(points, dtype=float)
        idx = np.floor(points / self.cell).astype(int)
        n = self._occupancy.shape[0]
        valid = (
            (idx[:, 0] >= 0) & (idx[:, 0] < n) & (idx[:, 1] >= 0) & (idx[:, 1] < n)
        )
        out = np.zeros(len(points), dtype=bool)
        inside = idx[valid]
        out[valid] = self._occupancy[inside[:, 0], inside[:, 1]]
        return out

    def district_of(self, point: np.ndarray, n_districts: int = 4) -> int:
        """District index of a point (row-major grid over the map).

        Districts model the home zones vehicles mostly drive in; they
        are the source of data heterogeneity across the fleet.
        Supported counts are 1, 2 (half split) and any perfect square
        s² (an s x s grid; 4 is the paper's quadrant split, 9 matches
        the city map's 3x3 district blocks).
        """
        if n_districts == 1:
            return 0
        point = np.asarray(point, dtype=float)
        half = self.size / 2.0
        if n_districts == 2:
            return int(point[0] >= half)
        if n_districts == 4:
            return int(point[0] >= half) * 2 + int(point[1] >= half)
        side = math.isqrt(n_districts)
        if side * side != n_districts:
            raise ValueError(f"n_districts must be 1, 2 or a perfect square: {n_districts}")
        block = self.size / side
        i = min(max(int(point[0] // block), 0), side - 1)
        j = min(max(int(point[1] // block), 0), side - 1)
        return i * side + j

    def district_nodes(self, district: int, n_districts: int = 4) -> list:
        """Intersections inside one district (never empty for supported counts)."""
        nodes = [
            n
            for n in self.graph
            if self.district_of(self._node_pos[n], n_districts) == district
        ]
        return nodes or self.nodes()

    def random_road_point(self, rng: np.random.Generator) -> np.ndarray:
        """A uniformly random point on the paved road surface."""
        a, b = self._edges[rng.integers(len(self._edges))]
        pa, pb = self._node_pos[a], self._node_pos[b]
        t = rng.uniform()
        direction = pb - pa
        norm = np.linalg.norm(direction)
        normal = (
            np.array([-direction[1], direction[0]]) / norm if norm > 0 else np.zeros(2)
        )
        offset = rng.uniform(-self.road_half_width, self.road_half_width)
        return pa + t * direction + offset * normal
