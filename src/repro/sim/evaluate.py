"""Online evaluation: driving success rate.

Mirrors §IV-D: the trained model is deployed on a testing autopilot that
must navigate predefined routes; a trial succeeds when the vehicle
reaches the destination within a time budget without colliding with
cars or pedestrians (we additionally fail trials that leave the road,
which CARLA counts through its lane-invasion/timeout machinery).

Conditions reproduce the CARLA benchmark ladder: Straight, One Turn,
Navigation (Empty), Navigation (Normal traffic) and Navigation (Dense,
1.2x the normal traffic).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

from repro.engine.random import spawn_rng
from repro.sim.autopilot import ModelPilot
from repro.sim.bev import BevSpec, render_bev
from repro.sim.kinematics import VehicleState, advance
from repro.sim.map import TownMap
from repro.sim.router import CMD_STRAIGHT, RoutePlan, random_route
from repro.sim.traffic import TrafficManager
from repro.sim.world import CAR_RADIUS, PED_RADIUS

__all__ = [
    "DrivingCondition",
    "EvalConfig",
    "EpisodeResult",
    "run_episode",
    "success_rate",
    "evaluate_model",
]


class DrivingCondition(Enum):
    """The five CARLA-style difficulty levels (§IV-D)."""

    STRAIGHT = "Straight"
    ONE_TURN = "One Turn"
    NAVI_EMPTY = "Navi. (Empty)"
    NAVI_NORMAL = "Navi. (Normal)"
    NAVI_DENSE = "Navi. (Dense)"

    @property
    def traffic_scale(self) -> float:
        """Multiplier on the normal traffic counts (Dense is 1.2x)."""
        if self in (DrivingCondition.STRAIGHT, DrivingCondition.ONE_TURN, DrivingCondition.NAVI_EMPTY):
            return 0.0
        if self is DrivingCondition.NAVI_NORMAL:
            return 1.0
        return 1.2


@dataclass
class EvalConfig:
    """Parameters for online-evaluation episodes."""

    bev_spec: BevSpec = None  # type: ignore[assignment]
    n_waypoints: int = 5
    waypoint_interval: float = 0.5
    dt: float = 0.1
    normal_cars: int = 50
    normal_pedestrians: int = 250
    off_road_margin: float = 3.0
    min_navigation_length: float = 350.0
    speed_budget: float = 3.0  # time budget = length / speed_budget + slack
    budget_slack: float = 30.0

    def __post_init__(self):
        if self.bev_spec is None:
            self.bev_spec = BevSpec()


@dataclass
class EpisodeResult:
    """Outcome of one closed-loop driving trial."""
    success: bool
    reason: str  # "success" | "collision" | "off_road" | "timeout"
    time: float
    route_length: float
    #: (n, 4) array of (x, y, heading, speed) per step when requested;
    #: feeds the comfort metrics in :mod:`repro.sim.comfort`.
    trajectory: np.ndarray | None = None


def route_for_condition(
    town: TownMap, condition: DrivingCondition, rng: np.random.Generator, config: EvalConfig
) -> RoutePlan:
    """Sample a route whose turn structure matches the condition."""
    for _ in range(256):
        plan = random_route(town, rng, min_length=120.0)
        turning = [cmd for _, cmd in plan._turns if cmd != CMD_STRAIGHT]
        if condition is DrivingCondition.STRAIGHT:
            if not turning and 120.0 <= plan.total_length <= 400.0:
                return plan
        elif condition is DrivingCondition.ONE_TURN:
            if len(turning) == 1 and plan.total_length <= 500.0:
                return plan
        else:
            if len(turning) >= 2 and plan.total_length >= config.min_navigation_length:
                return plan
    raise RuntimeError(f"could not sample a route for {condition}")


def run_episode(
    model,
    town: TownMap,
    plan: RoutePlan,
    condition: DrivingCondition,
    config: EvalConfig,
    seed: int,
    record_trajectory: bool = False,
) -> EpisodeResult:
    """Drive one closed-loop trial; returns the outcome.

    ``record_trajectory`` additionally captures the ego's (x, y,
    heading, speed) per step for comfort analysis.
    """
    scale = condition.traffic_scale
    traffic = TrafficManager(
        town,
        n_cars=int(round(config.normal_cars * scale)),
        n_pedestrians=int(round(config.normal_pedestrians * scale)),
        rng=spawn_rng(seed, "episode-traffic"),
        keep_clear=plan.point_at(0.0),
    )
    start = plan.point_at(0.0)
    state = VehicleState(start[0], start[1], plan.heading_at(0.0), 0.0)

    def bev_fn(current_state: VehicleState, current_plan: RoutePlan) -> np.ndarray:
        return render_bev(
            town,
            config.bev_spec,
            current_state,
            current_plan,
            traffic.car_positions(),
            traffic.pedestrian_positions(),
        )

    pilot = ModelPilot(
        model,
        plan,
        bev_fn,
        waypoint_interval=config.waypoint_interval,
        decision_interval=config.waypoint_interval,
    )
    budget = plan.total_length / config.speed_budget + config.budget_slack
    time = 0.0
    track: list[tuple[float, float, float, float]] = []

    def finish(success: bool, reason: str) -> EpisodeResult:
        trajectory = np.asarray(track) if record_trajectory else None
        return EpisodeResult(success, reason, time, plan.total_length, trajectory)

    while time < budget:
        if record_trajectory:
            track.append((state.x, state.y, state.heading, state.speed))
        turn_rate, accel = pilot.control(state, config.dt)
        state = advance(state, turn_rate, accel, config.dt)
        traffic.step(
            state.position[None, :], config.dt, extra_speeds=np.array([state.speed])
        )
        time += config.dt
        if _collided(state, traffic):
            return finish(False, "collision")
        if not town.is_on_road(state.position, margin=config.off_road_margin):
            return finish(False, "off_road")
        if pilot.done():
            return finish(True, "success")
    return finish(False, "timeout")


def _collided(state: VehicleState, traffic: TrafficManager) -> bool:
    cars = traffic.car_positions()
    if len(cars) and (np.linalg.norm(cars - state.position, axis=1) < 2 * CAR_RADIUS).any():
        return True
    peds = traffic.pedestrian_positions()
    if len(peds) and (
        np.linalg.norm(peds - state.position, axis=1) < CAR_RADIUS + PED_RADIUS
    ).any():
        return True
    return False


def success_rate(
    model,
    town: TownMap,
    condition: DrivingCondition,
    n_trials: int,
    config: EvalConfig | None = None,
    seed: int = 0,
) -> float:
    """Fraction of successful trials for one condition, in [0, 1]."""
    config = config or EvalConfig()
    successes = 0
    for trial in range(n_trials):
        rng = spawn_rng(seed, f"route-{condition.value}-{trial}")
        plan = route_for_condition(town, condition, rng, config)
        result = run_episode(model, town, plan, condition, config, seed=seed * 1000 + trial)
        successes += int(result.success)
    return successes / n_trials


def evaluate_model(
    model,
    town: TownMap,
    conditions: list[DrivingCondition] | None = None,
    n_trials: int = 10,
    config: EvalConfig | None = None,
    seed: int = 0,
) -> dict[str, float]:
    """Success rate per condition, as percentages keyed by condition name."""
    conditions = conditions or list(DrivingCondition)
    return {
        cond.value: 100.0 * success_rate(model, town, cond, n_trials, config, seed)
        for cond in conditions
    }
