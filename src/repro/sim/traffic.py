"""Background traffic: roaming cars and pedestrians.

Matches the paper's setup of extra cars and pedestrians "initialized at
random locations and keep roaming on the map" as realism-enhancing
hazards.  Background cars are expert autopilots on endlessly renewed
random routes; pedestrians do a random-waypoint walk biased to stay in
the road corridor, so they regularly cross in front of traffic.
"""

from __future__ import annotations

import numpy as np

from repro.sim.autopilot import ExpertAutopilot
from repro.sim.kinematics import VehicleState, advance
from repro.sim.map import TownMap
from repro.sim.router import random_route
from repro.sim.spatial import SpatialGrid

__all__ = ["BackgroundCar", "Pedestrian", "TrafficManager"]

_PED_SPEED = 1.3  # m/s
_PED_WANDER_RADIUS = 40.0


class BackgroundCar:
    """An autopilot car roaming random routes forever."""

    def __init__(self, town: TownMap, rng: np.random.Generator, speed_factor: float = 1.0):
        self._town = town
        self._rng = rng
        self.speed_factor = speed_factor
        plan = random_route(town, rng, min_length=150.0)
        start = plan.point_at(0.0)
        self.state = VehicleState(start[0], start[1], plan.heading_at(0.0), 0.0)
        self.pilot = ExpertAutopilot(plan)

    def step(self, obstacles: np.ndarray, dt: float) -> None:
        if self.pilot.done():
            node = self._town.nearest_node(self.state.position)
            plan = random_route(self._town, self._rng, min_length=150.0, start=node)
            self.pilot = ExpertAutopilot(plan)
        turn_rate, accel = self.pilot.control(self.state, obstacles, dt=dt)
        self.state = advance(self.state, turn_rate * self.speed_factor, accel, dt)


class Pedestrian:
    """Roadside walker that occasionally crosses the road.

    Pedestrians wander between points just *off* the pavement (the
    sidewalk), so their paths regularly cross roads.  Before stepping
    onto the pavement they yield at the curb while a car is close —
    exactly like real pedestrians — but once committed to a crossing
    they keep walking.  Collisions with pedestrians therefore mean the
    driver failed to brake for someone already crossing ahead, which is
    learnable behaviour, rather than pedestrians hurling themselves into
    moving cars.
    """

    def __init__(self, town: TownMap, rng: np.random.Generator):
        self._town = town
        self._rng = rng
        self.position = self._sidewalk_point(town.random_road_point(rng))
        self._target = self._new_target()

    def _sidewalk_point(self, road_point: np.ndarray) -> np.ndarray:
        """Push a road point just past the pavement edge."""
        direction = self._rng.normal(size=2)
        direction /= max(np.linalg.norm(direction), 1e-9)
        for step_len in (1.0, 2.0, 3.0, 4.0):
            candidate = road_point + direction * (self._town.road_half_width + step_len)
            if not self._town.is_on_road(candidate):
                return np.clip(candidate, 0.0, self._town.size)
        return np.clip(road_point, 0.0, self._town.size)

    def _new_target(self) -> np.ndarray:
        # A sidewalk point near a random road within wander radius; the
        # straight-line walk there may cross pavement (the hazard).
        for _ in range(8):
            candidate = self._town.random_road_point(self._rng)
            if np.linalg.norm(candidate - self.position) <= _PED_WANDER_RADIUS:
                return self._sidewalk_point(candidate)
        offset = self._rng.uniform(-_PED_WANDER_RADIUS / 2, _PED_WANDER_RADIUS / 2, size=2)
        return np.clip(self.position + offset, 0.0, self._town.size)

    def step(
        self,
        dt: float,
        car_positions: np.ndarray | None = None,
        car_speeds: np.ndarray | None = None,
        gaps: np.ndarray | None = None,
    ) -> None:
        delta = self._target - self.position
        # Scalar / axis-1 norms inlined to np.linalg.norm's own formulas
        # (sqrt(x.dot(x)) and sqrt(add.reduce(x*x, axis=1))) — identical
        # bits without the wrapper dispatch; this runs per ped per tick.
        dist = float(np.sqrt(delta.dot(delta)))
        if dist < 1.0:
            self._target = self._new_target()
            return
        next_pos = self.position + delta / dist * _PED_SPEED * dt
        if car_positions is not None and len(car_positions):
            if gaps is None:
                # ``gaps`` lets the caller hand in already-computed
                # distances to exactly ``car_positions`` (same per-pair
                # arithmetic), e.g. rows of a batched distance matrix.
                d = car_positions - self.position
                gaps = np.sqrt(np.add.reduce(d * d, axis=1))
            nearest = float(gaps.min())
            # Personal space: never walk to within arm's reach of a car.
            d = car_positions - next_pos
            next_gap = float(np.min(np.sqrt(np.add.reduce(d * d, axis=1))))
            if next_gap < 3.0 and next_gap < nearest:
                # Blocked: walk somewhere else instead of standing next
                # to a car forever (which deadlocks traffic).
                self._target = self._sidewalk_point(self.position)
                return
            on_road_now = self._town.is_on_road(self.position)
            entering_road = not on_road_now and self._town.is_on_road(next_pos)
            if entering_road:
                if car_speeds is not None and len(car_speeds) == len(car_positions):
                    moving = car_speeds > 0.5
                    nearest_moving = (
                        float(gaps[moving].min()) if moving.any() else np.inf
                    )
                else:
                    nearest_moving = nearest
                if nearest_moving < 14.0:
                    return  # wait at the curb for moving traffic only
        self.position = next_pos


def _readonly_view(array: np.ndarray) -> np.ndarray:
    view = array.view()
    view.flags.writeable = False
    return view


class TrafficManager:
    """Owns and steps all background agents; exposes position arrays.

    Agent positions and speeds are mirrored in preallocated
    struct-of-arrays buffers updated in place as each agent steps, so
    ``car_positions()``/``pedestrian_positions()`` serve read-only views
    instead of rebuilding arrays from Python attribute loops.  Agents
    are only ever advanced through :meth:`step`, which keeps the
    mirrors fresh.
    """

    def __init__(
        self,
        town: TownMap,
        n_cars: int,
        n_pedestrians: int,
        rng: np.random.Generator,
        keep_clear: np.ndarray | None = None,
        keep_clear_radius: float = 20.0,
        ped_district_weights: np.ndarray | None = None,
        n_districts: int = 1,
    ):
        self._town = town
        self.cars = []
        for _ in range(n_cars):
            car = BackgroundCar(town, np.random.default_rng(rng.integers(2**63)))
            # Don't spawn on top of the ego (or whatever keep_clear marks).
            for _ in range(16):
                if keep_clear is None:
                    break
                gap = float(np.linalg.norm(car.state.position - keep_clear))
                if gap >= keep_clear_radius:
                    break
                car = BackgroundCar(town, np.random.default_rng(rng.integers(2**63)))
            self.cars.append(car)
        self.pedestrians = []
        for _ in range(n_pedestrians):
            ped = Pedestrian(town, np.random.default_rng(rng.integers(2**63)))
            if ped_district_weights is not None:
                # Rejection-sample the spawn into a weighted district so
                # pedestrian hazard density differs across the map.
                target = int(rng.choice(len(ped_district_weights), p=ped_district_weights))
                for _ in range(24):
                    if town.district_of(ped.position, n_districts) == target:
                        break
                    ped = Pedestrian(town, np.random.default_rng(rng.integers(2**63)))
            self.pedestrians.append(ped)
        self._car_pos = np.array(
            [c.state.position for c in self.cars], dtype=float
        ).reshape(-1, 2)
        self._car_speed = np.array([c.state.speed for c in self.cars], dtype=float)
        self._ped_pos = np.array(
            [p.position for p in self.pedestrians], dtype=float
        ).reshape(-1, 2)
        self._car_pos_view = _readonly_view(self._car_pos)
        self._ped_pos_view = _readonly_view(self._ped_pos)

    def car_positions(self) -> np.ndarray:
        """(n, 2) positions of all background cars (read-only view)."""
        return self._car_pos_view

    def pedestrian_positions(self) -> np.ndarray:
        """(n, 2) positions of all pedestrians (read-only view)."""
        return self._ped_pos_view

    def step(
        self,
        extra_obstacles: np.ndarray,
        dt: float,
        extra_speeds: np.ndarray | None = None,
    ) -> None:
        """Advance all background agents one step.

        ``extra_obstacles`` are positions of agents outside the manager
        (the expert fleet / the ego) that background cars must avoid;
        ``extra_speeds`` are their speeds (pedestrians cross in front of
        stopped cars, so speed matters).
        """
        extra_obstacles = extra_obstacles.reshape(-1, 2)
        if extra_speeds is None:
            extra_speeds = np.full(len(extra_obstacles), 1.0)
        n_cars = len(self.cars)
        n_peds = len(self.pedestrians)
        # Pre-step positions: the vstack copies out of the live mirrors,
        # so every agent this tick sees where the others *were*, exactly
        # as the rebuilt-array implementation did.
        all_pos = np.vstack([self._car_pos, self._ped_pos, extra_obstacles])
        grid = SpatialGrid(all_pos)
        on_road = self._town.occupancy_at(all_pos)
        for i, car in enumerate(self.cars):
            # Every agent except this car itself is an obstacle.
            near = road_obstacles(
                self._town,
                all_pos,
                car.state.position,
                grid=grid,
                exclude=i,
                on_road=on_road,
            )
            car.step(near, dt)
            self._car_pos[i, 0] = car.state.x
            self._car_pos[i, 1] = car.state.y
            self._car_speed[i] = car.state.speed
        # Pedestrians see pre-step car positions but post-step speeds
        # (a car that just braked to a stop is safe to cross in front of).
        # Peds only care about cars within arm's-length radii, and the
        # ped x car block is small and dense (250 x ~80 at paper scale),
        # so one broadcast distance matrix beats per-ped grid queries;
        # each row holds the same per-pair arithmetic a per-ped scan
        # would produce, sliced in ascending car order.
        all_cars = np.vstack([all_pos[:n_cars], all_pos[n_cars + n_peds :]])
        car_speeds = np.concatenate([self._car_speed, extra_speeds])
        ped_pre = all_pos[n_cars : n_cars + n_peds]
        if n_peds and len(all_cars):
            d3 = ped_pre[:, None, :] - all_cars[None, :, :]
            gap_matrix = np.sqrt(np.add.reduce(d3 * d3, axis=2))
            near_mask = gap_matrix < 16.0
            for j, ped in enumerate(self.pedestrians):
                row = near_mask[j]
                if row.any():
                    ped.step(
                        dt,
                        car_positions=all_cars[row],
                        car_speeds=car_speeds[row],
                        gaps=gap_matrix[j][row],
                    )
                else:
                    ped.step(dt)
                self._ped_pos[j] = ped.position
        else:
            for j, ped in enumerate(self.pedestrians):
                ped.step(dt)
                self._ped_pos[j] = ped.position


def _nearby(positions: np.ndarray, center: np.ndarray, radius: float) -> np.ndarray:
    """Filter ``positions`` to those within ``radius`` of ``center``."""
    if len(positions) == 0:
        return positions
    dist = np.linalg.norm(positions - center, axis=1)
    return positions[dist < radius]


def road_obstacles(
    town: TownMap,
    positions: np.ndarray,
    center: np.ndarray,
    radius: float = 45.0,
    grid: SpatialGrid | None = None,
    exclude: int | None = None,
    on_road: np.ndarray | None = None,
) -> np.ndarray:
    """Obstacles a driver actually reacts to.

    Keeps agents that are near ``center`` and on the pavement — drivers
    do not brake for people standing on the sidewalk, which would
    deadlock traffic against curb-waiting pedestrians.

    ``grid`` (a :class:`SpatialGrid` built over exactly ``positions``)
    prunes the distance test to the buckets around ``center``; the
    pruned path applies the same exact distance filter in ascending
    index order, so it returns the identical array.  ``exclude`` drops
    one row (an agent querying its own neighborhood) by index.

    ``on_road`` is an optional precomputed ``occupancy_at(positions)``
    boolean vector: the occupancy lookup is row-wise independent, so a
    tick's many queries over the same ``positions`` can share one
    batched lookup instead of re-testing their candidates each call.
    """
    if len(positions) == 0:
        return positions
    if grid is not None:
        idx = grid.query(center, radius)
        if exclude is not None:
            idx = idx[idx != exclude]
        # np.linalg.norm(..., axis=1) unwrapped to its own internals
        # (sqrt of add.reduce of squares) — same bits, no dispatch.
        d = positions[idx] - center
        dist = np.sqrt(np.add.reduce(d * d, axis=1))
        keep = idx[dist < radius]
        candidates = positions[keep]
        if len(candidates) == 0:
            return candidates
        mask = on_road[keep] if on_road is not None else town.occupancy_at(candidates)
        return candidates[mask]
    d = positions - center
    dist = np.sqrt(np.add.reduce(d * d, axis=1))
    near = dist < radius
    if exclude is not None:
        near[exclude] = False
    candidates = positions[near]
    if len(candidates) == 0:
        return candidates
    mask = on_road[near] if on_road is not None else town.occupancy_at(candidates)
    return candidates[mask]
