"""Vehicle kinematics: a unicycle model with rate limits.

Good enough for imitation-learning experiments: the controller outputs a
steering rate and an acceleration, both clipped to physical limits, and
the state integrates forward at a fixed timestep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.geometry import wrap_angle

__all__ = ["VehicleState", "advance", "MAX_TURN_RATE", "MAX_ACCEL", "MAX_DECEL"]

#: Physical limits (roughly a passenger car).
MAX_TURN_RATE = 0.9  # rad/s at full steer
MAX_ACCEL = 3.0  # m/s^2
MAX_DECEL = 6.0  # m/s^2


@dataclass
class VehicleState:
    """Planar pose plus longitudinal speed."""

    x: float
    y: float
    heading: float
    speed: float

    @property
    def position(self) -> np.ndarray:
        """(x, y) position as an array."""
        return np.array([self.x, self.y])

    def copy(self) -> "VehicleState":
        """An independent copy of this state."""
        return VehicleState(self.x, self.y, self.heading, self.speed)


def advance(state: VehicleState, turn_rate: float, accel: float, dt: float) -> VehicleState:
    """Integrate the unicycle one step; returns a new state.

    ``turn_rate`` (rad/s) and ``accel`` (m/s^2) are clipped to the
    vehicle's physical limits; speed never goes negative.
    """
    # Scalar clip via min/max (same result, none of np.clip's dispatch
    # overhead — this runs hundreds of times per tick).
    turn_rate = float(min(max(turn_rate, -MAX_TURN_RATE), MAX_TURN_RATE))
    accel = float(min(max(accel, -MAX_DECEL), MAX_ACCEL))
    speed = max(state.speed + accel * dt, 0.0)
    heading = float(wrap_angle(state.heading + turn_rate * dt))
    # Integrate position with the mid-step speed for stability.
    mid_speed = 0.5 * (state.speed + speed)
    x = state.x + mid_speed * np.cos(heading) * dt
    y = state.y + mid_speed * np.sin(heading) * dt
    return VehicleState(x, y, heading, speed)
