"""Driving frame datasets for imitation learning.

A *frame* is one training sample: the BEV observation, the active
high-level command, and the expert's future waypoints in the vehicle
frame.  A :class:`DrivingDataset` is an array-backed weighted collection
of frames supporting everything LbChat needs: weighted minibatch
sampling, per-sample loss evaluation hooks, absorption of received
coresets, and per-command statistics (for the Eq. 6 entropy penalty).

Storage is array-native: frames live in contiguous preallocated numpy
buffers (amortized-doubling growth) with an id → row dict for O(1)
dedup, so :meth:`DrivingDataset.arrays` returns cached read-only views
instead of re-stacking Python lists, :meth:`DrivingDataset.sample_batch`
fancy-indexes rows directly, and bulk operations (:meth:`subset`,
:meth:`with_weights`, :meth:`absorb_from`) copy whole array slices
without materializing per-frame objects.  The :attr:`generation`
counter (bumped on every mutation) lets callers — the view cache here,
and :class:`repro.core.node.VehicleNode`'s loss cache — invalidate
derived state exactly when the dataset changes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.nn.model import N_COMMANDS
from repro.sim.bev import BevSpec, render_fleet_bev
from repro.sim.geometry import to_vehicle_frame_fleet
from repro.sim.world import World

__all__ = ["Frame", "DrivingDataset", "collect_fleet_datasets"]

#: Process-wide unique ids so caches can key datasets without holding
#: references (``id()`` values get recycled; these never do).
_DATASET_UIDS = itertools.count()

_MIN_CAPACITY = 8


@dataclass(frozen=True)
class Frame:
    """One imitation-learning sample."""

    frame_id: str
    bev: np.ndarray  # (C, H, W) float32
    command: int
    waypoints: np.ndarray  # (2 * n_waypoints,) float32, vehicle frame
    weight: float = 1.0


class DrivingDataset:
    """Weighted, array-backed collection of frames."""

    def __init__(self, frames: list[Frame] | None = None):
        self._ids: list[str] = []
        self._index: dict[str, int] = {}
        self._size = 0
        # Buffers are allocated on first append (the first frame fixes
        # the BEV shape and waypoint length).
        self._bev: np.ndarray | None = None  # (cap, C, H, W) float32
        self._commands: np.ndarray | None = None  # (cap,) int64
        self._targets: np.ndarray | None = None  # (cap, 2n) float32
        self._weights: np.ndarray | None = None  # (cap,) float64
        self._generation = 0
        self._uid = next(_DATASET_UIDS)
        self._views: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray] | None = None
        self._views_generation = -1
        for frame in frames or []:
            self.add(frame)

    def __len__(self) -> int:
        return self._size

    def __getstate__(self):
        state = self.__dict__.copy()
        state["_views"] = None  # views would pickle duplicated buffer data
        state["_views_generation"] = -1
        for name in ("_bev", "_commands", "_targets", "_weights"):
            buffer = state[name]
            if buffer is not None and buffer.shape[0] != self._size:
                state[name] = buffer[: self._size].copy()  # drop spare capacity
        return state

    def __setstate__(self, state):
        if "_size" not in state:
            # Pre-array-native pickle (per-frame list storage): rebuild
            # through add() so old cached contexts keep loading.
            self.__init__()
            for frame_id, bev, command, target, weight in zip(
                state["_ids"],
                state["_bev"],
                state["_commands"],
                state["_targets"],
                state["_weights"],
            ):
                self.add(Frame(frame_id, bev, int(command), target, float(weight)))
            return
        self.__dict__.update(state)
        # A fresh uid in the receiving process: pickled uids could
        # collide with ids handed out locally, confusing caches keyed
        # on (uid, generation).
        self._uid = next(_DATASET_UIDS)

    @classmethod
    def from_arrays(
        cls,
        ids,
        bev: np.ndarray,
        commands: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray,
    ) -> "DrivingDataset":
        """Build a dataset directly from column arrays (checkpoint restore).

        ``ids`` must be unique; rows are adopted in order with no dedup
        pass, so a dataset rebuilt from its own :meth:`arrays` output is
        identical to the original (same ids, same row order).
        """
        out = cls()
        ids = [str(frame_id) for frame_id in ids]
        if len(set(ids)) != len(ids):
            raise ValueError("from_arrays requires unique frame ids")
        if ids:
            out._bulk_append(
                ids,
                np.asarray(bev, dtype=np.float32),
                np.asarray(commands, dtype=np.int64),
                np.asarray(targets, dtype=np.float32),
                np.asarray(weights, dtype=np.float64),
            )
        return out

    @property
    def uid(self) -> int:
        """Process-wide unique identity (stable across mutations)."""
        return self._uid

    @property
    def generation(self) -> int:
        """Mutation counter; changes whenever frames are appended."""
        return self._generation

    # -- growth ---------------------------------------------------------------

    def _ensure_capacity(self, extra: int, bev_shape, target_len: int) -> None:
        needed = self._size + extra
        if self._bev is None:
            cap = max(_MIN_CAPACITY, needed)
            self._bev = np.empty((cap, *bev_shape), dtype=np.float32)
            self._commands = np.empty(cap, dtype=np.int64)
            self._targets = np.empty((cap, target_len), dtype=np.float32)
            self._weights = np.empty(cap, dtype=np.float64)
            return
        cap = self._bev.shape[0]
        if needed <= cap:
            return
        new_cap = max(2 * cap, needed)
        for name in ("_bev", "_commands", "_targets", "_weights"):
            old = getattr(self, name)
            grown = np.empty((new_cap, *old.shape[1:]), dtype=old.dtype)
            grown[: self._size] = old[: self._size]
            setattr(self, name, grown)

    def add(self, frame: Frame) -> None:
        """Append a frame; duplicate ids are silently skipped.

        Duplicate skipping makes coreset absorption idempotent — a
        vehicle may receive overlapping coresets from repeat encounters.
        """
        if frame.frame_id in self._index:
            return
        bev = np.asarray(frame.bev, dtype=np.float32)
        target = np.asarray(frame.waypoints, dtype=np.float32).ravel()
        self._ensure_capacity(1, bev.shape, target.size)
        row = self._size
        self._bev[row] = bev
        self._commands[row] = int(frame.command)
        self._targets[row] = target
        self._weights[row] = float(frame.weight)
        self._index[frame.frame_id] = row
        self._ids.append(frame.frame_id)
        self._size += 1
        self._generation += 1

    def extend(self, frames: list[Frame]) -> None:
        """Append several frames (duplicates skipped by id)."""
        for frame in frames:
            self.add(frame)

    def _bulk_append(
        self,
        ids: list[str],
        bev: np.ndarray,
        commands: np.ndarray,
        targets: np.ndarray,
        weights: np.ndarray,
    ) -> None:
        """Append rows known to be absent from the id index."""
        m = len(ids)
        if m == 0:
            return
        self._ensure_capacity(m, bev.shape[1:], targets.shape[1])
        start = self._size
        self._bev[start : start + m] = bev
        self._commands[start : start + m] = commands
        self._targets[start : start + m] = targets
        self._weights[start : start + m] = weights
        for offset, frame_id in enumerate(ids):
            self._index[frame_id] = start + offset
        self._ids.extend(ids)
        self._size += m
        self._generation += 1

    def absorb_from(self, other: "DrivingDataset", weight: float | None = None) -> int:
        """Bulk-append another dataset's frames, skipping duplicate ids.

        ``weight`` overrides every appended frame's weight (coreset
        absorption resets received samples to the local convention);
        ``None`` keeps the source weights.  Returns the number of frames
        actually added, preserving the source's insertion order.
        """
        if len(other) == 0:
            return 0
        index = self._index
        keep = [i for i, fid in enumerate(other._ids) if fid not in index]
        if not keep:
            return 0
        rows = np.asarray(keep, dtype=np.intp)
        bev, commands, targets, weights = other.arrays()
        if weight is not None:
            new_weights = np.full(len(keep), float(weight), dtype=np.float64)
        else:
            new_weights = weights[rows]
        self._bulk_append(
            [other._ids[i] for i in keep],
            bev[rows],
            commands[rows],
            targets[rows],
            new_weights,
        )
        return len(keep)

    # -- array views ---------------------------------------------------------

    @property
    def ids(self) -> list[str]:
        """Frame ids in insertion order (a copy)."""
        return list(self._ids)

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(bev, commands, targets, weights) as read-only array views.

        Views are cached and only rebuilt after a mutation; they stay
        valid (and frozen at their snapshot) even if the dataset grows
        afterwards, because growth reallocates the buffers.
        """
        if self._size == 0:
            raise ValueError("dataset is empty")
        if self._views is None or self._views_generation != self._generation:
            views = []
            for buffer in (self._bev, self._commands, self._targets, self._weights):
                view = buffer[: self._size]
                view.flags.writeable = False
                views.append(view)
            self._views = tuple(views)
            self._views_generation = self._generation
        return self._views

    def frame(self, index: int) -> Frame:
        """Materialize the i-th frame as a Frame object (zero-copy views)."""
        frame_id = self._ids[index]  # list indexing handles negatives/bounds
        if index < 0:
            index += self._size
        bev = self._bev[index]
        bev.flags.writeable = False
        waypoints = self._targets[index]
        waypoints.flags.writeable = False
        return Frame(
            frame_id=frame_id,
            bev=bev,
            command=int(self._commands[index]),
            waypoints=waypoints,
            weight=float(self._weights[index]),
        )

    def frames(self) -> list[Frame]:
        """All frames as Frame objects."""
        return [self.frame(i) for i in range(len(self))]

    def copy(self) -> "DrivingDataset":
        """An independent copy (same frames, fresh buffers)."""
        out = DrivingDataset()
        out.absorb_from(self)
        return out

    def subset(
        self, indices, weights: np.ndarray | None = None
    ) -> "DrivingDataset":
        """A new dataset holding only the given indices.

        Duplicate indices are dropped (keeping the first occurrence),
        matching the id-dedup the frame-by-frame path applied.  The
        optional ``weights`` (aligned with ``indices``) replace the
        copied frames' weights — coreset construction selects rows and
        assigns their coreset weights in one pass this way.
        """
        rows = [int(i) for i in indices]
        if len(rows) != len(set(rows)):
            keep_weights: dict[int, float] = {}
            if weights is not None:
                for row, w in zip(rows, weights):
                    keep_weights.setdefault(row, float(w))
                rows = list(keep_weights)
                weights = np.asarray([keep_weights[row] for row in rows])
            else:
                rows = list(dict.fromkeys(rows))
        out = DrivingDataset()
        if not rows:
            return out
        bev, commands, targets, own_weights = self.arrays()
        idx = np.asarray(rows, dtype=np.intp)
        new_weights = (
            own_weights[idx]
            if weights is None
            else np.asarray(weights, dtype=np.float64)
        )
        out._bulk_append(
            [self._ids[row] for row in rows],
            bev[idx],
            commands[idx],
            targets[idx],
            new_weights,
        )
        return out

    def with_weights(self, weights: np.ndarray) -> "DrivingDataset":
        """Copy with replaced per-frame weights."""
        if len(weights) != len(self):
            raise ValueError(f"{len(weights)} weights for {len(self)} frames")
        out = DrivingDataset()
        if self._size:
            bev, commands, targets, _ = self.arrays()
            out._bulk_append(
                list(self._ids),
                bev,
                commands,
                targets,
                np.asarray(weights, dtype=np.float64),
            )
        return out

    @property
    def weights(self) -> np.ndarray:
        """Per-frame weights as an array (a fresh, writable copy)."""
        if self._size == 0:
            return np.zeros(0, dtype=np.float64)
        return self._weights[: self._size].copy()

    def total_weight(self) -> float:
        """Sum of all frame weights."""
        if self._size == 0:
            return 0.0
        return float(self._weights[: self._size].sum())

    def command_counts(self) -> np.ndarray:
        """Frame counts per high-level command, shape ``(N_COMMANDS,)``."""
        if self._size == 0:
            return np.zeros(N_COMMANDS, dtype=np.int64)
        return np.bincount(
            self._commands[: self._size], minlength=N_COMMANDS
        ).astype(np.int64)

    # -- sampling --------------------------------------------------------------

    def sample_batch(
        self,
        batch_size: int,
        rng: np.random.Generator,
        balance_commands: bool = False,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Weighted random minibatch: (bev, commands, targets, indices).

        With ``balance_commands`` the batch is stratified uniformly over
        the commands present in the dataset (the standard trick for
        command-branched imitation models — rare branches like 'turn
        left' would otherwise starve), sampling by weight within each
        command.
        """
        if self._size == 0:
            raise ValueError("cannot sample from an empty dataset")
        bev, commands_arr, targets, weights = self.arrays()
        n = min(batch_size, len(self))
        if balance_commands:
            present = np.unique(commands_arr)
            picks: list[int] = []
            for k, cmd in enumerate(present):
                members = np.where(commands_arr == cmd)[0]
                quota = n // len(present) + (1 if k < n % len(present) else 0)
                probs = weights[members] / weights[members].sum()
                picks.extend(
                    rng.choice(members, size=quota, replace=True, p=probs).tolist()
                )
            idx = np.asarray(picks)
        else:
            probs = weights / weights.sum()
            idx = rng.choice(len(self), size=n, replace=len(self) < batch_size, p=probs)
        return bev[idx], commands_arr[idx], targets[idx], idx


def collect_fleet_datasets(
    world: World,
    duration: float,
    bev_spec: BevSpec,
    n_waypoints: int = 5,
    waypoint_interval: float = 0.5,
) -> dict[str, DrivingDataset]:
    """Run the world and build each vehicle's local dataset.

    The world is stepped for ``duration`` plus the waypoint horizon (the
    last frames need future positions for their targets), then frames
    are assembled offline from the recorded snapshots, mirroring how a
    real vehicle would label frames once the future is known.
    """
    snap_dt = world.config.snapshot_interval
    stride = max(int(round(waypoint_interval / snap_dt)), 1)
    horizon = n_waypoints * stride
    world.run(duration + horizon * snap_dt + snap_dt)
    snapshots = world.snapshots
    datasets: dict[str, DrivingDataset] = {
        v.vehicle_id: DrivingDataset() for v in world.vehicles
    }
    n_usable = len(snapshots) - horizon
    if n_usable <= 0 or not datasets:
        return datasets
    # Fleet positions across all snapshots, (n_snapshots, V, 2); slices
    # of this provide both BEV origins and future waypoint labels.
    ids = list(snapshots[0].vehicle_states)
    all_pos = np.array(
        [[snap.vehicle_states[vid].position for vid in ids] for snap in snapshots]
    )
    for k in range(n_usable):
        snap = snapshots[k]
        states = [snap.vehicle_states[vid] for vid in ids]
        headings = np.array([s.heading for s in states])
        bevs = render_fleet_bev(
            world.town,
            bev_spec,
            states,
            [snap.vehicle_plans[vid] for vid in ids],
            all_pos[k],
            snap.bg_car_positions,
            snap.pedestrian_positions,
        )
        # (V, n_waypoints, 2): each vehicle's future positions at
        # snapshots k + stride, k + 2*stride, ..., in its current frame.
        future = np.swapaxes(
            all_pos[k + stride : k + n_waypoints * stride + 1 : stride], 0, 1
        )
        waypoints = to_vehicle_frame_fleet(future, all_pos[k], headings)
        for v, vehicle_id in enumerate(ids):
            datasets[vehicle_id].add(
                Frame(
                    frame_id=f"{vehicle_id}:{k}",
                    bev=bevs[v],
                    command=snap.vehicle_commands[vehicle_id],
                    waypoints=waypoints[v].ravel().astype(np.float32),
                )
            )
    return datasets
