"""Driving frame datasets for imitation learning.

A *frame* is one training sample: the BEV observation, the active
high-level command, and the expert's future waypoints in the vehicle
frame.  A :class:`DrivingDataset` is an array-backed weighted collection
of frames supporting everything LbChat needs: weighted minibatch
sampling, per-sample loss evaluation hooks, absorption of received
coresets, and per-command statistics (for the Eq. 6 entropy penalty).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.model import N_COMMANDS
from repro.sim.bev import BevSpec, render_bev
from repro.sim.geometry import to_vehicle_frame
from repro.sim.world import World

__all__ = ["Frame", "DrivingDataset", "collect_fleet_datasets"]


@dataclass(frozen=True)
class Frame:
    """One imitation-learning sample."""

    frame_id: str
    bev: np.ndarray  # (C, H, W) float32
    command: int
    waypoints: np.ndarray  # (2 * n_waypoints,) float32, vehicle frame
    weight: float = 1.0


class DrivingDataset:
    """Weighted, array-backed collection of frames."""

    def __init__(self, frames: list[Frame] | None = None):
        self._ids: list[str] = []
        self._id_set: set[str] = set()
        self._bev: list[np.ndarray] = []
        self._commands: list[int] = []
        self._targets: list[np.ndarray] = []
        self._weights: list[float] = []
        for frame in frames or []:
            self.add(frame)

    def __len__(self) -> int:
        return len(self._ids)

    def add(self, frame: Frame) -> None:
        """Append a frame; duplicate ids are silently skipped.

        Duplicate skipping makes coreset absorption idempotent — a
        vehicle may receive overlapping coresets from repeat encounters.
        """
        if frame.frame_id in self._id_set:
            return
        self._id_set.add(frame.frame_id)
        self._ids.append(frame.frame_id)
        self._bev.append(np.asarray(frame.bev, dtype=np.float32))
        self._commands.append(int(frame.command))
        self._targets.append(np.asarray(frame.waypoints, dtype=np.float32).ravel())
        self._weights.append(float(frame.weight))

    def extend(self, frames: list[Frame]) -> None:
        """Append several frames (duplicates skipped by id)."""
        for frame in frames:
            self.add(frame)

    # -- array views ---------------------------------------------------------

    @property
    def ids(self) -> list[str]:
        """Frame ids in insertion order (a copy)."""
        return list(self._ids)

    def arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """(bev, commands, targets, weights) as stacked arrays."""
        if not self._ids:
            raise ValueError("dataset is empty")
        return (
            np.stack(self._bev),
            np.asarray(self._commands, dtype=np.int64),
            np.stack(self._targets),
            np.asarray(self._weights, dtype=np.float64),
        )

    def frame(self, index: int) -> Frame:
        """Materialize the i-th frame as a Frame object."""
        return Frame(
            frame_id=self._ids[index],
            bev=self._bev[index],
            command=self._commands[index],
            waypoints=self._targets[index],
            weight=self._weights[index],
        )

    def frames(self) -> list[Frame]:
        """All frames as Frame objects."""
        return [self.frame(i) for i in range(len(self))]

    def subset(self, indices: np.ndarray | list[int]) -> "DrivingDataset":
        """A new dataset holding only the given indices."""
        return DrivingDataset([self.frame(int(i)) for i in indices])

    def with_weights(self, weights: np.ndarray) -> "DrivingDataset":
        """Copy with replaced per-frame weights."""
        if len(weights) != len(self):
            raise ValueError(f"{len(weights)} weights for {len(self)} frames")
        return DrivingDataset(
            [
                Frame(f.frame_id, f.bev, f.command, f.waypoints, float(w))
                for f, w in zip(self.frames(), weights)
            ]
        )

    @property
    def weights(self) -> np.ndarray:
        """Per-frame weights as an array."""
        return np.asarray(self._weights, dtype=np.float64)

    def total_weight(self) -> float:
        """Sum of all frame weights."""
        return float(sum(self._weights))

    def command_counts(self) -> np.ndarray:
        """Frame counts per high-level command, shape ``(N_COMMANDS,)``."""
        counts = np.zeros(N_COMMANDS, dtype=np.int64)
        for cmd in self._commands:
            counts[cmd] += 1
        return counts

    # -- sampling --------------------------------------------------------------

    def sample_batch(
        self,
        batch_size: int,
        rng: np.random.Generator,
        balance_commands: bool = False,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Weighted random minibatch: (bev, commands, targets, indices).

        With ``balance_commands`` the batch is stratified uniformly over
        the commands present in the dataset (the standard trick for
        command-branched imitation models — rare branches like 'turn
        left' would otherwise starve), sampling by weight within each
        command.
        """
        if not self._ids:
            raise ValueError("cannot sample from an empty dataset")
        weights = self.weights
        n = min(batch_size, len(self))
        if balance_commands:
            commands_arr = np.asarray(self._commands)
            present = np.unique(commands_arr)
            picks: list[int] = []
            for k, cmd in enumerate(present):
                members = np.where(commands_arr == cmd)[0]
                quota = n // len(present) + (1 if k < n % len(present) else 0)
                probs = weights[members] / weights[members].sum()
                picks.extend(
                    rng.choice(members, size=quota, replace=True, p=probs).tolist()
                )
            idx = np.asarray(picks)
        else:
            probs = weights / weights.sum()
            idx = rng.choice(len(self), size=n, replace=len(self) < batch_size, p=probs)
        bev, commands, targets, _ = self.arrays()
        return bev[idx], commands[idx], targets[idx], idx


def collect_fleet_datasets(
    world: World,
    duration: float,
    bev_spec: BevSpec,
    n_waypoints: int = 5,
    waypoint_interval: float = 0.5,
) -> dict[str, DrivingDataset]:
    """Run the world and build each vehicle's local dataset.

    The world is stepped for ``duration`` plus the waypoint horizon (the
    last frames need future positions for their targets), then frames
    are assembled offline from the recorded snapshots, mirroring how a
    real vehicle would label frames once the future is known.
    """
    snap_dt = world.config.snapshot_interval
    stride = max(int(round(waypoint_interval / snap_dt)), 1)
    horizon = n_waypoints * stride
    world.run(duration + horizon * snap_dt + snap_dt)
    snapshots = world.snapshots
    datasets: dict[str, DrivingDataset] = {
        v.vehicle_id: DrivingDataset() for v in world.vehicles
    }
    n_usable = len(snapshots) - horizon
    for k in range(max(n_usable, 0)):
        snap = snapshots[k]
        for vehicle_id, state in snap.vehicle_states.items():
            future = np.array(
                [
                    snapshots[k + (j + 1) * stride].vehicle_states[vehicle_id].position
                    for j in range(n_waypoints)
                ]
            )
            waypoints = to_vehicle_frame(future, state.position, state.heading)
            bev = render_bev(
                world.town,
                bev_spec,
                state,
                snap.vehicle_plans[vehicle_id],
                snap.other_car_positions(vehicle_id),
                snap.pedestrian_positions,
            )
            datasets[vehicle_id].add(
                Frame(
                    frame_id=f"{vehicle_id}:{k}",
                    bev=bev,
                    command=snap.vehicle_commands[vehicle_id],
                    waypoints=waypoints.ravel().astype(np.float32),
                )
            )
    return datasets
