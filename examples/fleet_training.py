"""Fleet scenario: LbChat vs. decentralized baselines under wireless loss.

Reproduces the paper's headline comparison at demo scale: a fleet of
vehicles trains collaboratively while driving; LbChat's coreset-guided
exchanges converge like the idealized central server and beat the
decentralized baselines, with a far higher model-receive completion
rate thanks to route-based neighbor prioritization (Eq. 5).

Run:  python examples/fleet_training.py
"""

import numpy as np

from repro.experiments.configs import CI
from repro.experiments.render import render_curves
from repro.experiments.runner import RunSpec, build_context, run_method

METHODS = ("ProxSkip", "DFL-DDS", "DP", "LbChat")


def main() -> None:
    print("Building the shared world (datasets + mobility traces)...")
    context = build_context(CI)
    total = sum(len(d) for d in context.datasets.values())
    print(f"  {len(context.datasets)} vehicles, {total} frames total, "
          f"{context.traces.duration:.0f} s of traces\n")

    grid = np.linspace(0.0, CI.train_duration, 11)
    curves, rates = {}, {}
    for method in METHODS:
        print(f"Training with {method} (wireless loss on)...")
        result = run_method(context, RunSpec.for_context(context, method, seed=1))
        _, curves[method] = result.loss_curve(11)
        rates[method] = result.receive_rate

    print()
    print(render_curves("Fleet validation loss vs time (w wireless loss)", grid, curves))
    print()
    print("Successful model receiving rate:")
    for method in METHODS:
        marker = "  <-- coreset + route sharing" if method == "LbChat" else ""
        print(f"  {method:10s} {100 * rates[method]:5.1f}%{marker}")

    lbchat_final = curves["LbChat"][-1]
    print(f"\nLbChat final loss {lbchat_final:.3f} vs "
          f"DFL-DDS {curves['DFL-DDS'][-1]:.3f}, DP {curves['DP'][-1]:.3f} "
          f"(ProxSkip, the idealized server: {curves['ProxSkip'][-1]:.3f})")


if __name__ == "__main__":
    main()
