"""Online evaluation: deploy a trained model on the CARLA-style ladder.

Trains one model on pooled expert data (an upper-bound reference), then
drives it closed-loop through the paper's five conditions — Straight,
One Turn, and the three Navigation difficulties — reporting the driving
success rate for each, exactly as §IV-D measures model quality.

Run:  python examples/online_driving_eval.py
"""

import numpy as np

from repro.nn import Adam, make_driving_model, waypoint_l1
from repro.sim import BevSpec, World, WorldConfig, collect_fleet_datasets
from repro.sim.dataset import DrivingDataset
from repro.sim.evaluate import DrivingCondition, EvalConfig, run_episode, route_for_condition
from repro.engine.random import spawn_rng


def main() -> None:
    print("Collecting expert driving data...")
    config = WorldConfig(
        map_size=500.0,
        grid_n=4,
        n_vehicles=8,
        n_background_cars=8,
        n_pedestrians=30,
        seed=7,
        min_route_length=150.0,
    )
    world = World(config)
    bev_spec = BevSpec(grid=20, cell=2.0)
    datasets = collect_fleet_datasets(world, duration=240.0, bev_spec=bev_spec)
    pool = DrivingDataset()
    for dataset in datasets.values():
        pool.extend(dataset.frames())
    print(f"  pooled {len(pool)} frames, command mix {pool.command_counts()}")

    print("Training the waypoint model (3000 iterations)...")
    model = make_driving_model(bev_spec.shape, 5, 96, seed=0)
    optimizer = Adam(model.parameters(), lr=1e-3)
    rng = np.random.default_rng(0)
    for step in range(3000):
        bev, commands, targets, _ = pool.sample_batch(64, rng)
        pred = model.forward(bev, commands)
        loss, _, grad = waypoint_l1(pred, targets)
        model.zero_grad()
        model.backward(grad)
        optimizer.step()
        if step % 1000 == 0:
            print(f"  step {step:5d}  batch loss {loss:.3f}")

    print("\nDriving the benchmark ladder (8 trials per condition)...")
    eval_config = EvalConfig(bev_spec=bev_spec, normal_cars=8, normal_pedestrians=30)
    print(f"  {'condition':16s} {'success':>8s}  outcomes")
    for condition in DrivingCondition:
        outcomes = {}
        for trial in range(8):
            route_rng = spawn_rng(1, f"route-{condition.value}-{trial}")
            plan = route_for_condition(world.town, condition, route_rng, eval_config)
            result = run_episode(
                model, world.town, plan, condition, eval_config, seed=1000 + trial
            )
            outcomes[result.reason] = outcomes.get(result.reason, 0) + 1
        rate = 100.0 * outcomes.get("success", 0) / 8
        print(f"  {condition.value:16s} {rate:7.0f}%  {outcomes}")


if __name__ == "__main__":
    main()
