"""Quickstart: one LbChat "chat" between two vehicles, end to end.

Builds a small simulated town, lets two expert vehicles collect driving
data, wraps them as LbChat learner nodes, and runs a single pairwise
chat: coreset exchange, model value assessment, Eq. 7 compression
optimization, model transfer, Eq. 8 aggregation, and dataset expansion.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core.chat import pairwise_chat
from repro.core.node import NodeConfig, VehicleNode
from repro.engine.random import spawn_rng
from repro.net import ChannelConfig, WirelessModel
from repro.nn import make_driving_model
from repro.sim import BevSpec, World, WorldConfig, collect_fleet_datasets


def main() -> None:
    print("== 1. Simulate a town and collect per-vehicle driving data ==")
    world_config = WorldConfig(
        map_size=400.0,
        grid_n=3,
        n_vehicles=2,
        n_background_cars=4,
        n_pedestrians=10,
        seed=3,
        min_route_length=120.0,
    )
    world = World(world_config)
    bev_spec = BevSpec(grid=16, cell=2.0)
    datasets = collect_fleet_datasets(world, duration=90.0, bev_spec=bev_spec)
    for vid, dataset in datasets.items():
        print(f"  {vid}: {len(dataset)} frames, command mix {dataset.command_counts()}")

    print("\n== 2. Wrap the vehicles as LbChat learner nodes ==")
    config = NodeConfig(coreset_size=20, learning_rate=1e-3)
    nodes = []
    for vid, dataset in sorted(datasets.items()):
        model = make_driving_model(bev_spec.shape, n_waypoints=5, hidden=64, seed=0)
        nodes.append(VehicleNode(vid, model, dataset, config, spawn_rng(1, vid)))
    node_a, node_b = nodes
    print(f"  coreset sizes: {len(node_a.coreset)} and {len(node_b.coreset)} frames")
    print(f"  coreset wire size: {node_a.coreset.nominal_bytes / 1e6:.2f} MB "
          f"(model: {config.nominal_model_bytes / 1e6:.0f} MB)")

    print("\n== 3. Train one vehicle ahead so its model is 'valuable' ==")
    for step in range(120):
        loss = node_b.train_step()
    print(f"  {node_b.node_id} trained 120 iterations, batch loss now {loss:.3f}")
    print(f"  {node_a.node_id} loss on own coreset:  "
          f"{node_a.evaluate(node_a.coreset.data):.3f}")
    print(f"  {node_a.node_id} loss on peer coreset: "
          f"{node_a.evaluate(node_b.coreset.data):.3f}")
    print(f"  {node_b.node_id} loss on own coreset:  "
          f"{node_b.evaluate(node_b.coreset.data):.3f}")

    print("\n== 4. Run one pairwise chat (vehicles 60 m apart, 15 s budget) ==")
    before = node_a.evaluate(node_a.coreset.data)
    outcome = pairwise_chat(
        node_a,
        node_b,
        distance_fn=lambda t: 60.0,
        start_time=0.0,
        contact_deadline=45.0,
        wireless=WirelessModel(),
        channel=ChannelConfig(),
        time_budget=15.0,
    )
    after = node_a.evaluate(node_a.coreset.data)
    print(f"  chat duration: {outcome.duration:.1f} s")
    print(f"  Eq. 7 decision: psi_{node_a.node_id}={outcome.psi.psi_i:.2f}, "
          f"psi_{node_b.node_id}={outcome.psi.psi_j:.2f} "
          f"(exchange time {outcome.psi.exchange_time:.1f} s)")
    print(f"  {node_a.node_id} received peer model: {outcome.i_received_model}")
    print(f"  frames absorbed: {outcome.absorbed_by_i} by {node_a.node_id}, "
          f"{outcome.absorbed_by_j} by {node_b.node_id}")
    print(f"  {node_a.node_id} coreset loss: {before:.3f} -> {after:.3f}")
    print(f"  {node_a.node_id} dataset grew to {len(node_a.dataset)} frames")

    assert outcome.coresets_exchanged
    print("\nDone: the untrained vehicle absorbed the trained peer's "
          "knowledge through one opportunistic encounter.")


if __name__ == "__main__":
    main()
