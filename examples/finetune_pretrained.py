"""Fine-tuning a pre-trained onboard model with LbChat (§V).

The paper points out that LbChat is not limited to training from
scratch: vehicles can continuously fine-tune a pre-trained onboard
model with locally collected data.  This example pre-trains a model on
one district of the town, distributes it to a fleet driving *all*
districts, and lets LbChat fine-tune it collaboratively — the fleet
adapts the model to road geometry the pre-training never saw.

Run:  python examples/finetune_pretrained.py
"""

import numpy as np

from repro.core.lbchat import LbChatConfig, LbChatTrainer
from repro.core.node import NodeConfig, VehicleNode
from repro.engine.random import spawn_rng
from repro.nn import Adam, make_driving_model, waypoint_l1
from repro.nn.params import get_flat_params, set_flat_params
from repro.sim import BevSpec, World, WorldConfig, collect_fleet_datasets, simulate_traces
from repro.sim.dataset import DrivingDataset


def main() -> None:
    bev_spec = BevSpec(grid=16, cell=2.0)
    world_config = WorldConfig(
        map_size=500.0,
        grid_n=4,
        n_vehicles=6,
        n_background_cars=6,
        n_pedestrians=20,
        seed=9,
        min_route_length=150.0,
        n_districts=4,
        ped_district_skew=True,
    )

    print("Collecting fleet data (vehicles drive their home districts)...")
    world = World(world_config)
    datasets = collect_fleet_datasets(world, duration=60.0, bev_spec=bev_spec)
    validation = DrivingDataset()
    local = {}
    for vid, dataset in sorted(datasets.items()):
        n = len(dataset)
        validation.extend([dataset.frame(i) for i in range(0, n, 8)])
        local[vid] = dataset.subset([i for i in range(n) if i % 8])

    print("Pre-training on district 0's data only (the 'factory' model)...")
    pretrain = DrivingDataset(local["v0"].frames())  # v0 lives in district 0
    model = make_driving_model(bev_spec.shape, 5, 64, seed=0)
    optimizer = Adam(model.parameters(), lr=1e-3)
    rng = np.random.default_rng(0)
    for _ in range(300):
        bev, commands, targets, _ = pretrain.sample_batch(64, rng)
        pred = model.forward(bev, commands)
        _, _, grad = waypoint_l1(pred, targets)
        model.zero_grad()
        model.backward(grad)
        optimizer.step()
    pretrained = get_flat_params(model)

    print("Distributing the pre-trained weights to the whole fleet...")
    node_config = NodeConfig(coreset_size=12, learning_rate=1e-3)
    nodes = []
    for vid, dataset in sorted(local.items()):
        m = make_driving_model(bev_spec.shape, 5, 64, seed=0)
        set_flat_params(m, pretrained)
        nodes.append(VehicleNode(vid, m, dataset, node_config, spawn_rng(4, vid)))

    initial = np.mean([n.evaluate(validation, with_penalty=False) for n in nodes])
    print(f"  pre-trained model's fleet validation loss: {initial:.3f}")

    print("Fine-tuning collaboratively with LbChat (wireless loss on)...")
    traces = simulate_traces(world_config, duration=500.0)
    trainer = LbChatTrainer(
        nodes,
        traces,
        validation,
        LbChatConfig(duration=400.0, train_interval=2.0, wireless_loss=True, seed=2),
    )
    trainer.run()

    final = np.mean([n.evaluate(validation, with_penalty=False) for n in nodes])
    grid = np.linspace(0.0, 400.0, 9)
    curve = trainer.loss_curve.mean_curve(grid)
    print(f"  validation loss over time: {np.round(curve, 3)}")
    print(f"  {initial:.3f} -> {final:.3f} after fine-tuning "
          f"({trainer.counters.get('chats'):.0f} chats, "
          f"receive rate {100 * trainer.receive_rate.rate:.0f}%)")


if __name__ == "__main__":
    main()
