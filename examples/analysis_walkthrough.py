"""Analysis walkthrough: chat logs, convergence stats, multi-seed tests.

Runs a small LbChat-vs-DP comparison across two seeds and then shows
the analysis toolkit on the results:

* per-chat records (Eq. 7 allocations, one-sided sends, abort stages),
* convergence statistics (time-to-threshold, AUC),
* multi-seed mean ± std and a Welch t-test on final losses.

Run:  python examples/analysis_walkthrough.py
"""

from dataclasses import replace

import numpy as np

from repro.experiments.analysis import convergence_summary
from repro.experiments.configs import CI
from repro.experiments.multiseed import compare_methods, run_seeds
from repro.experiments.runner import RunSpec, build_context, run_method
from repro.sim.world import WorldConfig

# A miniature scale so the walkthrough finishes in a couple of minutes.
SCALE = replace(
    CI,
    name="walkthrough",
    world=WorldConfig(
        map_size=400.0,
        grid_n=3,
        n_vehicles=4,
        n_background_cars=4,
        n_pedestrians=10,
        seed=5,
        min_route_length=120.0,
        n_districts=4,
        ped_district_skew=True,
    ),
    collect_duration=60.0,
    trace_duration=400.0,
    train_duration=300.0,
    train_interval=2.0,
    coreset_size=10,
)


def main() -> None:
    print("Building the shared context...")
    context = build_context(SCALE)

    print("\n== Chat-log anatomy of one LbChat run ==")
    result = run_method(context, RunSpec.for_context(context, "LbChat", seed=1))
    log = result.trainer.chat_log
    print(f"  chats: {len(log)}")
    print(f"  mean psi per direction: {log.mean_psi():.2f}")
    print(f"  one-sided sends: {100 * log.one_sided_fraction():.0f}% of completed chats")
    print(f"  aborts by stage: {log.abort_counts() or 'none'}")
    print(f"  chats per vehicle: {log.per_vehicle_chats()}")

    print("\n== Convergence statistics (LbChat vs DP, seed 1) ==")
    dp = run_method(context, RunSpec.for_context(context, "DP", seed=1))
    grid, lb_curve = result.loss_curve(13)
    _, dp_curve = dp.loss_curve(13)
    summary = convergence_summary(grid, {"LbChat": lb_curve, "DP": dp_curve})
    for method, stats in summary.items():
        t = stats["time_to_threshold"]
        t_text = f"{t:.0f}s" if np.isfinite(t) else "never"
        print(f"  {method:7s} final {stats['final']:.3f}  "
              f"reaches threshold at {t_text}  AUC {stats['auc']:.0f}")

    print("\n== Multi-seed comparison (2 seeds each) ==")
    lbchat = run_seeds(context, "LbChat", seeds=[1, 2], wireless=True, n_points=13)
    dp_seeds = run_seeds(context, "DP", seeds=[1, 2], wireless=True, n_points=13)
    print(" ", lbchat.describe())
    print(" ", dp_seeds.describe())
    verdict = compare_methods(lbchat, dp_seeds)
    print(f"  LbChat better by {-verdict['difference']:.3f} loss "
          f"(one-sided Welch p = {verdict['p_value_a_less_than_b']:.3f}; "
          "2 seeds is only a demo — add seeds for real inference)")


if __name__ == "__main__":
    main()
