"""World tour: watch the simulated town live, in ASCII.

Renders the world a few times while it runs — fleet vehicles as
letters, background cars as ``c``, pedestrians as ``.``, one vehicle's
route as ``*`` — then demonstrates the §III-A handshake protocol
including a three-way proposal cycle being broken.

Run:  python examples/world_tour.py
"""

from repro.core.handshake import HandshakeMediator, ProposalOutcome
from repro.engine import Simulator
from repro.sim import World, WorldConfig
from repro.sim.render_ascii import render_world


def tour() -> None:
    world = World(
        WorldConfig(
            map_size=400.0,
            grid_n=3,
            n_vehicles=5,
            n_background_cars=6,
            n_pedestrians=20,
            seed=4,
            min_route_length=120.0,
        )
    )
    plan = world.vehicles[0].plan  # highlight vehicle A's route
    for _ in range(3):
        print(render_world(world, width=68, plan=plan))
        print()
        world.run(15.0)


def handshake_demo() -> None:
    print("Handshake demo: a three-way proposal cycle (A->B, B->C, C->A)")
    sim = Simulator()
    mediator = HandshakeMediator(sim, max_wait=2.0)
    outcomes = {}

    def propose(proposer, target):
        outcome = yield from mediator.propose(proposer, target)
        outcomes[(proposer, target)] = outcome

    for proposer, target in ((0, 1), (1, 2), (2, 0)):
        sim.process(propose(proposer, target))
    sim.run()
    for (proposer, target), outcome in sorted(outcomes.items()):
        print(f"  vehicle {proposer} -> vehicle {target}: {outcome.value}")
    accepted = sum(o is ProposalOutcome.ACCEPTED for o in outcomes.values())
    print(f"  resolved in {sim.now:.2f}s with {accepted} accepted chat(s); "
          "no vehicle waits forever.")


if __name__ == "__main__":
    tour()
    handshake_demo()
