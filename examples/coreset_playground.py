"""Coreset mechanics: Algorithm 1, the ε-guarantee, and merge-reduce.

Shows the paper's coreset machinery in isolation:

* layered-sampling construction partitions samples into loss rings and
  samples per ring (Algorithm 1);
* the resulting mini-set approximates the full dataset's weighted loss
  within a small relative error, at a fraction of the size;
* the quality/size trade-off behind Table IV;
* merging two coresets and reducing back to the size budget (§III-D).

Run:  python examples/coreset_playground.py
"""

import numpy as np

from repro.coreset import (
    build_coreset,
    layer_assignments,
    merge_coresets,
    reduce_coreset,
    relative_coreset_error,
)
from repro.core.node import NodeConfig, VehicleNode
from repro.engine.random import spawn_rng
from repro.nn import make_driving_model
from repro.sim import BevSpec, World, WorldConfig, collect_fleet_datasets


def make_nodes():
    world = World(
        WorldConfig(
            map_size=400.0,
            grid_n=3,
            n_vehicles=2,
            n_background_cars=4,
            n_pedestrians=10,
            seed=5,
            min_route_length=120.0,
        )
    )
    bev_spec = BevSpec(grid=16, cell=2.0)
    datasets = collect_fleet_datasets(world, duration=120.0, bev_spec=bev_spec)
    config = NodeConfig(coreset_size=30, learning_rate=1e-3)
    nodes = []
    for vid, dataset in sorted(datasets.items()):
        model = make_driving_model(bev_spec.shape, 5, 64, seed=0)
        node = VehicleNode(vid, model, dataset, config, spawn_rng(2, vid))
        for _ in range(80):  # some training so losses are structured
            node.train_step()
        nodes.append(node)
    return nodes


def main() -> None:
    node_a, node_b = make_nodes()
    losses = node_a.per_sample_losses(node_a.dataset)

    print("== Layered partition (Algorithm 1, lines 1-6) ==")
    layers = layer_assignments(losses)
    for layer in range(int(layers.max()) + 1):
        members = losses[layers == layer]
        if len(members):
            print(f"  layer {layer}: {len(members):4d} samples, "
                  f"loss in [{members.min():.3f}, {members.max():.3f}]")

    print("\n== Size vs approximation quality (the Table IV trade-off) ==")
    rng = np.random.default_rng(0)
    print(f"  {'|C|':>5s}  {'rel. error':>10s}  {'wire size':>10s}")
    for size in (5, 15, 50, 150):
        errors = [
            relative_coreset_error(
                node_a.model,
                node_a.dataset,
                build_coreset(node_a.dataset, losses, size, rng),
            )
            for _ in range(5)
        ]
        coreset = build_coreset(node_a.dataset, losses, size, rng)
        print(f"  {len(coreset):5d}  {np.mean(errors):10.3f}  "
              f"{coreset.nominal_bytes / 1e6:8.2f}MB")

    print("\n== Merge-and-reduce (§III-D) ==")
    cs_a = build_coreset(node_a.dataset, losses, 30, rng)
    cs_b = build_coreset(
        node_b.dataset, node_b.per_sample_losses(node_b.dataset), 30, rng
    )
    merged = merge_coresets(cs_a, cs_b)
    print(f"  merged size: {len(merged)} (={len(cs_a)}+{len(cs_b)})")
    merged_losses = node_a.per_sample_losses(merged.data)
    reduced = reduce_coreset(merged, merged_losses, 30, rng)
    print(f"  reduced back to: {len(reduced)}")
    err = relative_coreset_error(node_a.model, merged.data, reduced)
    print(f"  reduced coreset's error vs the merged set: {err:.3f}")


if __name__ == "__main__":
    main()
