"""Extra ablation (DESIGN.md): Eq. 7's time-award coefficient λ_c.

λ_c prices unfinished contact time in the compression objective.  With
λ_c = 0 vehicles always send as much model as fits (no incentive to end
uninteresting exchanges early); a very large λ_c suppresses sending
altogether.  The sweep shows the paper's operating point (small positive
λ_c) keeps exchanges selective without starving model flow.
"""

from benchmarks.conftest import emit
from repro.experiments.runner import RunSpec, run_method

LAMBDAS = (0.0, 0.02, 0.5)


def test_lambda_c_sweep(benchmark, context, scale):
    def run():
        out = {}
        for lam in LAMBDAS:
            spec = RunSpec.for_context(
                context,
                "LbChat",
                wireless=True,
                seed=1,
                overrides={"lambda_c": lam},
            )
            result = run_method(context, spec)
            _, curve = result.loss_curve(9)
            chats = result.trainer.counters.get("chats")
            seconds = result.trainer.counters.get("chat_seconds")
            out[lam] = (
                float(curve[-1]),
                result.receive_rate,
                seconds / max(chats, 1),
            )
        return out

    out = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Extra ablation: Eq. 7 time-award coefficient lambda_c", "=" * 55]
    for lam, (loss, rate, mean_chat) in out.items():
        lines.append(
            f"lambda_c={lam:<5}  final loss {loss:6.3f}   "
            f"receive rate {100 * rate:5.1f}%   mean chat {mean_chat:5.1f}s"
        )
    emit("ablation_lambda_c", "\n".join(lines))

    # A harsh time award shortens chats (less model time bought).
    assert out[0.5][2] <= out[0.0][2] + 1.0
    # The default stays functional.
    assert out[0.02][0] <= out[0.0][0] * 1.5 + 0.2
