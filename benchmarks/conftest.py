"""Shared infrastructure for the per-table/figure benchmarks.

Training runs are expensive and shared across artifacts (Fig. 2, the
receive-rate comparison, and Tables II/III all consume the same five
method runs), so runs and online evaluations are memoized per session.

Every benchmark prints its rendered artifact and also writes it under
``benchmarks/out/`` so the reproduction results survive the run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.configs import get_scale
from repro.experiments.runner import (
    RunSpec,
    build_context,
    online_evaluate,
    run_method,
)

#: Scale used by the benchmark suite; override with REPRO_SCALE=paper.
SCALE_NAME = os.environ.get("REPRO_SCALE", "ci")

OUT_DIR = Path(__file__).parent / "out"

_runs: dict = {}
_evals: dict = {}


@pytest.fixture(scope="session")
def scale():
    return get_scale(SCALE_NAME)


@pytest.fixture(scope="session")
def context(scale):
    return build_context(scale)


def get_run(context, method: str, wireless: bool, seed: int = 1, coreset_size=None):
    """Memoized method run."""
    key = (method, wireless, seed, coreset_size)
    if key not in _runs:
        spec = RunSpec.for_context(
            context, method, wireless=wireless, seed=seed, coreset_size=coreset_size
        )
        _runs[key] = run_method(context, spec)
    return _runs[key]


def get_eval(context, method: str, wireless: bool, seed: int = 1, coreset_size=None):
    """Memoized online evaluation of a memoized run."""
    key = (method, wireless, seed, coreset_size)
    if key not in _evals:
        result = get_run(context, method, wireless, seed, coreset_size)
        _evals[key] = online_evaluate(result, context, seed=seed)
    return _evals[key]


def emit(name: str, text: str) -> None:
    """Print an artifact and persist it under benchmarks/out/."""
    print()
    print(text)
    OUT_DIR.mkdir(exist_ok=True)
    (OUT_DIR / f"{name}.txt").write_text(text + "\n")
