"""Table III: driving success rate with wireless loss (%).

Paper shape: LbChat loses at most a few points versus Table II while
DFL-DDS/DP drop hard; LbChat ends within ~1% of ProxSkip and up to 20%
above the decentralized baselines in Navi. (Dense).
"""

from benchmarks.conftest import emit, get_eval
from repro.experiments.tables import CONDITIONS, MAIN_METHODS
from repro.experiments.render import render_table


def test_table3(benchmark, context, scale):
    def run():
        values = {cond: {} for cond in CONDITIONS}
        for method in MAIN_METHODS:
            rates = get_eval(context, method, wireless=True)
            for cond in CONDITIONS:
                values[cond][method] = rates[cond]
        return values

    values = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "table3_success_with_wireless",
        render_table(
            "Table III: driving success rate (w wireless loss) (%)",
            CONDITIONS,
            list(MAIN_METHODS),
            values,
        ),
    )
    assert values["Straight"]["LbChat"] >= 80.0
    dense = values["Navi. (Dense)"]
    # The headline: under loss LbChat clearly beats the decentralized
    # baselines on the hardest condition.
    assert dense["LbChat"] >= dense["DFL-DDS"]
    assert dense["LbChat"] >= dense["DP"]
