"""Table VII: sharing coresets only — the SCO study (%).

Paper shape: SCO's final driving quality trails full LbChat by only a
point or two (the enriched datasets carry most of the information),
with the real difference showing up in convergence speed (Fig. 3).
"""

from benchmarks.conftest import emit, get_eval
from repro.experiments.tables import CONDITIONS
from repro.experiments.render import render_table

COLUMNS = ["W/O wireless loss", "W wireless loss"]


def test_table7(benchmark, context, scale):
    def run():
        values = {cond: {} for cond in CONDITIONS}
        for column, wireless in zip(COLUMNS, (False, True)):
            rates = get_eval(context, "SCO", wireless=wireless)
            for cond in CONDITIONS:
                values[cond][column] = rates[cond]
        return values

    values = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "table7_sco",
        render_table(
            "Table VII: success rate with sharing coreset only (%)",
            CONDITIONS,
            COLUMNS,
            values,
        ),
    )
    # SCO should remain in the same quality league as full LbChat.
    full = get_eval(context, "LbChat", wireless=False)
    assert values["Navi. (Dense)"][COLUMNS[0]] >= full["Navi. (Dense)"] - 25.0
