"""Fig. 3: LbChat vs SCO training-loss convergence.

Paper shape: both reach similar final loss, but SCO takes ~1.5-1.8x
longer to converge — merging valuable peer models imports knowledge
immediately, while coreset absorption must be re-learned locally.
"""

import numpy as np

from benchmarks.conftest import emit, get_run
from repro.experiments.render import render_curves


def test_fig3(benchmark, context, scale):
    def run():
        grid = np.linspace(0.0, scale.train_duration, 21)
        curves = {}
        for method in ("LbChat", "SCO"):
            result = get_run(context, method, wireless=True)
            _, curve = result.loss_curve(21)
            curves[method] = curve
        return grid, curves

    grid, curves = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "fig3_lbchat_vs_sco",
        render_curves("Fig. 3: training loss vs time (LbChat & SCO)", grid, curves),
    )

    # Final losses in the same league...
    assert curves["SCO"][-1] <= curves["LbChat"][-1] * 1.6 + 0.1
    # ...and LbChat converges at least as fast: at every intermediate
    # grid point LbChat's loss is not meaningfully above SCO's once the
    # initial transient passed.
    lb, sco = curves["LbChat"], curves["SCO"]
    threshold = max(lb[-1], sco[-1]) * 1.3

    def convergence_time(curve):
        below = np.where(curve <= threshold)[0]
        return grid[below[0]] if len(below) else grid[-1]

    assert convergence_time(lb) <= convergence_time(sco) * 1.8 + 30.0
