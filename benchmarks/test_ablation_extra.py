"""Extra ablations beyond the paper (DESIGN.md): route prioritization.

Masks the Eq. 5 neighbor ranking (random idle neighbor instead) while
keeping everything else; under wireless loss the receive rate should
drop toward the unprioritized baselines' regime.
"""

from benchmarks.conftest import emit, get_run


def test_no_prioritization_receive_rate(benchmark, context, scale):
    def run():
        full = get_run(context, "LbChat", wireless=True)
        masked = get_run(context, "LbChat (no priority)", wireless=True)
        return full.receive_rate, masked.receive_rate

    full_rate, masked_rate = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "ablation_no_prioritization",
        "\n".join(
            [
                "Extra ablation: Eq. 5 route prioritization (w wireless loss)",
                "=" * 60,
                f"LbChat (full)          receive rate: {100 * full_rate:5.1f}%",
                f"LbChat (no priority)   receive rate: {100 * masked_rate:5.1f}%",
            ]
        ),
    )
    assert full_rate >= masked_rate - 0.1
