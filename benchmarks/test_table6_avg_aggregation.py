"""Table VI: LbChat with plain model averaging (Eq. 8 masked) (%).

Paper shape: averaging instead of coreset-weighted aggregation costs up
to ~4 points — poorly performing models drag the merged model down.
"""

from benchmarks.conftest import emit, get_eval
from repro.experiments.tables import CONDITIONS
from repro.experiments.render import render_table

COLUMNS = ["W/O wireless loss", "W wireless loss"]


def test_table6(benchmark, context, scale):
    def run():
        values = {cond: {} for cond in CONDITIONS}
        for column, wireless in zip(COLUMNS, (False, True)):
            rates = get_eval(context, "LbChat (avg. agg.)", wireless=wireless)
            for cond in CONDITIONS:
                values[cond][column] = rates[cond]
        return values

    values = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "table6_avg_aggregation",
        render_table(
            "Table VI: success rate with avg. aggregation (%)",
            CONDITIONS,
            COLUMNS,
            values,
        ),
    )
    full = get_eval(context, "LbChat", wireless=True)
    assert full["Navi. (Dense)"] >= values["Navi. (Dense)"][COLUMNS[1]] - 10.0
