"""Table V: LbChat with equal compression ratios (Eq. 7 masked) (%).

Paper shape: fixed equal compression costs several points of success
rate versus full LbChat — valuable models get over-compressed and
worthless ones waste contact time.
"""

from benchmarks.conftest import emit, get_eval
from repro.experiments.tables import CONDITIONS
from repro.experiments.render import render_table

COLUMNS = ["W/O wireless loss", "W wireless loss"]


def test_table5(benchmark, context, scale):
    def run():
        values = {cond: {} for cond in CONDITIONS}
        for column, wireless in zip(COLUMNS, (False, True)):
            rates = get_eval(context, "LbChat (equal comp.)", wireless=wireless)
            for cond in CONDITIONS:
                values[cond][column] = rates[cond]
        return values

    values = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "table5_equal_compression",
        render_table(
            "Table V: success rate with equal comp. ratio (%)",
            CONDITIONS,
            COLUMNS,
            values,
        ),
    )
    # Full LbChat should not lose to its own crippled variant on the
    # hardest condition (small slack for evaluation noise).
    full = get_eval(context, "LbChat", wireless=True)
    assert full["Navi. (Dense)"] >= values["Navi. (Dense)"][COLUMNS[1]] - 10.0
