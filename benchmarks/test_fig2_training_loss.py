"""Fig. 2: training loss vs. time for LbChat and all benchmarks.

Paper shape being reproduced:

* (a) without wireless loss — LbChat converges to roughly ProxSkip's
  loss, near RSU-L, and visibly below DFL-DDS and DP.
* (b) with wireless loss — every method degrades, but LbChat's increase
  is marginal (route-sharing prioritization) and it ends ~at ProxSkip.
"""

import numpy as np

from benchmarks.conftest import emit, get_run
from repro.experiments.figures import FIG2_METHODS
from repro.experiments.render import render_curves


def _curves(context, scale, wireless):
    grid = np.linspace(0.0, scale.train_duration, 21)
    curves = {}
    for method in FIG2_METHODS:
        result = get_run(context, method, wireless)
        _, curve = result.loss_curve(21)
        curves[method] = curve
    return grid, curves


def test_fig2a_no_wireless_loss(benchmark, context, scale):
    def run():
        return _curves(context, scale, wireless=False)

    grid, curves = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "fig2a_loss_no_wireless",
        render_curves("Fig. 2(a): training loss vs time (w/o wireless loss)", grid, curves),
    )
    # Shape assertions: everyone learns; LbChat ends in ProxSkip's
    # neighborhood and below the fully decentralized baselines.
    for method, curve in curves.items():
        assert curve[-1] < curve[0], method
    assert curves["LbChat"][-1] <= curves["ProxSkip"][-1] * 1.5
    assert curves["LbChat"][-1] <= curves["DFL-DDS"][-1]
    assert curves["LbChat"][-1] <= curves["DP"][-1]


def test_fig2b_with_wireless_loss(benchmark, context, scale):
    def run():
        return _curves(context, scale, wireless=True)

    grid, curves = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "fig2b_loss_with_wireless",
        render_curves("Fig. 2(b): training loss vs time (w wireless loss)", grid, curves),
    )
    for method, curve in curves.items():
        assert curve[-1] < curve[0], method
    # LbChat stays competitive with the idealized central server and
    # clearly ahead of the decentralized baselines under loss.
    assert curves["LbChat"][-1] <= curves["ProxSkip"][-1] * 1.5
    assert curves["LbChat"][-1] <= curves["DFL-DDS"][-1]
    assert curves["LbChat"][-1] <= curves["DP"][-1]
