"""Table II: driving success rate without wireless loss (%).

Paper shape: everyone aces Straight/One Turn; on Navigation conditions
LbChat is within a few points of ProxSkip, comparable to RSU-L, and
clearly above DFL-DDS and DP; everyone degrades toward Dense.
"""

from benchmarks.conftest import emit, get_eval
from repro.experiments.tables import CONDITIONS, MAIN_METHODS
from repro.experiments.render import render_table


def test_table2(benchmark, context, scale):
    def run():
        values = {cond: {} for cond in CONDITIONS}
        for method in MAIN_METHODS:
            rates = get_eval(context, method, wireless=False)
            for cond in CONDITIONS:
                values[cond][method] = rates[cond]
        return values

    values = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "table2_success_no_wireless",
        render_table(
            "Table II: driving success rate (w/o wireless loss) (%)",
            CONDITIONS,
            list(MAIN_METHODS),
            values,
        ),
    )
    # Easy conditions are solved by competent models.
    assert values["Straight"]["LbChat"] >= 80.0
    # LbChat is competitive with the idealized server and beats the
    # fully decentralized baselines on the hardest condition.
    dense = values["Navi. (Dense)"]
    assert dense["LbChat"] >= dense["DFL-DDS"] - 5.0
    assert dense["LbChat"] >= dense["DP"] - 5.0
    # Difficulty ladder: dense traffic is no easier than empty roads.
    assert values["Navi. (Dense)"]["LbChat"] <= values["Navi. (Empty)"]["LbChat"] + 10.0
