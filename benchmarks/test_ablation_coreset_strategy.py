"""Extra ablation (DESIGN.md): coreset construction strategy.

The paper's Discussion (§V) claims LbChat works with alternative coreset
constructions.  This bench swaps Algorithm 1's layered sampling for
uniform weighted sampling and for the clustering-based construction and
compares the resulting LbChat convergence — the framework should remain
functional (similar final loss) with layered sampling at least
competitive.
"""

import numpy as np

from benchmarks.conftest import emit
from repro.experiments.runner import RunSpec, run_method

STRATEGIES = ("layered", "uniform", "kmeans")


def test_coreset_strategy_ablation(benchmark, context, scale):
    def run():
        finals = {}
        for strategy in STRATEGIES:
            spec = RunSpec.for_context(
                context, "LbChat", wireless=True, seed=1, coreset_strategy=strategy
            )
            result = run_method(context, spec)
            _, curve = result.loss_curve(9)
            finals[strategy] = (float(curve[-1]), result.receive_rate)
        return finals

    finals = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Extra ablation: coreset construction strategy (LbChat, w loss)", "=" * 62]
    for strategy, (loss, rate) in finals.items():
        lines.append(f"{strategy:8s}  final loss {loss:6.3f}   receive rate {100 * rate:5.1f}%")
    emit("ablation_coreset_strategy", "\n".join(lines))

    losses = {s: l for s, (l, _) in finals.items()}
    # All strategies keep LbChat functional (same league of final loss).
    assert max(losses.values()) <= min(losses.values()) * 1.6 + 0.2
