"""Micro-benchmarks of the hot components (true pytest-benchmark timing).

These are throughput benchmarks rather than paper artifacts: coreset
construction, top-k compression, Eq. 7 optimization, and BEV rendering
all sit on the simulation's critical path.
"""

import numpy as np
import pytest

from repro.compression import compress_topk
from repro.core.psi import PsiLossMap, optimize_compression
from repro.coreset import build_coreset
from repro.sim import BevSpec, TownMap
from repro.sim.bev import render_bev
from repro.sim.dataset import DrivingDataset, Frame
from repro.sim.kinematics import VehicleState
from repro.sim.router import RoutePlan


@pytest.fixture(scope="module")
def dataset():
    rng = np.random.default_rng(0)
    frames = [
        Frame(
            f"f{i}",
            rng.normal(size=(5, 12, 12)).astype(np.float32),
            int(rng.integers(0, 4)),
            rng.normal(size=10).astype(np.float32),
            1.0,
        )
        for i in range(500)
    ]
    return DrivingDataset(frames)


@pytest.fixture(scope="module")
def node(dataset):
    from repro.core.node import NodeConfig, VehicleNode
    from repro.engine.random import spawn_rng
    from repro.nn import make_driving_model

    model = make_driving_model((5, 12, 12), 5, hidden=48, seed=0)
    config = NodeConfig(coreset_size=50, learning_rate=1e-3)
    return VehicleNode("bench", model, dataset.copy(), config, spawn_rng(7, "bench"))


def test_dataset_arrays_speed(benchmark, dataset):
    """The per-train-step array access — pre-rewrite this re-stacked
    every BEV tensor from a Python list on every call."""
    bev, commands, targets, weights = benchmark(dataset.arrays)
    assert bev.shape == (len(dataset), 5, 12, 12)
    assert not bev.flags.writeable


def test_sample_batch_speed(benchmark, dataset):
    rng = np.random.default_rng(3)
    bev, commands, targets, idx = benchmark(
        lambda: dataset.sample_batch(64, rng, balance_commands=True)
    )
    assert bev.shape[0] == 64


def test_per_sample_losses_warm_speed(benchmark, node):
    """Fully-cached evaluation — two fancy-indexing ops, no dict walk."""
    node.per_sample_losses(node.dataset)  # populate the cache
    losses = benchmark(lambda: node.per_sample_losses(node.dataset))
    assert losses.shape == (len(node.dataset),)


def test_psi_map_speed(benchmark, node):
    """Eq. 7 map fit: one shared magnitude ordering sliced per psi."""
    from repro.core.psi import DEFAULT_PSI_GRID

    psi_map = benchmark(node.build_psi_map)
    assert len(psi_map.psis) == len(DEFAULT_PSI_GRID)


def test_coreset_construction_speed(benchmark, dataset):
    rng = np.random.default_rng(1)
    losses = np.abs(np.random.default_rng(2).normal(size=len(dataset))) + 0.01
    coreset = benchmark(lambda: build_coreset(dataset, losses, 50, rng))
    assert 30 <= len(coreset) <= 60


def test_topk_compression_speed(benchmark):
    flat = np.random.default_rng(0).normal(size=2_000_000).astype(np.float32)
    compressed = benchmark(lambda: compress_topk(flat, 0.3, 52 * 1024 * 1024))
    assert compressed.psi == pytest.approx(0.3, abs=0.01)


def test_eq7_optimization_speed(benchmark):
    map_a = PsiLossMap(np.array([0.05, 0.3, 1.0]), np.array([3.0, 1.6, 1.0]))
    map_b = PsiLossMap(np.array([0.05, 0.3, 1.0]), np.array([2.5, 1.4, 0.9]))
    decision = benchmark(
        lambda: optimize_compression(
            map_a,
            map_b,
            loss_i_on_cj=2.0,
            loss_j_on_ci=2.2,
            model_size_bytes=52 * 1024 * 1024,
            bandwidth_bps=31e6,
            time_budget=15.0,
            contact_duration=40.0,
        )
    )
    assert decision.exchange_time <= 15.0 + 1e-9


def _run_transfer():
    from repro.net.channel import ChannelConfig, simulate_transfer
    from repro.net.wireless import WirelessModel

    # A 52 MB (nominal) model over a lossy link while closing from 400 m:
    # ~30 distance/goodput chunk evaluations — the per-chat hot path.
    return simulate_transfer(
        52 * 1024 * 1024,
        lambda t: 400.0 - 10.0 * t,
        WirelessModel(),
        ChannelConfig(),
        start_time=0.0,
        deadline=40.0,
    )


def test_transfer_sim_speed(benchmark):
    """Baseline for the telemetry no-op fast path (telemetry disabled)."""
    from repro.telemetry import hooks

    assert hooks.active() is None
    result = benchmark(_run_transfer)
    assert result.completed


def test_transfer_sim_speed_traced(benchmark):
    """Same transfer with telemetry active — compare against the test
    above; the gap is the full (enabled) instrumentation cost, and the
    disabled-path overhead is bounded well below it."""
    from repro.telemetry import TelemetrySession

    with TelemetrySession():
        result = benchmark(_run_transfer)
    assert result.completed


def test_parallel_engine_speed(benchmark, context, scale):
    """Serial vs pooled execution of four independent runs.

    Always asserts bit-identical results; the >= 2x speedup target from
    the paper-reproduction roadmap only applies on >= 4 physical cores
    (CI containers are often single-core), so it is asserted
    conditionally and the measured ratio is archived either way.
    """
    import os
    import time

    from benchmarks.conftest import emit
    from repro.experiments.runner import RunSpec
    from repro.parallel import run_specs

    specs = [
        RunSpec.for_context(context, method, wireless=True, seed=seed)
        for method in ("LbChat", "DP")
        for seed in (1, 2)
    ]

    t0 = time.perf_counter()
    serial = run_specs(specs, jobs=1)
    serial_s = time.perf_counter() - t0

    def pooled():
        return run_specs(specs, jobs=4)

    parallel = benchmark.pedantic(pooled, rounds=1, iterations=1)
    parallel_s = benchmark.stats.stats.mean

    for left, right in zip(serial, parallel):
        assert np.array_equal(left.loss_curve(9)[1], right.loss_curve(9)[1])
        assert left.receive_attempted == right.receive_attempted
        for node_l, node_r in zip(left.nodes, right.nodes):
            assert np.array_equal(node_l.flat_params, node_r.flat_params)

    cores = os.cpu_count() or 1
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    emit(
        "parallel_speed",
        "Parallel engine: 4 independent runs, serial vs 4-worker pool\n"
        + "=" * 60
        + f"\nserial   {serial_s:8.2f}s"
        + f"\npool (4) {parallel_s:8.2f}s"
        + f"\nspeedup  {speedup:8.2f}x on {cores} core(s)"
        + "\nresults bit-identical: yes",
    )
    if cores >= 4:
        assert speedup >= 2.0, f"expected >= 2x on {cores} cores, got {speedup:.2f}x"


def test_bev_render_speed(benchmark):
    town = TownMap(size=400.0, grid_n=3, seed=0)
    a, b = list(town.graph.edges())[0]
    plan = RoutePlan(np.stack([town.node_position(a), town.node_position(b)]))
    start = plan.point_at(0.0)
    state = VehicleState(start[0], start[1], plan.heading_at(0.0), 8.0)
    rng = np.random.default_rng(0)
    cars = rng.uniform(0, 400, size=(30, 2))
    peds = rng.uniform(0, 400, size=(100, 2))
    bev = benchmark(
        lambda: render_bev(town, BevSpec(grid=20, cell=2.0), state, plan, cars, peds)
    )
    assert bev.shape == (5, 20, 20)


@pytest.fixture(scope="module")
def paper_world():
    """The §IV-A world (32 experts + 50 cars + 250 pedestrians), warmed
    past the spawn pattern so neighbor queries see realistic density."""
    from repro.experiments.configs import PAPER
    from repro.sim.world import World

    world = World(PAPER.world)
    world.run(5.0)
    return world


def test_world_step_speed(benchmark, paper_world):
    """One 10 Hz control tick at paper scale — the context-build hot
    loop (pre-rewrite: an O(n^2) distance scan per tick)."""
    benchmark(paper_world.step)


def test_road_obstacles_grid_speed(benchmark, paper_world):
    """One tick's worth of fleet neighbor queries, grid build included."""
    from repro.sim.spatial import SpatialGrid
    from repro.sim.traffic import road_obstacles

    world = paper_world
    everything = np.vstack(
        [
            world.vehicle_positions(),
            world.traffic.car_positions(),
            world.traffic.pedestrian_positions(),
        ]
    )

    def sweep():
        grid = SpatialGrid(everything)
        return [
            road_obstacles(world.town, everything, everything[i], grid=grid, exclude=i)
            for i in range(len(world.vehicles))
        ]

    results = benchmark(sweep)
    assert len(results) == len(world.vehicles)


def test_snapshot_other_cars_speed(benchmark, paper_world):
    """Per-snapshot fleet stacking (pre-rewrite: a fresh Python list
    comprehension over all vehicle states per query)."""
    snap = paper_world.snapshots[-1]
    ids = list(snap.vehicle_states)
    out = benchmark(lambda: [snap.other_car_positions(v) for v in ids])
    assert out[0].shape == (len(ids) - 1 + len(snap.bg_car_positions), 2)


def test_render_fleet_bev_speed(benchmark, paper_world):
    """Batched per-snapshot rendering of all 32 fleet BEVs."""
    from repro.experiments.configs import PAPER
    from repro.sim.bev import render_fleet_bev

    world = paper_world
    snap = world.snapshots[-1]
    ids = list(snap.vehicle_states)
    states = [snap.vehicle_states[v] for v in ids]
    plans = [snap.vehicle_plans[v] for v in ids]
    fleet = np.array([s.position for s in states])
    bevs = benchmark(
        lambda: render_fleet_bev(
            world.town,
            PAPER.bev,
            states,
            plans,
            fleet,
            snap.bg_car_positions,
            snap.pedestrian_positions,
        )
    )
    assert bevs.shape == (len(ids),) + PAPER.bev.shape
