"""Table IV: LbChat with 10x and 1/10x the default coreset size (%).

Paper shape: both the oversized and the undersized coreset hurt LbChat
by several points of success rate — too large crowds out the contact
window, too small misrepresents the local dataset.
"""

from benchmarks.conftest import emit, get_eval
from repro.experiments.tables import CONDITIONS
from repro.experiments.render import render_table


def test_table4(benchmark, context, scale):
    large = scale.coreset_size * 10
    small = max(scale.coreset_size // 10, 2)
    columns = [f"{large} (W/O)", f"{small} (W/O)", f"{large} (W)", f"{small} (W)"]

    def run():
        values = {cond: {} for cond in CONDITIONS}
        for column, size, wireless in (
            (columns[0], large, False),
            (columns[1], small, False),
            (columns[2], large, True),
            (columns[3], small, True),
        ):
            rates = get_eval(context, "LbChat", wireless=wireless, coreset_size=size)
            for cond in CONDITIONS:
                values[cond][column] = rates[cond]
        return values

    values = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "table4_coreset_size",
        render_table(
            "Table IV: success rate with different coreset sizes (%)",
            CONDITIONS,
            columns,
            values,
        ),
    )
    # Default-size runs (Tables II/III) should be at least competitive
    # with the mis-sized variants on the hardest condition.
    default_no_loss = get_eval(context, "LbChat", wireless=False)
    dense_default = default_no_loss["Navi. (Dense)"]
    dense_large = values["Navi. (Dense)"][columns[0]]
    dense_small = values["Navi. (Dense)"][columns[1]]
    assert dense_default >= min(dense_large, dense_small) - 10.0
