"""§IV-C: successful model receiving rate under wireless loss.

Paper numbers: LbChat 87%, ProxSkip 60%, RSU-L 60%, DFL-DDS 52%, DP 51%.
The reproduction target is the *gap*: LbChat's route-based neighbor
prioritization gives it a far higher completion rate than every
benchmark.
"""

from benchmarks.conftest import emit, get_run
from repro.experiments.figures import FIG2_METHODS


def test_receive_rates(benchmark, context, scale):
    def run():
        return {
            method: get_run(context, method, wireless=True).receive_rate
            for method in FIG2_METHODS
        }

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Successful model receiving rate (w wireless loss)", "=" * 50]
    for method, rate in rates.items():
        lines.append(f"{method:10s}  {100 * rate:5.1f}%")
    emit("receive_rates", "\n".join(lines))

    assert rates["LbChat"] > rates["DFL-DDS"]
    assert rates["LbChat"] > rates["DP"]
    # LbChat lands in the high-completion regime the paper reports.
    assert rates["LbChat"] >= 0.6
