#!/usr/bin/env python
"""CI smoke test: within-run step sharding is bit-identical to serial.

Runs the miniature hotpath-smoke experiment three times — serially,
with 2 step workers, and with 4 — and requires every digest (loss
curves, receive rates, counters, trained parameters, dataset and
coreset state) to be byte-equal across all three.  Sharding the
fleet's batched training step across worker processes is a pure
execution strategy; any divergence anywhere fails the gate.  The
serial digest is additionally pinned against a checked-in golden file
so the gate also catches drift that hits every worker count equally:

    PYTHONPATH=src python scripts/stepshard_smoke.py            # verify
    PYTHONPATH=src python scripts/stepshard_smoke.py --record   # re-baseline

The sharded runs execute inside a telemetry session and must show the
worker pool actually stepping (``stepshard.steps`` > 0) — a silently
engaged serial fallback would make the equality vacuous.

Sits next to ``parallel_smoke.py`` (run-level pool determinism) and
``hotpath_smoke.py`` (data-layer determinism); this script gates
step-level sharding determinism.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from hotpath_smoke import build_scale as _hotpath_scale  # noqa: E402
from hotpath_smoke import digest_result  # noqa: E402

GOLDEN_PATH = Path(__file__).parent / "stepshard_golden.json"

SEED = 3
WORKER_COUNTS = (2, 4)


def build_scale():
    """The hotpath-smoke world with a batch size its datasets can fill.

    The pool only takes over full batches (``b == batch_size``); the
    hotpath scale's batch of 64 exceeds what its 30s collection window
    yields, which would leave every step on the serial path and make
    this gate vacuous.
    """
    from dataclasses import replace

    return replace(_hotpath_scale(), name="stepshard-smoke", batch_size=16)


def run_digest(context, step_workers: int) -> dict[str, str]:
    from repro.experiments.runner import RunSpec, run_method
    from repro.telemetry.hooks import TelemetrySession

    overrides = {"step_workers": step_workers} if step_workers != 1 else {}
    spec = RunSpec.for_context(context, "LbChat", seed=SEED, overrides=overrides)
    with TelemetrySession() as session:
        result = run_method(context, spec)
        counters = session.registry.state()["counters"]
    if step_workers > 1:
        stepped = counters.get("stepshard.steps", 0.0)
        assert stepped > 0, (
            f"step_workers={step_workers} never engaged the worker pool "
            "(serial fallback ran instead) — the equality gate is vacuous"
        )
        print(f"  pool engaged: {int(stepped)} sharded steps")
    return digest_result(result)


def run_and_digest() -> dict:
    from repro.experiments.runner import build_context

    scale = build_scale()
    print("building smoke world (3 vehicles, batch 16)...")
    context = build_context(scale)
    print("running LbChat serially...")
    serial = run_digest(context, 1)
    for workers in WORKER_COUNTS:
        print(f"running LbChat with step_workers={workers}...")
        sharded = run_digest(context, workers)
        mismatched = [key for key in serial if sharded[key] != serial[key]]
        assert not mismatched, (
            f"step_workers={workers} diverged from serial: {mismatched}"
        )
        print(f"  bit-identical to serial ({len(serial)} digests)")
    return {"LbChat": serial}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--record",
        action="store_true",
        help="overwrite the golden digest file with this run's digests",
    )
    args = parser.parse_args()

    digests = run_and_digest()

    if args.record:
        GOLDEN_PATH.write_text(json.dumps(digests, indent=2, sort_keys=True) + "\n")
        print(f"golden digests recorded to {GOLDEN_PATH}")
        return 0

    if not GOLDEN_PATH.exists():
        print(f"no golden file at {GOLDEN_PATH}; run with --record first")
        return 1
    golden = json.loads(GOLDEN_PATH.read_text())

    failures: list[str] = []
    for section in sorted(golden):
        for key in sorted(golden[section]):
            got, want = digests[section][key], golden[section][key]
            ok = got == want
            print(f"  [{'ok' if ok else 'FAIL'}] {section}: {key}")
            if not ok:
                failures.append(f"{section}.{key}: got {got!r}, want {want!r}")

    if failures:
        print(f"\nSMOKE FAILED: {len(failures)} digest mismatch(es):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("\nsmoke OK: sharded stepping bit-identical to serial and to golden")
    return 0


if __name__ == "__main__":
    sys.exit(main())
