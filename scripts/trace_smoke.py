#!/usr/bin/env python
"""CI smoke test: run a traced mini-fleet end-to-end and sanity-check it.

Builds a tiny 4-vehicle world (same scale as the unit-test fixtures),
trains LbChat for a couple of simulated minutes with telemetry active,
exports the JSONL trace, reloads it, renders the text report, and
asserts the cross-cutting invariants:

* one ``trainer_run`` span; one ``chat`` span per ChatLog record;
* registry chat/receive counters agree with the trainer's own recorders;
* the export round-trips (reloaded span counts match the live tracer).

It also times an identical *untraced* run and prints the relative
telemetry overhead.  Exits non-zero on any violation, so it can gate CI:

    PYTHONPATH=src python scripts/trace_smoke.py
"""

from __future__ import annotations

import sys
import tempfile
import time
from pathlib import Path


def build_fleet(seed: int = 11):
    from repro.core.node import NodeConfig, VehicleNode
    from repro.engine.random import spawn_rng
    from repro.nn import make_driving_model
    from repro.sim import BevSpec, World, WorldConfig, collect_fleet_datasets
    from repro.sim.dataset import DrivingDataset
    from repro.sim.traces import simulate_traces

    bev = BevSpec(grid=12, cell=2.5)
    world_config = WorldConfig(
        map_size=400.0,
        grid_n=3,
        n_vehicles=4,
        n_background_cars=4,
        n_pedestrians=10,
        seed=seed,
        min_route_length=120.0,
    )
    world = World(world_config)
    datasets = collect_fleet_datasets(world, duration=60.0, bev_spec=bev, n_waypoints=4)
    traces = simulate_traces(world_config, duration=180.0)
    validation = DrivingDataset(
        [datasets["v0"].frame(i) for i in range(0, min(len(datasets["v0"]), 30), 6)]
    )

    def make_nodes():
        nodes = []
        for vid, dataset in sorted(datasets.items()):
            model = make_driving_model(bev.shape, 4, hidden=32, seed=0)
            config = NodeConfig(coreset_size=10, learning_rate=1e-3)
            nodes.append(
                VehicleNode(
                    vid,
                    model,
                    DrivingDataset(dataset.frames()),
                    config,
                    spawn_rng(5, vid),
                )
            )
        return nodes

    return make_nodes, traces, validation


def run_once(make_nodes, traces, validation, session=None):
    from repro.core.lbchat import LbChatConfig, LbChatTrainer
    from repro.telemetry import hooks

    trainer = LbChatTrainer(
        make_nodes(),
        traces,
        validation,
        LbChatConfig(
            duration=120.0, train_interval=2.0, record_interval=30.0,
            wireless_loss=False, seed=1,
        ),
    )
    start = time.perf_counter()
    if session is not None:
        with session:
            trainer.run()
    else:
        assert hooks.active() is None
        trainer.run()
    return trainer, time.perf_counter() - start


def main() -> int:
    from repro.telemetry import (
        TelemetrySession,
        export_jsonl,
        load_jsonl,
        report_session,
    )

    print("building mini-fleet world...")
    make_nodes, traces, validation = build_fleet()

    print("running untraced (telemetry disabled)...")
    untraced_trainer, baseline_s = run_once(make_nodes, traces, validation)

    print("running traced...")
    session = TelemetrySession(label="smoke LbChat")
    trainer, traced_s = run_once(make_nodes, traces, validation, session)

    failures: list[str] = []

    def check(ok: bool, what: str) -> None:
        print(f"  [{'ok' if ok else 'FAIL'}] {what}")
        if not ok:
            failures.append(what)

    n_chats = len(trainer.chat_log)
    counts = session.tracer.span_counts()
    snap = session.registry.snapshot()
    check(n_chats > 0, f"fleet chatted at all ({n_chats} chats)")
    check(counts.get("trainer_run") == 1, "exactly one trainer_run span")
    check(counts.get("chat", 0) == n_chats, "one chat span per ChatLog record")
    check(
        snap["counters"].get("chat.count") == n_chats,
        "registry chat.count matches ChatLog",
    )
    check(
        snap["counters"].get("model_rx.attempted")
        == float(trainer.receive_rate.attempted),
        "registry receive attempts match trainer recorder",
    )

    with tempfile.TemporaryDirectory() as tmp:
        path = export_jsonl(session, Path(tmp) / "smoke.jsonl")
        reloaded = load_jsonl(path)
        check(
            reloaded.span_counts() == counts,
            "JSONL export round-trips span counts",
        )
        check(reloaded.metrics == snap, "JSONL export round-trips metrics")

    # The untraced run itself chatted identically (determinism check).
    check(
        len(untraced_trainer.chat_log) == n_chats,
        "telemetry does not perturb the simulation",
    )

    print()
    print(report_session(session))
    overhead = (traced_s - baseline_s) / baseline_s if baseline_s > 0 else 0.0
    print(
        f"\nwall-clock: untraced {baseline_s:.2f}s, traced {traced_s:.2f}s "
        f"({100 * overhead:+.1f}% with telemetry ENABLED; disabled-path "
        "overhead is a single None check per hook)"
    )

    if failures:
        print(f"\nSMOKE FAILED: {len(failures)} check(s): {failures}")
        return 1
    print("\nsmoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
