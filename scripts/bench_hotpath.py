#!/usr/bin/env python
"""Time the data-layer/evaluation hot path and emit a JSON report.

Run once on the pre-rewrite tree and once after, then merge the two
phases into ``BENCH_hotpath.json`` (the repo-root artifact tracked by
ISSUE 4):

    PYTHONPATH=src python scripts/bench_hotpath.py --label before --out /tmp/before.json
    PYTHONPATH=src python scripts/bench_hotpath.py --label after  --out /tmp/after.json
    PYTHONPATH=src python scripts/bench_hotpath.py --merge /tmp/before.json /tmp/after.json \
        --out BENCH_hotpath.json

Component benchmarks use the 500-frame dataset the acceptance criteria
name; the end-to-end benchmarks run ``run_method`` (what ``repro run``
executes after context building) on the hotpath-smoke world and on the
paper world (32 vehicles, 1 km map) with a shortened training horizon
so a single timing run stays tractable.

``--suite checkpoint`` measures the barrier-checkpointing subsystem
(ISSUE 6) on the hotpath-smoke world: an identical run with and without
checkpointing, the per-barrier snapshot/save cost, resume latency, and
bytes on disk per checkpoint — the artifact behind
``BENCH_checkpoint.json``:

    PYTHONPATH=src python scripts/bench_hotpath.py --suite checkpoint \
        --out BENCH_checkpoint.json

``--suite fleet`` measures the fleet-batched training engine (ISSUE 7):
batched-vs-per-node train-step and evaluate throughput at 8/32/128
nodes, the paper-scale training-step segment, and the end-to-end
hotpath-smoke LbChat run.  Record the "before" phase with
``--fleet-mode per-node`` and the "after" phase with
``--fleet-mode batched``, then merge with ``--update-section fleet``
so the report nests inside ``BENCH_hotpath.json`` next to the
components report:

    PYTHONPATH=src python scripts/bench_hotpath.py --suite fleet \
        --fleet-mode per-node --label before --out /tmp/fleet-before.json
    PYTHONPATH=src python scripts/bench_hotpath.py --suite fleet \
        --fleet-mode batched --label after --out /tmp/fleet-after.json
    PYTHONPATH=src python scripts/bench_hotpath.py \
        --merge /tmp/fleet-before.json /tmp/fleet-after.json \
        --update-section fleet --out BENCH_hotpath.json

``--suite cityscale`` measures the city-scale machinery (ISSUE 8):
encounter-window extraction via the swept spatial sweep vs the
all-pairs reference, plus sharded city-world stepping, at 32/128/512
vehicles in the *constant-density* growth regime (map side scales with
sqrt(fleet), the way a city grows) — the regime where sub-O(n²)
scaling is observable.  Each fleet size runs in its own subprocess so
``peak_rss_mb`` is a per-size measurement (``ru_maxrss`` is monotonic
within a process).  Record the repo-root artifact with:

    PYTHONPATH=src python scripts/bench_hotpath.py --suite cityscale \
        --update-section cityscale --out BENCH_cityscale.json

``--suite stepshard`` measures within-run step sharding (ISSUE 9):
the paper-scale training segment at 1/2/4 step workers, the end-to-end
smoke run serial vs sharded, and the auto-tuner's pick for this host —
the artifact behind ``BENCH_stepshard.json``:

    PYTHONPATH=src python scripts/bench_hotpath.py --suite stepshard \
        --out BENCH_stepshard.json

``--suite overlap`` measures overlapped chat transfers (ISSUE 10):
end-to-end LbChat at paper scale and on the city-smoke world with
``overlap_chat`` off vs on (best-of-2 wall-clock per flag), plus the
fleet engine's mean step width and virtual-time training instants per
contact — the artifact behind ``BENCH_overlap.json``:

    PYTHONPATH=src python scripts/bench_hotpath.py --suite overlap \
        --out BENCH_overlap.json

``--suite worldsim`` instead times the world-simulation hot path at
paper scale (332 agents): ``World.step``, one tick's worth of
``road_obstacles`` neighbor queries, ``render_bev``, per-snapshot fleet
stacking, ``nearest_node``, and the end-to-end ``paper_context_build``
(the artifact behind ``BENCH_worldsim.json``, ISSUE 5).  The suite
auto-detects the spatial-hash grid so the same file runs on the
pre-rewrite tree for the "before" phase.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

N_FRAMES = 500
BEV_SHAPE = (5, 12, 12)
N_WAYPOINTS = 5


def _time(fn, repeat: int, warmup: int = 2) -> float:
    """Best-of-``repeat`` wall-clock seconds for one call of ``fn``."""
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def make_dataset(bev_shape=BEV_SHAPE, n_frames=N_FRAMES, seed=0):
    from repro.sim.dataset import DrivingDataset, Frame

    rng = np.random.default_rng(seed)
    frames = [
        Frame(
            f"f{seed}-{i}",
            rng.normal(size=bev_shape).astype(np.float32),
            int(rng.integers(0, 4)),
            rng.normal(size=2 * N_WAYPOINTS).astype(np.float32),
            float(rng.uniform(0.5, 2.0)),
        )
        for i in range(n_frames)
    ]
    return DrivingDataset(frames)


def make_node(dataset):
    from repro.core.node import NodeConfig, VehicleNode
    from repro.engine.random import spawn_rng
    from repro.nn import make_driving_model
    from repro.sim.dataset import DrivingDataset

    model = make_driving_model(BEV_SHAPE, N_WAYPOINTS, hidden=48, seed=0)
    config = NodeConfig(coreset_size=50, learning_rate=1e-3)
    return VehicleNode(
        "bench", model, DrivingDataset(dataset.frames()), config, spawn_rng(7, "bench")
    )


def bench_components() -> dict[str, float]:
    dataset = make_dataset()
    rng = np.random.default_rng(1)
    out: dict[str, float] = {}

    out["dataset_arrays_s"] = _time(lambda: dataset.arrays(), repeat=50)
    out["sample_batch_s"] = _time(
        lambda: dataset.sample_batch(64, rng, balance_commands=True), repeat=50
    )
    out["command_counts_s"] = _time(lambda: dataset.command_counts(), repeat=200)
    out["total_weight_s"] = _time(lambda: dataset.total_weight(), repeat=200)
    out["subset_100_s"] = _time(lambda: dataset.subset(range(100)), repeat=50)
    out["with_weights_s"] = _time(
        lambda: dataset.with_weights(np.ones(len(dataset))), repeat=50
    )

    node = make_node(dataset)
    node.per_sample_losses(node.dataset)  # warm the cache
    out["per_sample_losses_warm_s"] = _time(
        lambda: node.per_sample_losses(node.dataset), repeat=50
    )

    def cold_losses():
        node.model_version += 1  # invalidate every cache entry
        node.per_sample_losses(node.dataset)

    out["per_sample_losses_cold_s"] = _time(cold_losses, repeat=20)
    out["evaluate_s"] = _time(lambda: node.evaluate(node.dataset), repeat=50)
    out["psi_map_s"] = _time(lambda: node.build_psi_map(), repeat=10)
    return out


def bench_end_to_end(which: str) -> dict[str, float]:
    from repro.experiments.runner import RunSpec, build_context, run_method

    out: dict[str, float] = {}
    if which in ("smoke", "both"):
        sys.path.insert(0, str(Path(__file__).parent))
        from hotpath_smoke import build_scale

        context = build_context(build_scale())
        spec = RunSpec.for_context(context, "LbChat", wireless=True, seed=3)
        t0 = time.perf_counter()
        run_method(context, spec)
        out["run_lbchat_smoke_s"] = time.perf_counter() - t0
    if which in ("paper", "both"):
        from dataclasses import replace

        from repro.experiments.configs import PAPER

        # The paper world (32 vehicles, 1 km map, 150-sample coresets)
        # with a shortened training horizon: the data-layer cost per
        # simulated second is what we are measuring, not convergence.
        scale = replace(
            PAPER,
            name="paper-e2e-bench",
            collect_duration=120.0,
            trace_duration=400.0,
            train_duration=300.0,
        )
        t0 = time.perf_counter()
        context = build_context(scale)
        out["paper_context_build_s"] = time.perf_counter() - t0
        spec = RunSpec.for_context(context, "LbChat", wireless=True, seed=3)
        t0 = time.perf_counter()
        run_method(context, spec)
        out["run_lbchat_paper_world_s"] = time.perf_counter() - t0
    return out


def bench_worldsim() -> dict[str, float]:
    """World-simulation hot-path timings at paper scale (332 agents)."""
    from dataclasses import replace

    from repro.experiments.configs import PAPER
    from repro.sim.bev import render_bev
    from repro.sim.traffic import road_obstacles
    from repro.sim.world import World

    try:
        from repro.sim.spatial import SpatialGrid
    except ImportError:  # pre-rewrite tree: brute-force "before" phase
        SpatialGrid = None

    out: dict[str, float] = {}
    world = World(PAPER.world)
    world.run(5.0)  # let agents disperse from their spawn pattern

    def ten_steps():
        for _ in range(10):
            world.step()

    out["world_step_s"] = _time(ten_steps, repeat=5, warmup=1) / 10.0

    # One tick's worth of fleet neighbor queries, as World.step issues
    # them (superset-from-grid + exact filter after the rewrite).
    everything = np.vstack(
        [
            np.asarray(world.vehicle_positions()),
            np.asarray(world.traffic.car_positions()),
            np.asarray(world.traffic.pedestrian_positions()),
        ]
    )
    n_fleet = len(world.vehicles)

    if SpatialGrid is None:

        def query_sweep():
            for i in range(n_fleet):
                mask = np.ones(len(everything), dtype=bool)
                mask[i] = False
                road_obstacles(world.town, everything[mask], everything[i])

    else:

        def query_sweep():
            grid = SpatialGrid(everything)
            for i in range(n_fleet):
                road_obstacles(
                    world.town, everything, everything[i], grid=grid, exclude=i
                )

    out["road_obstacles_fleet_s"] = _time(query_sweep, repeat=20)

    snap = world.snapshots[-1]
    vid = world.vehicles[0].vehicle_id
    state = snap.vehicle_states[vid]
    plan = snap.vehicle_plans[vid]
    out["render_bev_s"] = _time(
        lambda: render_bev(
            world.town,
            PAPER.bev,
            state,
            plan,
            snap.other_car_positions(vid),
            snap.pedestrian_positions,
        ),
        repeat=30,
    )

    ids = list(snap.vehicle_states)
    out["snapshot_other_cars_s"] = _time(
        lambda: [snap.other_car_positions(v) for v in ids], repeat=30
    )

    point = np.array([333.3, 777.7])
    out["nearest_node_s"] = _time(
        lambda: world.town.nearest_node(point), repeat=200
    )

    # The headline end-to-end number: context build on the paper world
    # (same shortened horizons as bench_end_to_end's paper phase).
    scale = replace(
        PAPER,
        name="paper-worldsim-bench",
        collect_duration=120.0,
        trace_duration=400.0,
        train_duration=300.0,
    )
    from repro.experiments.runner import build_context

    t0 = time.perf_counter()
    build_context(scale)
    out["paper_context_build_s"] = time.perf_counter() - t0
    return out


def bench_fleet(batched: bool) -> dict[str, float]:
    """Fleet-batched vs per-node training/evaluation throughput (ISSUE 7).

    Run once with ``--fleet-mode per-node`` (the "before" phase) and
    once with ``--fleet-mode batched``, then merge the two files with
    ``--update-section fleet`` so the report lands next to the
    components report inside ``BENCH_hotpath.json``.
    """
    from repro.core.fleet import FleetEngine
    from repro.core.node import NodeConfig, VehicleNode
    from repro.engine.random import spawn_rng
    from repro.experiments.configs import PAPER
    from repro.experiments.runner import RunSpec, build_context, run_method
    from repro.nn import make_driving_model

    out: dict[str, float] = {}

    def build_fleet(n_nodes, bev_shape, hidden, batch_size):
        config = NodeConfig(coreset_size=50, learning_rate=1e-3, batch_size=batch_size)
        base = make_dataset(bev_shape=bev_shape)
        nodes = []
        for i in range(n_nodes):
            model = make_driving_model(bev_shape, N_WAYPOINTS, hidden=hidden, seed=0)
            nodes.append(
                VehicleNode(
                    f"fleet{i}", model, base.copy(), config, spawn_rng(7, f"fleet-{i}")
                )
            )
        engine = None
        if batched:
            engine = FleetEngine.try_build(nodes)
            assert engine is not None, "bench fleet must be batchable"
        return nodes, engine

    validation = make_dataset(n_frames=300, seed=1)
    for n_nodes in (8, 32, 128):
        nodes, engine = build_fleet(n_nodes, BEV_SHAPE, hidden=48, batch_size=64)

        def train_all():
            if engine is not None:
                engine.train_step_all()
            else:
                for node in nodes:
                    node.train_step()

        out[f"train_step_{n_nodes}_s"] = _time(train_all, repeat=10)

        def eval_all():
            for node in nodes:
                node.model_version += 1  # force a full cache miss
            if engine is not None:
                engine.evaluate_fleet(validation)
            else:
                for node in nodes:
                    node.evaluate(validation, with_penalty=False)

        out[f"evaluate_{n_nodes}_s"] = _time(eval_all, repeat=5)

    # The acceptance-criteria number: the training-step segment at paper
    # scale — 32 vehicles, the paper-sized model and batch — timed over
    # five lock-step rounds (what one train_interval instant costs).
    paper_bev = PAPER.bev.shape
    nodes, engine = build_fleet(
        PAPER.world.n_vehicles, paper_bev, hidden=PAPER.hidden,
        batch_size=PAPER.batch_size,
    )

    def paper_rounds():
        for _ in range(5):
            if engine is not None:
                engine.train_step_all()
            else:
                for node in nodes:
                    node.train_step()

    out["paper_train_segment_s"] = _time(paper_rounds, repeat=3) / 5.0

    # End-to-end check on the hotpath-smoke world: the full LbChat run
    # with fleet batching toggled by config.
    sys.path.insert(0, str(Path(__file__).parent))
    from hotpath_smoke import build_scale

    context = build_context(build_scale())
    overrides = {} if batched else {"fleet_batching": False}
    spec = RunSpec.for_context(
        context, "LbChat", wireless=True, seed=3, overrides=overrides
    )
    t0 = time.perf_counter()
    run_method(context, spec)
    out["run_lbchat_smoke_s"] = time.perf_counter() - t0
    return out


CITYSCALE_SIZES = (32, 128, 512)
CITYSCALE_RADIUS = 500.0  # TrainerConfig.max_range, the scan radius


def _cityscale_one(n: int) -> dict[str, float]:
    """Measure one fleet size (runs in its own subprocess for RSS)."""
    import resource

    from repro.net.sweep import pairwise_encounters, sweep_encounters
    from repro.sim.synthetic_traces import random_waypoint_traces
    from repro.sim.world import World, WorldConfig

    # Constant fleet density: the map side grows with sqrt(n), so 512
    # vehicles patrol a 4 km city, not a 1 km town packed 16x denser.
    side = 1000.0 * (n / 32) ** 0.5
    blocks = {32: 1, 128: 2, 512: 3}.get(n, max(1, round((n / 32) ** 0.5)))
    out: dict[str, float] = {"map_side_m": side}

    traces = random_waypoint_traces(n, duration=120.0, area=side, seed=9)
    repeat = 3 if n >= 512 else 5
    out["contact_pairwise_s"] = _time(
        lambda: pairwise_encounters(traces.positions, CITYSCALE_RADIUS),
        repeat=repeat, warmup=1,
    )
    out["contact_swept_s"] = _time(
        lambda: sweep_encounters(traces.positions, CITYSCALE_RADIUS),
        repeat=repeat, warmup=1,
    )
    swept = sweep_encounters(traces.positions, CITYSCALE_RADIUS)
    reference = pairwise_encounters(traces.positions, CITYSCALE_RADIUS)
    assert swept.to_tuples() == reference.to_tuples(), "swept != pairwise"
    out["encounter_windows"] = float(len(swept))

    config = WorldConfig(
        map_size=side, grid_n=4, n_vehicles=n, n_background_cars=n // 8,
        n_pedestrians=n // 4, city_blocks=blocks, shard_stepping=True,
    )
    t0 = time.perf_counter()
    world = World(config)
    out["world_build_s"] = time.perf_counter() - t0
    world.run(2.0)  # disperse from the spawn pattern

    def ten_steps():
        for _ in range(10):
            world.step()

    out["world_step_s"] = _time(ten_steps, repeat=3, warmup=1) / 10.0
    out["peak_rss_mb"] = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
    return out


def bench_cityscale() -> dict[str, float]:
    """City-scale contact + stepping suite (ISSUE 8), per-size children.

    Each fleet size runs in a child interpreter so its ``peak_rss_mb``
    reflects that size alone; the parent flattens the per-size dicts
    into ``<key>_<n>`` entries and appends the 128→512 growth factors
    (the sub-O(n²) acceptance number: pairwise grows ~16x per 4x fleet
    at constant density, the swept path ~4x).
    """
    import os
    import subprocess

    out: dict[str, float] = {}
    for n in CITYSCALE_SIZES:
        proc = subprocess.run(
            [
                sys.executable, str(Path(__file__).resolve()),
                "--cityscale-size", str(n), "--out", "-",
            ],
            check=True, capture_output=True, text=True, env=dict(os.environ),
        )
        sized = json.loads(proc.stdout.strip().splitlines()[-1])
        for key, value in sized.items():
            out[f"{key}_{n}"] = value
    for key in ("contact_pairwise_s", "contact_swept_s", "world_step_s"):
        lo, hi = out[f"{key}_128"], out[f"{key}_512"]
        if lo > 0:
            out[f"{key}_growth_128_to_512"] = round(hi / lo, 2)
    return out


STEPSHARD_WORKERS = (1, 2, 4)


def bench_stepshard() -> dict[str, float]:
    """Within-run step sharding (ISSUE 9): per-worker-count scaling.

    Results are bit-identical for every worker count (gated by
    ``scripts/stepshard_smoke.py``), so this suite is purely about
    wall-clock: the paper-scale training segment at 1/2/4 step workers,
    the end-to-end smoke run serial vs sharded, and what the throughput
    auto-tuner picks for this host.  Numbers are honest for the machine
    they ran on — ``host_cores`` is part of the report because sharding
    cannot beat serial on fewer cores than workers.
    """
    import os
    from dataclasses import replace as dc_replace

    from repro.core.fleet import FleetEngine
    from repro.core.node import NodeConfig, VehicleNode
    from repro.engine.random import spawn_rng
    from repro.experiments.configs import PAPER
    from repro.experiments.runner import RunSpec, build_context, run_method
    from repro.nn import make_driving_model
    from repro.parallel.autotune import autotune

    out: dict[str, float] = {"host_cores": float(os.cpu_count() or 1)}

    def build_fleet(step_workers):
        config = NodeConfig(
            coreset_size=50, learning_rate=1e-3, batch_size=PAPER.batch_size
        )
        base = make_dataset(bev_shape=PAPER.bev.shape)
        nodes = [
            VehicleNode(
                f"shard{i}",
                make_driving_model(
                    PAPER.bev.shape, N_WAYPOINTS, hidden=PAPER.hidden, seed=0
                ),
                base.copy(),
                config,
                spawn_rng(7, f"shard-{i}"),
            )
            for i in range(PAPER.world.n_vehicles)
        ]
        return FleetEngine(nodes, step_workers=step_workers)

    # The acceptance-criteria segment: one lock-step training instant at
    # paper scale (32 vehicles, hidden=96, 20x20 BEV, 64-sample batches),
    # timed over five rounds, per worker count.
    for workers in STEPSHARD_WORKERS:
        engine = build_fleet(workers)
        try:

            def rounds():
                for _ in range(5):
                    engine.train_step_all()

            out[f"paper_train_segment_{workers}w_s"] = _time(rounds, repeat=3) / 5.0
        finally:
            engine.close()
    base_s = out["paper_train_segment_1w_s"]
    for workers in STEPSHARD_WORKERS[1:]:
        sharded_s = out[f"paper_train_segment_{workers}w_s"]
        if sharded_s > 0:
            out[f"speedup_{workers}w"] = round(base_s / sharded_s, 2)

    # End-to-end: the stepshard-smoke world (batch 16, so the pool
    # engages) serial vs sharded.
    sys.path.insert(0, str(Path(__file__).parent))
    from stepshard_smoke import build_scale as stepshard_scale

    context = build_context(stepshard_scale())
    for workers in (1, 2):
        overrides = {"step_workers": workers} if workers != 1 else {}
        spec = RunSpec.for_context(context, "LbChat", seed=3, overrides=overrides)
        t0 = time.perf_counter()
        run_method(context, spec)
        out[f"run_lbchat_smoke_{workers}w_s"] = time.perf_counter() - t0

    # What `--step-workers auto` would pick here (fresh measurement, not
    # the cached result) plus its probe evidence.
    tuned = autotune(force=True)
    out["autotune_step_workers"] = float(tuned.step_workers)
    out["autotune_adam_chunk"] = float(tuned.adam_chunk)
    for workers, rate in tuned.get("throughput", {}).items():
        out[f"autotune_probe_{workers}w_node_steps_per_s"] = round(rate, 1)
    return out


def bench_overlap() -> dict[str, float]:
    """Overlapped chat transfers (ISSUE 10): flag on vs off, end to end.

    Paper-scale and city-scale LbChat runs with ``overlap_chat`` toggled.
    Wall-clock is best-of-2 per flag (the spread on a loaded host easily
    exceeds the effect otherwise).  Alongside wall-clock the suite
    reports the fleet engine's mean step width during ``train_step_all``
    (full width either way — training was never gated on radio busy
    state) and virtual-time training instants per contact, from the last
    repetition of each flag state.
    """
    from dataclasses import replace as dc_replace

    from repro.experiments.configs import PAPER
    from repro.experiments.runner import RunSpec, build_context, run_method

    sys.path.insert(0, str(Path(__file__).parent))
    from cityscale_smoke import build_scale as cityscale_scale

    out: dict[str, float] = {}

    def measure(prefix: str, context, repeat: int) -> None:
        for label, overrides in (("off", {}), ("on", {"overlap_chat": True})):
            spec = RunSpec.for_context(
                context, "LbChat", wireless=True, seed=3, overrides=overrides
            )
            best = float("inf")
            trainer = None
            for _ in range(repeat):
                t0 = time.perf_counter()
                trainer = run_method(context, spec).trainer
                best = min(best, time.perf_counter() - t0)
            out[f"{prefix}_lbchat_{label}_s"] = best
            chats = max(trainer.counters.get("chats"), 1.0)
            out[f"{prefix}_{label}_chats"] = trainer.counters.get("chats")
            out[f"{prefix}_{label}_train_instants_per_contact"] = round(
                trainer.counters.get("train_steps") / chats, 2
            )
            if trainer.fleet is not None:
                out[f"{prefix}_{label}_mean_step_width"] = round(
                    trainer.fleet.mean_step_width, 2
                )
            out[f"{prefix}_{label}_models_received"] = float(
                trainer.receive_rate.completed
            )
        off_s, on_s = out[f"{prefix}_lbchat_off_s"], out[f"{prefix}_lbchat_on_s"]
        if on_s > 0:
            out[f"{prefix}_speedup"] = round(off_s / on_s, 2)

    # Paper scale: 32 vehicles, 1 km map, shortened horizon (same world
    # as the components suite's end-to-end phase).
    scale = dc_replace(
        PAPER,
        name="overlap-paper-bench",
        collect_duration=120.0,
        trace_duration=400.0,
        train_duration=300.0,
    )
    print("building paper world...")
    measure("paper", build_context(scale), repeat=2)

    # City scale: the cityscale-smoke world (48 vehicles, swept contact
    # index, sharded stepping, bounded caches).
    print("building city world...")
    measure("city", build_context(cityscale_scale()), repeat=2)
    return out


def bench_checkpoint() -> dict[str, float]:
    """Barrier-checkpointing overhead on the hotpath-smoke world."""
    import tempfile
    from dataclasses import replace

    sys.path.insert(0, str(Path(__file__).parent))
    from hotpath_smoke import build_scale

    from repro.checkpoint import RunStore
    from repro.experiments.runner import RunSpec, build_context, run_method

    out: dict[str, float] = {}
    context = build_context(build_scale())
    root = Path(tempfile.mkdtemp(prefix="bench-checkpoint-"))

    plain = RunSpec.for_context(context, "LbChat", wireless=True, seed=3)
    t0 = time.perf_counter()
    run_method(context, plain)
    out["run_plain_s"] = time.perf_counter() - t0

    # Same spec with three barriers on the 40 s training horizon.
    ckpt = replace(plain, checkpoint_every=10.0, checkpoint_dir=str(root))
    t0 = time.perf_counter()
    result = run_method(context, ckpt)
    out["run_checkpointed_s"] = time.perf_counter() - t0
    out["checkpoint_overhead_s"] = out["run_checkpointed_s"] - out["run_plain_s"]

    store = RunStore(root)
    barriers = store.barriers(ckpt)
    out["n_checkpoints"] = float(len(barriers))
    ckpt_bytes = sum(
        p.stat().st_size for p in store.run_dir(ckpt).glob("ckpt-*")
    )
    out["checkpoint_bytes_per_barrier"] = ckpt_bytes / max(1, len(barriers))

    # Per-barrier costs, isolated: snapshotting the live state tree vs
    # compressing + committing it to disk (scratch store, overwritten).
    trainer = result.trainer
    scratch = RunStore(root / "scratch")
    state = trainer.checkpoint_barrier(9)
    out["snapshot_state_s"] = _time(trainer.snapshot, repeat=10)
    out["save_checkpoint_s"] = _time(
        lambda: scratch.save_checkpoint(ckpt, dict(state)), repeat=10
    )

    # Crash recovery: rewind to barrier 2 and run the remaining 20
    # virtual seconds (restore cost + half the training horizon).
    store.drop_after(ckpt, 2)
    t0 = time.perf_counter()
    run_method(context, ckpt)
    out["resume_from_barrier2_s"] = time.perf_counter() - t0
    return out


_SUITE_DESCRIPTIONS = {
    "components": (
        "Data-layer/evaluation hot-path timings before and after the "
        "array-native DrivingDataset storage rewrite (ISSUE 4). "
        "Component benchmarks use a 500-frame dataset; end-to-end "
        "benchmarks run run_method('LbChat') on the hotpath-smoke "
        "world and on the paper world (32 vehicles, 1 km map, "
        "150-sample coresets) with a shortened training horizon."
    ),
    "worldsim": (
        "World-simulation hot-path timings before and after the "
        "spatial-hash / struct-of-arrays / batched-BEV rewrite "
        "(ISSUE 5), measured on the paper world (32 experts + 50 "
        "background cars + 250 pedestrians, 1 km map). world_step_s is "
        "one 10 Hz control tick; road_obstacles_fleet_s is one tick's "
        "worth of fleet neighbor queries; paper_context_build_s is the "
        "full §IV-A context build (120 s collection + 400 s traces)."
    ),
    "fleet": (
        "Fleet-batched training engine (ISSUE 7): per-node loops vs one "
        "batched tensor op per layer across the whole fleet. "
        "train_step_N_s is one lock-step training instant for N "
        "identical nodes (48-hidden model, 64-sample batches); "
        "evaluate_N_s is a full-miss validation pass over 300 frames; "
        "paper_train_segment_s is one training instant at paper scale "
        "(32 vehicles, hidden=96, 20x20 BEV, 64-sample batches); "
        "run_lbchat_smoke_s is the end-to-end hotpath-smoke LbChat run "
        "with fleet batching toggled by TrainerConfig.fleet_batching."
    ),
    "cityscale": (
        "City-scale suite (ISSUE 8) in the constant-density growth "
        "regime: fleet sizes 32/128/512 patrol maps whose side grows "
        "with sqrt(fleet) (1/2/4 km), so local radio-range density "
        "stays fixed while the city grows. contact_pairwise_s vs "
        "contact_swept_s is full encounter-window extraction from a "
        "120 s trace (500 m radius) via the O(n^2) all-pairs reference "
        "vs the spatial-grid sort-and-sweep; the *_growth_128_to_512 "
        "factors are the headline — pairwise grows ~16x per 4x fleet, "
        "the swept path ~4x (sub-O(n^2)). world_step_s is one 10 Hz "
        "tick of a sharded multi-district city world at that fleet "
        "size. Each size runs in its own subprocess, so peak_rss_mb "
        "is per-size (ru_maxrss is monotonic within a process)."
    ),
    "stepshard": (
        "Within-run step sharding (ISSUE 9): one run's batched fleet "
        "training step executed by a pool of forked workers over "
        "shared-memory parameter banks, each owning a contiguous range "
        "of node rows. Results are bit-identical for every worker "
        "count (scripts/stepshard_smoke.py gates that), so this suite "
        "measures wall-clock only: paper_train_segment_Nw_s is one "
        "lock-step training instant at paper scale (32 vehicles, "
        "hidden=96, 20x20 BEV, 64-sample batches) with N step workers; "
        "run_lbchat_smoke_Nw_s is the end-to-end stepshard-smoke LbChat "
        "run; autotune_* is what --step-workers auto picks for this "
        "host with its probe evidence. host_cores qualifies every "
        "number — speedup over serial requires at least as many free "
        "cores as workers, and on a single-core host the expected "
        "result is a slowdown (pipe round-trips buy no parallelism)."
    ),
    "overlap": (
        "Overlapped chat transfers (ISSUE 10): the chat protocol split "
        "into a synchronous plan phase (handshake, coresets, dense "
        "batched psi probes, Eq. 7) and a background transfer phase on "
        "the virtual clock, committed atomically at a barrier. "
        "run_lbchat_{off,on}_s is the end-to-end LbChat run with "
        "overlap_chat toggled, best-of-2 per flag (paper scale: 32 "
        "vehicles, 1 km map, 300 s horizon; city scale: the "
        "cityscale-smoke world, 48 vehicles). The wall-clock lever is "
        "the plan phase's DensePsiProber — one ParamBank row per psi "
        "grid level scored in a single shared-batch forward instead of "
        "one full forward per level. mean_step_width confirms training "
        "stays full-width either way (training was never gated on "
        "radio busy state); train_instants_per_contact is virtual-time "
        "training instants per chat. Flag-off runs are bit-identical "
        "to the pre-overlap tree (scripts/overlap_smoke.py gates "
        "that); flag-on runs trade exactness for overlap — payloads "
        "are plan-time snapshots absorbed at the commit barrier "
        "(delayed averaging), so outputs differ from sync runs."
    ),
    "checkpoint": (
        "Barrier-checkpointing overhead (ISSUE 6) on the hotpath-smoke "
        "world (3 vehicles, 40 s training horizon, barriers every 10 "
        "virtual seconds). run_plain_s vs run_checkpointed_s is the "
        "end-to-end cost of opting in; snapshot_state_s and "
        "save_checkpoint_s split one barrier into capture vs "
        "compress-and-commit; resume_from_barrier2_s is restore plus "
        "the remaining half of the horizon. Checkpointed runs reseed "
        "RNG streams at each barrier, so the plain and checkpointed "
        "runs are different (equally valid) runs — the comparison is "
        "about wall-clock cost, not outputs."
    ),
}


def merge(before_path: str, after_path: str) -> dict:
    before = json.loads(Path(before_path).read_text())
    after = json.loads(Path(after_path).read_text())
    suite = before.get("suite", "components")
    report = {
        "description": _SUITE_DESCRIPTIONS[suite],
        "before": before["timings"],
        "after": after["timings"],
        "speedup": {},
    }
    for key in sorted(set(before["timings"]) & set(after["timings"])):
        old, new = before["timings"][key], after["timings"][key]
        if new > 0:
            report["speedup"][key] = round(old / new, 2)
    return report


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--label", default="run")
    parser.add_argument("--out", required=True)
    parser.add_argument(
        "--e2e", default="smoke", choices=("none", "smoke", "paper", "both")
    )
    parser.add_argument(
        "--suite",
        default="components",
        choices=(
            "components", "worldsim", "checkpoint", "fleet", "cityscale",
            "stepshard", "overlap",
        ),
        help="components: ISSUE 4 data-layer suite; worldsim: ISSUE 5 "
        "paper-scale world-simulation suite (includes paper_context_build); "
        "checkpoint: ISSUE 6 barrier-checkpointing overhead suite; "
        "fleet: ISSUE 7 fleet-batched training suite (see --fleet-mode); "
        "cityscale: ISSUE 8 constant-density contact + sharded-stepping "
        "suite at 32/128/512 vehicles; stepshard: ISSUE 9 within-run "
        "step-worker scaling + autotune suite; overlap: ISSUE 10 "
        "overlapped-chat-transfer suite (paper + city LbChat, flag on "
        "vs off)",
    )
    parser.add_argument(
        "--cityscale-size",
        type=int,
        metavar="N",
        help="internal: measure one cityscale fleet size in this process "
        "and print its JSON (spawned per size by --suite cityscale so "
        "peak RSS is per-size)",
    )
    parser.add_argument(
        "--fleet-mode",
        default="batched",
        choices=("per-node", "batched"),
        help="for --suite fleet: per-node is the 'before' phase "
        "(plain node.train_step loops), batched the 'after' phase "
        "(FleetEngine batched steps)",
    )
    parser.add_argument("--merge", nargs=2, metavar=("BEFORE", "AFTER"))
    parser.add_argument(
        "--update-section",
        metavar="NAME",
        help="nest the report under this key inside an existing --out "
        "file instead of overwriting the whole file (works for --merge "
        "reports and for single-phase suites like cityscale)",
    )
    args = parser.parse_args()

    if args.cityscale_size:
        print(json.dumps(_cityscale_one(args.cityscale_size)))
        return 0

    if args.merge:
        report = merge(*args.merge)
        if args.update_section:
            out_path = Path(args.out)
            existing = (
                json.loads(out_path.read_text()) if out_path.exists() else {}
            )
            existing[args.update_section] = report
            out_path.write_text(json.dumps(existing, indent=2) + "\n")
        else:
            Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
        print(json.dumps(report["speedup"], indent=2))
        return 0

    if args.suite == "worldsim":
        timings = bench_worldsim()
    elif args.suite == "checkpoint":
        timings = bench_checkpoint()
    elif args.suite == "fleet":
        timings = bench_fleet(batched=args.fleet_mode == "batched")
    elif args.suite == "cityscale":
        timings = bench_cityscale()
    elif args.suite == "stepshard":
        timings = bench_stepshard()
    elif args.suite == "overlap":
        timings = bench_overlap()
    else:
        timings = bench_components()
        if args.e2e != "none":
            timings.update(bench_end_to_end(args.e2e))
    payload = {
        "label": args.label,
        "suite": args.suite,
        "description": _SUITE_DESCRIPTIONS[args.suite],
        "timings": timings,
    }
    out_path = Path(args.out)
    if args.update_section:
        existing = json.loads(out_path.read_text()) if out_path.exists() else {}
        existing[args.update_section] = payload
        out_path.write_text(json.dumps(existing, indent=2) + "\n")
    else:
        out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload, indent=2))
    return 0


if __name__ == "__main__":
    sys.exit(main())
