"""Paper-scale (§IV-A) experiment driver.

Runs the headline comparison at the paper's world parameters —
32 vehicles, 1 km x 1 km town+rural map, 50 background cars, 250
pedestrians, 150-frame coresets, 31 Mbps / 500 m radios — and writes
loss curves, receive rates, and (optionally) driving success rates to
``paper_scale_out/``.

This takes a few hours on one CPU core; it is a script rather than a
benchmark so it can be resumed per method and left running unattended:

    python scripts/run_paper_scale.py --methods ProxSkip LbChat DP
    python scripts/run_paper_scale.py --methods SCO --eval
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

import numpy as np

from repro.experiments.configs import PAPER
from repro.experiments.io import cached_context, save_run
from repro.experiments.render import render_curves
from repro.experiments.runner import RunSpec, online_evaluate
from repro.parallel import run_specs

OUT_DIR = Path("paper_scale_out")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--methods",
        nargs="+",
        default=["ProxSkip", "RSU-L", "DFL-DDS", "DP", "LbChat", "SCO"],
    )
    parser.add_argument("--wireless", action=argparse.BooleanOptionalAction, default=True)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--eval", action="store_true", help="also run driving evaluation")
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes to fan the methods out to (0 = all cores); "
        "results are bit-identical to --jobs 1",
    )
    args = parser.parse_args()

    OUT_DIR.mkdir(exist_ok=True)
    print("Building/loading the paper-scale context (cached on disk)...")
    t0 = time.time()
    context = cached_context(PAPER)
    print(f"  ready in {time.time() - t0:.0f}s: "
          f"{len(context.datasets)} vehicles, "
          f"{sum(len(d) for d in context.datasets.values())} frames, "
          f"{context.traces.duration:.0f}s of traces")

    curves = {}
    grid = np.linspace(0.0, PAPER.train_duration, 21)
    specs = [
        RunSpec.for_context(
            context, method, wireless=args.wireless, seed=args.seed, use_cache=True
        )
        for method in args.methods
    ]
    t1 = time.time()
    print(f"Running {len(specs)} method(s) with --jobs {args.jobs} "
          f"(wireless={args.wireless})...")
    results = run_specs(specs, jobs=args.jobs)
    print(f"  all runs done in {(time.time() - t1) / 60:.1f} min")
    for method, result in zip(args.methods, results):
        _, curves[method] = result.loss_curve(21)
        slug = method.lower().replace(" ", "_").replace("(", "").replace(")", "").replace(".", "")
        save_run(result, OUT_DIR / f"run_{slug}.json")
        print(f"  {method}: final loss {curves[method][-1]:.3f}, "
              f"receive rate {100 * result.receive_rate:.1f}%")
        if args.eval:
            rates = online_evaluate(result, context, seed=args.seed)
            (OUT_DIR / f"success_{slug}.txt").write_text(
                "\n".join(f"{k}: {v:.1f}%" for k, v in rates.items()) + "\n"
            )
            print("  success rates:", {k: round(v) for k, v in rates.items()})

    label = "w" if args.wireless else "w/o"
    figure = render_curves(
        f"Paper scale: training loss vs time ({label} wireless loss)", grid, curves
    )
    (OUT_DIR / "loss_curves.txt").write_text(figure + "\n")
    print()
    print(figure)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
