#!/usr/bin/env python
"""CI smoke test: kill a checkpointed run at a barrier, resume, compare.

Exercises the full crash-recovery story end to end, across a real
process boundary:

1. run a miniature checkpointed LbChat experiment uninterrupted
   (the reference),
2. run the same spec in a child process with the kill-at-barrier env
   knobs set, so the child ``os._exit(3)``\\ s the instant its barrier-2
   snapshot commits,
3. resume the orphaned run directory in this process via
   :func:`repro.checkpoint.resume_run_dir` (the same entry point the
   ``repro resume`` CLI verb uses),
4. compare componentwise digests of the resumed run against the
   reference — they must be bit-identical — and check the run's event
   log recorded the crash-shaped history (saves, a resume, completion).

Sits next to ``hotpath_smoke.py`` (storage determinism) and
``parallel_smoke.py`` (pool determinism); this script gates
checkpoint/restore determinism:

    PYTHONPATH=src python scripts/checkpoint_smoke.py
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import tempfile
from dataclasses import replace
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

CHECKPOINT_EVERY = 10.0
KILL_AT = 2
METHOD = "LbChat"
SEED = 3


def build_scale():
    from repro.experiments.configs import CI
    from repro.sim.world import WorldConfig

    return replace(
        CI,
        name="checkpoint-smoke",
        world=WorldConfig(
            map_size=400.0,
            grid_n=3,
            n_vehicles=3,
            n_background_cars=2,
            n_pedestrians=5,
            seed=13,
            min_route_length=120.0,
        ),
        collect_duration=30.0,
        trace_duration=120.0,
        train_duration=40.0,  # barriers at t=10/20/30
        train_interval=2.0,
        record_interval=10.0,
        coreset_size=6,
    )


def make_spec(context, store_dir: Path):
    from repro.experiments.runner import RunSpec

    return RunSpec.for_context(
        context,
        METHOD,
        wireless=True,
        seed=SEED,
        checkpoint_every=CHECKPOINT_EVERY,
        checkpoint_dir=str(store_dir),
    )


def run_child(store_dir: Path) -> int:
    """Child mode: run the spec; the kill env knobs end us at a barrier."""
    from repro.experiments.runner import build_context, run_method

    context = build_context(build_scale())
    run_method(context, make_spec(context, store_dir))
    print("child: kill hook never fired", file=sys.stderr)
    return 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--child", metavar="STORE_DIR", help=argparse.SUPPRESS)
    args = parser.parse_args()
    if args.child:
        return run_child(Path(args.child))

    from hotpath_smoke import digest_result

    from repro.checkpoint import RunStore, resume_run_dir
    from repro.checkpoint.policy import KILL_BARRIER_ENV
    from repro.experiments.runner import build_context, run_method

    root = Path(tempfile.mkdtemp(prefix="checkpoint-smoke-"))
    print("building mini world...")
    context = build_context(build_scale())

    print(f"running uninterrupted {METHOD} reference...")
    reference = run_method(context, make_spec(context, root / "reference"))

    print(f"running child to be killed at barrier {KILL_AT}...")
    crash_store = root / "crashed"
    child = subprocess.run(
        [sys.executable, __file__, "--child", str(crash_store)],
        env={**os.environ, KILL_BARRIER_ENV: str(KILL_AT)},
    )
    if child.returncode != 3:
        print(f"SMOKE FAILED: child exited {child.returncode}, expected 3")
        return 1

    store = RunStore(crash_store)
    spec = make_spec(context, crash_store)
    run_dir = store.run_dir(spec)
    saved = store.barriers(spec)
    if saved != list(range(1, KILL_AT + 1)):
        print(f"SMOKE FAILED: crashed store holds barriers {saved}")
        return 1
    if (run_dir / "done.json").exists():
        print("SMOKE FAILED: crashed run is marked done")
        return 1

    print(f"resuming {run_dir}...")
    resumed = resume_run_dir(run_dir)

    failures: list[str] = []
    want, got = digest_result(reference), digest_result(resumed)
    for key in sorted(want):
        ok = got[key] == want[key]
        print(f"  [{'ok' if ok else 'FAIL'}] {key}")
        if not ok:
            failures.append(f"{key}: got {got[key]!r}, want {want[key]!r}")

    # The crash-shaped history: the child saved barriers 1 and 2, the
    # parent resumed once from barrier 2 and re-saved 3.
    events = [event["event"] for event in store.events(spec)]
    history_ok = events.count("resumed") == 1 and events.count("saved") == 3
    print(f"  [{'ok' if history_ok else 'FAIL'}] event log records a resume")
    if not history_ok:
        failures.append(f"event log {events} lacks the crash-shaped history")
    done_ok = (run_dir / "done.json").exists()
    print(f"  [{'ok' if done_ok else 'FAIL'}] resumed run marked done")
    if not done_ok:
        failures.append("resumed run left no done marker")

    if failures:
        print(f"\nSMOKE FAILED: {len(failures)} mismatch(es):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("\nsmoke OK: resumed run bit-identical to the uninterrupted run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
