#!/usr/bin/env python
"""CI smoke test: the parallel engine is bit-identical to the serial path.

Builds a miniature world, defines four independent runs (two methods x
two seeds), executes them once with ``jobs=1`` and once with ``jobs=4``,
and asserts the pool changed *nothing*:

* loss curves, receive counts, and final node parameters are bitwise
  equal per job;
* results come back in submission order;
* with a telemetry session active, the merged worker registries equal
  the serial session's registry exactly.

Prints both wall-clock times (speedup is only expected on >= 4 cores;
it is reported, not asserted — determinism is what this script gates).
Exits non-zero on any violation, so it can gate CI:

    PYTHONPATH=src python scripts/parallel_smoke.py
"""

from __future__ import annotations

import os
import sys
import time
from dataclasses import replace

import numpy as np


def build_scale():
    from repro.experiments.configs import CI
    from repro.sim.world import WorldConfig

    return replace(
        CI,
        name="parallel-smoke",
        world=WorldConfig(
            map_size=400.0,
            grid_n=3,
            n_vehicles=3,
            n_background_cars=2,
            n_pedestrians=5,
            seed=13,
            min_route_length=120.0,
        ),
        collect_duration=30.0,
        trace_duration=120.0,
        train_duration=40.0,
        train_interval=2.0,
        record_interval=10.0,
        coreset_size=6,
    )


def run_batch(specs, jobs):
    from repro.parallel import run_specs
    from repro.telemetry import TelemetrySession

    session = TelemetrySession(label=f"parallel smoke jobs={jobs}")
    start = time.perf_counter()
    with session:
        results = run_specs(specs, jobs=jobs)
    return results, session, time.perf_counter() - start


def main() -> int:
    from repro.experiments.runner import RunSpec, build_context

    print("building mini world...")
    scale = build_scale()
    context = build_context(scale)

    specs = [
        RunSpec.for_context(context, method, wireless=True, seed=seed)
        for method in ("LbChat", "DP")
        for seed in (1, 2)
    ]
    print(f"running {len(specs)} jobs serially (jobs=1)...")
    serial, serial_session, serial_s = run_batch(specs, jobs=1)
    print(f"running {len(specs)} jobs in a pool (jobs=4)...")
    parallel, parallel_session, parallel_s = run_batch(specs, jobs=4)

    failures: list[str] = []

    def check(ok: bool, what: str) -> None:
        print(f"  [{'ok' if ok else 'FAIL'}] {what}")
        if not ok:
            failures.append(what)

    for spec, left, right in zip(specs, serial, parallel):
        label = f"{spec.method} seed={spec.seed}"
        check(
            left.method == right.method and left.seed == right.seed,
            f"{label}: result arrives in submission order",
        )
        check(
            np.array_equal(left.loss_curve(9)[1], right.loss_curve(9)[1]),
            f"{label}: loss curve bitwise equal",
        )
        check(
            (left.receive_attempted, left.receive_completed)
            == (right.receive_attempted, right.receive_completed),
            f"{label}: receive counts equal",
        )
        check(left.counters == right.counters, f"{label}: trainer counters equal")
        params_equal = all(
            np.array_equal(nl.flat_params, nr.flat_params)
            for nl, nr in zip(left.nodes, right.nodes)
        )
        check(params_equal, f"{label}: final model parameters bitwise equal")

    serial_state = serial_session.registry.state()
    parallel_state = parallel_session.registry.state()
    for kind in ("counters", "gauges", "histograms"):
        check(
            parallel_state[kind] == serial_state[kind],
            f"telemetry registries merge identically ({kind})",
        )

    cores = os.cpu_count() or 1
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    print(
        f"\nwall-clock: serial {serial_s:.2f}s, pool {parallel_s:.2f}s "
        f"({speedup:.2f}x on {cores} core(s); >= 2x expected only on >= 4 cores)"
    )

    if failures:
        print(f"\nSMOKE FAILED: {len(failures)} check(s): {failures}")
        return 1
    print("\nsmoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
