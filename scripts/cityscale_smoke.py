#!/usr/bin/env python
"""CI smoke test: the city-scale machinery is bit-identical to its golden run.

Runs a miniature city experiment — a 2x2-block city map, 48 vehicles
(exactly ``SWEPT_MIN_VEHICLES``, so neighbor queries go through the
swept contact index), sharded world stepping, and the bounded
loss-cache/chat-log budgets switched on — then digests the LbChat
results and compares them against the checked-in golden file:

    PYTHONPATH=src python scripts/cityscale_smoke.py            # verify
    PYTHONPATH=src python scripts/cityscale_smoke.py --record   # re-baseline

On top of the digest gate the run asserts the structural invariants
directly: swept encounter windows equal the all-pairs reference
bit-for-bit on this world's traces, and no node's loss cache nor the
trainer's chat log ever ends the run over its configured budget.

Sits next to ``hotpath_smoke.py`` (which gates the paper-scale worlds
on the brute-force neighbor path); this script gates the city path.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from hotpath_smoke import _sha, digest_result  # noqa: E402

GOLDEN_PATH = Path(__file__).parent / "cityscale_golden.json"

SEED = 3
RADIO_RADIUS = 500.0  # TrainerConfig.max_range, the scan radius


def build_scale():
    """A pocket-sized city via the ``ExperimentScale.derived`` API."""
    from repro.experiments.configs import CITY

    return CITY.derived(
        "cityscale-smoke",
        world=dict(
            map_size=900.0,
            grid_n=3,
            n_vehicles=48,
            n_background_cars=6,
            n_pedestrians=12,
            seed=13,
            min_route_length=100.0,
            n_districts=4,
            city_blocks=2,
            shard_stepping=True,
        ),
        collect_duration=20.0,
        trace_duration=100.0,
        train_duration=30.0,
        train_interval=5.0,
        record_interval=10.0,
        coreset_size=8,
        batch_size=16,
        eval_normal_cars=6,
        eval_normal_pedestrians=10,
        loss_cache_budget=64,
        chat_log_budget=16,
    )


def digest_contacts(context) -> dict[str, str]:
    """Pin the swept contact index and prove it equals the reference."""
    import numpy as np

    from repro.net.sweep import pairwise_encounters
    from repro.sim.traces import SWEPT_MIN_VEHICLES

    traces = context.traces
    n = traces.positions.shape[1]
    assert n >= SWEPT_MIN_VEHICLES, (
        f"smoke world has {n} vehicles; needs >= {SWEPT_MIN_VEHICLES} "
        "so neighbor queries exercise the swept index"
    )
    windows = traces.contact_index(RADIO_RADIUS).windows
    reference = pairwise_encounters(traces.positions, RADIO_RADIUS)
    assert windows.to_tuples() == reference.to_tuples(), (
        "swept encounter windows diverge from the all-pairs reference"
    )
    packed = np.concatenate(
        [windows.pair_i, windows.pair_j, windows.start, windows.end]
    )
    return {
        "n_windows": str(len(windows)),
        "windows": _sha(np.ascontiguousarray(packed, dtype=np.int64).tobytes()),
    }


def check_budgets(scale, result) -> None:
    """The bounded caches must never end the run over budget."""
    for node in result.nodes:
        assert node.loss_cache_size <= scale.loss_cache_budget, (
            f"{node.node_id}: loss cache {node.loss_cache_size} over "
            f"budget {scale.loss_cache_budget}"
        )
    log = result.trainer.chat_log
    assert len(log) <= scale.chat_log_budget, (
        f"chat log {len(log)} over budget {scale.chat_log_budget}"
    )
    print(
        f"budgets OK: loss caches <= {scale.loss_cache_budget}, "
        f"chat log {len(log)}/{scale.chat_log_budget} "
        f"({log.dropped} dropped)"
    )


def run_and_digest() -> dict:
    from repro.experiments.runner import RunSpec, build_context, run_method

    scale = build_scale()
    print("building mini city world (2x2 blocks, 48 vehicles)...")
    context = build_context(scale)
    digests: dict = {"contacts": digest_contacts(context)}
    print(f"running LbChat seed={SEED}...")
    spec = RunSpec.for_context(context, "LbChat", wireless=True, seed=SEED)
    result = run_method(context, spec)
    check_budgets(scale, result)
    digests["LbChat"] = digest_result(result)
    return digests


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--record",
        action="store_true",
        help="overwrite the golden digest file with this run's digests",
    )
    args = parser.parse_args()

    digests = run_and_digest()

    if args.record:
        GOLDEN_PATH.write_text(json.dumps(digests, indent=2, sort_keys=True) + "\n")
        print(f"golden digests recorded to {GOLDEN_PATH}")
        return 0

    if not GOLDEN_PATH.exists():
        print(f"no golden file at {GOLDEN_PATH}; run with --record first")
        return 1
    golden = json.loads(GOLDEN_PATH.read_text())

    failures: list[str] = []
    for section in sorted(golden):
        for key in sorted(golden[section]):
            got, want = digests[section][key], golden[section][key]
            ok = got == want
            print(f"  [{'ok' if ok else 'FAIL'}] {section}: {key}")
            if not ok:
                failures.append(f"{section}.{key}: got {got!r}, want {want!r}")

    if failures:
        print(f"\nSMOKE FAILED: {len(failures)} digest mismatch(es):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("\nsmoke OK: city-scale results bit-identical to the golden run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
