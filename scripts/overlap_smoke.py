#!/usr/bin/env python
"""CI smoke test: overlapped chat transfers are deterministic and inert when off.

Three gates on the hotpath-smoke world with a doubled training horizon
(so second-round chats pick psi > 0 and actually launch flights):

1. ``--overlap-chat`` **off** digests match the pinned flag-off golden —
   the overlap subsystem must be invisible when disabled (the cross-PR
   guarantee; bit-identity against the pre-overlap tree is gated by
   ``hotpath_smoke.py``, whose golden predates this subsystem).
2. ``--overlap-chat`` **on** digests match the pinned flag-on golden —
   the overlapped protocol itself (plan phase, dense psi probes,
   background flights, commit barriers) is deterministic.
3. The overlap-on run interrupted at every barrier — including barriers
   with a transfer in the air — resumes bit-identically (no golden
   needed; the uninterrupted run is the reference).

    PYTHONPATH=src python scripts/overlap_smoke.py            # verify
    PYTHONPATH=src python scripts/overlap_smoke.py --record   # re-baseline
"""

from __future__ import annotations

import argparse
import functools
import json
import sys
from dataclasses import replace
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
from hotpath_smoke import build_scale as hotpath_scale
from hotpath_smoke import digest_result

GOLDEN_PATH = Path(__file__).parent / "overlap_golden.json"
SEED = 3
CHECKPOINT_EVERY = 10.0


def build_scale():
    # A four-vehicle world trained past the 60 s pair cooldown twice:
    # first-round chats agree (psi = 0, plan-terminal); later rounds
    # diverge enough that Eq. 7 ships models as background flights.
    from repro.sim.world import WorldConfig

    return replace(
        hotpath_scale(),
        name="overlap-smoke",
        world=WorldConfig(
            map_size=400.0,
            grid_n=3,
            n_vehicles=4,
            n_background_cars=4,
            n_pedestrians=10,
            seed=11,
            min_route_length=120.0,
        ),
        collect_duration=60.0,
        trace_duration=240.0,
        train_duration=180.0,
        record_interval=20.0,
        coreset_size=10,
    )


class MemorySaver:
    """Collects barrier snapshots in memory (no run-dir machinery)."""

    def __init__(self):
        from repro.checkpoint.policy import CheckpointPolicy

        self.policy = CheckpointPolicy(every=CHECKPOINT_EVERY)
        self.states: dict[int, dict] = {}

    def schedule(self, trainer) -> None:
        for index, when in self.policy.barriers(trainer.config.duration):
            if when <= trainer.sim.now:
                continue
            trainer.sim.call_at(when, functools.partial(self._save, trainer, index))

    def _save(self, trainer, index: int) -> None:
        self.states[index] = trainer.checkpoint_barrier(index)


def run_and_digest() -> tuple[dict, dict[int, dict], object]:
    """Digests for both flag states plus the flag-on barrier snapshots."""
    from repro.experiments.runner import RunSpec, build_context, run_method

    scale = build_scale()
    print("building mini world...")
    context = build_context(scale)
    digests: dict = {}
    print("running LbChat, overlap off...")
    spec_off = RunSpec.for_context(context, "LbChat", wireless=True, seed=SEED)
    digests["flag_off"] = digest_result(run_method(context, spec_off))
    print("running LbChat, overlap on...")
    spec_on = RunSpec.for_context(
        context, "LbChat", wireless=True, seed=SEED,
        overrides={"overlap_chat": True},
    )
    result_on = run_method(context, spec_on)
    trainer = result_on.trainer
    if trainer.receive_rate.attempted == 0:
        print("SMOKE FAILED: overlap-on run launched no model transfers")
        raise SystemExit(1)
    digests["flag_on"] = digest_result(result_on)
    return digests, context, (spec_off, spec_on)


def check_resume(context, spec_on) -> list[str]:
    """Interrupt the overlap-on run at each barrier; digests must match."""
    from repro.experiments.runner import prepare_trainer

    def trainer_digest(trainer):
        import hashlib

        import numpy as np

        h = hashlib.sha256()
        for node in trainer.nodes:
            h.update(np.ascontiguousarray(node.flat_params, np.float32).tobytes())
            h.update(json.dumps(node.dataset.ids).encode())
        h.update(json.dumps(sorted(trainer.counters.snapshot().items())).encode())
        h.update(json.dumps(trainer.receive_rate.snapshot(), sort_keys=True).encode())
        return h.hexdigest()

    _, reference = prepare_trainer(context, spec_on)
    saver = MemorySaver()
    reference.run(checkpointer=saver)
    want = trainer_digest(reference)

    # Resuming from every barrier would re-run most of the horizon many
    # times over; the interesting barriers are the ones holding a
    # transfer in the air (capped) plus one quiescent control.
    with_flights = [
        b for b, s in sorted(saver.states.items())
        if s.get("overlap", {}).get("flights")
    ]
    without = [b for b in sorted(saver.states) if b not in with_flights]
    chosen = with_flights[:2] + with_flights[2:][-1:] + without[:1]

    failures: list[str] = []
    if not with_flights:
        failures.append("no barrier held an in-flight transfer; gate is vacuous")
    for barrier in sorted(chosen):
        state = saver.states[barrier]
        _, resumed = prepare_trainer(context, spec_on)
        resumed.restore(state)
        resumed.run(checkpointer=MemorySaver())
        ok = trainer_digest(resumed) == want
        flights = len(state.get("overlap", {}).get("flights", ()))
        print(f"  [{'ok' if ok else 'FAIL'}] resume from barrier {barrier} "
              f"({flights} transfer(s) in flight)")
        if not ok:
            failures.append(f"resume from barrier {barrier} diverged")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--record",
        action="store_true",
        help="overwrite the golden digest file with this run's digests",
    )
    args = parser.parse_args()

    digests, context, (spec_off, spec_on) = run_and_digest()

    if args.record:
        GOLDEN_PATH.write_text(json.dumps(digests, indent=2, sort_keys=True) + "\n")
        print(f"golden digests recorded to {GOLDEN_PATH}")
        failures = check_resume(context, spec_on)
    else:
        if not GOLDEN_PATH.exists():
            print(f"no golden file at {GOLDEN_PATH}; run with --record first")
            return 1
        golden = json.loads(GOLDEN_PATH.read_text())
        failures = []
        for flag in ("flag_off", "flag_on"):
            for key in sorted(golden[flag]):
                ok = digests[flag][key] == golden[flag][key]
                print(f"  [{'ok' if ok else 'FAIL'}] {flag}: {key}")
                if not ok:
                    failures.append(
                        f"{flag}.{key}: got {digests[flag][key]!r}, "
                        f"want {golden[flag][key]!r}"
                    )
        print("checking barrier resume with transfers in flight...")
        failures += check_resume(context, spec_on)

    if failures:
        print(f"\nSMOKE FAILED: {len(failures)} problem(s):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("\nsmoke OK: overlap deterministic, inert when off, resumable in flight")
    return 0


if __name__ == "__main__":
    sys.exit(main())
