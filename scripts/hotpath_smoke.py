#!/usr/bin/env python
"""CI smoke test: the data-layer hot path is bit-identical to the golden run.

Runs a miniature seeded experiment (three methods that together cover
every hot code path: LbChat exercises coresets + psi maps + Eq. 8,
SCO the coreset-only path, DP the subset-evaluation path), digests the
results and the telemetry registry, and compares the digests against
the checked-in golden file recorded *before* the array-native storage
rewrite.  Any divergence in sampling order, weight arithmetic, loss
caching, or top-k selection changes a digest and fails the gate:

    PYTHONPATH=src python scripts/hotpath_smoke.py            # verify
    PYTHONPATH=src python scripts/hotpath_smoke.py --record   # re-baseline

Sits next to ``parallel_smoke.py`` (which gates pool-vs-serial
determinism); this script gates storage-rewrite determinism.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import sys
from dataclasses import replace
from pathlib import Path

import numpy as np

GOLDEN_PATH = Path(__file__).parent / "hotpath_golden.json"

#: Methods whose runs are digested; chosen to cover all hot paths.
METHODS = ("LbChat", "SCO", "DP")
SEED = 3
CURVE_POINTS = 9


def build_scale():
    from repro.experiments.configs import CI
    from repro.sim.world import WorldConfig

    return replace(
        CI,
        name="hotpath-smoke",
        world=WorldConfig(
            map_size=400.0,
            grid_n=3,
            n_vehicles=3,
            n_background_cars=2,
            n_pedestrians=5,
            seed=13,
            min_route_length=120.0,
        ),
        collect_duration=30.0,
        trace_duration=120.0,
        train_duration=40.0,
        train_interval=2.0,
        record_interval=10.0,
        coreset_size=6,
    )


def _sha(*chunks: bytes) -> str:
    h = hashlib.sha256()
    for chunk in chunks:
        h.update(chunk)
    return h.hexdigest()


def digest_result(result) -> dict[str, str]:
    """Componentwise digests of one RunResult (localizes any mismatch)."""
    _, curve = result.loss_curve(CURVE_POINTS)
    counters = json.dumps(sorted(result.counters.items()), sort_keys=True)
    params = b"".join(
        np.ascontiguousarray(node.flat_params, dtype=np.float32).tobytes()
        for node in result.nodes
    )
    dataset_state = json.dumps(
        [
            [node.dataset.ids, node.dataset.weights.tolist()]
            for node in result.nodes
        ]
    )
    coreset_state = json.dumps(
        [
            [node.coreset.data.ids, node.coreset.data.weights.tolist()]
            for node in result.nodes
        ]
    )
    return {
        "loss_curve": _sha(np.ascontiguousarray(curve, dtype=np.float64).tobytes()),
        "receive": f"{result.receive_completed}/{result.receive_attempted}",
        "counters": _sha(counters.encode()),
        "params": _sha(params),
        "datasets": _sha(dataset_state.encode()),
        "coresets": _sha(coreset_state.encode()),
    }


def digest_fleet() -> dict[str, str]:
    """Digest one batched fleet training round (gates the ISSUE 7 path).

    A four-node fleet with distinct coresets takes three lock-step
    batched steps plus one batched validation pass; the digests pin the
    per-node losses, the shared parameter bank, and the evaluation
    values, so any drift in the batched forward/backward/Adam path or
    the slot-based loss cache fails the gate.
    """
    from repro.core.fleet import FleetEngine
    from repro.core.node import NodeConfig, VehicleNode
    from repro.engine.random import spawn_rng
    from repro.nn import make_driving_model
    from repro.sim.dataset import DrivingDataset, Frame

    bev_shape, n_waypoints = (4, 8, 8), 3

    def make_dataset(seed: int, n_frames: int) -> DrivingDataset:
        rng = np.random.default_rng(seed)
        return DrivingDataset(
            [
                Frame(
                    f"s{seed}-{i}",
                    rng.normal(size=bev_shape).astype(np.float32),
                    int(rng.integers(0, 4)),
                    rng.normal(size=2 * n_waypoints).astype(np.float32),
                    float(rng.uniform(0.5, 2.0)),
                )
                for i in range(n_frames)
            ]
        )

    config = NodeConfig(coreset_size=20, learning_rate=1e-3, batch_size=16)
    nodes = [
        VehicleNode(
            f"smoke{i}",
            make_driving_model(bev_shape, n_waypoints, hidden=16, seed=i),
            make_dataset(100 + i, 40),
            config,
            spawn_rng(5, f"fleet-smoke-{i}"),
        )
        for i in range(4)
    ]
    engine = FleetEngine.try_build(nodes)
    assert engine is not None, "smoke fleet must be batchable"
    losses = [engine.train_step_all() for _ in range(3)]
    validation = make_dataset(99, 25)
    values = engine.evaluate_fleet(validation)
    params = b"".join(
        np.ascontiguousarray(node.flat_params, dtype=np.float32).tobytes()
        for node in nodes
    )
    return {
        "losses": _sha(np.asarray(losses, dtype=np.float64).tobytes()),
        "evaluate": _sha(np.ascontiguousarray(values, dtype=np.float64).tobytes()),
        "params": _sha(params),
    }


def digest_registry(session) -> str:
    state = session.registry.state()
    payload = json.dumps(
        {kind: state[kind] for kind in ("counters", "gauges", "histograms")},
        sort_keys=True,
        default=repr,
    )
    return _sha(payload.encode())


def run_and_digest() -> dict:
    from repro.experiments.runner import RunSpec, build_context, run_method
    from repro.telemetry import TelemetrySession

    scale = build_scale()
    print("building mini world...")
    context = build_context(scale)
    digests: dict = {}
    session = TelemetrySession(label="hotpath smoke")
    with session:
        for method in METHODS:
            print(f"running {method} seed={SEED}...")
            spec = RunSpec.for_context(context, method, wireless=True, seed=SEED)
            digests[method] = digest_result(run_method(context, spec))
    digests["telemetry"] = digest_registry(session)
    print("digesting batched fleet round...")
    digests["fleet"] = digest_fleet()
    return digests


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--record",
        action="store_true",
        help="overwrite the golden digest file with this run's digests",
    )
    args = parser.parse_args()

    digests = run_and_digest()

    if args.record:
        GOLDEN_PATH.write_text(json.dumps(digests, indent=2, sort_keys=True) + "\n")
        print(f"golden digests recorded to {GOLDEN_PATH}")
        return 0

    if not GOLDEN_PATH.exists():
        print(f"no golden file at {GOLDEN_PATH}; run with --record first")
        return 1
    golden = json.loads(GOLDEN_PATH.read_text())

    failures: list[str] = []

    def check(key: str, got, want) -> None:
        ok = got == want
        print(f"  [{'ok' if ok else 'FAIL'}] {key}")
        if not ok:
            failures.append(f"{key}: got {got!r}, want {want!r}")

    for method in METHODS:
        for key in sorted(golden.get(method, digests[method])):
            check(f"{method}: {key}", digests[method][key], golden[method][key])
    check("telemetry registry", digests["telemetry"], golden["telemetry"])
    for key in sorted(golden.get("fleet", digests["fleet"])):
        check(f"fleet: {key}", digests["fleet"][key], golden["fleet"][key])

    if failures:
        print(f"\nSMOKE FAILED: {len(failures)} digest mismatch(es):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("\nsmoke OK: results bit-identical to the golden run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
