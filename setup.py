"""Setup shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` needs bdist_wheel; when wheel is
unavailable offline, `python setup.py develop` installs the same editable
.pth-based layout.
"""
from setuptools import setup

setup()
