"""Tests for the MAC contention tracker."""

import numpy as np
import pytest

from repro.net.mac import ContentionTracker


@pytest.fixture()
def tracker():
    return ContentionTracker(sense_range=100.0)


ORIGIN = np.zeros(2)


class TestRegistration:
    def test_ids_unique(self, tracker):
        a = tracker.register(0.0, 10.0, ORIGIN)
        b = tracker.register(0.0, 10.0, ORIGIN)
        assert a != b

    def test_bad_window_rejected(self, tracker):
        with pytest.raises(ValueError):
            tracker.register(5.0, 1.0, ORIGIN)

    def test_unknown_id(self, tracker):
        with pytest.raises(KeyError):
            tracker.contention_factor(99)


class TestOverlap:
    def test_disjoint_times_do_not_contend(self, tracker):
        a = tracker.register(0.0, 10.0, ORIGIN)
        tracker.register(10.0, 20.0, ORIGIN)
        assert tracker.overlapping(a) == []
        assert tracker.contention_factor(a) == 1.0

    def test_far_apart_do_not_contend(self, tracker):
        a = tracker.register(0.0, 10.0, ORIGIN)
        tracker.register(0.0, 10.0, np.array([500.0, 0.0]))
        assert tracker.overlapping(a) == []

    def test_full_overlap_doubles_airtime(self, tracker):
        a = tracker.register(0.0, 10.0, ORIGIN)
        tracker.register(0.0, 10.0, np.array([50.0, 0.0]))
        assert tracker.contention_factor(a) == pytest.approx(2.0)
        assert tracker.stretched_duration(a) == pytest.approx(20.0)

    def test_partial_overlap_fractional(self, tracker):
        a = tracker.register(0.0, 10.0, ORIGIN)
        tracker.register(5.0, 15.0, ORIGIN)
        # Half the window is shared: factor = (5*1 + 5*2) / 10 = 1.5.
        assert tracker.contention_factor(a) == pytest.approx(1.5)

    def test_three_way(self, tracker):
        a = tracker.register(0.0, 10.0, ORIGIN)
        tracker.register(0.0, 10.0, ORIGIN)
        tracker.register(0.0, 10.0, ORIGIN)
        assert tracker.contention_factor(a) == pytest.approx(3.0)


class TestBusiestMoment:
    def test_empty(self, tracker):
        assert tracker.busiest_moment() == (0.0, 0)

    def test_peak_found(self, tracker):
        tracker.register(0.0, 10.0, ORIGIN)
        tracker.register(4.0, 6.0, ORIGIN)
        tracker.register(5.0, 9.0, ORIGIN)
        time, count = tracker.busiest_moment()
        assert count == 3
        assert 5.0 <= time <= 6.0

    def test_clear(self, tracker):
        tracker.register(0.0, 1.0, ORIGIN)
        tracker.clear()
        assert tracker.busiest_moment() == (0.0, 0)
