"""Glue tests for figures/tables harness with run_specs stubbed out.

The real training paths are covered by the benchmark suite; these tests
pin the orchestration logic (which specs get built, with which flags,
and how results are assembled) without any training cost.
"""

import numpy as np
import pytest

from repro.experiments import figures, tables
from repro.experiments.configs import CI


class FakeResult:
    def __init__(self, method):
        self.method = method
        self.receive_rate = 0.75
        self.nodes = []

    def loss_curve(self, n_points=21):
        grid = np.linspace(0.0, CI.train_duration, n_points)
        return grid, np.linspace(5.0, 1.0, n_points)


class Recorder:
    """What the patched run_specs saw: every spec, and each call's jobs."""

    def __init__(self):
        self.specs = []
        self.jobs = []

    @property
    def methods(self):
        return [spec.method for spec in self.specs]


@pytest.fixture()
def record_calls(monkeypatch):
    recorder = Recorder()

    class FakeContext:
        scale = CI

    def fake_build_context(scale):
        return FakeContext()

    def fake_run_specs(specs, jobs=1, **kwargs):
        recorder.specs.extend(specs)
        recorder.jobs.append(jobs)
        return [FakeResult(spec.method) for spec in specs]

    for module in (figures, tables):
        monkeypatch.setattr(module, "build_context", fake_build_context)
        monkeypatch.setattr(module, "register_context", lambda context: None)
        monkeypatch.setattr(module, "run_specs", fake_run_specs)
    monkeypatch.setattr(
        tables,
        "online_evaluate",
        lambda result, context, seed=1: {c: 90.0 for c in tables.CONDITIONS},
    )
    return recorder


class TestFigGlue:
    def test_fig2_trains_all_five(self, record_calls):
        result = figures.fig2("ci", wireless=True)
        assert record_calls.methods == list(figures.FIG2_METHODS)
        assert all(spec.wireless for spec in record_calls.specs)
        assert set(result.curves) == set(figures.FIG2_METHODS)

    def test_fig3_trains_lbchat_and_sco(self, record_calls):
        result = figures.fig3("ci")
        assert record_calls.methods == ["LbChat", "SCO"]
        assert result.final("LbChat") == pytest.approx(1.0)

    def test_receive_rates_all_methods(self, record_calls):
        rates = figures.receive_rates("ci")
        assert set(rates) == set(figures.FIG2_METHODS)
        assert all(rate == 0.75 for rate in rates.values())

    def test_jobs_forwarded(self, record_calls):
        figures.fig2("ci", jobs=3)
        assert record_calls.jobs == [3]


class TestTableGlue:
    def test_table2_no_wireless(self, record_calls):
        result = tables.table2("ci")
        assert all(not spec.wireless for spec in record_calls.specs)
        assert result.columns == list(tables.MAIN_METHODS)
        assert result.cell("Straight", "LbChat") == 90.0

    def test_table3_wireless(self, record_calls):
        tables.table3("ci")
        assert all(spec.wireless for spec in record_calls.specs)

    def test_table4_coreset_sizes(self, record_calls):
        result = tables.table4("ci")
        sizes = [spec.coreset_size for spec in record_calls.specs]
        large, small = CI.coreset_size * 10, max(CI.coreset_size // 10, 2)
        assert sorted(set(sizes)) == sorted({large, small})
        assert all(spec.method == "LbChat" for spec in record_calls.specs)
        assert len(result.columns) == 4

    def test_table5_uses_equal_comp_variant(self, record_calls):
        tables.table5("ci")
        assert all(m == "LbChat (equal comp.)" for m in record_calls.methods)

    def test_table6_uses_avg_agg_variant(self, record_calls):
        tables.table6("ci")
        assert all(m == "LbChat (avg. agg.)" for m in record_calls.methods)

    def test_table7_uses_sco(self, record_calls):
        result = tables.table7("ci")
        assert all(m == "SCO" for m in record_calls.methods)
        assert "coreset only" in result.title

    def test_jobs_forwarded(self, record_calls):
        tables.table2("ci", jobs=4)
        assert record_calls.jobs == [4]
