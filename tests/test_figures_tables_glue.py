"""Glue tests for figures/tables harness with run_method stubbed out.

The real training paths are covered by the benchmark suite; these tests
pin the orchestration logic (which methods get trained, with which
flags, and how results are assembled) without any training cost.
"""

import numpy as np
import pytest

from repro.experiments import figures, tables
from repro.experiments.configs import CI


class FakeTrainer:
    class config:
        duration = CI.train_duration

    def __init__(self):
        from repro.engine import TimeSeriesRecorder

        self.loss_curve = TimeSeriesRecorder()
        self.loss_curve.record("v0", 0.0, 5.0)
        self.loss_curve.record("v0", CI.train_duration, 1.0)


class FakeResult:
    def __init__(self, method):
        self.method = method
        self.trainer = FakeTrainer()
        self.receive_rate = 0.75
        self.nodes = []

    def loss_curve(self, n_points=21):
        grid = np.linspace(0.0, CI.train_duration, n_points)
        return grid, np.linspace(5.0, 1.0, n_points)


@pytest.fixture()
def record_calls(monkeypatch):
    calls = []

    def fake_build_context(scale):
        return object()

    def fake_run_method(context, method, wireless=True, seed=1, **kwargs):
        calls.append((method, wireless, kwargs))
        return FakeResult(method)

    for module in (figures, tables):
        monkeypatch.setattr(module, "build_context", fake_build_context)
        monkeypatch.setattr(module, "run_method", fake_run_method)
    monkeypatch.setattr(
        tables,
        "online_evaluate",
        lambda result, context, seed=1: {c: 90.0 for c in tables.CONDITIONS},
    )
    return calls


class TestFigGlue:
    def test_fig2_trains_all_five(self, record_calls):
        result = figures.fig2("ci", wireless=True)
        methods = [m for m, _, _ in record_calls]
        assert methods == list(figures.FIG2_METHODS)
        assert all(w for _, w, _ in record_calls)
        assert set(result.curves) == set(figures.FIG2_METHODS)

    def test_fig3_trains_lbchat_and_sco(self, record_calls):
        result = figures.fig3("ci")
        methods = [m for m, _, _ in record_calls]
        assert methods == ["LbChat", "SCO"]
        assert result.final("LbChat") == pytest.approx(1.0)

    def test_receive_rates_all_methods(self, record_calls):
        rates = figures.receive_rates("ci")
        assert set(rates) == set(figures.FIG2_METHODS)
        assert all(rate == 0.75 for rate in rates.values())


class TestTableGlue:
    def test_table2_no_wireless(self, record_calls):
        result = tables.table2("ci")
        assert all(not w for _, w, _ in record_calls)
        assert result.columns == list(tables.MAIN_METHODS)
        assert result.cell("Straight", "LbChat") == 90.0

    def test_table3_wireless(self, record_calls):
        tables.table3("ci")
        assert all(w for _, w, _ in record_calls)

    def test_table4_coreset_sizes(self, record_calls):
        result = tables.table4("ci")
        sizes = [k.get("coreset_size") for _, _, k in record_calls]
        large, small = CI.coreset_size * 10, max(CI.coreset_size // 10, 2)
        assert sorted(set(sizes)) == sorted({large, small})
        assert len(result.columns) == 4

    def test_table5_uses_equal_comp_variant(self, record_calls):
        tables.table5("ci")
        assert all(m == "LbChat (equal comp.)" for m, _, _ in record_calls)

    def test_table6_uses_avg_agg_variant(self, record_calls):
        tables.table6("ci")
        assert all(m == "LbChat (avg. agg.)" for m, _, _ in record_calls)

    def test_table7_uses_sco(self, record_calls):
        result = tables.table7("ci")
        assert all(m == "SCO" for m, _, _ in record_calls)
        assert "coreset only" in result.title
