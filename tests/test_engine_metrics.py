"""Unit tests for metric recorders."""

import numpy as np
import pytest

from repro.engine import CounterSet, ReceiveRateRecorder, TimeSeriesRecorder


class TestTimeSeriesRecorder:
    def test_series_roundtrip(self):
        rec = TimeSeriesRecorder()
        rec.record("a", 0.0, 1.0)
        rec.record("a", 10.0, 0.5)
        times, values = rec.series("a")
        assert times.tolist() == [0.0, 10.0]
        assert values.tolist() == [1.0, 0.5]

    def test_non_monotonic_time_rejected(self):
        rec = TimeSeriesRecorder()
        rec.record("a", 5.0, 1.0)
        with pytest.raises(ValueError):
            rec.record("a", 4.0, 1.0)

    def test_equal_time_allowed(self):
        rec = TimeSeriesRecorder()
        rec.record("a", 5.0, 1.0)
        rec.record("a", 5.0, 0.9)  # same-time re-record is fine

    def test_value_at_uses_step_interpolation(self):
        rec = TimeSeriesRecorder()
        rec.record("a", 0.0, 3.0)
        rec.record("a", 10.0, 1.0)
        assert rec.value_at("a", 9.9) == 3.0
        assert rec.value_at("a", 10.0) == 1.0
        assert rec.value_at("a", 50.0) == 1.0

    def test_value_at_before_first_raises(self):
        rec = TimeSeriesRecorder()
        rec.record("a", 5.0, 1.0)
        with pytest.raises(ValueError):
            rec.value_at("a", 4.0)

    def test_mean_curve_averages_across_keys(self):
        rec = TimeSeriesRecorder()
        rec.record("a", 0.0, 2.0)
        rec.record("b", 0.0, 4.0)
        curve = rec.mean_curve(np.array([0.0, 1.0]))
        assert curve.tolist() == [3.0, 3.0]

    def test_mean_curve_handles_late_starters(self):
        rec = TimeSeriesRecorder()
        rec.record("a", 0.0, 2.0)
        rec.record("b", 5.0, 4.0)  # b starts later; first value backfills
        curve = rec.mean_curve(np.array([0.0, 5.0]))
        assert curve.tolist() == [3.0, 3.0]

    def test_mean_curve_empty_raises(self):
        with pytest.raises(ValueError):
            TimeSeriesRecorder().mean_curve(np.array([0.0]))

    def test_final_mean(self):
        rec = TimeSeriesRecorder()
        rec.record("a", 0.0, 5.0)
        rec.record("a", 1.0, 1.0)
        rec.record("b", 0.0, 3.0)
        assert rec.final_mean() == 2.0

    def test_keys_sorted(self):
        rec = TimeSeriesRecorder()
        rec.record("z", 0.0, 1.0)
        rec.record("a", 0.0, 1.0)
        assert rec.keys() == ["a", "z"]


class TestReceiveRateRecorder:
    def test_rate_zero_when_empty(self):
        assert ReceiveRateRecorder().rate == 0.0

    def test_rate_counts_successes(self):
        rec = ReceiveRateRecorder()
        rec.observe("v0", True)
        rec.observe("v0", False)
        rec.observe("v1", True)
        assert rec.attempted == 3
        assert rec.completed == 2
        assert rec.rate == pytest.approx(2 / 3)

    def test_per_key_rate(self):
        rec = ReceiveRateRecorder()
        rec.observe("v0", True)
        rec.observe("v0", False)
        rec.observe("v1", True)
        assert rec.rate_for("v0") == 0.5
        assert rec.rate_for("v1") == 1.0
        assert rec.rate_for("v9") == 0.0


class TestCounterSet:
    def test_default_zero(self):
        assert CounterSet().get("missing") == 0.0

    def test_accumulates(self):
        counters = CounterSet()
        counters.add("x")
        counters.add("x", 2.5)
        assert counters.get("x") == 3.5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CounterSet().add("x", -1.0)

    def test_as_dict_snapshot(self):
        counters = CounterSet()
        counters.add("a", 2.0)
        snapshot = counters.as_dict()
        counters.add("a", 1.0)
        assert snapshot == {"a": 2.0}
