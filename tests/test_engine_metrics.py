"""Unit tests for metric recorders."""

import numpy as np
import pytest

from repro.engine import CounterSet, ReceiveRateRecorder, TimeSeriesRecorder


class TestTimeSeriesRecorder:
    def test_series_roundtrip(self):
        rec = TimeSeriesRecorder()
        rec.record("a", 0.0, 1.0)
        rec.record("a", 10.0, 0.5)
        times, values = rec.series("a")
        assert times.tolist() == [0.0, 10.0]
        assert values.tolist() == [1.0, 0.5]

    def test_non_monotonic_time_rejected(self):
        rec = TimeSeriesRecorder()
        rec.record("a", 5.0, 1.0)
        with pytest.raises(ValueError):
            rec.record("a", 4.0, 1.0)

    def test_equal_time_allowed(self):
        rec = TimeSeriesRecorder()
        rec.record("a", 5.0, 1.0)
        rec.record("a", 5.0, 0.9)  # same-time re-record is fine

    def test_value_at_uses_step_interpolation(self):
        rec = TimeSeriesRecorder()
        rec.record("a", 0.0, 3.0)
        rec.record("a", 10.0, 1.0)
        assert rec.value_at("a", 9.9) == 3.0
        assert rec.value_at("a", 10.0) == 1.0
        assert rec.value_at("a", 50.0) == 1.0

    def test_value_at_before_first_raises(self):
        rec = TimeSeriesRecorder()
        rec.record("a", 5.0, 1.0)
        with pytest.raises(ValueError):
            rec.value_at("a", 4.0)

    def test_mean_curve_averages_across_keys(self):
        rec = TimeSeriesRecorder()
        rec.record("a", 0.0, 2.0)
        rec.record("b", 0.0, 4.0)
        curve = rec.mean_curve(np.array([0.0, 1.0]))
        assert curve.tolist() == [3.0, 3.0]

    def test_mean_curve_handles_late_starters(self):
        rec = TimeSeriesRecorder()
        rec.record("a", 0.0, 2.0)
        rec.record("b", 5.0, 4.0)  # b starts later; first value backfills
        curve = rec.mean_curve(np.array([0.0, 5.0]))
        assert curve.tolist() == [3.0, 3.0]

    def test_mean_curve_empty_raises(self):
        with pytest.raises(ValueError):
            TimeSeriesRecorder().mean_curve(np.array([0.0]))

    def test_mean_curve_matches_reference_implementation(self):
        """Regression for the searchsorted vectorization: bit-identical
        to the original bisect_right double loop, including the
        first-value extension for grid points before a series starts."""
        from bisect import bisect_right

        def reference_mean_curve(rec, grid):
            out = np.zeros_like(np.asarray(grid, dtype=float))
            for key in rec._times:
                times = rec._times[key]
                values = rec._values[key]
                for i, t in enumerate(grid):
                    idx = bisect_right(times, t) - 1
                    out[i] += values[max(idx, 0)]
            return out / len(rec._times)

        rng = np.random.default_rng(42)
        rec = TimeSeriesRecorder()
        for k in range(7):
            n = int(rng.integers(1, 40))
            start = float(rng.uniform(0.0, 50.0))
            times = start + np.cumsum(rng.uniform(0.0, 5.0, size=n))
            for t in times:
                rec.record(f"v{k}", float(t), float(rng.normal()))
        # Grid spans before the earliest series, exact sample times, and
        # beyond the last observation.
        grid = np.concatenate(
            [[-5.0, 0.0], rng.uniform(0.0, 300.0, size=64), [1e4]]
        )
        np.testing.assert_array_equal(
            rec.mean_curve(grid), reference_mean_curve(rec, grid)
        )

    def test_mean_curve_large_is_fast(self):
        # 50 series x 2000 points x 200-point grid finishes instantly
        # when vectorized (the old double loop took ~seconds at fleet
        # scale); keep a loose wall-clock bound as a canary.
        import time

        rec = TimeSeriesRecorder()
        for k in range(50):
            for i in range(500):
                rec.record(f"v{k}", float(i), float(i % 7))
        grid = np.linspace(0.0, 500.0, 200)
        start = time.perf_counter()
        rec.mean_curve(grid)
        assert time.perf_counter() - start < 1.0

    def test_final_mean(self):
        rec = TimeSeriesRecorder()
        rec.record("a", 0.0, 5.0)
        rec.record("a", 1.0, 1.0)
        rec.record("b", 0.0, 3.0)
        assert rec.final_mean() == 2.0

    def test_keys_sorted(self):
        rec = TimeSeriesRecorder()
        rec.record("z", 0.0, 1.0)
        rec.record("a", 0.0, 1.0)
        assert rec.keys() == ["a", "z"]


class TestReceiveRateRecorder:
    def test_rate_zero_when_empty(self):
        assert ReceiveRateRecorder().rate == 0.0

    def test_rate_counts_successes(self):
        rec = ReceiveRateRecorder()
        rec.observe("v0", True)
        rec.observe("v0", False)
        rec.observe("v1", True)
        assert rec.attempted == 3
        assert rec.completed == 2
        assert rec.rate == pytest.approx(2 / 3)

    def test_per_key_rate(self):
        rec = ReceiveRateRecorder()
        rec.observe("v0", True)
        rec.observe("v0", False)
        rec.observe("v1", True)
        assert rec.rate_for("v0") == 0.5
        assert rec.rate_for("v1") == 1.0
        assert rec.rate_for("v9") == 0.0


class TestCounterSet:
    def test_default_zero(self):
        assert CounterSet().get("missing") == 0.0

    def test_accumulates(self):
        counters = CounterSet()
        counters.add("x")
        counters.add("x", 2.5)
        assert counters.get("x") == 3.5

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CounterSet().add("x", -1.0)

    def test_as_dict_snapshot(self):
        counters = CounterSet()
        counters.add("a", 2.0)
        snapshot = counters.as_dict()
        counters.add("a", 1.0)
        assert snapshot == {"a": 2.0}
