"""Tests for LbChat trainer configuration features."""

import numpy as np
import pytest

from repro.core.lbchat import LbChatConfig, LbChatTrainer
from repro.sim.dataset import DrivingDataset
from tests.conftest import make_node


@pytest.fixture()
def setup(fleet_datasets, traces):
    validation = DrivingDataset()
    for dataset in fleet_datasets.values():
        validation.extend([dataset.frame(i) for i in range(0, len(dataset), 10)])
    nodes = [
        make_node(vid, ds, coreset_size=8, seed=4)
        for vid, ds in sorted(fleet_datasets.items())
    ]
    return nodes, traces, validation


def run_trainer(setup, **config_overrides):
    nodes, traces, validation = setup
    config = LbChatConfig(
        duration=100.0,
        train_interval=2.0,
        record_interval=25.0,
        wireless_loss=True,
        seed=1,
    )
    for key, value in config_overrides.items():
        setattr(config, key, value)
    trainer = LbChatTrainer(nodes, traces, validation, config)
    trainer.run()
    return trainer


class TestDynamicTimeBudget:
    def test_runs_and_chats(self, setup):
        trainer = run_trainer(setup, dynamic_time_budget=True)
        assert trainer.counters.get("chats") > 0

    def test_respects_floor(self, setup):
        trainer = run_trainer(
            setup, dynamic_time_budget=True, min_time_budget=3.0, time_budget=15.0
        )
        # Chat durations (minus sub-second coreset/assist time) should
        # not exceed the static budget either way.
        chats = trainer.counters.get("chats")
        if chats:
            mean_duration = trainer.counters.get("chat_seconds") / chats
            assert mean_duration <= 15.0 + 3.0


class TestTrainingDuringChats:
    def test_train_steps_unaffected_by_chatting(self, setup):
        """Local training continues during chats (GPU || radio)."""
        busy = run_trainer(setup)
        nodes, traces, validation = setup
        expected_steps = len(nodes) * int(100.0 / 2.0)
        # All vehicles train at full rate regardless of chat load.
        assert busy.counters.get("train_steps") >= expected_steps * 0.95


class TestMulticast:
    def test_multicast_spreads_coresets(self, setup):
        trainer = run_trainer(setup, multicast_coresets=True)
        assert trainer.counters.get("multicasts") > 0
        assert trainer.counters.get("multicast_receivers") >= trainer.counters.get(
            "multicasts"
        )

    def test_multicast_grows_datasets_faster(self, fleet_datasets, traces):
        from repro.sim.dataset import DrivingDataset

        sizes = {}
        for multicast in (False, True):
            validation = DrivingDataset(
                [fleet_datasets["v0"].frame(i) for i in range(0, 40, 8)]
            )
            nodes = [
                make_node(vid, ds, coreset_size=8, seed=4)
                for vid, ds in sorted(fleet_datasets.items())
            ]
            config = LbChatConfig(
                duration=100.0,
                train_interval=2.0,
                record_interval=50.0,
                wireless_loss=True,
                seed=1,
            )
            config.multicast_coresets = multicast
            trainer = LbChatTrainer(nodes, traces, validation, config)
            trainer.run()
            sizes[multicast] = sum(len(n.dataset) for n in nodes)
        # Multicast must not lose data reach; with few vehicles the
        # pairwise chats may already saturate sharing, so allow parity
        # within a small margin.
        assert sizes[True] >= sizes[False] * 0.9


class TestContentionTracking:
    def test_disabled_by_default(self, setup):
        trainer = run_trainer(setup)
        assert trainer.contention is None

    def test_tracks_chat_windows(self, setup):
        trainer = run_trainer(setup, track_contention=True)
        assert trainer.contention is not None
        if trainer.counters.get("chats") > 0:
            time, peak = trainer.contention.busiest_moment()
            assert peak >= 1


class TestRecording:
    def test_curve_covers_duration(self, setup):
        trainer = run_trainer(setup)
        grid = np.linspace(0.0, 100.0, 5)
        curve = trainer.loss_curve.mean_curve(grid)
        assert len(curve) == 5
        assert np.isfinite(curve).all()
