"""Unit tests for contact estimation and Eq. 5 prioritization."""

import numpy as np
import pytest

from repro.net import ChannelConfig, WirelessModel, estimate_contact, priority_score

CONFIG = ChannelConfig()
WIRELESS = WirelessModel()
INTERVAL = 0.5


def parallel_routes(distance, n=40):
    """Two vehicles driving parallel at constant separation."""
    t = np.arange(n) * INTERVAL
    a = np.stack([t * 10.0, np.zeros(n)], axis=1)
    b = a + np.array([0.0, distance])
    return a, b


def diverging_routes(start_distance=100.0, rate=25.0, n=40):
    """Separation grows by ``rate`` meters per sample."""
    a = np.zeros((n, 2))
    b = np.stack([start_distance + rate * np.arange(n), np.zeros(n)], axis=1)
    return a, b


class TestEstimateContact:
    def test_close_parallel_pair_long_contact(self):
        a, b = parallel_routes(50.0)
        est = estimate_contact(a, b, INTERVAL, WIRELESS, CONFIG, exchange_bytes=1e6)
        assert est.contact_duration == pytest.approx((len(a)) * INTERVAL, abs=1.0)
        assert est.p == 1.0

    def test_out_of_range_now_zero(self):
        a, b = parallel_routes(600.0)
        est = estimate_contact(a, b, INTERVAL, WIRELESS, CONFIG, exchange_bytes=1e6)
        assert est.contact_duration == 0.0
        assert est.z == 0.0 and est.p == 0.0

    def test_diverging_pair_contact_ends(self):
        a, b = diverging_routes()
        est = estimate_contact(a, b, INTERVAL, WIRELESS, CONFIG, exchange_bytes=1e5)
        # Distance exceeds 500 m after (500-100)/25 = 16 samples.
        assert est.contact_duration == pytest.approx(16 * INTERVAL, abs=1.0)

    def test_insufficient_contact_zero_z(self):
        a, b = diverging_routes(start_distance=480.0, rate=40.0)
        huge = 1e9  # needs far longer than the ~0.5 s of contact left
        est = estimate_contact(a, b, INTERVAL, WIRELESS, CONFIG, exchange_bytes=huge)
        assert est.z == 0.0
        assert est.p < 1.0

    def test_shorter_sufficient_contact_scores_higher(self):
        # Same exchange, one pair with barely-enough contact, one with
        # plenty: the barely-enough one gets the larger z (urgency).
        bytes_needed = 4e6
        a1, b1 = parallel_routes(50.0, n=10)  # 5 s contact
        a2, b2 = parallel_routes(50.0, n=80)  # 40 s contact
        est_short = estimate_contact(a1, b1, INTERVAL, WIRELESS, CONFIG, bytes_needed)
        est_long = estimate_contact(a2, b2, INTERVAL, WIRELESS, CONFIG, bytes_needed)
        assert est_short.z > est_long.z
        assert est_short.p == est_long.p == 1.0

    def test_closer_pair_better_goodput(self):
        a1, b1 = parallel_routes(30.0)
        a2, b2 = parallel_routes(450.0)
        near = estimate_contact(a1, b1, INTERVAL, WIRELESS, CONFIG, 1e6)
        far = estimate_contact(a2, b2, INTERVAL, WIRELESS, CONFIG, 1e6)
        assert near.mean_goodput_factor > far.mean_goodput_factor

    def test_empty_routes(self):
        est = estimate_contact(
            np.zeros((0, 2)), np.zeros((0, 2)), INTERVAL, WIRELESS, CONFIG, 1e6
        )
        assert est.contact_duration == 0.0


class TestPriorityScore:
    def test_eq5_product(self):
        a, b = parallel_routes(50.0)
        est = estimate_contact(a, b, INTERVAL, WIRELESS, CONFIG, 4e6)
        score = priority_score(est, 31e6, 20e6)
        assert score == pytest.approx(est.z * est.p * 20e6)

    def test_zero_for_unreachable(self):
        a, b = parallel_routes(600.0)
        est = estimate_contact(a, b, INTERVAL, WIRELESS, CONFIG, 4e6)
        assert priority_score(est, 31e6, 31e6) == 0.0
