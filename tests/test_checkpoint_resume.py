"""End-to-end resume equivalence for the repro.checkpoint subsystem.

The contract under test: a checkpointed run that is interrupted at any
barrier and resumed from disk produces results bit-identical to the same
checkpointed run left uninterrupted — for every method, seed, and
interruption point.  A second test drives the same guarantee through the
process pool's crash-retry path with a worker killed mid-run.
"""

from __future__ import annotations

import tempfile
from dataclasses import replace
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checkpoint import RunStore
from repro.checkpoint.policy import KILL_BARRIER_ENV, KILL_FLAG_ENV
from repro.experiments.configs import CI
from repro.experiments.runner import RunSpec, build_context, run_method
from repro.parallel import run_specs
from repro.sim.world import WorldConfig

TINY = replace(
    CI,
    name="checkpoint-test",
    world=WorldConfig(
        map_size=400.0,
        grid_n=3,
        n_vehicles=3,
        n_background_cars=0,
        n_pedestrians=0,
        seed=7,
        min_route_length=120.0,
    ),
    collect_duration=30.0,
    trace_duration=120.0,
    train_duration=40.0,
    train_interval=2.0,
    record_interval=10.0,
    coreset_size=6,
    eval_trials=1,
    eval_models=1,
    eval_normal_cars=0,
    eval_normal_pedestrians=0,
)

#: train_duration=40 with this cadence puts barriers at t=10/20/30.
EVERY = 10.0
BARRIERS = (1, 2, 3)

METHODS = ("Local", "ProxSkip", "RSU-L", "DFL-DDS", "DP", "LbChat", "SCO")


@pytest.fixture(scope="module")
def context():
    return build_context(TINY)


def digest(result):
    """Everything measurable about a run, hashable for exact comparison."""
    return (
        tuple(result.loss_curve(9)[1].tolist()),
        result.receive_attempted,
        result.receive_completed,
        tuple(sorted(result.counters.items())),
        tuple(node.flat_params.tobytes() for node in result.nodes),
        tuple(tuple(node.dataset.ids) for node in result.nodes),
        tuple(node.coreset.source_weights.tobytes() for node in result.nodes),
    )


class TestResumeEquivalence:
    @settings(
        max_examples=4,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        method=st.sampled_from(METHODS),
        seed=st.sampled_from((1, 2)),
        barrier=st.sampled_from(BARRIERS),
    )
    def test_interrupted_run_resumes_bit_identical(
        self, context, tmp_path_factory, method, seed, barrier
    ):
        # Fresh store per example: hypothesis may replay the same spec,
        # and a populated store would turn the reference run into a
        # resume itself.
        root = Path(tempfile.mkdtemp(dir=tmp_path_factory.getbasetemp()))
        spec = RunSpec.for_context(
            context,
            method,
            seed=seed,
            checkpoint_every=EVERY,
            checkpoint_dir=str(root),
        )
        reference = run_method(context, spec)
        store = RunStore(root)
        assert store.barriers(spec) == list(BARRIERS)
        # Simulate a crash just after `barrier` committed: newer
        # snapshots and the done marker vanish.
        store.drop_after(spec, barrier)
        resumed = run_method(context, spec)
        assert digest(resumed) == digest(reference)
        events = [event["event"] for event in store.events(spec)]
        assert "resumed" in events

    def test_resume_replays_remaining_barriers(self, context, tmp_path):
        spec = RunSpec.for_context(
            context,
            "LbChat",
            seed=1,
            checkpoint_every=EVERY,
            checkpoint_dir=str(tmp_path),
        )
        run_method(context, spec)
        store = RunStore(tmp_path)
        store.drop_after(spec, 1)
        run_method(context, spec)
        # The resumed run re-saved barriers 2 and 3 on its way out.
        assert store.barriers(spec) == list(BARRIERS)
        saves = [event for event in store.events(spec) if event["event"] == "saved"]
        assert [event["barrier"] for event in saves] == [1, 2, 3, 2, 3]


class TestPoolCrashResume:
    def test_killed_worker_resumes_from_barrier(self, context, monkeypatch, tmp_path):
        flag = tmp_path / "kill-once"
        flag.touch()
        pool_root = tmp_path / "pool-store"
        ref_root = tmp_path / "ref-store"
        pool_specs = [
            RunSpec.for_context(
                context,
                method,
                seed=1,
                checkpoint_every=EVERY,
                checkpoint_dir=str(pool_root),
            )
            for method in ("LbChat", "DP")
        ]
        ref_specs = [replace(spec, checkpoint_dir=str(ref_root)) for spec in pool_specs]
        reference = run_specs(ref_specs, jobs=1)
        # Exactly one worker attempt dies (os._exit) right after its
        # barrier-2 snapshot commits; the retry must resume from it.
        monkeypatch.setenv(KILL_BARRIER_ENV, "2")
        monkeypatch.setenv(KILL_FLAG_ENV, str(flag))
        results = run_specs(pool_specs, jobs=2, retries=2)
        assert not flag.exists()  # the kill fired exactly once
        assert [digest(r) for r in results] == [digest(r) for r in reference]
        store = RunStore(pool_root)
        events = [
            event["event"] for spec in pool_specs for event in store.events(spec)
        ]
        assert "resumed" in events
