"""Direct unit tests for TrainerBase scheduling helpers."""

import numpy as np
import pytest

from repro.core.trainer_base import TrainerBase, TrainerConfig
from repro.sim.dataset import DrivingDataset
from tests.conftest import make_node


@pytest.fixture()
def base(fleet_datasets, traces):
    validation = DrivingDataset(
        [fleet_datasets["v0"].frame(i) for i in range(0, 30, 6)]
    )
    nodes = [
        make_node(vid, ds, coreset_size=8, seed=7)
        for vid, ds in sorted(fleet_datasets.items())
    ]
    config = TrainerConfig(duration=50.0, train_interval=5.0, seed=1)
    return TrainerBase(nodes, traces, validation, config)


class TestBusyAccounting:
    def test_initially_idle(self, base):
        assert all(base.is_idle(i) for i in range(len(base.nodes)))

    def test_occupy_marks_busy(self, base):
        base.occupy(0, 10.0)
        assert not base.is_idle(0)
        assert base.is_idle(1)

    def test_occupy_extends_not_shortens(self, base):
        base.occupy(0, 10.0)
        base.occupy(0, 2.0)
        assert base.busy_until[0] == 10.0

    def test_busy_expires_with_clock(self, base):
        base.occupy(0, 5.0)
        base.sim.run(until=6.0)
        assert base.is_idle(0)


class TestPairCooldown:
    def test_fresh_pair_ready(self, base):
        assert base.pair_ready(0, 1)

    def test_cooldown_blocks_and_expires(self, base):
        base.note_chat(0, 1)
        assert not base.pair_ready(0, 1)
        assert not base.pair_ready(1, 0)  # symmetric
        base.sim.run(until=base.config.pair_cooldown + 1.0)
        assert base.pair_ready(0, 1)

    def test_other_pairs_unaffected(self, base):
        base.note_chat(0, 1)
        assert base.pair_ready(0, 2)


class TestNeighborQueries:
    def test_busy_vehicles_excluded(self, base):
        all_neighbors = base.idle_neighbors(0)
        if not all_neighbors:
            pytest.skip("no neighbors in range at t=0")
        victim = all_neighbors[0]
        base.occupy(victim, 100.0)
        assert victim not in base.idle_neighbors(0)

    def test_cooldown_excluded(self, base):
        neighbors = base.idle_neighbors(0)
        if not neighbors:
            pytest.skip("no neighbors in range at t=0")
        base.note_chat(0, neighbors[0])
        assert neighbors[0] not in base.idle_neighbors(0)


class TestContactEstimate:
    def test_estimate_fields(self, base):
        estimate = base.contact_estimate(0, 1, exchange_bytes=1e6)
        assert estimate.contact_duration >= 0.0
        assert 0.0 <= estimate.p <= 1.0
        assert 0.0 <= estimate.z <= 1.0

    def test_pair_distance_fn_matches_traces(self, base):
        fn = base.pair_distance_fn(0, 1)
        assert fn(10.0) == base.traces.distance(0, 1, 10.0)


class TestRecording:
    def test_record_losses_covers_fleet(self, base):
        base.record_losses()
        assert len(base.loss_curve.keys()) == len(base.nodes)

    def test_run_records_and_finishes(self, base):
        base.run()
        assert base.sim.now == pytest.approx(base.config.duration)
        times, _ = base.loss_curve.series(base.nodes[0].node_id)
        assert times[-1] == pytest.approx(base.config.duration)
        assert base.counters.get("train_steps") > 0
