"""Property tests for swept contact detection.

The sweep's contract is exact: encounter windows extracted via the
spatial sort-and-sweep must be *bit-identical* to the all-pairs
reference — same pairs, same window boundaries, ties on the radius
included — because city-scale runs route every neighbor query through
the index while the paper-scale goldens pin the brute path.  Hypothesis
drives randomized traces (fleet size, duration, spread, radius,
off-map excursions) through both extractors.
"""

from __future__ import annotations

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.net.sweep import (
    ContactIndex,
    pairwise_encounters,
    sweep_encounters,
)
from repro.sim.traces import SWEPT_MIN_VEHICLES, MobilityTraces


@st.composite
def trace_cases(draw):
    n = draw(st.integers(min_value=1, max_value=24))
    n_steps = draw(st.integers(min_value=1, max_value=12))
    size = draw(st.floats(min_value=20.0, max_value=3000.0))
    radius = draw(st.floats(min_value=1.0, max_value=800.0))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    # Random-walk positions, some flung off the nominal map (vehicles
    # are not clipped during simulation).
    start = rng.uniform(-0.2 * size, 1.2 * size, size=(n, 2))
    steps = rng.normal(scale=0.05 * size, size=(n_steps, n, 2))
    positions = start[None, :, :] + np.cumsum(steps, axis=0)
    return positions, radius


class TestSweepMatchesPairwise:
    @settings(max_examples=200, deadline=None)
    @given(trace_cases())
    def test_windows_bit_identical(self, case):
        positions, radius = case
        swept = sweep_encounters(positions, radius)
        reference = pairwise_encounters(positions, radius)
        assert swept.to_tuples() == reference.to_tuples()

    @settings(max_examples=50, deadline=None)
    @given(trace_cases(), st.floats(min_value=0.5, max_value=3.0))
    def test_cell_size_never_changes_windows(self, case, cell_scale):
        # Any cell size (including ones below the radius, which the
        # sweep clamps) must yield the same windows.
        positions, radius = case
        swept = sweep_encounters(positions, radius, cell_size=cell_scale * radius)
        assert swept.to_tuples() == pairwise_encounters(positions, radius).to_tuples()

    @settings(max_examples=60, deadline=None)
    @given(trace_cases())
    def test_window_invariants(self, case):
        positions, radius = case
        windows = sweep_encounters(positions, radius)
        n_steps = positions.shape[0]
        assert np.all(windows.pair_i < windows.pair_j)
        assert np.all(windows.start <= windows.end)
        assert np.all(windows.start >= 0)
        assert np.all(windows.end < n_steps)
        # Windows of the same pair are disjoint and non-adjacent (else
        # they would have been merged into one maximal window).
        tuples = windows.to_tuples()
        for (i1, j1, s1, e1), (i2, j2, s2, e2) in zip(tuples, tuples[1:]):
            if (i1, j1) == (i2, j2):
                assert s2 > e1 + 1


class TestContactIndex:
    @settings(max_examples=100, deadline=None)
    @given(trace_cases(), st.integers(min_value=0, max_value=2**31 - 1))
    def test_neighbors_match_brute_scan(self, case, seed):
        positions, radius = case
        index = ContactIndex(sweep_encounters(positions, radius))
        rng = np.random.default_rng(seed)
        n_steps, n = positions.shape[0], positions.shape[1]
        for _ in range(5):
            v = int(rng.integers(n))
            k = int(rng.integers(n_steps))
            pos = positions[k]
            d = pos - pos[v]
            dist = np.sqrt(np.add.reduce(d * d, axis=1))
            brute = [int(i) for i in np.where(dist <= radius)[0] if i != v]
            assert index.neighbors_at(v, k) == brute

    def test_window_counts(self):
        rng = np.random.default_rng(7)
        positions = rng.uniform(0, 200, size=(6, 10, 2))
        index = ContactIndex(sweep_encounters(positions, 80.0))
        total = index.window_count()
        assert total == len(index.windows)
        # Each window is visible from both endpoints.
        assert sum(index.window_count(v) for v in range(10)) == 2 * total


class TestTracesRouting:
    def _traces(self, n, seed=11):
        rng = np.random.default_rng(seed)
        positions = rng.uniform(0, 600, size=(9, n, 2))
        return MobilityTraces(
            vehicle_ids=[f"v{i}" for i in range(n)],
            times=np.arange(9) * 0.5,
            positions=positions,
        )

    def test_small_fleet_stays_on_brute_path(self):
        traces = self._traces(SWEPT_MIN_VEHICLES - 1)
        traces.neighbors(0, 1.0, 150.0)
        assert not getattr(traces, "_contact_indexes", {})

    def test_large_fleet_uses_index_and_matches_brute(self):
        n = SWEPT_MIN_VEHICLES
        traces = self._traces(n)
        radius = 150.0
        for v in (0, n // 2, n - 1):
            for t in (0.0, 1.2, 4.0):
                got = traces.neighbors(v, t, radius)
                k = traces.index_at(t)
                pos = traces.positions[k]
                d = pos - pos[v]
                dist = np.sqrt(np.add.reduce(d * d, axis=1))
                want = [int(i) for i in np.where(dist <= radius)[0] if i != v]
                assert got == want
        assert traces._contact_indexes  # the index memo was built

    def test_index_memo_is_per_radius(self):
        traces = self._traces(SWEPT_MIN_VEHICLES)
        a = traces.contact_index(100.0)
        b = traces.contact_index(250.0)
        assert a is traces.contact_index(100.0)
        assert a is not b
