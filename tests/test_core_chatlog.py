"""Tests for structured chat logging."""

import pytest

from repro.core.chat import ChatOutcome
from repro.core.chatlog import ChatLog, ChatRecord
from repro.core.psi import PsiDecision


def make_record(psi_i=1.0, psi_j=0.0, aborted="", coresets=True, time=5.0):
    outcome = ChatOutcome(
        duration=10.0,
        coresets_exchanged=coresets,
        i_received_model=psi_j > 0,
        j_received_model=psi_i > 0,
        psi=PsiDecision(psi_i, psi_j, 1.0, 12.0) if not aborted else None,
        absorbed_by_i=8,
        absorbed_by_j=8,
        aborted=aborted,
    )
    return ChatRecord.from_outcome(time, "v0", "v1", outcome)


class TestChatRecord:
    def test_from_outcome_flattens(self):
        record = make_record(psi_i=0.8, psi_j=0.2)
        assert record.psi_i == 0.8
        assert record.psi_j == 0.2
        assert record.absorbed == 16
        assert record.initiator == "v0"

    def test_aborted_outcome_zero_psi(self):
        record = make_record(aborted="coresets", coresets=False)
        assert record.psi_i == 0.0 and record.psi_j == 0.0
        assert record.aborted == "coresets"


class TestChatLog:
    def test_append_and_len(self):
        log = ChatLog()
        log.append(make_record())
        assert len(log) == 1

    def test_mean_psi(self):
        log = ChatLog()
        log.append(make_record(psi_i=1.0, psi_j=0.0))
        log.append(make_record(psi_i=0.5, psi_j=0.5))
        assert log.mean_psi() == pytest.approx((1.0 + 0.0 + 0.5 + 0.5) / 4)

    def test_mean_psi_empty(self):
        assert ChatLog().mean_psi() == 0.0

    def test_one_sided_fraction(self):
        log = ChatLog()
        log.append(make_record(psi_i=1.0, psi_j=0.0))  # one-sided
        log.append(make_record(psi_i=0.5, psi_j=0.5))  # mutual
        log.append(make_record(psi_i=0.0, psi_j=0.0))  # nothing sent
        assert log.one_sided_fraction() == pytest.approx(1 / 3)

    def test_abort_counts(self):
        log = ChatLog()
        log.append(make_record(aborted="assist", coresets=False))
        log.append(make_record(aborted="assist", coresets=False))
        log.append(make_record())
        assert log.abort_counts() == {"assist": 2}

    def test_per_vehicle_chats(self):
        log = ChatLog()
        log.append(make_record())
        log.append(make_record())
        counts = log.per_vehicle_chats()
        assert counts == {"v0": 2, "v1": 2}


class TestTrainerIntegration:
    def test_lbchat_populates_log(self, fleet_datasets, traces):
        from repro.core.lbchat import LbChatConfig, LbChatTrainer
        from repro.sim.dataset import DrivingDataset
        from tests.conftest import make_node

        nodes = [
            make_node(vid, ds, coreset_size=8, seed=13)
            for vid, ds in sorted(fleet_datasets.items())
        ]
        validation = DrivingDataset(
            [fleet_datasets["v0"].frame(i) for i in range(0, 30, 6)]
        )
        trainer = LbChatTrainer(
            nodes,
            traces,
            validation,
            LbChatConfig(duration=100.0, train_interval=3.0, record_interval=50.0, seed=1),
        )
        trainer.run()
        assert len(trainer.chat_log) == trainer.counters.get("chats")
        if len(trainer.chat_log):
            assert 0.0 <= trainer.chat_log.mean_psi() <= 1.0
