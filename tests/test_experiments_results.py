"""Unit tests for TableResult/FigureResult containers and helpers."""

import numpy as np
import pytest

from repro.experiments.figures import FigureResult
from repro.experiments.tables import CONDITIONS, TableResult


class TestTableResult:
    def _table(self):
        values = {cond: {"A": 90.0, "B": 70.0} for cond in CONDITIONS}
        values["Navi. (Dense)"] = {"A": 60.0, "B": 40.0}
        return TableResult(
            title="T", columns=["A", "B"], values=values, receive_rates={"A": 0.9}
        )

    def test_cell_lookup(self):
        table = self._table()
        assert table.cell("Navi. (Dense)", "A") == 60.0
        assert table.cell("Straight", "B") == 70.0

    def test_render_contains_all_conditions(self):
        text = self._table().render()
        for cond in CONDITIONS:
            assert cond in text

    def test_render_numeric_cells(self):
        text = self._table().render()
        assert "90" in text and "40" in text


class TestFigureResult:
    def _figure(self):
        grid = np.linspace(0.0, 100.0, 11)
        return FigureResult(
            title="F",
            grid=grid,
            curves={
                "fast": np.linspace(5.0, 0.5, 11),
                "slow": np.linspace(5.0, 2.0, 11),
            },
        )

    def test_final(self):
        figure = self._figure()
        assert figure.final("fast") == pytest.approx(0.5)
        assert figure.final("slow") == pytest.approx(2.0)

    def test_convergence_time_ordering(self):
        figure = self._figure()
        assert figure.convergence_time("fast", 2.5) < figure.convergence_time(
            "slow", 2.5
        )

    def test_convergence_time_unreached_returns_end(self):
        figure = self._figure()
        assert figure.convergence_time("slow", 0.1) == 100.0

    def test_render_mentions_methods(self):
        text = self._figure().render()
        assert "fast" in text and "slow" in text
