"""Overlapped chat transfers (repro.core.overlap) and their satellites.

Covers the :class:`TransferLedger` occupancy semantics, the memoized
chat-byte estimator, commit-at-barrier behavior of background flights,
range-cut aborts, checkpoint/resume with a transfer in the air, and
step-shard bit-identity with overlap on.  A hypothesis property pins the
flag-off path: with ``overlap_chat`` off, runs through the new
ledger/memo plumbing are bit-identical to runs that bypass the memo.
"""

from __future__ import annotations

import functools

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checkpoint.policy import CheckpointPolicy
from repro.core.chat import ChatBytesMemo, estimated_chat_bytes
from repro.core.lbchat import LbChatConfig, LbChatTrainer
from repro.core.ledger import TransferLedger
from repro.net.channel import ChannelConfig
from repro.sim.dataset import DrivingDataset, Frame
from tests.conftest import make_node

#: Long enough for a second chat round: pairs chat at t ~ 0-8 (psi = 0,
#: models still agree), then again after the 60 s cooldown with divergent
#: models — those chats pick psi > 0 and launch background flights.
DURATION = 120.0
EVERY = 10.0


# -- TransferLedger (satellite: occupancy merge) ------------------------------


class TestTransferLedger:
    def test_occupy_merges_overlapping_windows(self):
        ledger = TransferLedger(2)
        assert ledger.occupy(0, now=0.0, duration=5.0) == 5.0
        # A shorter overlapping occupancy must not shrink the horizon.
        assert ledger.occupy(0, now=1.0, duration=2.0) == 5.0
        assert not ledger.is_idle(0, 4.999)
        assert ledger.is_idle(0, 5.0)
        # Extending past the horizon merges to the later end.
        assert ledger.occupy(0, now=4.0, duration=10.0) == 14.0
        assert ledger.is_idle(1, 0.0)

    def test_in_flight_blocks_idle_without_busy(self):
        ledger = TransferLedger(2)
        ledger.begin_flight(0)
        assert not ledger.is_idle(0, 100.0)
        assert ledger.is_idle(1, 0.0)
        ledger.begin_flight(0)
        ledger.end_flight(0)
        assert not ledger.is_idle(0, 100.0)  # still one flight out
        ledger.end_flight(0)
        assert ledger.is_idle(0, 100.0)

    def test_end_flight_without_begin_raises(self):
        ledger = TransferLedger(1)
        with pytest.raises(ValueError):
            ledger.end_flight(0)

    def test_snapshot_roundtrip(self):
        ledger = TransferLedger(3)
        ledger.occupy(1, now=2.0, duration=7.0)
        ledger.begin_flight(2)
        state = ledger.snapshot()
        fresh = TransferLedger(3)
        fresh.restore(state)
        assert fresh.busy_until[1] == 9.0
        assert not fresh.is_idle(2, 50.0)


# -- ChatBytesMemo (satellite: memoized estimates) ----------------------------


class TestChatBytesMemo:
    def test_hit_and_value(self, node_pair):
        node_i, node_j = node_pair
        memo = ChatBytesMemo()
        value = memo.estimate(node_i, node_j, 0.6)
        assert value == estimated_chat_bytes(node_i, node_j, 0.6)
        assert (memo.hits, memo.misses) == (0, 1)
        assert memo.estimate(node_i, node_j, 0.6) == value
        assert memo.hits == 1

    def test_invalidated_by_coreset_change(self, node_pair):
        node_i, node_j = node_pair
        memo = ChatBytesMemo()
        before = memo.estimate(node_i, node_j, 1.0)
        # Absorption grows the coreset dataset -> generation bump.
        frame = node_j.dataset.frame(0)
        node_i.coreset.data.add(
            Frame("memo-test-frame", frame.bev, frame.command, frame.waypoints)
        )
        after = memo.estimate(node_i, node_j, 1.0)
        assert memo.misses == 2
        assert after == estimated_chat_bytes(node_i, node_j, 1.0)
        assert after != before

    def test_refresh_swaps_identity(self, node_pair):
        node_i, node_j = node_pair
        memo = ChatBytesMemo()
        memo.estimate(node_i, node_j, 1.0)
        node_i.refresh_coreset()  # new dataset object -> new uid
        memo.estimate(node_i, node_j, 1.0)
        assert memo.misses == 2

    def test_capacity_clears_wholesale(self, node_pair):
        node_i, node_j = node_pair
        memo = ChatBytesMemo()
        memo.max_entries = 2
        memo.estimate(node_i, node_j, 0.1)
        memo.estimate(node_i, node_j, 0.2)
        memo.estimate(node_i, node_j, 0.3)  # evicts everything first
        assert len(memo._table) == 1


# -- trainer harness ----------------------------------------------------------


@pytest.fixture()
def validation(fleet_datasets):
    val = DrivingDataset()
    for dataset in fleet_datasets.values():
        val.extend([dataset.frame(i) for i in range(0, len(dataset), 8)])
    return val


def build_trainer(fleet_datasets, traces, validation, **overrides):
    nodes = [
        make_node(vid, dataset, coreset_size=10, seed=3)
        for vid, dataset in sorted(fleet_datasets.items())
    ]
    kwargs = dict(
        duration=DURATION,
        train_interval=2.0,
        record_interval=20.0,
        wireless_loss=False,
        seed=1,
    )
    kwargs.update(overrides)
    config = LbChatConfig(**kwargs)
    return LbChatTrainer(nodes, traces, validation, config)


def digest(trainer) -> tuple:
    grid = np.linspace(0.0, DURATION, 7)
    return (
        tuple(trainer.loss_curve.mean_curve(grid).tolist()),
        tuple(sorted(trainer.counters.snapshot().items())),
        tuple(node.flat_params.tobytes() for node in trainer.nodes),
        tuple(tuple(node.dataset.ids) for node in trainer.nodes),
        trainer.receive_rate.snapshot()["attempted"],
        trainer.receive_rate.snapshot()["completed"],
    )


class MemoryCheckpointer:
    """Barrier snapshots kept in memory (the store-free Checkpointer)."""

    def __init__(self, every: float = EVERY):
        self.policy = CheckpointPolicy(every=every)
        self.states: dict[int, dict] = {}

    def schedule(self, trainer) -> None:
        start = trainer.sim.now
        for index, when in self.policy.barriers(trainer.config.duration):
            if when <= start:
                continue
            trainer.sim.call_at(
                when, functools.partial(self._save, trainer, index)
            )

    def _save(self, trainer, index: int) -> None:
        self.states[index] = trainer.checkpoint_barrier(index)


# -- flag-off bit-identity (satellite: hypothesis property) -------------------


class TestFlagOffIdentity:
    @settings(
        max_examples=3,
        deadline=None,
        suppress_health_check=[
            HealthCheck.too_slow,
            HealthCheck.function_scoped_fixture,
        ],
    )
    @given(seed=st.sampled_from((1, 2, 3)))
    def test_memo_and_ledger_are_invisible_when_flag_off(
        self, fleet_datasets, traces, validation, seed
    ):
        """Flag-off runs must not be perturbed by the memo or ledger.

        The reference trainer bypasses the memo entirely (every estimate
        recomputed); the candidate uses the memoized path.  Digests must
        match bit-for-bit for every seed.
        """
        reference = build_trainer(fleet_datasets, traces, validation, seed=seed)
        reference.estimate_chat_bytes = (
            lambda i, j, psi_total: estimated_chat_bytes(
                reference.nodes[i], reference.nodes[j], psi_total
            )
        )
        candidate = build_trainer(fleet_datasets, traces, validation, seed=seed)
        assert candidate.overlap is None
        reference.run()
        candidate.run()
        assert candidate._chat_bytes_memo.misses > 0  # the memo path engaged
        assert digest(candidate) == digest(reference)


# -- overlapped flights -------------------------------------------------------


class TestOverlapFlights:
    def test_commit_at_barrier(self, fleet_datasets, traces, validation):
        """Overlapped chats eventually commit: no flight outlives its
        window, models/coresets land, and the run still learns."""
        trainer = build_trainer(
            fleet_datasets, traces, validation, overlap_chat=True
        )
        assert trainer.overlap is not None
        trainer.run()
        assert len(trainer.overlap.flights) == 0
        assert trainer.counters.get("chats") > 0
        assert trainer.counters.get("coresets_exchanged") > 0
        assert len(trainer.chat_log.records) == trainer.counters.get("chats")
        assert np.all(trainer.ledger.in_flight == 0)
        # Flights actually flew: model receptions only happen on commit.
        assert trainer.receive_rate.attempted > 0
        assert trainer.receive_rate.completed > 0
        grid = np.linspace(0.0, DURATION, 5)
        curve = trainer.loss_curve.mean_curve(grid)
        assert curve[-1] < curve[0]

    def test_abort_on_range_cut(self, node_pair):
        """A flight cut by range still commits its plan-time coresets."""
        from repro.core.overlap import TransferScheduler, plan_chat
        from repro.engine.events import Simulator
        from repro.net.wireless import WirelessModel

        node_i, node_j = node_pair
        channel = ChannelConfig()
        wireless = WirelessModel(max_range=500.0, enabled=False)

        cutoff = {"t": np.inf}

        def distance_fn(t: float) -> float:
            return 10.0 if t < cutoff["t"] else 1e9

        plan = plan_chat(
            node_i, node_j, 0, 1, distance_fn,
            start_time=0.0, contact_deadline=300.0,
            wireless=wireless, channel=channel, time_budget=300.0,
        )
        assert plan.flight is not None and len(plan.flight.legs) > 0
        # Cut the link shortly after the transfer phase begins: the
        # first chunk delivers, then the pair drops out of range.
        cutoff["t"] = plan.flight.transfer_start + channel.chunk_seconds + 1e-6

        class StubTrainer:
            def __init__(self):
                self.sim = Simulator()
                self.nodes = [node_i, node_j]
                self.ledger = TransferLedger(2)
                self.wireless = wireless
                self.config = type("C", (), {"channel": channel})()
                self.commits = []

            def pair_distance_fn(self, i, j):
                return distance_fn

            def on_overlap_commit(self, flight):
                self.commits.append(flight)

        trainer = StubTrainer()
        scheduler = TransferScheduler(trainer)
        params_before = [node.flat_params.copy() for node in (node_i, node_j)]
        sizes_before = [len(node.dataset) for node in (node_i, node_j)]
        scheduler.launch(plan.flight)
        assert not trainer.ledger.is_idle(0, 1e9)
        trainer.sim.run(until=1000.0)
        outcome = plan.flight.outcome
        assert len(scheduler.flights) == 0
        assert len(trainer.commits) == 1
        assert np.all(trainer.ledger.in_flight == 0)
        # Models were cut, so at least one direction failed...
        assert not (outcome.i_received_model and outcome.j_received_model)
        # ...but the plan-phase coresets still committed.
        assert outcome.absorbed_by_i + outcome.absorbed_by_j > 0
        assert len(node_i.dataset) > sizes_before[0]
        assert len(node_j.dataset) > sizes_before[1]
        # A receiver that got nothing keeps its trained-ahead params.
        for received, before, node in zip(
            (outcome.i_received_model, outcome.j_received_model),
            params_before,
            (node_i, node_j),
        ):
            if not received:
                assert np.array_equal(node.flat_params, before)

    def test_resume_with_in_flight_transfer(
        self, fleet_datasets, traces, validation
    ):
        """Barrier resume with a transfer in the air is bit-identical."""
        reference = build_trainer(
            fleet_datasets, traces, validation, overlap_chat=True
        )
        saver = MemoryCheckpointer()
        reference.run(checkpointer=saver)
        in_flight = {
            index: len(state.get("overlap", {}).get("flights", ()))
            for index, state in saver.states.items()
        }
        barriers = [index for index, n in sorted(in_flight.items()) if n > 0]
        assert barriers, (
            f"no barrier caught a transfer in flight ({in_flight}); "
            "slow the channel or adjust the cadence so the test bites"
        )
        for barrier in barriers:
            resumed = build_trainer(
                fleet_datasets, traces, validation, overlap_chat=True
            )
            resumed.restore(saver.states[barrier])
            resumed.run(checkpointer=MemoryCheckpointer())
            assert digest(resumed) == digest(reference), f"barrier {barrier}"

    def test_in_flight_checkpoint_refuses_flag_off_trainer(
        self, fleet_datasets, traces, validation
    ):
        reference = build_trainer(
            fleet_datasets, traces, validation, overlap_chat=True
        )
        saver = MemoryCheckpointer()
        reference.run(checkpointer=saver)
        state = next(
            (
                s
                for _, s in sorted(saver.states.items())
                if s.get("overlap", {}).get("flights")
            ),
            None,
        )
        assert state is not None
        plain = build_trainer(fleet_datasets, traces, validation)
        with pytest.raises(ValueError, match="overlap"):
            plain.restore(state)

    def test_stepshard_bit_identity_under_overlap(
        self, fleet_datasets, traces, validation
    ):
        from repro.parallel.stepshard import fork_available

        if not fork_available():
            pytest.skip("fork start method unavailable")
        serial = build_trainer(
            fleet_datasets, traces, validation, overlap_chat=True
        )
        sharded = build_trainer(
            fleet_datasets, traces, validation, overlap_chat=True, step_workers=2
        )
        serial.run()
        sharded.run()
        assert digest(sharded) == digest(serial)
