"""Unit tests for the wireless loss model."""

import numpy as np
import pytest

from repro.net import DEFAULT_LOSS_TABLE, WirelessModel


class TestLossTable:
    def test_monotone_in_distance(self):
        losses = [row[1] for row in DEFAULT_LOSS_TABLE]
        assert losses == sorted(losses)

    def test_loss_at_bins(self):
        model = WirelessModel()
        assert model.loss_at(10.0) == 0.01
        assert model.loss_at(50.0) == 0.01  # boundary inclusive
        assert model.loss_at(51.0) == 0.03
        assert model.loss_at(499.0) == 0.80

    def test_out_of_range_total_loss(self):
        model = WirelessModel()
        assert model.loss_at(501.0) == 1.0
        assert not model.in_range(501.0)

    def test_disabled_is_lossless_within_range(self):
        model = WirelessModel(enabled=False)
        assert model.loss_at(450.0) == 0.0
        assert model.loss_at(501.0) == 1.0  # range still applies

    def test_unsorted_table_rejected(self):
        with pytest.raises(ValueError):
            WirelessModel(table=((100.0, 0.1), (50.0, 0.05)))


class TestGoodput:
    def test_goodput_factor_complements_loss(self):
        model = WirelessModel()
        assert model.goodput_factor(10.0) == pytest.approx(0.99)
        assert model.goodput_factor(600.0) == 0.0

    def test_expected_goodput_averages(self):
        model = WirelessModel()
        distances = np.array([10.0, 499.0])
        expected = (0.99 + 0.20) / 2
        assert model.expected_goodput_factor(distances) == pytest.approx(expected)

    def test_expected_goodput_empty(self):
        assert WirelessModel().expected_goodput_factor(np.zeros(0)) == 0.0
