"""Property-based tests for simulation components."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.kinematics import MAX_DECEL, VehicleState, advance
from repro.sim.router import RoutePlan

finite = st.floats(-1e3, 1e3, allow_nan=False)


def route_strategy():
    """Random polyline routes with >= 2 distinct vertices."""

    @st.composite
    def build(draw):
        n = draw(st.integers(2, 6))
        xs = draw(
            st.lists(st.floats(0, 500), min_size=n, max_size=n, unique=True)
        )
        ys = draw(st.lists(st.floats(0, 500), min_size=n, max_size=n))
        return np.stack([xs, ys], axis=1)

    return build()


class TestRoutePlanProperties:
    @settings(max_examples=30)
    @given(route_strategy(), st.floats(-100, 1500))
    def test_point_at_always_on_plan_bbox(self, vertices, s):
        plan = RoutePlan(vertices)
        point = plan.point_at(s)
        lo = vertices.min(axis=0) - 1e-6
        hi = vertices.max(axis=0) + 1e-6
        assert (point >= lo).all() and (point <= hi).all()

    @settings(max_examples=30)
    @given(route_strategy())
    def test_total_length_at_least_endpoint_distance(self, vertices):
        plan = RoutePlan(vertices)
        direct = np.linalg.norm(vertices[-1] - vertices[0])
        assert plan.total_length >= direct - 1e-6

    @settings(max_examples=30)
    @given(route_strategy(), st.floats(0, 1))
    def test_projection_of_route_point_recovers_arc(self, vertices, frac):
        plan = RoutePlan(vertices)
        s = frac * plan.total_length
        point = plan.point_at(s)
        recovered = plan.project(point)
        # Projection maps a route point back to (nearly) its arc position
        # unless the route self-intersects; allow generous slack.
        assert 0.0 <= recovered <= plan.total_length

    @settings(max_examples=30)
    @given(route_strategy())
    def test_commands_defined_everywhere(self, vertices):
        plan = RoutePlan(vertices)
        for s in np.linspace(0, plan.total_length, 9):
            assert plan.command_at(float(s)) in (0, 1, 2, 3)


class TestKinematicsProperties:
    @settings(max_examples=50)
    @given(
        finite,
        finite,
        st.floats(-np.pi, np.pi),
        st.floats(0, 30),
        st.floats(-5, 5),
        st.floats(-10, 10),
        st.floats(0.01, 1.0),
    )
    def test_speed_nonnegative_heading_wrapped(
        self, x, y, heading, speed, turn_rate, accel, dt
    ):
        state = VehicleState(x, y, heading, speed)
        out = advance(state, turn_rate, accel, dt)
        assert out.speed >= 0.0
        assert -np.pi <= out.heading <= np.pi

    @settings(max_examples=50)
    @given(st.floats(0, 30), st.floats(0.01, 1.0))
    def test_displacement_bounded_by_speed(self, speed, dt):
        state = VehicleState(0.0, 0.0, 0.0, speed)
        out = advance(state, 0.0, 0.0, dt)
        moved = np.hypot(out.x, out.y)
        assert moved <= (speed + 3.0 * dt) * dt + 1e-9

    @settings(max_examples=50)
    @given(st.floats(0, 30))
    def test_full_braking_stops_within_bound(self, speed):
        state = VehicleState(0.0, 0.0, 0.0, speed)
        steps = int(np.ceil(speed / MAX_DECEL / 0.1)) + 2
        for _ in range(steps):
            state = advance(state, 0.0, -MAX_DECEL, 0.1)
        assert state.speed == 0.0
