"""Property tests for the spatial-hash grid.

The grid's contract is exact: grid-backed ``road_obstacles`` (and
``SpatialGrid.query_radius``) must return *precisely* what the
brute-force distance scan returns — same elements, same order — because
full simulation runs are gated on bit-identity with the pre-grid
goldens.  Hypothesis drives randomized agent layouts, query centers,
radii, and cell sizes through both paths.
"""

from __future__ import annotations

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.sim.map import TownMap
from repro.sim.spatial import SpatialGrid
from repro.sim.traffic import road_obstacles


@st.composite
def grid_cases(draw):
    n = draw(st.integers(min_value=0, max_value=60))
    size = draw(st.floats(min_value=10.0, max_value=2000.0))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    radius = draw(st.floats(min_value=0.1, max_value=300.0))
    cell = draw(st.floats(min_value=0.5, max_value=200.0))
    rng = np.random.default_rng(seed)
    # Mostly in-map points, some flung outside (agents are not clipped
    # to the map during simulation).
    positions = rng.uniform(-0.2 * size, 1.2 * size, size=(n, 2))
    center = rng.uniform(-0.2 * size, 1.2 * size, size=2)
    return positions, center, radius, cell


class TestQueryRadiusMatchesBruteForce:
    @settings(max_examples=200, deadline=None)
    @given(grid_cases())
    def test_exact_indices(self, case):
        positions, center, radius, cell = case
        grid = SpatialGrid(positions, cell_size=cell)
        got = grid.query_radius(center, radius)
        if len(positions):
            dist = np.linalg.norm(positions - center, axis=1)
            want = np.nonzero(dist < radius)[0]
        else:
            want = np.zeros(0, dtype=np.intp)
        np.testing.assert_array_equal(got, want)

    @settings(max_examples=100, deadline=None)
    @given(grid_cases())
    def test_query_superset_is_sorted(self, case):
        positions, center, radius, cell = case
        idx = SpatialGrid(positions, cell_size=cell).query(center, radius)
        assert np.all(np.diff(idx) > 0)  # strictly ascending, no dupes
        # Superset: contains every true neighbor.
        if len(positions):
            dist = np.linalg.norm(positions - center, axis=1)
            assert set(np.nonzero(dist < radius)[0]) <= set(idx.tolist())


class TestRoadObstaclesGridEquivalence:
    @pytest.fixture(scope="class")
    def town(self):
        return TownMap(size=300.0, grid_n=3, seed=1)

    @settings(max_examples=100, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        n=st.integers(min_value=0, max_value=50),
        radius=st.floats(min_value=1.0, max_value=120.0),
        exclude=st.booleans(),
    )
    def test_same_elements_same_order(self, town, seed, n, radius, exclude):
        rng = np.random.default_rng(seed)
        positions = rng.uniform(0.0, town.size, size=(n, 2))
        center = rng.uniform(0.0, town.size, size=2)
        excl = int(rng.integers(n)) if exclude and n else None
        grid = SpatialGrid(positions)
        got = road_obstacles(town, positions, center, radius, grid=grid, exclude=excl)
        want = road_obstacles(town, positions, center, radius, exclude=excl)
        np.testing.assert_array_equal(got, want)

    def test_matches_self_masked_brute_force(self, town):
        # The pre-grid callers masked out the querying agent by hand;
        # exclude= must select exactly that.
        rng = np.random.default_rng(3)
        positions = rng.uniform(0.0, town.size, size=(20, 2))
        grid = SpatialGrid(positions)
        for i in (0, 7, 19):
            mask = np.ones(len(positions), dtype=bool)
            mask[i] = False
            want = road_obstacles(town, positions[mask], positions[i])
            got = road_obstacles(town, positions, positions[i], grid=grid, exclude=i)
            np.testing.assert_array_equal(got, want)

    def test_empty_and_edge_cases(self, town):
        empty = np.zeros((0, 2))
        grid = SpatialGrid(empty)
        assert road_obstacles(town, empty, np.array([10.0, 10.0]), grid=grid).shape == (0, 2)
        assert grid.query(np.array([5.0, 5.0]), 10.0).shape == (0,)
        # Query disk entirely off the populated area.
        positions = np.array([[10.0, 10.0], [12.0, 10.0]])
        grid = SpatialGrid(positions)
        far = grid.query_radius(np.array([290.0, 290.0]), 5.0)
        assert far.shape == (0,)
        # Center on the map edge still sees edge agents.
        edge = grid.query_radius(np.array([0.0, 10.0]), 15.0)
        np.testing.assert_array_equal(edge, [0, 1])

    def test_brute_fallback_on_huge_extent(self):
        # A stray far-away point makes the bucket table absurd; the grid
        # must degrade to brute force, not allocate it.
        positions = np.array([[0.0, 0.0], [1.0, 1.0], [1e9, 1e9]])
        grid = SpatialGrid(positions, cell_size=1.0)
        np.testing.assert_array_equal(
            grid.query_radius(np.array([0.5, 0.5]), 2.0), [0, 1]
        )
