"""Unit tests for planar geometry helpers."""

import numpy as np
import pytest

from repro.sim.geometry import (
    point_segment_distance,
    polyline_lengths,
    resample_polyline,
    to_vehicle_frame,
    to_world_frame,
    wrap_angle,
)


class TestWrapAngle:
    def test_identity_in_range(self):
        assert wrap_angle(0.5) == pytest.approx(0.5)

    def test_wraps_past_pi(self):
        assert wrap_angle(np.pi + 0.1) == pytest.approx(-np.pi + 0.1)

    def test_vectorized(self):
        out = wrap_angle(np.array([0.0, 2 * np.pi, -2 * np.pi]))
        assert np.allclose(out, 0.0, atol=1e-12)


class TestFrames:
    def test_forward_point_maps_to_positive_x(self):
        pos = np.array([10.0, 5.0])
        heading = np.pi / 2  # facing +y
        ahead = pos + np.array([0.0, 3.0])
        local = to_vehicle_frame(ahead, pos, heading)
        assert local[0] == pytest.approx(3.0)
        assert local[1] == pytest.approx(0.0, abs=1e-12)

    def test_left_point_maps_to_positive_y(self):
        pos = np.zeros(2)
        left = np.array([0.0, 2.0])  # heading 0 -> +y is left
        local = to_vehicle_frame(left, pos, 0.0)
        assert local[1] == pytest.approx(2.0)

    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(10, 2)) * 50
        pos = np.array([3.0, -7.0])
        heading = 1.1
        back = to_world_frame(to_vehicle_frame(points, pos, heading), pos, heading)
        assert np.allclose(back, points, atol=1e-9)

    def test_batch_shapes_preserved(self):
        points = np.zeros((4, 3, 2))
        out = to_vehicle_frame(points, np.ones(2), 0.3)
        assert out.shape == (4, 3, 2)


class TestPointSegmentDistance:
    def test_perpendicular_distance(self):
        d = point_segment_distance(
            np.array([[1.0, 1.0]]), np.array([0.0, 0.0]), np.array([2.0, 0.0])
        )
        assert d[0] == pytest.approx(1.0)

    def test_clamps_to_endpoints(self):
        d = point_segment_distance(
            np.array([[5.0, 0.0]]), np.array([0.0, 0.0]), np.array([2.0, 0.0])
        )
        assert d[0] == pytest.approx(3.0)

    def test_degenerate_segment(self):
        d = point_segment_distance(
            np.array([[3.0, 4.0]]), np.array([0.0, 0.0]), np.array([0.0, 0.0])
        )
        assert d[0] == pytest.approx(5.0)


class TestPolyline:
    def test_lengths_cumulative(self):
        poly = np.array([[0.0, 0.0], [3.0, 0.0], [3.0, 4.0]])
        lengths = polyline_lengths(poly)
        assert lengths.tolist() == [0.0, 3.0, 7.0]

    def test_resample_spacing(self):
        poly = np.array([[0.0, 0.0], [10.0, 0.0]])
        dense = resample_polyline(poly, 1.0)
        assert len(dense) == 11
        assert np.allclose(np.diff(dense[:, 0]), 1.0)

    def test_resample_keeps_endpoints(self):
        poly = np.array([[0.0, 0.0], [5.0, 5.0], [10.0, 0.0]])
        dense = resample_polyline(poly, 3.0)
        assert np.allclose(dense[0], poly[0])
        assert np.allclose(dense[-1], poly[-1])

    def test_resample_invalid_spacing(self):
        with pytest.raises(ValueError):
            resample_polyline(np.zeros((2, 2)), 0.0)

    def test_resample_single_point(self):
        poly = np.array([[1.0, 2.0]])
        assert np.array_equal(resample_polyline(poly, 1.0), poly)
