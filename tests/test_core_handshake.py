"""Tests for the §III-A handshake protocol and its deadlock handling."""

import pytest

from repro.core.handshake import HandshakeMediator, PeerState, ProposalOutcome
from repro.engine import Simulator


@pytest.fixture()
def sim():
    return Simulator()


@pytest.fixture()
def mediator(sim):
    return HandshakeMediator(sim, max_wait=2.0, signal_delay=0.05)


def run_proposal(sim, mediator, proposer, target, log):
    def proc():
        outcome = yield from mediator.propose(proposer, target)
        log.append((proposer, target, outcome, sim.now))

    return sim.process(proc())


class TestBasics:
    def test_idle_target_accepts(self, sim, mediator):
        log = []
        run_proposal(sim, mediator, 0, 1, log)
        sim.run()
        assert log == [(0, 1, ProposalOutcome.ACCEPTED, pytest.approx(0.05))]
        assert mediator.state(0) is PeerState.CHATTING
        assert mediator.state(1) is PeerState.CHATTING

    def test_chatting_target_rejects(self, sim, mediator):
        mediator.begin_chat(1, 2)
        log = []
        run_proposal(sim, mediator, 0, 1, log)
        sim.run()
        assert log[0][2] is ProposalOutcome.REJECTED
        assert mediator.state(0) is PeerState.IDLE

    def test_end_chat_restores_idle(self, sim, mediator):
        mediator.begin_chat(0, 1)
        mediator.end_chat(0, 1)
        assert mediator.state(0) is PeerState.IDLE
        assert mediator.state(1) is PeerState.IDLE

    def test_self_proposal_rejected(self, sim, mediator):
        with pytest.raises(ValueError):
            list(mediator.propose(3, 3))

    def test_non_idle_proposer_rejected(self, sim, mediator):
        mediator.begin_chat(0, 1)

        def proc():
            yield from mediator.propose(0, 2)

        sim.process(proc())
        with pytest.raises(RuntimeError):
            sim.run()


class TestMutualProposals:
    def test_simultaneous_mutual_accepts_once(self, sim, mediator):
        log = []
        run_proposal(sim, mediator, 0, 1, log)
        run_proposal(sim, mediator, 1, 0, log)
        sim.run()
        outcomes = {entry[2] for entry in log}
        assert outcomes == {ProposalOutcome.ACCEPTED}
        assert mediator.state(0) is PeerState.CHATTING
        assert mediator.state(1) is PeerState.CHATTING


class TestDeadlockBreaking:
    def test_proposal_cycle_resolves(self, sim, mediator):
        """A->B, B->C, C->A: rejections break the cycle, nobody hangs."""
        log = []
        for proposer, target in ((0, 1), (1, 2), (2, 0)):
            run_proposal(sim, mediator, proposer, target, log)
        sim.run()
        assert len(log) == 3
        assert sim.now < mediator.max_wait + 1.0
        # Every proposal resolved; no vehicle is stuck PROPOSING.
        for vehicle in (0, 1, 2):
            assert mediator.state(vehicle) is not PeerState.PROPOSING

    def test_timeout_fires_when_no_answer(self, sim):
        mediator = HandshakeMediator(sim, max_wait=1.0, signal_delay=0.05)
        # Monkeypatch delivery away so the proposal is never answered.
        mediator._deliver = lambda proposal: None
        log = []
        run_proposal(sim, mediator, 0, 1, log)
        sim.run()
        assert log[0][2] is ProposalOutcome.TIMED_OUT
        assert log[0][3] == pytest.approx(1.0)
        assert mediator.state(0) is PeerState.IDLE

    def test_staggered_proposals_first_wins(self, sim, mediator):
        log = []
        run_proposal(sim, mediator, 0, 2, log)

        def late():
            yield sim.timeout(0.01)
            outcome = yield from mediator.propose(1, 2)
            log.append((1, 2, outcome, sim.now))

        sim.process(late())
        sim.run()
        by_proposer = {entry[0]: entry[2] for entry in log}
        assert by_proposer[0] is ProposalOutcome.ACCEPTED
        assert by_proposer[1] is ProposalOutcome.REJECTED

    def test_rejected_proposer_can_retry(self, sim, mediator):
        mediator.begin_chat(1, 2)
        log = []

        def retrying():
            outcome = yield from mediator.propose(0, 1)
            log.append(outcome)
            if outcome is not ProposalOutcome.ACCEPTED:
                mediator.end_chat(1, 2)  # the other chat finishes
                outcome = yield from mediator.propose(0, 1)
                log.append(outcome)

        sim.process(retrying())
        sim.run()
        assert log == [ProposalOutcome.REJECTED, ProposalOutcome.ACCEPTED]
