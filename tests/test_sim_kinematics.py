"""Unit tests for vehicle kinematics."""

import numpy as np
import pytest

from repro.sim.kinematics import (
    MAX_ACCEL,
    MAX_DECEL,
    MAX_TURN_RATE,
    VehicleState,
    advance,
)


def test_straight_motion():
    state = VehicleState(0.0, 0.0, 0.0, 10.0)
    out = advance(state, turn_rate=0.0, accel=0.0, dt=1.0)
    assert out.x == pytest.approx(10.0)
    assert out.y == pytest.approx(0.0)


def test_acceleration_clipped():
    state = VehicleState(0.0, 0.0, 0.0, 0.0)
    out = advance(state, 0.0, 100.0, dt=1.0)
    assert out.speed == pytest.approx(MAX_ACCEL)


def test_deceleration_clipped():
    state = VehicleState(0.0, 0.0, 0.0, 20.0)
    out = advance(state, 0.0, -100.0, dt=1.0)
    assert out.speed == pytest.approx(20.0 - MAX_DECEL)


def test_speed_never_negative():
    state = VehicleState(0.0, 0.0, 0.0, 1.0)
    out = advance(state, 0.0, -MAX_DECEL, dt=1.0)
    assert out.speed == 0.0


def test_turn_rate_clipped():
    state = VehicleState(0.0, 0.0, 0.0, 5.0)
    out = advance(state, 100.0, 0.0, dt=1.0)
    assert out.heading == pytest.approx(MAX_TURN_RATE)


def test_heading_wraps():
    state = VehicleState(0.0, 0.0, np.pi - 0.01, 0.0)
    out = advance(state, MAX_TURN_RATE, 0.0, dt=1.0)
    assert -np.pi < out.heading <= np.pi


def test_turning_changes_direction_of_travel():
    state = VehicleState(0.0, 0.0, 0.0, 10.0)
    for _ in range(20):
        state = advance(state, MAX_TURN_RATE, 0.0, dt=0.1)
    assert state.y > 1.0  # positive turn rate curves left (+y)


def test_original_state_unmodified():
    state = VehicleState(0.0, 0.0, 0.0, 5.0)
    advance(state, 0.1, 1.0, dt=0.5)
    assert state.x == 0.0 and state.speed == 5.0


def test_copy_independent():
    state = VehicleState(1.0, 2.0, 0.3, 4.0)
    clone = state.copy()
    clone.x = 99.0
    assert state.x == 1.0


def test_position_property():
    state = VehicleState(1.5, -2.5, 0.0, 0.0)
    assert state.position.tolist() == [1.5, -2.5]


def test_distance_integrates_mid_speed():
    # Accelerating 0 -> MAX_ACCEL*dt: distance uses the average speed.
    state = VehicleState(0.0, 0.0, 0.0, 0.0)
    out = advance(state, 0.0, MAX_ACCEL, dt=1.0)
    assert out.x == pytest.approx(MAX_ACCEL / 2)
