"""Integration tests for LbChat and all baseline trainers."""

import numpy as np
import pytest

from repro.baselines import (
    DflDdsConfig,
    DflDdsTrainer,
    DpConfig,
    DpTrainer,
    ProxSkipConfig,
    ProxSkipTrainer,
    RsuLConfig,
    RsuLTrainer,
    ScoTrainer,
    equal_compression_trainer,
    mean_aggregation_trainer,
    no_prioritization_trainer,
)
from repro.core.lbchat import LbChatConfig, LbChatTrainer
from repro.sim.dataset import DrivingDataset
from tests.conftest import make_node

DURATION = 120.0


@pytest.fixture()
def validation(fleet_datasets):
    val = DrivingDataset()
    for dataset in fleet_datasets.values():
        val.extend([dataset.frame(i) for i in range(0, len(dataset), 8)])
    return val


@pytest.fixture()
def nodes(fleet_datasets):
    return [
        make_node(vid, dataset, coreset_size=10, seed=3)
        for vid, dataset in sorted(fleet_datasets.items())
    ]


def config_kwargs(**extra):
    base = dict(
        duration=DURATION,
        train_interval=2.0,
        record_interval=20.0,
        wireless_loss=False,
        seed=1,
    )
    base.update(extra)
    return base


def assert_learned(trainer, nodes):
    grid = np.linspace(0.0, DURATION, 5)
    curve = trainer.loss_curve.mean_curve(grid)
    assert curve[-1] < curve[0], f"{trainer.name} failed to learn: {curve}"
    assert len(trainer.loss_curve.keys()) == len(nodes)


class TestLbChatTrainer:
    def test_learns_and_chats(self, nodes, traces, validation):
        trainer = LbChatTrainer(nodes, traces, validation, LbChatConfig(**config_kwargs()))
        trainer.run()
        assert_learned(trainer, nodes)
        assert trainer.counters.get("chats") > 0
        assert trainer.counters.get("frames_absorbed") > 0

    def test_wireless_loss_reduces_receive_rate(self, fleet_datasets, traces, validation):
        rates = {}
        for wireless in (False, True):
            nodes = [
                make_node(vid, ds, coreset_size=10, seed=3)
                for vid, ds in sorted(fleet_datasets.items())
            ]
            trainer = LbChatTrainer(
                nodes, traces, validation, LbChatConfig(**config_kwargs(wireless_loss=wireless))
            )
            trainer.run()
            rates[wireless] = trainer.receive_rate.rate
        if rates[False] > 0:
            assert rates[True] <= rates[False] + 0.05

    def test_node_count_mismatch_rejected(self, nodes, traces, validation):
        with pytest.raises(ValueError):
            LbChatTrainer(nodes[:2], traces, validation, LbChatConfig(**config_kwargs()))

    def test_pair_cooldown_limits_rechats(self, nodes, traces, validation):
        config = LbChatConfig(**config_kwargs())
        config.pair_cooldown = 1e9  # one chat per pair, ever
        trainer = LbChatTrainer(nodes, traces, validation, config)
        trainer.run()
        n = len(nodes)
        assert trainer.counters.get("chats") <= n * (n - 1) / 2


class TestScoTrainer:
    def test_no_model_transfers(self, nodes, traces, validation):
        trainer = ScoTrainer(nodes, traces, validation, LbChatConfig(**config_kwargs()))
        trainer.run()
        assert trainer.receive_rate.attempted == 0
        assert trainer.counters.get("frames_absorbed") > 0
        assert_learned(trainer, nodes)


class TestAblationTrainers:
    def test_equal_compression(self, nodes, traces, validation):
        trainer = equal_compression_trainer(
            nodes, traces, validation, LbChatConfig(**config_kwargs())
        )
        trainer.run()
        assert trainer.config.equal_compression
        assert_learned(trainer, nodes)

    def test_mean_aggregation(self, nodes, traces, validation):
        trainer = mean_aggregation_trainer(
            nodes, traces, validation, LbChatConfig(**config_kwargs())
        )
        trainer.run()
        assert trainer.config.mean_aggregation
        assert_learned(trainer, nodes)

    def test_no_prioritization(self, nodes, traces, validation):
        trainer = no_prioritization_trainer(
            nodes, traces, validation, LbChatConfig(**config_kwargs())
        )
        trainer.run()
        assert not trainer.config.prioritize_neighbors
        assert_learned(trainer, nodes)


class TestLocalOnly:
    def test_trains_without_communication(self, nodes, traces, validation):
        from repro.baselines import LocalOnlyTrainer
        from repro.core.trainer_base import TrainerConfig

        trainer = LocalOnlyTrainer(
            nodes, traces, validation, TrainerConfig(**config_kwargs())
        )
        trainer.run()
        assert trainer.receive_rate.attempted == 0
        assert_learned(trainer, nodes)

    def test_datasets_never_grow(self, nodes, traces, validation):
        from repro.baselines import LocalOnlyTrainer
        from repro.core.trainer_base import TrainerConfig

        before = [len(n.dataset) for n in nodes]
        trainer = LocalOnlyTrainer(
            nodes, traces, validation, TrainerConfig(**config_kwargs())
        )
        trainer.run()
        assert [len(n.dataset) for n in nodes] == before


class TestProxSkip:
    def test_learns_with_rounds(self, nodes, traces, validation):
        trainer = ProxSkipTrainer(
            nodes, traces, validation, ProxSkipConfig(**config_kwargs())
        )
        trainer.run()
        assert trainer.counters.get("rounds") > 0
        assert_learned(trainer, nodes)

    def test_sync_converges_models(self, nodes, traces, validation):
        trainer = ProxSkipTrainer(
            nodes,
            traces,
            validation,
            ProxSkipConfig(**config_kwargs(wireless_loss=False)),
        )
        trainer.run()
        # After the last lossless sync all models were identical; local
        # steps since then keep them close but not equal.  Check the
        # receive rate instead: lossless backend never fails.
        assert trainer.receive_rate.rate == 1.0

    def test_loss_drops_receive_rate(self, nodes, traces, validation):
        trainer = ProxSkipTrainer(
            nodes,
            traces,
            validation,
            ProxSkipConfig(**config_kwargs(wireless_loss=True)),
        )
        trainer.run()
        assert trainer.receive_rate.rate < 1.0


class TestRsuL:
    def test_learns_and_syncs(self, nodes, traces, validation):
        trainer = RsuLTrainer(nodes, traces, validation, RsuLConfig(**config_kwargs()))
        trainer.run()
        assert trainer.counters.get("rsu_syncs") > 0
        assert_learned(trainer, nodes)

    def test_rsu_positions_inside_trace_bbox(self, nodes, traces, validation):
        trainer = RsuLTrainer(nodes, traces, validation, RsuLConfig(**config_kwargs()))
        pts = traces.positions.reshape(-1, 2)
        lo, hi = pts.min(axis=0) - 1, pts.max(axis=0) + 1
        for rsu in trainer.rsus:
            assert (rsu.position >= lo).all() and (rsu.position <= hi).all()

    def test_rsu_window_aggregation(self):
        from repro.baselines.rsul import RoadSideUnit

        rsu = RoadSideUnit("r0", np.zeros(2), np.zeros(4, dtype=np.float32))
        rsu.fold_in(np.ones(4, dtype=np.float32), mix=0.5)
        assert np.allclose(rsu.params, 1.0)
        rsu.fold_in(np.full(4, 3.0, dtype=np.float32), mix=0.5)
        assert np.allclose(rsu.params, 2.0)


class TestDflDds:
    def test_learns_with_rounds(self, nodes, traces, validation):
        trainer = DflDdsTrainer(
            nodes, traces, validation, DflDdsConfig(**config_kwargs())
        )
        trainer.run()
        assert trainer.counters.get("rounds") > 0
        assert_learned(trainer, nodes)

    def test_source_counts_grow(self, nodes, traces, validation):
        trainer = DflDdsTrainer(
            nodes, traces, validation, DflDdsConfig(**config_kwargs())
        )
        trainer.run()
        off_diagonal = trainer.source_counts - np.diag(np.diag(trainer.source_counts))
        assert off_diagonal.sum() > 0

    def test_diversity_weights_decay(self, nodes, traces, validation):
        trainer = DflDdsTrainer(
            nodes, traces, validation, DflDdsConfig(**config_kwargs())
        )
        params = np.ones_like(nodes[0].flat_params)
        trainer._aggregate(0, 1, params)
        first = trainer.source_counts[0, 1]
        trainer._aggregate(0, 1, params)
        assert trainer.source_counts[0, 1] == first + 1


class TestDp:
    def test_learns_by_gossip(self, nodes, traces, validation):
        trainer = DpTrainer(nodes, traces, validation, DpConfig(**config_kwargs()))
        trainer.run()
        assert trainer.counters.get("gossips") > 0
        assert_learned(trainer, nodes)

    def test_powerloss_weights(self):
        from repro.baselines.dp import powerloss_weights

        w_local, w_received = powerloss_weights(2.0, 1.0)
        assert w_received > w_local
        assert w_local + w_received == pytest.approx(1.0)
        assert powerloss_weights(1.0, 1.0) == (0.5, 0.5)
        assert powerloss_weights(0.0, 0.0) == (0.5, 0.5)
        with pytest.raises(ValueError):
            powerloss_weights(-1.0, 1.0)
