"""Unit tests for the repro.checkpoint subsystem.

Covers the state-tree flattening contract, the engine's restore
primitives, component snapshot round-trips, barrier policy math, and the
on-disk store's atomicity/integrity/versioning guarantees.  End-to-end
resume equivalence lives in test_checkpoint_resume.py.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.checkpoint import (
    CheckpointPolicy,
    CheckpointVersionError,
    RunStore,
    flatten_state,
    spec_fingerprint,
    spec_from_payload,
    spec_payload,
    unflatten_state,
)
from repro.checkpoint.format import CheckpointError
from repro.engine.events import Simulator
from repro.engine.metrics import CounterSet, ReceiveRateRecorder, TimeSeriesRecorder
from repro.experiments.configs import CI
from repro.experiments.runner import RunSpec
from repro.nn.optim import Adam, SGD
from repro.nn.params import Parameter


class TestFlattenState:
    def test_round_trip_nested_tree(self):
        state = {
            "time": 30.0,
            "flags": [True, None, "text", 3],
            "nodes": [
                {"params": np.arange(5, dtype=np.float32), "version": 2},
                {"params": np.ones((2, 3)), "version": np.int64(7)},
            ],
            "empty": {},
        }
        meta, arrays = flatten_state(state)
        json.dumps(meta)  # meta tree must be JSON-representable
        rebuilt = unflatten_state(meta, arrays)
        assert rebuilt["time"] == 30.0
        assert rebuilt["flags"] == [True, None, "text", 3]
        assert rebuilt["nodes"][1]["version"] == 7  # np scalar became int
        assert np.array_equal(rebuilt["nodes"][0]["params"], np.arange(5))
        assert rebuilt["nodes"][0]["params"].dtype == np.float32
        assert rebuilt["empty"] == {}

    def test_arrays_become_markers_with_paths(self):
        meta, arrays = flatten_state({"a": {"b": np.zeros(2)}})
        assert meta == {"a": {"b": {"__array__": "/a/b"}}}
        assert set(arrays) == {"/a/b"}

    def test_rejects_non_string_keys(self):
        with pytest.raises(TypeError, match="non-string"):
            flatten_state({"outer": {1: np.zeros(2)}})

    def test_rejects_reserved_keys(self):
        with pytest.raises(TypeError, match="reserved"):
            flatten_state({"__array__": 1})
        with pytest.raises(TypeError, match="reserved"):
            flatten_state({"a/b": 1})

    def test_rejects_unsupported_values(self):
        with pytest.raises(TypeError, match="unsupported state value at '/bad'"):
            flatten_state({"bad": object()})


class TestEnginePrimitives:
    def test_wait_until_fires_at_absolute_time(self):
        sim = Simulator()
        log = []

        def proc():
            yield sim.wait_until(7.5)
            log.append(sim.now)

        sim.process(proc())
        sim.run()
        assert log == [7.5]

    def test_wait_until_at_current_instant(self):
        sim = Simulator()
        sim.advance_to(4.0)
        log = []

        def proc():
            yield sim.wait_until(4.0)
            log.append(sim.now)

        sim.process(proc())
        sim.run()
        assert log == [4.0]

    def test_advance_to_moves_idle_clock(self):
        sim = Simulator()
        sim.advance_to(100.0)
        assert sim.now == 100.0
        with pytest.raises(ValueError, match="backwards"):
            sim.advance_to(50.0)

    def test_advance_to_refuses_pending_events(self):
        sim = Simulator()
        sim.call_at(5.0, lambda: None)
        with pytest.raises(RuntimeError, match="pending"):
            sim.advance_to(10.0)


class TestRecorderSnapshots:
    def test_time_series_round_trip(self):
        recorder = TimeSeriesRecorder()
        recorder.record("v0", 0.0, 1.5)
        recorder.record("v0", 30.0, 1.2)
        recorder.record("v1", 0.0, 2.0)
        clone = TimeSeriesRecorder()
        clone.restore(recorder.snapshot())
        assert clone.keys() == recorder.keys()
        for key in recorder.keys():
            assert np.array_equal(clone.series(key)[0], recorder.series(key)[0])
            assert np.array_equal(clone.series(key)[1], recorder.series(key)[1])
        clone.record("v0", 31.0, 1.0)  # still appendable after restore
        with pytest.raises(ValueError, match="non-monotonic"):
            clone.record("v0", 5.0, 1.0)

    def test_receive_rate_round_trip(self):
        recorder = ReceiveRateRecorder()
        recorder.observe("v0", True)
        recorder.observe("v0", False)
        recorder.observe("v1", True)
        clone = ReceiveRateRecorder()
        clone.restore(recorder.snapshot())
        assert clone.attempted == 3 and clone.completed == 2
        clone.observe("v2", True)  # defaultdict behaviour survives restore
        assert clone.attempted == 4

    def test_counter_set_round_trip(self):
        counters = CounterSet()
        counters.add("chats")
        counters.add("chat_seconds", 12.5)
        clone = CounterSet()
        clone.restore(counters.snapshot())
        assert clone.as_dict() == counters.as_dict()
        clone.add("new_key")
        assert clone.as_dict()["new_key"] == 1


class TestOptimizerSnapshots:
    def _params(self):
        return [Parameter(np.ones((2, 2))), Parameter(np.full(3, 2.0))]

    def _grad_step(self, opt, value):
        for p in opt.params:
            p.grad = np.full_like(p.data, value)
        opt.step()

    @pytest.mark.parametrize("make", [lambda p: Adam(p, lr=0.01), lambda p: SGD(p, lr=0.01, momentum=0.9)])
    def test_round_trip_preserves_trajectory(self, make):
        a, b = make(self._params()), make(self._params())
        for opt in (a, b):
            self._grad_step(opt, 0.5)
        b.restore(a.snapshot())  # states equal, restore must be lossless
        for opt in (a, b):
            self._grad_step(opt, -0.25)
        for pa, pb in zip(a.params, b.params):
            assert np.array_equal(pa.data, pb.data)

    def test_restore_rejects_wrong_size(self):
        opt = Adam(self._params(), lr=0.01)
        state = opt.snapshot()
        state["m"] = state["m"][:-1]
        with pytest.raises(ValueError, match="optimizer state"):
            opt.restore(state)


class TestPolicy:
    def test_barriers_are_strictly_inside_duration(self):
        policy = CheckpointPolicy(every=10.0)
        assert policy.barriers(40.0) == [(1, 10.0), (2, 20.0), (3, 30.0)]
        assert policy.barriers(10.0) == []
        assert policy.barriers(5.0) == []

    def test_validation(self):
        with pytest.raises(ValueError, match="positive"):
            CheckpointPolicy(every=0.0)
        with pytest.raises(ValueError, match="keep"):
            CheckpointPolicy(every=1.0, keep=0)


def _spec(**kwargs) -> RunSpec:
    return RunSpec(method="LbChat", scale=CI, seed=3, checkpoint_every=10.0, **kwargs)


def _state(barrier: int, time: float) -> dict:
    return {
        "barrier": barrier,
        "time": time,
        "payload": np.arange(4, dtype=np.float64) * barrier,
    }


class TestRunStore:
    def test_save_and_load_round_trip(self, tmp_path):
        store = RunStore(tmp_path)
        spec = _spec()
        store.save_checkpoint(spec, _state(1, 10.0))
        loaded = store.load_checkpoint(spec, 1)
        assert loaded["barrier"] == 1
        assert loaded["time"] == 10.0
        assert np.array_equal(loaded["payload"], np.arange(4.0))
        assert (store.run_dir(spec) / "run.json").exists()
        assert not list(store.run_dir(spec).glob("*.tmp"))

    def test_latest_checkpoint_and_prune(self, tmp_path):
        store = RunStore(tmp_path)
        spec = _spec()
        for barrier in (1, 2, 3, 4):
            store.save_checkpoint(spec, _state(barrier, 10.0 * barrier), keep=3)
        assert store.barriers(spec) == [2, 3, 4]
        assert store.latest_checkpoint(spec)["barrier"] == 4

    def test_corrupt_npz_falls_back_to_older(self, tmp_path):
        store = RunStore(tmp_path)
        spec = _spec()
        store.save_checkpoint(spec, _state(1, 10.0))
        store.save_checkpoint(spec, _state(2, 20.0))
        npz = store.run_dir(spec) / "ckpt-000002.npz"
        blob = bytearray(npz.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        npz.write_bytes(bytes(blob))
        latest = store.latest_checkpoint(spec)
        assert latest["barrier"] == 1
        assert any(e["event"] == "corrupt" for e in store.events(spec))

    def test_missing_sidecar_means_uncommitted(self, tmp_path):
        store = RunStore(tmp_path)
        spec = _spec()
        store.save_checkpoint(spec, _state(1, 10.0))
        store.save_checkpoint(spec, _state(2, 20.0))
        # A crash between the npz rename and the sidecar write leaves an
        # npz without its commit record: barrier 2 must not exist.
        (store.run_dir(spec) / "ckpt-000002.json").unlink()
        assert store.barriers(spec) == [1]
        assert store.latest_checkpoint(spec)["barrier"] == 1

    def test_version_mismatch_is_skipped(self, tmp_path):
        store = RunStore(tmp_path)
        spec = _spec()
        store.save_checkpoint(spec, _state(1, 10.0))
        sidecar = store.run_dir(spec) / "ckpt-000001.json"
        payload = json.loads(sidecar.read_text())
        payload["format"] = 999
        sidecar.write_text(json.dumps(payload))
        with pytest.raises(CheckpointVersionError):
            store.load_checkpoint(spec, 1)
        assert store.latest_checkpoint(spec) is None

    def test_drop_after_rewinds(self, tmp_path):
        store = RunStore(tmp_path)
        spec = _spec()
        for barrier in (1, 2, 3):
            store.save_checkpoint(spec, _state(barrier, 10.0 * barrier))
        store.mark_done(spec, 40.0)
        store.drop_after(spec, 1)
        assert store.barriers(spec) == [1]
        assert not (store.run_dir(spec) / "done.json").exists()


class TestSpecPayload:
    def test_round_trip(self):
        spec = _spec(overrides={"lambda_c": 0.5}, coreset_size=4)
        assert spec_from_payload(spec_payload(spec)) == spec

    def test_checkpoint_dir_threaded_separately(self):
        spec = spec_from_payload(spec_payload(_spec()), checkpoint_dir="/elsewhere")
        assert spec.checkpoint_dir == "/elsewhere"

    def test_cadence_is_part_of_identity_but_cache_is_not(self):
        base = _spec()
        assert spec_fingerprint(base) != spec_fingerprint(
            RunSpec(method="LbChat", scale=CI, seed=3, checkpoint_every=20.0)
        )
        assert spec_fingerprint(base) == spec_fingerprint(_spec(use_cache=True))

    def test_non_json_overrides_rejected(self):
        spec = _spec(overrides={"lambda_c": object()})
        with pytest.raises(CheckpointError, match="JSON-serializable"):
            spec_payload(spec)


class TestModelCheckpointValidation:
    def test_load_model_rejects_truncated_params(self, tmp_path):
        from repro.nn import make_driving_model
        from repro.nn.serialize import load_model, save_model
        from repro.sim.bev import BevSpec

        model = make_driving_model(BevSpec(grid=8, cell=2.0).shape, 2, 8, seed=0)
        path = tmp_path / "model.npz"
        save_model(model, path)
        with np.load(path) as data:
            fields = {name: data[name] for name in data.files}
        fields["params"] = fields["params"][:-3]
        np.savez_compressed(path, **fields)
        with pytest.raises(ValueError, match="corrupt checkpoint"):
            load_model(path)


class TestAtomicRunArchive:
    def test_save_run_leaves_no_temp_file(self, tmp_path, monkeypatch):
        from repro.experiments import io as experiments_io

        recorder = TimeSeriesRecorder()
        recorder.record("v0", 0.0, 1.0)
        recorder.record("v0", 40.0, 0.5)
        result = __import__("repro.experiments.runner", fromlist=["RunResult"]).RunResult(
            method="LbChat",
            seed=1,
            wireless=True,
            duration=40.0,
            loss_recorder=recorder,
            receive_attempted=2,
            receive_completed=1,
            counters={"chats": 1.0},
            nodes=[],
        )
        out = tmp_path / "run.json"
        experiments_io.save_run(result, out)
        assert json.loads(out.read_text())["method"] == "LbChat"
        assert list(tmp_path.iterdir()) == [out]
