"""Tests for district-based data heterogeneity."""

import numpy as np
import pytest

from repro.sim import TownMap, World, WorldConfig
from repro.sim.traffic import TrafficManager


@pytest.fixture(scope="module")
def town():
    return TownMap(size=400.0, grid_n=4, seed=0)


class TestDistrictOf:
    def test_single_district(self, town):
        assert town.district_of(np.array([10.0, 10.0]), n_districts=1) == 0

    def test_quadrants(self, town):
        assert town.district_of(np.array([100.0, 100.0]), 4) == 0
        assert town.district_of(np.array([100.0, 300.0]), 4) == 1
        assert town.district_of(np.array([300.0, 100.0]), 4) == 2
        assert town.district_of(np.array([300.0, 300.0]), 4) == 3

    def test_halves(self, town):
        assert town.district_of(np.array([100.0, 350.0]), 2) == 0
        assert town.district_of(np.array([300.0, 50.0]), 2) == 1

    def test_unsupported_count(self, town):
        with pytest.raises(ValueError):
            town.district_of(np.zeros(2), 3)

    def test_district_nodes_partition(self, town):
        all_nodes = set(town.nodes())
        collected = []
        for district in range(4):
            collected.extend(town.district_nodes(district, 4))
        assert set(collected) == all_nodes
        assert len(collected) == len(all_nodes)

    def test_district_nodes_in_right_quadrant(self, town):
        for district in range(4):
            for node in town.district_nodes(district, 4):
                assert town.district_of(town.node_position(node), 4) == district


class TestDistrictWorld:
    def test_vehicles_assigned_round_robin(self):
        config = WorldConfig(
            map_size=400.0,
            grid_n=4,
            n_vehicles=6,
            n_background_cars=0,
            n_pedestrians=0,
            seed=3,
            min_route_length=100.0,
            n_districts=4,
        )
        world = World(config)
        assert [v.district for v in world.vehicles] == [0, 1, 2, 3, 0, 1]

    def test_routes_start_in_home_district(self):
        config = WorldConfig(
            map_size=400.0,
            grid_n=4,
            n_vehicles=4,
            n_background_cars=0,
            n_pedestrians=0,
            seed=3,
            min_route_length=80.0,
            n_districts=4,
            out_of_district_prob=0.0,  # pure home-district trips
        )
        world = World(config)
        for vehicle in world.vehicles:
            start = vehicle.plan.point_at(0.0)
            assert world.town.district_of(start, 4) == vehicle.district

    def test_out_of_district_commutes_happen(self):
        config = WorldConfig(
            map_size=400.0,
            grid_n=4,
            n_vehicles=6,
            n_background_cars=0,
            n_pedestrians=0,
            seed=3,
            min_route_length=80.0,
            n_districts=4,
            out_of_district_prob=1.0,  # every trip is a commute
        )
        world = World(config)
        world.run(60.0)
        # With unconstrained endpoints, vehicles roam beyond quadrants.
        districts_seen = set()
        for snap in world.snapshots[::10]:
            for state in snap.vehicle_states.values():
                districts_seen.add(world.town.district_of(state.position, 4))
        assert len(districts_seen) >= 3

    def test_district_data_differs(self):
        """Vehicles in different districts see different positions."""
        config = WorldConfig(
            map_size=400.0,
            grid_n=4,
            n_vehicles=4,
            n_background_cars=0,
            n_pedestrians=0,
            seed=3,
            min_route_length=80.0,
            n_districts=4,
        )
        world = World(config)
        world.run(30.0)
        centroids = []
        for vid in ("v0", "v1", "v2", "v3"):
            positions = np.array(
                [snap.vehicle_states[vid].position for snap in world.snapshots]
            )
            centroids.append(positions.mean(axis=0))
        centroids = np.array(centroids)
        # Home districts keep fleet centroids apart.
        pairwise = np.linalg.norm(centroids[:, None] - centroids[None, :], axis=-1)
        assert pairwise[np.triu_indices(4, 1)].mean() > 50.0


class TestPedestrianSkew:
    def test_weighted_spawn_concentrates(self, town):
        rng = np.random.default_rng(0)
        weights = np.array([0.0, 0.0, 0.0, 1.0])
        manager = TrafficManager(
            town, 0, 40, rng, ped_district_weights=weights, n_districts=4
        )
        districts = [town.district_of(p.position, 4) for p in manager.pedestrians]
        assert np.mean(np.array(districts) == 3) > 0.7

    def test_uniform_without_weights(self, town):
        rng = np.random.default_rng(0)
        manager = TrafficManager(town, 0, 40, rng)
        districts = [town.district_of(p.position, 4) for p in manager.pedestrians]
        assert len(set(districts)) >= 3
