"""Within-run step sharding: shared-memory banks, worker pool, autotune.

The load-bearing contract: sharding a fleet's batched training step
across worker processes is *purely* an execution strategy — every
result (losses, parameters, optimizer moments, step counters, full run
digests, checkpoints) is bit-identical for every ``step_workers`` value,
including resuming a checkpoint under a different worker count than the
one that wrote it.  Plus regressions for the kernel-cache lockfile
(compile at most once per host under concurrent first use) and the
jobs x step-workers oversubscription guard.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro.checkpoint import RunStore
from repro.checkpoint.format import spec_fingerprint
from repro.checkpoint.resume import resume_run_dir
from repro.core.fleet import FleetEngine
from repro.core.lbchat import LbChatConfig, LbChatTrainer
from repro.experiments.runner import RunSpec, build_context, run_method
from repro.parallel import clamp_step_workers
from repro.parallel.autotune import host_fingerprint, resolve_step_workers
from repro.parallel.stepshard import (
    ShmArena,
    StepWorkerError,
    fork_available,
    partition_rows,
)
from repro.sim.dataset import DrivingDataset
from repro.telemetry.hooks import TelemetrySession
from tests.conftest import make_node
from tests.test_checkpoint_resume import TINY, digest
from tests.test_nn_bank import build_nodes

pytestmark = pytest.mark.skipif(
    not fork_available(), reason="step sharding requires the fork start method"
)


# -- primitives ---------------------------------------------------------------


class TestPartitionRows:
    def test_covers_all_rows_contiguously(self):
        for n_rows in (1, 2, 5, 7, 32, 513):
            for n_workers in (1, 2, 3, 4, 8, 600):
                ranges = partition_rows(n_rows, n_workers)
                assert ranges[0][0] == 0
                assert ranges[-1][1] == n_rows
                for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
                    assert hi == lo

    def test_balanced_within_one(self):
        sizes = [hi - lo for lo, hi in partition_rows(10, 4)]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 10

    def test_clamps_workers_to_rows(self):
        ranges = partition_rows(3, 8)
        assert len(ranges) == 3
        assert all(hi - lo == 1 for lo, hi in ranges)

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(ValueError):
            partition_rows(0, 2)
        with pytest.raises(ValueError):
            partition_rows(4, 0)


class TestShmArena:
    def test_alloc_zeroed_and_writable(self):
        arena = ShmArena(ShmArena.bytes_for(((4, 8), np.float32), ((4,), np.int64)))
        a = arena.alloc((4, 8), np.float32)
        b = arena.alloc((4,), np.int64)
        assert not a.any() and not b.any()
        a[2, 3] = 7.0
        b[:] = 5
        assert a[2, 3] == 7.0 and b.sum() == 20

    def test_allocations_are_disjoint_and_aligned(self):
        arena = ShmArena(1 << 16)
        a = arena.alloc((100,), np.float32)
        b = arena.alloc((100,), np.float32)
        a[:] = 1.0
        assert not b.any()
        for arr in (a, b):
            assert arr.ctypes.data % 64 == 0

    def test_exhaustion_raises(self):
        arena = ShmArena(256)
        arena.alloc((32,), np.float32)
        with pytest.raises(MemoryError):
            arena.alloc((1024,), np.float32)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ShmArena(0)


# -- engine-level bit identity ------------------------------------------------


def _run_engine(step_workers: int, *, use_conv: bool, steps: int = 6):
    nodes = build_nodes(n_nodes=5, use_conv=use_conv)
    engine = FleetEngine(nodes, step_workers=step_workers)
    try:
        losses = np.array([engine.train_step_all() for _ in range(steps)])
        return (
            losses,
            engine.bank.flat.copy(),
            engine.optim.m.copy(),
            engine.optim.v.copy(),
            engine.optim.steps.copy(),
        )
    finally:
        engine.close()


class TestEngineBitIdentity:
    @pytest.mark.parametrize("use_conv", [False, True], ids=["mlp", "conv"])
    @pytest.mark.parametrize("workers", [2, 4, 5])
    def test_train_step_all_bit_identical(self, use_conv, workers):
        reference = _run_engine(1, use_conv=use_conv)
        sharded = _run_engine(workers, use_conv=use_conv)
        for ref, got in zip(reference, sharded):
            assert ref.tobytes() == got.tobytes()

    def test_train_tick_path_bit_identical(self):
        serial_nodes = build_nodes(n_nodes=4)
        sharded_nodes = build_nodes(n_nodes=4)
        serial = FleetEngine(serial_nodes, step_workers=1)
        sharded = FleetEngine(sharded_nodes, step_workers=2)
        try:
            for _ in range(4):
                for row in range(4):
                    assert serial.train_tick(row) == sharded.train_tick(row)
            assert serial.bank.flat.tobytes() == sharded.bank.flat.tobytes()
        finally:
            serial.close()
            sharded.close()

    def test_pool_actually_engages_and_reports_telemetry(self):
        with TelemetrySession() as session:
            nodes = build_nodes(n_nodes=4)
            engine = FleetEngine(nodes, step_workers=2)
            for _ in range(3):
                engine.train_step_all()
            engine.close()
            counters = session.registry.state()["counters"]
        assert counters["stepshard.steps"] == 3.0
        assert counters["stepshard.pools_spawned"] == 1.0
        # Per-shard counters ship back on close and merge into the session.
        assert counters["stepshard.shard0.steps"] == 3.0
        assert counters["stepshard.shard1.steps"] == 3.0
        assert (
            counters["stepshard.shard0.rows_stepped"]
            + counters["stepshard.shard1.rows_stepped"]
            == 4 * 3
        )

    def test_close_is_idempotent_and_engine_stays_usable(self):
        nodes = build_nodes(n_nodes=4)
        engine = FleetEngine(nodes, step_workers=2)
        before = engine.train_step_all()
        engine.close()
        engine.close()
        after = engine.train_step_all()  # serial path now
        assert before.shape == after.shape
        # The serial continuation must match an uninterrupted serial run.
        ref_nodes = build_nodes(n_nodes=4)
        ref = FleetEngine(ref_nodes, step_workers=1)
        ref.train_step_all()
        ref.train_step_all()
        assert engine.bank.flat.tobytes() == ref.bank.flat.tobytes()

    def test_worker_death_raises_step_worker_error(self):
        nodes = build_nodes(n_nodes=4)
        engine = FleetEngine(nodes, step_workers=2)
        try:
            engine.train_step_all()
            assert engine._pool is not None
            for proc in engine._pool._procs:
                proc.terminate()
                proc.join(timeout=5.0)
            with pytest.raises(StepWorkerError):
                engine.train_step_all()
        finally:
            engine.close()

    def test_checkpoint_bridge_sees_sharded_updates(self):
        """Node snapshot/restore and chat views read the shared banks."""
        nodes = build_nodes(n_nodes=4)
        engine = FleetEngine(nodes, step_workers=2)
        try:
            engine.train_step_all()
            for row, node in enumerate(nodes):
                assert node.flat_params.tobytes() == engine.bank.flat[row].tobytes()
                snap = node.optimizer.snapshot()
                assert snap["step"] == 1
                assert snap["m"].tobytes() == engine.optim.m[row].tobytes()
        finally:
            engine.close()


# -- full-run invariance ------------------------------------------------------


class TestTrainerRunInvariance:
    def _run(self, fleet_datasets, traces, step_workers: int):
        validation = DrivingDataset()
        for dataset in fleet_datasets.values():
            validation.extend([dataset.frame(i) for i in range(0, len(dataset), 8)])
        nodes = [
            make_node(vid, dataset, coreset_size=10, seed=3)
            for vid, dataset in sorted(fleet_datasets.items())
        ]
        config = LbChatConfig(
            duration=80.0,
            train_interval=2.0,
            record_interval=20.0,
            wireless_loss=False,
            seed=1,
            step_workers=step_workers,
        )
        trainer = LbChatTrainer(nodes, traces, validation, config)
        trainer.run()
        grid = np.linspace(0.0, 80.0, 9)
        return (
            trainer.loss_curve.mean_curve(grid).tobytes(),
            tuple(node.flat_params.tobytes() for node in nodes),
            tuple(sorted(trainer.counters.as_dict().items())),
        )

    def test_lbchat_run_bit_identical_across_worker_counts(
        self, fleet_datasets, traces
    ):
        reference = self._run(fleet_datasets, traces, 1)
        for workers in (2, 4):
            assert self._run(fleet_datasets, traces, workers) == reference


# -- checkpoint interop -------------------------------------------------------


@pytest.fixture(scope="module")
def context():
    return build_context(TINY)


class TestCheckpointCrossWorkerCount:
    def test_fingerprint_excludes_step_workers(self, context):
        base = RunSpec.for_context(context, "LbChat", seed=1, checkpoint_every=10.0)
        sharded = replace(base, overrides={"step_workers": 4})
        assert spec_fingerprint(base) == spec_fingerprint(sharded)
        other = replace(base, overrides={"step_workers": 4, "lambda_c": 0.5})
        assert spec_fingerprint(base) != spec_fingerprint(other)

    @pytest.mark.parametrize(
        "write_workers,resume_workers", [(4, 1), (1, 4)], ids=["4to1", "1to4"]
    )
    def test_resume_under_different_worker_count(
        self, context, tmp_path, write_workers, resume_workers
    ):
        reference = run_method(
            context,
            RunSpec.for_context(
                context,
                "LbChat",
                seed=1,
                checkpoint_every=10.0,
                checkpoint_dir=str(tmp_path / "ref"),
            ),
        )
        root = tmp_path / "main"
        spec = RunSpec.for_context(
            context,
            "LbChat",
            seed=1,
            checkpoint_every=10.0,
            checkpoint_dir=str(root),
            overrides={"step_workers": write_workers},
        )
        run_method(context, spec)
        store = RunStore(root)
        store.drop_after(spec, 2)  # crash after barrier 2
        resumed = resume_run_dir(
            store.run_dir(spec), step_workers=resume_workers
        )
        assert digest(resumed) == digest(reference)


# -- oversubscription guard ---------------------------------------------------


class TestOversubscriptionGuard:
    def _spec(self, context, step_workers: int) -> RunSpec:
        return RunSpec.for_context(
            context, "LbChat", seed=1, overrides={"step_workers": step_workers}
        )

    def test_clamps_over_budget_specs(self, context):
        cores = os.cpu_count() or 1
        n_jobs = max(2, cores)  # budget becomes cores // n_jobs == 1
        specs = [self._spec(context, 8), self._spec(context, 1)]
        with TelemetrySession() as session:
            with pytest.warns(RuntimeWarning, match="step_workers clamped"):
                clamped = clamp_step_workers(specs, n_jobs)
            counters = session.registry.state()["counters"]
        assert clamped[0].overrides["step_workers"] == 1
        assert clamped[1].overrides["step_workers"] == 1
        assert counters["stepshard.oversubscription_clamped"] == 1.0
        # Untouched specs come back as-is (same object).
        assert clamped[1] is specs[1]

    def test_serial_pool_leaves_specs_alone(self, context):
        specs = [self._spec(context, 8)]
        assert clamp_step_workers(specs, 1) is specs


# -- autotune -----------------------------------------------------------------


class TestAutotune:
    def test_resolve_plain_values(self):
        assert resolve_step_workers("3") == 3
        assert resolve_step_workers(2) == 2
        with pytest.raises(ValueError):
            resolve_step_workers("0")

    def test_auto_reads_host_cache(self, tmp_path, monkeypatch):
        cache = tmp_path / "autotune.json"
        cache.write_text(
            json.dumps({host_fingerprint(): {"step_workers": 3, "adam_chunk": 65536}})
        )
        monkeypatch.setenv("REPRO_AUTOTUNE_CACHE", str(cache))
        from repro.nn.bank import FleetAdam

        original = FleetAdam._CHUNK
        try:
            assert resolve_step_workers("auto") == 3
            assert FleetAdam._CHUNK == 65536
        finally:
            FleetAdam._CHUNK = original


# -- kernel cache -------------------------------------------------------------


_PROBE_SNIPPET = """
import numpy as np
from repro.nn._fused import fused_adam_step
kernel = fused_adam_step()
assert kernel is not None, "kernel unavailable"
p = np.zeros(8, dtype=np.float32)
g = np.ones(8, dtype=np.float32)
m = np.zeros(8, dtype=np.float32)
v = np.zeros(8, dtype=np.float32)
kernel(p, g, m, v, 8, 0.9, 0.1, 0.999, 0.001, 0.1, 0.001, 0.001, 1e-8, 0.0)
assert p.any()
print("ok")
"""


class TestKernelCacheLock:
    @pytest.mark.skipif(
        subprocess.run(["which", "cc"], capture_output=True).returncode != 0,
        reason="no C compiler",
    )
    def test_concurrent_first_use_compiles_once(self, tmp_path):
        """N processes race on a cold cache; exactly one runs the compiler."""
        env = dict(os.environ)
        env["REPRO_KERNEL_CACHE_DIR"] = str(tmp_path)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", _PROBE_SNIPPET],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
            )
            for _ in range(4)
        ]
        for proc in procs:
            out, err = proc.communicate(timeout=180)
            assert proc.returncode == 0, err.decode()
            assert out.decode().strip() == "ok"
        compiles = (tmp_path / "compiles.log").read_text().splitlines()
        assert len(compiles) == 1, compiles
        assert len(list(tmp_path.glob("adam-*.so"))) == 1
        assert not list(tmp_path.glob("*.lock"))

    @pytest.mark.skipif(
        subprocess.run(["which", "cc"], capture_output=True).returncode != 0,
        reason="no C compiler",
    )
    def test_warm_cache_loads_without_compiling(self, tmp_path):
        env = dict(os.environ)
        env["REPRO_KERNEL_CACHE_DIR"] = str(tmp_path)
        env["PYTHONPATH"] = str(Path(__file__).resolve().parent.parent / "src")
        for _ in range(2):
            result = subprocess.run(
                [sys.executable, "-c", _PROBE_SNIPPET],
                env=env,
                capture_output=True,
                timeout=180,
            )
            assert result.returncode == 0, result.stderr.decode()
        compiles = (tmp_path / "compiles.log").read_text().splitlines()
        assert len(compiles) == 1, compiles
