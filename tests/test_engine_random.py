"""Tests for deterministic RNG spawning."""

from repro.engine import spawn_rng


def test_same_seed_and_name_reproduces_stream():
    a = spawn_rng(42, "vehicle-3")
    b = spawn_rng(42, "vehicle-3")
    assert a.integers(0, 2**31, 10).tolist() == b.integers(0, 2**31, 10).tolist()


def test_different_names_differ():
    a = spawn_rng(42, "vehicle-3")
    b = spawn_rng(42, "vehicle-4")
    assert a.integers(0, 2**31, 10).tolist() != b.integers(0, 2**31, 10).tolist()


def test_different_seeds_differ():
    a = spawn_rng(1, "x")
    b = spawn_rng(2, "x")
    assert a.integers(0, 2**31, 10).tolist() != b.integers(0, 2**31, 10).tolist()


def test_statistical_sanity():
    rng = spawn_rng(7, "uniformity")
    samples = rng.uniform(size=10_000)
    assert abs(samples.mean() - 0.5) < 0.02
