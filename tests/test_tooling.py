"""Tests for tooling: checkpoints, run archives, context cache, CLI, ASCII."""

import json

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.nn import make_driving_model
from repro.nn.params import get_flat_params
from repro.nn.serialize import load_model, save_model
from repro.sim import World
from repro.sim.render_ascii import render_town, render_world


class TestModelCheckpoints:
    def test_roundtrip_exact(self, tmp_path):
        model = make_driving_model((3, 8, 8), 4, 16, seed=3)
        path = tmp_path / "model.npz"
        save_model(model, path)
        restored = load_model(path)
        assert np.array_equal(get_flat_params(restored), get_flat_params(model))
        assert restored.bev_shape == model.bev_shape
        assert restored.n_waypoints == model.n_waypoints

    def test_conv_variant_roundtrip(self, tmp_path):
        from repro.nn.model import WaypointNet

        model = WaypointNet((3, 8, 8), 4, 16, np.random.default_rng(0), use_conv=True)
        path = tmp_path / "conv.npz"
        save_model(model, path)
        restored = load_model(path)
        assert restored.use_conv
        assert np.array_equal(get_flat_params(restored), get_flat_params(model))

    def test_prediction_identical_after_roundtrip(self, tmp_path):
        model = make_driving_model((3, 8, 8), 4, 16, seed=3)
        rng = np.random.default_rng(1)
        bev = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        commands = np.array([0, 2])
        expected = model.forward(bev, commands)
        path = tmp_path / "model.npz"
        save_model(model, path)
        assert np.allclose(load_model(path).forward(bev, commands), expected)

    def test_bad_version_rejected(self, tmp_path):
        model = make_driving_model((3, 8, 8), 4, 16, seed=3)
        path = tmp_path / "model.npz"
        save_model(model, path)
        data = dict(np.load(path))
        data["version"] = np.int64(99)
        np.savez(path, **data)
        with pytest.raises(ValueError):
            load_model(path)


class TestRunArchives:
    def test_save_and_load(self, tmp_path, fleet_datasets, traces):
        from repro.core.lbchat import LbChatConfig, LbChatTrainer
        from repro.experiments.configs import CI
        from repro.experiments.io import load_run, save_run
        from repro.experiments.runner import RunResult, RunSpec
        from repro.sim.dataset import DrivingDataset
        from tests.conftest import make_node

        validation = DrivingDataset(
            [fleet_datasets["v0"].frame(i) for i in range(0, 40, 4)]
        )
        nodes = [
            make_node(vid, ds, coreset_size=8, seed=9)
            for vid, ds in sorted(fleet_datasets.items())
        ]
        trainer = LbChatTrainer(
            nodes,
            traces,
            validation,
            LbChatConfig(duration=60.0, train_interval=3.0, record_interval=20.0, seed=1),
        )
        trainer.run()
        spec = RunSpec(method="LbChat", scale=CI, seed=1)
        result = RunResult.from_trainer(spec, trainer, nodes)
        path = tmp_path / "run.json"
        save_run(result, path, n_points=9)
        payload = load_run(path)
        assert payload["method"] == "LbChat"
        assert len(payload["loss_curve"]) == 9
        assert 0.0 <= payload["receive_rate"] <= 1.0
        json.loads(path.read_text())  # valid JSON on disk


class TestContextCache:
    def test_fingerprint_stable_and_sensitive(self):
        from dataclasses import replace

        from repro.experiments.configs import CI
        from repro.experiments.io import scale_fingerprint

        assert scale_fingerprint(CI) == scale_fingerprint(CI)
        changed = replace(CI, collect_duration=CI.collect_duration + 1)
        assert scale_fingerprint(changed) != scale_fingerprint(CI)

    def test_cache_roundtrip(self, tmp_path):
        from dataclasses import replace

        from repro.experiments.configs import CI
        from repro.experiments.io import cached_context
        from repro.sim.world import WorldConfig

        micro = replace(
            CI,
            name="cache-test",
            world=WorldConfig(
                map_size=400.0,
                grid_n=3,
                n_vehicles=2,
                n_background_cars=0,
                n_pedestrians=0,
                seed=2,
                min_route_length=100.0,
            ),
            collect_duration=20.0,
            trace_duration=40.0,
        )
        first = cached_context(micro, cache_dir=tmp_path)
        assert any(tmp_path.iterdir())
        second = cached_context(micro, cache_dir=tmp_path)
        assert sorted(second.datasets) == sorted(first.datasets)
        assert len(second.validation) == len(first.validation)

    def test_corrupt_cache_rebuilt(self, tmp_path):
        from dataclasses import replace

        from repro.experiments.configs import CI
        from repro.experiments.io import cached_context, scale_fingerprint
        from repro.sim.world import WorldConfig

        micro = replace(
            CI,
            name="corrupt-test",
            world=WorldConfig(
                map_size=400.0,
                grid_n=3,
                n_vehicles=2,
                n_background_cars=0,
                n_pedestrians=0,
                seed=2,
                min_route_length=100.0,
            ),
            collect_duration=20.0,
            trace_duration=40.0,
        )
        path = tmp_path / f"context-{micro.name}-{scale_fingerprint(micro)}.pkl"
        path.write_bytes(b"garbage")
        context = cached_context(micro, cache_dir=tmp_path)
        assert len(context.datasets) == 2


class TestCli:
    def test_parser_subcommands(self):
        parser = build_parser()
        args = parser.parse_args(["run", "--method", "SCO", "--no-wireless"])
        assert args.method == "SCO" and args.wireless is False
        args = parser.parse_args(["table", "4", "--scale", "paper"])
        assert args.number == "4" and args.scale == "paper"
        args = parser.parse_args(["fig", "2a"])
        assert args.which == "2a"

    def test_scales_command(self, capsys):
        assert main(["scales"]) == 0
        out = capsys.readouterr().out
        assert "ci" in out and "paper" in out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestAsciiRender:
    def test_town_renders_roads(self, town):
        art = render_town(town, width=40)
        assert "+" in art and "-" in art
        assert len(art.splitlines()) == 20

    def test_world_renders_agents(self, world_config):
        world = World(world_config)
        world.run(5.0)
        art = render_world(world, width=40)
        assert art.startswith("t=")
        assert "A" in art  # first fleet vehicle

    def test_route_overlay(self, town):
        from repro.sim.router import random_route

        plan = random_route(town, np.random.default_rng(0), min_length=100.0)
        art = render_town(town, width=40, plan=plan)
        assert "*" in art
